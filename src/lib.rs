//! # byzantine-quorums
//!
//! A from-scratch Rust implementation of *The Load and Availability of Byzantine
//! Quorum Systems* (Dahlia Malkhi, Michael K. Reiter, Avishai Wool — PODC 1997 /
//! SIAM Journal on Computing): b-masking quorum system constructions, their load and
//! availability analysis, the quorum-composition ("boosting") machinery, and a
//! replicated-data protocol simulator that exercises them under Byzantine and crash
//! faults.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `bqs-core` | quorum systems, measures (`c`, `IS`, `MT`, load, `F_p`), masking, composition, lower bounds |
//! | [`constructions`] | `bqs-constructions` | Threshold, Grid, M-Grid, RT(k, ℓ), FPP, boostFPP, M-Path and regular baselines |
//! | [`analysis`] | `bqs-analysis` | Table 2, the Section 8 scenario, load/availability sweeps, ablations |
//! | [`sim`] | `bqs-sim` | the [MR98a] masking read/write register with fault injection |
//! | [`combinatorics`] | `bqs-combinatorics` | binomials, finite fields, projective planes |
//! | [`lp`] | `bqs-lp` | the simplex solver behind exact load computation |
//! | [`graph`] | `bqs-graph` | triangulated grids, max-flow, percolation (M-Path substrate) |
//!
//! # Quickstart
//!
//! ```
//! use byzantine_quorums::constructions::prelude::*;
//! use byzantine_quorums::core::prelude::*;
//!
//! // An M-Grid over 25 servers masking 2 Byzantine failures (Section 5.1).
//! let system = MGridSystem::new(5, 2)?;
//! assert_eq!(system.masking_b(), 2);
//!
//! // Verify the b-masking property exactly on the explicit quorum list.
//! let explicit = system.to_explicit(100_000)?;
//! assert!(is_b_masking(explicit.quorums(), 25, 2));
//!
//! // Its load is optimal to within a small constant (√2 asymptotically, Prop. 5.2).
//! let (load, _strategy) = optimal_load(explicit.quorums(), 25)?;
//! assert!(load <= 1.5 * load_lower_bound_universal(25, 2) + 1e-9);
//! # Ok::<(), byzantine_quorums::core::QuorumError>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `bqs-bench` crate for the harnesses that regenerate every table and figure of the
//! paper (documented in `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bqs_analysis as analysis;
pub use bqs_combinatorics as combinatorics;
pub use bqs_constructions as constructions;
pub use bqs_core as core;
pub use bqs_graph as graph;
pub use bqs_lp as lp;
pub use bqs_sim as sim;

/// One-stop import of the most frequently used items from every layer.
pub mod prelude {
    pub use bqs_constructions::prelude::*;
    pub use bqs_core::prelude::*;
    pub use bqs_sim::prelude::*;
}
