//! # byzantine-quorums
//!
//! A from-scratch Rust implementation of *The Load and Availability of Byzantine
//! Quorum Systems* (Dahlia Malkhi, Michael K. Reiter, Avishai Wool — PODC 1997 /
//! SIAM Journal on Computing): b-masking quorum system constructions, their load and
//! availability analysis, the quorum-composition ("boosting") machinery, and a
//! replicated-data protocol simulator that exercises them under Byzantine and crash
//! faults.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! | Re-export | Crate (path) | Contents |
//! |---|---|---|
//! | [`core`] | `bqs-core` (`crates/core`) | the [`core::quorum::QuorumSystem`] trait and explicit systems, measures (`c`, `IS`, `MT`, load via LP, `F_p`), masking, composition, lower bounds, and the [`core::eval::Evaluator`] — the shared allocation-free, parallel crash-probability engine |
//! | [`constructions`] | `bqs-constructions` (`crates/constructions`) | Threshold, Grid, M-Grid, RT(k, ℓ), FPP, boostFPP, M-Path and the regular baselines, each with closed-form analytics (and exact closed-form `F_p` where the structure admits one) |
//! | [`analysis`] | `bqs-analysis` (`crates/analysis`) | Table 2, the Section 8 scenario, load/availability sweeps and ablations, all driven by one shared `Evaluator` |
//! | [`sim`] | `bqs-sim` (`crates/sim`) | the masking read/write register protocol with Byzantine and crash fault injection |
//! | [`service`] | `bqs-service` (`crates/service`) | the concurrent strategy-driven quorum service runtime: sharded replica ownership behind a pluggable transport, lock-free metrics, closed-loop and open-loop (Poisson-arrival) load generation with online safety checking |
//! | [`net`] | `bqs-net` (`crates/net`) | the socket side of the transport seam: length-prefixed wire codec, TCP/Unix-domain server over the sharded runtime, pooled client transport with reconnect and per-request deadlines |
//! | [`chaos`] | `bqs-chaos` (`crates/chaos`) | the deterministic adversarial scenario engine: a replayable chaos interposer at the transport seam plus named scenario families that verify masking holds at `b` faults and breaks detectably at `b + 1` |
//! | [`epoch`] | `bqs-epoch` (`crates/epoch`) | epoch-based reconfiguration: accrual failure suspicion over service evidence, survivor re-certification through the load oracle (with construction switching and a rotation fallback), and the two-phase client migration that preserves masking across the handoff |
//! | [`combinatorics`] | `bqs-combinatorics` (`crates/combinatorics`) | binomials, finite fields, prime powers, projective planes |
//! | [`lp`] | `bqs-lp` (`crates/lp`) | the simplex solver behind the explicit load LP, plus the incremental packing master behind certified column-generation load |
//! | [`graph`] | `bqs-graph` (`crates/graph`) | triangulated grids, max-flow, percolation (the M-Path substrate) |
//!
//! The `bqs-bench` crate (`crates/bench`, not re-exported: binaries only)
//! regenerates the paper's tables and figures and emits `BENCH_fp.json`, the
//! machine-readable performance trajectory of the evaluation engine.
//!
//! # Quickstart
//!
//! ```
//! use byzantine_quorums::constructions::prelude::*;
//! use byzantine_quorums::core::prelude::*;
//!
//! // An M-Grid over 25 servers masking 2 Byzantine failures (Section 5.1).
//! let system = MGridSystem::new(5, 2)?;
//! assert_eq!(system.masking_b(), 2);
//!
//! // Verify the b-masking property exactly on the explicit quorum list.
//! let explicit = system.to_explicit(100_000)?;
//! assert!(is_b_masking(explicit.quorums(), 25, 2));
//!
//! // Its load is optimal to within a small constant (√2 asymptotically, Prop. 5.2).
//! let (load, _strategy) = optimal_load(explicit.quorums(), 25)?;
//! assert!(load <= 1.5 * load_lower_bound_universal(25, 2) + 1e-9);
//!
//! // Crash probability through the shared evaluation engine: closed form for
//! // the M-Grid (exact at any n), parallel enumeration or Monte-Carlo otherwise.
//! let fp = Evaluator::new().crash_probability(&system, 0.125);
//! assert_eq!(fp.method, FpMethod::ClosedForm);
//! assert!(fp.value > 0.0 && fp.value < 1.0);
//! # Ok::<(), byzantine_quorums::core::QuorumError>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! README for the full experiment catalogue (every table and figure of the
//! paper has a binary in `bqs-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bqs_analysis as analysis;
pub use bqs_chaos as chaos;
pub use bqs_combinatorics as combinatorics;
pub use bqs_constructions as constructions;
pub use bqs_core as core;
pub use bqs_epoch as epoch;
pub use bqs_graph as graph;
pub use bqs_lp as lp;
pub use bqs_net as net;
pub use bqs_service as service;
pub use bqs_sim as sim;

/// One-stop import of the most frequently used items from every layer.
pub mod prelude {
    pub use bqs_chaos::prelude::*;
    pub use bqs_constructions::prelude::*;
    pub use bqs_core::prelude::*;
    pub use bqs_epoch::prelude::*;
    pub use bqs_net::prelude::*;
    pub use bqs_service::prelude::*;
    pub use bqs_sim::prelude::*;
}
