//! Boosting: turning any benign-fault quorum system into a Byzantine-tolerant one.
//!
//! Section 6 of the paper observes that composing *any* regular quorum system `S`
//! over the minimal b-masking threshold `Thresh(3b+1 of 4b+1)` yields a b-masking
//! system over a `(4b+1)`-times larger universe, with all of `S`'s load advantages
//! preserved (Theorem 4.7: parameters multiply). This example boosts three different
//! regular systems — Majority, the Maekawa-style grid, and a finite projective plane
//! — and compares the results, reproducing the reasoning that singles out the FPP
//! (boostFPP) as the load-optimal choice.
//!
//! Run with: `cargo run --example boosting`

use byzantine_quorums::analysis::TextTable;
use byzantine_quorums::core::composition::ComposedSystem;
use byzantine_quorums::core::QuorumSystem;
use byzantine_quorums::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = 2usize;
    let inner = ThresholdSystem::minimal_masking(b)?; // 7-of-9 threshold, masks b = 2
    println!(
        "boosting over the inner system {} (n = {}, IS = {}, MT = {})\n",
        inner.name(),
        inner.universe_size(),
        inner.min_intersection(),
        inner.min_transversal()
    );

    // Three regular outer systems of comparable size.
    let majority = MajoritySystem::new(13)?;
    let grid = RegularGridSystem::new(4)?;
    let fpp = FppSystem::new(3)?;

    let mut table = TextTable::new([
        "boosted system",
        "n",
        "c(Q)",
        "IS",
        "masks b",
        "load",
        "load / lower bound",
        "sampled intersections ok",
    ]);

    let mut rng = StdRng::seed_from_u64(11);
    let mut report = |name: String, composed: &dyn QuorumSystem, outer_load: f64| {
        let n = composed.universe_size();
        let is = inner.min_intersection();
        let load = outer_load * inner.analytic_load();
        let lower = byzantine_quorums::core::bounds::load_lower_bound_universal(n, b);
        // Empirically validate the 2b+1 intersections on sampled quorum pairs.
        let mut ok = true;
        for _ in 0..50 {
            let q1 = composed.sample_quorum(&mut rng);
            let q2 = composed.sample_quorum(&mut rng);
            if q1.intersection_size(&q2) < 2 * b + 1 {
                ok = false;
            }
        }
        table.push_row([
            name,
            n.to_string(),
            composed.min_quorum_size().to_string(),
            is.to_string(),
            b.to_string(),
            format!("{load:.4}"),
            format!("{:.2}", load / lower),
            ok.to_string(),
        ]);
    };

    let boosted_majority = ComposedSystem::new(majority.clone(), inner.clone());
    report(
        boosted_majority.name(),
        &boosted_majority,
        majority.analytic_load(),
    );

    let boosted_grid = ComposedSystem::new(grid.clone(), inner.clone());
    report(boosted_grid.name(), &boosted_grid, grid.analytic_load());

    let boost_fpp = BoostFppSystem::new(3, b)?;
    report(boost_fpp.name(), &boost_fpp, fpp.analytic_load());

    println!("{}", table.render());

    println!(
        "\nall three boosted systems mask b = {b} Byzantine failures (intersections of the\n\
         outer system multiply with the threshold's 2b+1 = {}), but their loads differ:\n\
         the boosted majority inherits the majority's ~1/2 load, the boosted grid gets\n\
         ~2/sqrt(n_outer), and the boosted FPP — the paper's boostFPP — achieves the\n\
         optimal ~3/(4q), the closest to the universal lower bound.",
        2 * b + 1
    );

    // Theorem 4.7 in action: verify the availability composition numerically.
    let p = 0.1;
    let inner_fp = inner.crash_probability(p);
    let outer_fp_at_inner = 1.0 - (1.0 - inner_fp).powi(4); // one FPP(3) line of 4 copies
    println!(
        "\navailability composition at p = {p}: Fp(inner) = {inner_fp:.5}, so a single\n\
         FPP line of 4 copies fails with probability <= {outer_fp_at_inner:.5} — the\n\
         boostFPP bound of Proposition 6.3 follows exactly this structure."
    );
    Ok(())
}
