//! Quickstart: build b-masking quorum systems, inspect their measures, and run the
//! replicated register protocol on top of one.
//!
//! Run with: `cargo run --example quickstart`

use byzantine_quorums::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Byzantine quorum systems quickstart ==\n");

    // 1. Build the paper's Figure 1 instance: a 7x7 M-Grid masking b = 3 failures.
    let mgrid = MGridSystem::new(7, 3)?;
    println!("system        : {}", mgrid.name());
    println!("universe size : {}", mgrid.universe_size());
    println!("masks         : b = {}", mgrid.masking_b());
    println!("resilience    : f = {} crash failures", mgrid.resilience());
    println!("quorum size   : {}", mgrid.min_quorum_size());
    println!("load          : {:.4}", mgrid.analytic_load());
    println!(
        "load lower bnd: {:.4}  (Corollary 4.2)",
        mgrid.load_lower_bound()
    );

    // 2. Verify the masking property exactly on the explicit quorum list.
    let explicit = mgrid.to_explicit(1_000_000)?;
    println!("\nexplicit quorums        : {}", explicit.num_quorums());
    println!(
        "min pairwise intersection: {} (need >= 2b+1 = {})",
        min_intersection_size(explicit.quorums()),
        2 * mgrid.masking_b() + 1
    );
    println!(
        "exactly b-masking?       : {}",
        is_b_masking(explicit.quorums(), 49, 3)
    );
    let (lp_load, _) = optimal_load(explicit.quorums(), 49)?;
    println!("exact LP load            : {lp_load:.4}");

    // 3. Compare against other constructions at similar scale.
    println!("\n== other constructions over ~49-1024 servers ==");
    let rt = RtSystem::new(4, 3, 3)?;
    let boost = BoostFppSystem::new(3, 4)?;
    let mpath = MPathSystem::new(7, 3)?;
    for sys in [&rt as &dyn AnalyzedConstruction, &boost, &mpath] {
        println!(
            "{:<28} n={:<5} b={:<3} f={:<4} load={:.4} (x{:.2} of optimal)",
            sys.name(),
            sys.universe_size(),
            sys.masking_b(),
            sys.resilience(),
            sys.analytic_load(),
            sys.load_optimality_ratio(),
        );
    }

    // 4. Run the replicated register over the M-Grid with a Byzantine server inside.
    println!("\n== replicated register over {} ==", mgrid.name());
    let plan = FaultPlan::none(49)
        .with_byzantine(10, ByzantineStrategy::FabricateHighTimestamp { value: 666 })
        .with_byzantine(24, ByzantineStrategy::Equivocate)
        .with_byzantine(33, ByzantineStrategy::StaleReplay)
        .with_crashed(0);
    let mut rng = StdRng::seed_from_u64(2024);
    let report = run_workload(
        mgrid,
        3,
        plan,
        WorkloadConfig {
            operations: 2000,
            write_fraction: 0.25,
        },
        &mut rng,
    );
    println!("writes completed   : {}", report.writes_completed);
    println!("reads completed    : {}", report.reads_completed);
    println!("safety violations  : {}", report.safety_violations);
    println!("unavailable ops    : {}", report.unavailable_operations);
    println!("empirical max load : {:.4}", report.max_empirical_load());
    assert!(
        report.is_safe(),
        "masking must hold with <= b Byzantine servers"
    );
    println!("\nthe register stayed consistent despite 3 Byzantine servers and a crash");
    Ok(())
}
