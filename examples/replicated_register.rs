//! A Byzantine fault-tolerant replicated register, end to end.
//!
//! This example plays out the scenario that motivates the paper: a replicated
//! service accessed through quorums must stay *consistent* when some servers are
//! Byzantine and stay *available* when (possibly many more) servers crash. It runs
//! the same workload over several constructions, under increasing attack strength,
//! and shows where each one's guarantees hold and where they break.
//!
//! Run with: `cargo run --example replicated_register`

use byzantine_quorums::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn attack_plan(n: usize, byzantine: usize, crashes: usize, seed: u64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    FaultPlan::random(
        n,
        byzantine,
        crashes,
        ByzantineStrategy::FabricateHighTimestamp { value: 0xDEAD },
        &mut rng,
    )
}

fn run_case(name: &str, system: impl QuorumSystem + Clone, b: usize, plan: FaultPlan) {
    let mut rng = StdRng::seed_from_u64(7);
    let byz = plan.byzantine_count();
    let crashes = plan.crash_count();
    let report = run_workload(
        system,
        b,
        plan,
        WorkloadConfig {
            operations: 1500,
            write_fraction: 0.3,
        },
        &mut rng,
    );
    println!(
        "{name:<34} byz={byz:<3} crashes={crashes:<3} reads={:<5} violations={:<3} unavailable={:<5} max-load={:.3}",
        report.reads_completed,
        report.safety_violations,
        report.unavailable_operations,
        report.max_empirical_load()
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("single-writer register over b-masking quorum systems");
    println!("(every row: 1500 operations, fabricating Byzantine servers + crashes)\n");

    // Within the masking bound: all constructions must report zero violations.
    println!("-- attacks within the design bound (b Byzantine, few crashes) --");
    let thresh = ThresholdSystem::minimal_masking(3)?; // n = 13
    run_case(
        "Threshold(10-of-13), b=3",
        thresh.clone(),
        3,
        attack_plan(13, 3, 1, 1),
    );

    let mgrid = MGridSystem::new(7, 3)?; // n = 49
    run_case(
        "M-Grid(49), b=3",
        mgrid.clone(),
        3,
        attack_plan(49, 3, 4, 2),
    );

    let rt = RtSystem::new(4, 3, 3)?; // n = 64, b = 3
    run_case(
        "RT(4,3) depth 3, b=3",
        rt.clone(),
        3,
        attack_plan(64, 3, 6, 3),
    );

    let boost = BoostFppSystem::new(3, 3)?; // n = 169, b = 3
    run_case(
        "boostFPP(q=3, b=3)",
        boost.clone(),
        3,
        attack_plan(169, 3, 20, 4),
    );

    let mpath = MPathSystem::new(9, 4)?; // n = 81, b = 4
    run_case(
        "M-Path(81), b=4",
        mpath.clone(),
        4,
        attack_plan(81, 4, 5, 5),
    );

    // Beyond the masking bound: fabricated values can reach the safety threshold.
    println!("\n-- attack beyond the design bound (2b+1 colluding fabricators) --");
    run_case(
        "Threshold(10-of-13), b=3, 7 byz",
        thresh,
        3,
        attack_plan(13, 7, 0, 6),
    );

    // Crashes beyond the resilience: safety holds but operations stall.
    println!("\n-- crashes beyond the resilience (availability loss, never unsafety) --");
    let small = ThresholdSystem::minimal_masking(1)?; // n = 5, tolerates 1 crash
    run_case(
        "Threshold(4-of-5), b=1, 2 crash",
        small,
        1,
        attack_plan(5, 0, 2, 7),
    );

    println!("\ninterpretation:");
    println!(" * within the bound, every construction masks the attack (0 violations);");
    println!(" * with more than b fabricators, violations appear — the 2b+1 intersection");
    println!("   requirement of Definition 3.5 is tight;");
    println!(" * with more crashes than the resilience f, operations become unavailable");
    println!("   but reads that do complete remain correct.");
    Ok(())
}
