//! A multi-writer replicated register over a b-masking quorum system.
//!
//! Several writers share one register: each write first queries a quorum for the
//! highest (masked) timestamp, then writes with a larger timestamp tie-broken by the
//! writer id — the read-modify-write timestamping of the [MR98a] protocols. The
//! masking quorum system keeps the register consistent even though `b` servers lie.
//!
//! Run with: `cargo run --example multi_writer_register`

use byzantine_quorums::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // boostFPP(q=2, b=1): 35 servers, masks one Byzantine server, tolerates 5 crashes.
    let make_system = || BoostFppSystem::new(2, 1).expect("valid boostFPP parameters");
    let n = make_system().universe_size();
    println!(
        "multi-writer register over {} ({} servers, b = 1)\n",
        make_system().name(),
        n
    );

    let plan = FaultPlan::none(n)
        .with_byzantine(
            7,
            ByzantineStrategy::FabricateHighTimestamp { value: 0xBAD },
        )
        .with_crashed(12)
        .with_crashed(29);
    println!("fault plan: 1 fabricating Byzantine server, 2 crashes\n");

    let mut rng = StdRng::seed_from_u64(77);
    let report = run_multi_writer_workload(make_system, 1, 4, plan, 2000, &mut rng);

    println!("writes per writer    : {:?}", report.writes_per_writer);
    println!("reads completed      : {}", report.reads_completed);
    println!("safety violations    : {}", report.safety_violations);
    println!("unavailable ops      : {}", report.unavailable_operations);
    assert!(report.is_safe());
    println!("\nevery read returned the latest completed write, from whichever writer made it;");
    println!("the fabricated high-timestamp value never reached the b+1 support it would need.");
    Ok(())
}
