//! Choosing a quorum system for a deployment — the Section 8 decision, replayed.
//!
//! The paper's discussion section walks through a concrete decision: with `n = 1024`
//! servers, a target load of about `1/4`, and servers that crash independently with
//! probability `1/8`, which construction should a deployment use? This example
//! recomputes that comparison with this library (analytically and by Monte-Carlo
//! simulation) and prints the trade-off table, then shows how the answer changes
//! when the failure probability rises.
//!
//! Run with: `cargo run --release --example choose_a_quorum_system`

use byzantine_quorums::analysis::scenario::{build_scenario, render_scenario, SCENARIO_P};
use byzantine_quorums::analysis::TextTable;
use byzantine_quorums::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== The Section 8 scenario: n = 1024, target load ~ 1/4, p = 1/8 ==\n");
    let rows = build_scenario(400);
    println!("{}\n", render_scenario(&rows));

    let best = rows
        .iter()
        .filter(|r| r.fp_bound_is_upper)
        .min_by(|a, b| a.fp_value().partial_cmp(&b.fp_value()).unwrap())
        .expect("scenario always has rows with upper bounds");
    println!(
        "best availability at p = {SCENARIO_P}: {} (the paper reaches the same conclusion:\n\
         RT(4,3) is best here, with M-Path close behind and asymptotically superior)\n",
        best.system
    );

    // How does the picture change as p grows towards 1/2? The M-Grid and boostFPP
    // degrade (boostFPP needs p < 1/4), while M-Path keeps working for any p < 1/2.
    // One Evaluator answers for every system: exact closed forms for M-Grid and
    // RT, parallel Monte-Carlo for boostFPP and M-Path.
    println!("== availability as the per-server crash probability grows ==\n");
    let evaluator = Evaluator::new().with_trials(400).with_seed(99);
    let mpath_evaluator = evaluator.clone().with_trials(120);
    let mut table = TextTable::new([
        "p",
        "M-Grid(1024,b=15)",
        "RT(4,3,h=5)",
        "boostFPP(3,19)",
        "M-Path(1024,b=7)",
    ]);
    let mgrid = MGridSystem::new(32, 15)?;
    let rt = RtSystem::new(4, 3, 5)?;
    let boost = BoostFppSystem::new(3, 19)?;
    let mpath = MPathSystem::new(32, 7)?;
    for &p in &[0.05, 0.125, 0.2, 0.3, 0.4] {
        table.push_row([
            format!("{p:.3}"),
            format!("{:.3}", evaluator.crash_probability(&mgrid, p).value),
            format!("{:.3}", evaluator.crash_probability(&rt, p).value),
            format!("{:.3}", evaluator.crash_probability(&boost, p).value),
            format!("{:.3}", mpath_evaluator.crash_probability(&mpath, p).value),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\nreading the columns: the M-Grid is already mostly dead at p = 1/8; RT fails\n\
         past its critical probability p_c = 0.2324; boostFPP fails past p = 1/4; and\n\
         M-Path — the paper's headline construction — survives until p approaches 1/2."
    );
    Ok(())
}
