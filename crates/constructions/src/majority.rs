//! Regular (benign fault-tolerant) baseline systems.
//!
//! The paper's boosting technique (Section 6) turns *any* regular quorum system into
//! a b-masking one by composing it over a masking threshold. These baselines supply
//! the regular systems used in examples, tests and the boosting ablation:
//!
//! * [`MajoritySystem`] — quorums are all `⌊n/2⌋ + 1`-subsets ([Tho79]); maximal
//!   availability, poor load;
//! * [`RegularGridSystem`] — quorums are one full row plus one full column of a
//!   `√n × √n` grid ([Mae85, CAA92]); load `≈ 2/√n`, poor availability;
//! * [`SingletonSystem`] — a single distinguished server; the degenerate extreme.

use rand::RngCore;

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::{ExplicitQuorumSystem, QuorumSystem};

use crate::square::{min_price_rows_and_columns, SquareGrid};
use crate::threshold::ThresholdSystem;
use crate::AnalyzedConstruction;

/// The simple majority quorum system over `n` servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajoritySystem {
    inner: ThresholdSystem,
}

impl MajoritySystem {
    /// Creates the majority system over `n` servers.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] when `n == 0`.
    pub fn new(n: usize) -> Result<Self, QuorumError> {
        Ok(MajoritySystem {
            inner: ThresholdSystem::new(n, n / 2 + 1)?,
        })
    }

    /// Access to the underlying threshold representation.
    #[must_use]
    pub fn as_threshold(&self) -> &ThresholdSystem {
        &self.inner
    }

    /// Materialises all majority quorums.
    ///
    /// # Errors
    ///
    /// Returns an error if the count exceeds `max_quorums`.
    pub fn to_explicit(&self, max_quorums: usize) -> Result<ExplicitQuorumSystem, QuorumError> {
        self.inner.to_explicit(max_quorums)
    }
}

impl QuorumSystem for MajoritySystem {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn name(&self) -> String {
        format!("Majority(n={})", self.inner.universe_size())
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        self.inner.sample_quorum(rng)
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        self.inner.find_live_quorum(alive)
    }

    fn min_quorum_size(&self) -> usize {
        self.inner.min_quorum_size()
    }
}

impl MinWeightQuorumOracle for MajoritySystem {
    /// Delegates to the threshold prefix-sum oracle (`⌊n/2⌋ + 1` cheapest).
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        self.inner.min_weight_quorum(prices)
    }

    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        self.inner.symmetric_strategy_hint()
    }
}

impl AnalyzedConstruction for MajoritySystem {
    fn masking_b(&self) -> usize {
        self.inner.masking_b()
    }

    fn resilience(&self) -> usize {
        self.inner.min_transversal() - 1
    }

    fn analytic_load(&self) -> f64 {
        self.inner.analytic_load()
    }

    fn crash_probability_upper_bound(&self, p: f64) -> Option<f64> {
        Some(self.inner.crash_probability(p))
    }
}

/// The regular (non-masking) grid system: one full row plus one full column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegularGridSystem {
    grid: SquareGrid,
}

impl RegularGridSystem {
    /// Creates the row+column grid system on a `side × side` grid.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `side == 0`.
    pub fn new(side: usize) -> Result<Self, QuorumError> {
        Ok(RegularGridSystem {
            grid: SquareGrid::new(side)?,
        })
    }

    /// The grid side.
    #[must_use]
    pub fn side(&self) -> usize {
        self.grid.side()
    }

    /// Materialises all `side²` quorums.
    ///
    /// # Errors
    ///
    /// Propagates explicit-system validation errors (none occur for valid grids).
    pub fn to_explicit(&self) -> Result<ExplicitQuorumSystem, QuorumError> {
        let side = self.grid.side();
        let mut quorums = Vec::with_capacity(side * side);
        for r in 0..side {
            for c in 0..side {
                quorums.push(self.grid.union_of(&[r], &[c]));
            }
        }
        Ok(ExplicitQuorumSystem::new(self.grid.universe_size(), quorums)?.with_name(self.name()))
    }
}

impl QuorumSystem for RegularGridSystem {
    fn universe_size(&self) -> usize {
        self.grid.universe_size()
    }

    fn name(&self) -> String {
        format!("RegularGrid(n={})", self.grid.universe_size())
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let side = self.grid.side();
        let r = rand::seq::index::sample(rng, side, 1).index(0);
        let c = rand::seq::index::sample(rng, side, 1).index(0);
        self.grid.union_of(&[r], &[c])
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        let rows = self.grid.fully_alive_rows(alive);
        let cols = self.grid.fully_alive_columns(alive);
        match (rows.first(), cols.first()) {
            (Some(&r), Some(&c)) => Some(self.grid.union_of(&[r], &[c])),
            _ => None,
        }
    }

    fn min_quorum_size(&self) -> usize {
        2 * self.grid.side() - 1
    }
}

impl MinWeightQuorumOracle for RegularGridSystem {
    /// Exact pricing of the cheapest one-row + one-column union.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        let (rows, cols, price) =
            min_price_rows_and_columns(self.grid.side(), prices, 1, 1, u128::MAX)?;
        Some((self.grid.union_of(&rows, &cols), price))
    }

    /// All row × column pairs: the uniform mixture loads every cell at
    /// exactly `(2·side − 1)/side²`.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        Some(crate::square::balanced_line_strategy(
            self.grid.side(),
            1,
            1,
            |rows, cols| self.grid.union_of(rows, cols),
        ))
    }
}

impl AnalyzedConstruction for RegularGridSystem {
    fn masking_b(&self) -> usize {
        0
    }

    fn resilience(&self) -> usize {
        // MT = side (hit every row... actually hitting every quorum requires touching
        // every row or every column; one element per row suffices): MT = side.
        self.grid.side() - 1 + 1 - 1
    }

    fn analytic_load(&self) -> f64 {
        self.min_quorum_size() as f64 / self.universe_size() as f64
    }

    fn crash_probability_upper_bound(&self, _p: f64) -> Option<f64> {
        None
    }

    fn crash_probability_lower_bound(&self, p: f64) -> Option<f64> {
        // One crash per row kills every quorum.
        let side = self.grid.side() as f64;
        Some((1.0 - (1.0 - p).powf(side)).powf(side))
    }
}

/// The degenerate single-server "system": every quorum is `{0, ..., size-1}`'s first
/// server. Used as an extreme baseline in load/availability comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingletonSystem {
    n: usize,
}

impl SingletonSystem {
    /// Creates the singleton system over `n ≥ 1` servers (server 0 is the quorum).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] when `n == 0`.
    pub fn new(n: usize) -> Result<Self, QuorumError> {
        if n == 0 {
            return Err(QuorumError::InvalidParameters(
                "universe must contain at least one server".into(),
            ));
        }
        Ok(SingletonSystem { n })
    }
}

impl QuorumSystem for SingletonSystem {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("Singleton(n={})", self.n)
    }

    fn sample_quorum(&self, _rng: &mut dyn RngCore) -> ServerSet {
        ServerSet::from_indices(self.n, [0])
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        alive
            .contains(0)
            .then(|| ServerSet::from_indices(self.n, [0]))
    }

    fn min_quorum_size(&self) -> usize {
        1
    }
}

impl MinWeightQuorumOracle for SingletonSystem {
    /// The only quorum is `{0}`, whatever the prices.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        assert_eq!(prices.len(), self.n, "one price per server required");
        Some((ServerSet::from_indices(self.n, [0]), prices[0]))
    }
}

impl AnalyzedConstruction for SingletonSystem {
    fn masking_b(&self) -> usize {
        0
    }

    fn resilience(&self) -> usize {
        0
    }

    fn analytic_load(&self) -> f64 {
        1.0
    }

    fn crash_probability_upper_bound(&self, p: f64) -> Option<f64> {
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn majority_parameters() {
        let m = MajoritySystem::new(7).unwrap();
        assert_eq!(m.min_quorum_size(), 4);
        assert_eq!(AnalyzedConstruction::resilience(&m), 3);
        assert_eq!(m.masking_b(), 0);
        assert!((m.analytic_load() - 4.0 / 7.0).abs() < 1e-12);
        assert!(MajoritySystem::new(0).is_err());
    }

    #[test]
    fn majority_has_condorcet_availability() {
        // Fp decreases with n for p < 1/2 and increases for p > 1/2.
        let small = MajoritySystem::new(5).unwrap();
        let large = MajoritySystem::new(25).unwrap();
        let p = 0.3;
        assert!(
            large.crash_probability_upper_bound(p).unwrap()
                < small.crash_probability_upper_bound(p).unwrap()
        );
        let p_bad = 0.7;
        assert!(
            large.crash_probability_upper_bound(p_bad).unwrap()
                > small.crash_probability_upper_bound(p_bad).unwrap()
        );
    }

    #[test]
    fn regular_grid_parameters_and_availability() {
        let g = RegularGridSystem::new(4).unwrap();
        assert_eq!(g.universe_size(), 16);
        assert_eq!(g.min_quorum_size(), 7);
        assert_eq!(g.masking_b(), 0);
        let e = g.to_explicit().unwrap();
        assert_eq!(e.num_quorums(), 16);
        // Two row+column quorums on distinct rows and columns meet in exactly two
        // cells (each one's row crosses the other's column).
        assert_eq!(min_intersection_size(e.quorums()), 2);
        assert_eq!(masking_level(e.quorums(), 16), Some(0));
        // Load: fair system, 7/16.
        let (load, _) = optimal_load(e.quorums(), 16).unwrap();
        assert!((load - 7.0 / 16.0).abs() < 1e-6);
        // Availability needs a full row and a full column.
        let mut alive = ServerSet::full(16);
        alive.remove(0);
        assert!(g.is_available(&alive)); // rows 1..3 and columns 1..3 are intact
        for c in 0..4 {
            alive.remove(c); // kill all of row 0: every column now has a dead cell
        }
        assert!(!g.is_available(&alive));
        let mut diag = ServerSet::full(16);
        for i in 0..4 {
            diag.remove(i * 4 + i);
        }
        assert!(!g.is_available(&diag)); // no full row (or column) remains
    }

    #[test]
    fn regular_grid_resilience_matches_explicit() {
        let g = RegularGridSystem::new(3).unwrap();
        let e = g.to_explicit().unwrap();
        assert_eq!(
            bqs_core::transversal::resilience(e.quorums(), 9),
            AnalyzedConstruction::resilience(&g)
        );
    }

    #[test]
    fn singleton_behaviour() {
        let s = SingletonSystem::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.sample_quorum(&mut rng).to_vec(), vec![0]);
        assert!(s.is_available(&ServerSet::from_indices(5, [0, 3])));
        assert!(!s.is_available(&ServerSet::from_indices(5, [1, 2, 3, 4])));
        assert_eq!(s.analytic_load(), 1.0);
        assert!(SingletonSystem::new(0).is_err());
    }

    #[test]
    fn baseline_oracles_certify_their_fair_loads() {
        let m = MajoritySystem::new(101).unwrap();
        let certified = optimal_load_oracle(&m).unwrap();
        assert!((certified.load - m.analytic_load()).abs() <= 1e-9);
        assert!(certified.gap <= 1e-9);

        let g = RegularGridSystem::new(12).unwrap();
        let certified = optimal_load_oracle(&g).unwrap();
        assert!((certified.load - g.analytic_load()).abs() <= 1e-9);
        assert!(certified.gap <= 1e-9);

        let s = SingletonSystem::new(5).unwrap();
        let certified = optimal_load_oracle(&s).unwrap();
        assert!((certified.load - 1.0).abs() <= 1e-12);
        assert!(certified.lower_bound >= 1.0 - 1e-9);
    }

    #[test]
    fn majority_sampling_uniformity() {
        let m = MajoritySystem::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 5];
        for _ in 0..600 {
            for u in m.sample_quorum(&mut rng).iter() {
                counts[u] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / 600.0;
            assert!((frac - 0.6).abs() < 0.1, "frac={frac}");
        }
    }
}
