//! Recursive threshold systems RT(k, ℓ) (Section 5.2 of the paper).
//!
//! An RT(k, ℓ) system of depth `h` recursively composes the `ℓ-of-k` threshold
//! system over itself: the `n = k^h` servers are the leaves of a complete `k`-ary
//! tree of depth `h`, and a quorum picks `ℓ` children of the root and recurses into
//! each (Figure 2 of the paper shows RT(4, 3) of depth 2). By Theorem 4.7 the
//! parameters exponentiate (Proposition 5.3):
//! `c = ℓ^h`, `IS = (2ℓ−k)^h`, `MT = (k−ℓ+1)^h`, `L = (ℓ/k)^h`,
//! so the system is b-masking for
//! `b = min{(n^{log_k(2ℓ−k)} − 1)/2, n^{log_k(k−ℓ+1)} − 1}` (Corollary 5.4).
//! Its crash probability obeys the recurrence `F(h) = g(F(h−1))` with
//! `g` the ℓ-of-k failure polynomial, giving a critical probability `p_c < 1/2`
//! (Proposition 5.6) and exponentially small `F_p` for `p < 1/C(k, ℓ−1)`
//! (Proposition 5.7).

use rand::RngCore;

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::{ExplicitQuorumSystem, QuorumSystem};

use crate::AnalyzedConstruction;

/// A recursive threshold system RT(k, ℓ) of depth `h` over `k^h` servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtSystem {
    k: usize,
    l: usize,
    depth: u32,
}

impl RtSystem {
    /// Creates RT(k, ℓ) of the given depth.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] unless `k > ℓ > k/2` and
    /// `depth >= 1` and `k^depth` fits comfortably in memory (≤ 2^24 leaves).
    pub fn new(k: usize, l: usize, depth: u32) -> Result<Self, QuorumError> {
        if !(l < k && 2 * l > k) {
            return Err(QuorumError::InvalidParameters(format!(
                "RT(k, l) requires k > l > k/2 (got k={k}, l={l})"
            )));
        }
        if depth == 0 {
            return Err(QuorumError::InvalidParameters(
                "RT depth must be at least 1".into(),
            ));
        }
        let n = (k as u128).pow(depth);
        if n > (1 << 24) {
            return Err(QuorumError::InvalidParameters(format!(
                "RT universe k^h = {n} is too large"
            )));
        }
        Ok(RtSystem { k, l, depth })
    }

    /// The branching factor `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The per-node threshold `ℓ`.
    #[must_use]
    pub fn l(&self) -> usize {
        self.l
    }

    /// The recursion depth `h`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Minimal intersection size `IS = (2ℓ − k)^h` (Proposition 5.3).
    #[must_use]
    pub fn min_intersection(&self) -> usize {
        (2 * self.l - self.k).pow(self.depth)
    }

    /// Minimal transversal size `MT = (k − ℓ + 1)^h` (Proposition 5.3).
    #[must_use]
    pub fn min_transversal(&self) -> usize {
        (self.k - self.l + 1).pow(self.depth)
    }

    /// The failure polynomial `g(p)` of the ℓ-of-k building block: the probability
    /// that at least `k − ℓ + 1` of `k` servers crash.
    #[must_use]
    pub fn building_block_failure(&self, p: f64) -> f64 {
        bqs_combinatorics::binomial::binomial_tail(self.k as u64, (self.k - self.l + 1) as u64, p)
    }

    /// The exact crash probability via the recurrence (4) of the paper:
    /// `F(0) = p`, `F(h) = g(F(h − 1))`.
    #[must_use]
    pub fn crash_probability(&self, p: f64) -> f64 {
        let mut f = p.clamp(0.0, 1.0);
        for _ in 0..self.depth {
            f = self.building_block_failure(f);
        }
        f
    }

    /// The critical probability `p_c` of Proposition 5.6: the unique fixed point of
    /// `g(p) = p` in `(0, 1)`, computed by bisection. Below `p_c`, `F_p → 0` as the
    /// depth grows; above it, `F_p → 1`.
    #[must_use]
    pub fn critical_probability(&self) -> f64 {
        // g(p) - p is negative just above 0 and positive just below 1.
        let g = |p: f64| self.building_block_failure(p) - p;
        let mut lo = 1e-9;
        let mut hi = 1.0 - 1e-9;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if g(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// The upper bound of Proposition 5.7:
    /// `F_p ≤ (C(k, ℓ−1) · p)^{(k−ℓ+1)^h}` when `p < 1/C(k, ℓ−1)`.
    /// Returns `None` when the precondition fails.
    #[must_use]
    pub fn crash_probability_prop_5_7_bound(&self, p: f64) -> Option<f64> {
        let c = bqs_combinatorics::binomial::binomial_f64(self.k as u64, (self.l - 1) as u64);
        if p >= 1.0 / c {
            return None;
        }
        Some((c * p).powf(self.min_transversal() as f64).min(1.0))
    }

    /// Materialises every quorum. The number of quorums is
    /// `C(k, ℓ)^{(k^h − 1)/(k − 1)}`, so this is only feasible for shallow systems.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if the count exceeds `max_quorums`.
    pub fn to_explicit(&self, max_quorums: usize) -> Result<ExplicitQuorumSystem, QuorumError> {
        let per_node = bqs_combinatorics::binomial::binomial(self.k as u64, self.l as u64);
        // number of internal nodes = (k^h - 1) / (k - 1)
        let internal = ((self.k as u128).pow(self.depth) - 1) / (self.k as u128 - 1);
        let mut count: u128 = 1;
        for _ in 0..internal {
            count = count.saturating_mul(per_node);
            if count > max_quorums as u128 {
                return Err(QuorumError::InvalidParameters(format!(
                    "RT explicit enumeration exceeds the cap of {max_quorums}"
                )));
            }
        }
        let n = self.universe_size();
        let leaf_sets = self.enumerate_quorums(0, n);
        let quorums: Vec<ServerSet> = leaf_sets
            .into_iter()
            .map(|leaves| ServerSet::from_indices(n, leaves))
            .collect();
        Ok(ExplicitQuorumSystem::new(n, quorums)?.with_name(self.name()))
    }

    /// Recursively enumerates the leaf sets of all quorums of the subtree covering
    /// `[start, start + span)`.
    fn enumerate_quorums(&self, start: usize, span: usize) -> Vec<Vec<usize>> {
        if span == 1 {
            return vec![vec![start]];
        }
        let child_span = span / self.k;
        // For every choice of l children, combine every mix of their quorums.
        let mut result = Vec::new();
        for children in bqs_combinatorics::subsets::KSubsets::new(self.k, self.l) {
            let child_quorums: Vec<Vec<Vec<usize>>> = children
                .iter()
                .map(|&c| self.enumerate_quorums(start + c * child_span, child_span))
                .collect();
            let mut partial: Vec<Vec<usize>> = vec![Vec::new()];
            for cq in &child_quorums {
                let mut next = Vec::with_capacity(partial.len() * cq.len());
                for base in &partial {
                    for q in cq {
                        let mut merged = base.clone();
                        merged.extend_from_slice(q);
                        next.push(merged);
                    }
                }
                partial = next;
            }
            result.extend(partial);
        }
        result
    }

    /// Recursive pricing: the cheapest quorum of a subtree takes the `ℓ`
    /// cheapest children by their own recursive optima (ties to the left).
    fn min_price_rec(
        &self,
        start: usize,
        span: usize,
        prices: &[f64],
        out: &mut Vec<usize>,
    ) -> f64 {
        if span == 1 {
            out.push(start);
            return prices[start];
        }
        let child_span = span / self.k;
        let mut child_best: Vec<(f64, usize, Vec<usize>)> = (0..self.k)
            .map(|c| {
                let mut leaves = Vec::new();
                let v = self.min_price_rec(start + c * child_span, child_span, prices, &mut leaves);
                (v, c, leaves)
            })
            .collect();
        child_best.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut total = 0.0;
        for (v, _, leaves) in child_best.into_iter().take(self.l) {
            total += v;
            out.extend(leaves);
        }
        total
    }

    fn sample_rec(&self, start: usize, span: usize, rng: &mut dyn RngCore, out: &mut ServerSet) {
        if span == 1 {
            out.insert(start);
            return;
        }
        let child_span = span / self.k;
        let children = rand::seq::index::sample(rng, self.k, self.l);
        for c in children.iter() {
            self.sample_rec(start + c * child_span, child_span, rng, out);
        }
    }

    fn find_rec(&self, start: usize, span: usize, alive: &ServerSet) -> Option<ServerSet> {
        if span == 1 {
            return if alive.contains(start) {
                Some(ServerSet::from_indices(self.universe_size(), [start]))
            } else {
                None
            };
        }
        let child_span = span / self.k;
        let mut found = Vec::new();
        for c in 0..self.k {
            if let Some(q) = self.find_rec(start + c * child_span, child_span, alive) {
                found.push(q);
                if found.len() == self.l {
                    break;
                }
            }
        }
        if found.len() < self.l {
            return None;
        }
        let mut out = ServerSet::new(self.universe_size());
        for q in found {
            out = out.union(&q);
        }
        Some(out)
    }
}

impl QuorumSystem for RtSystem {
    fn universe_size(&self) -> usize {
        (self.k as u64).pow(self.depth) as usize
    }

    fn name(&self) -> String {
        format!("RT({}, {}) depth {}", self.k, self.l, self.depth)
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let mut out = ServerSet::new(self.universe_size());
        self.sample_rec(0, self.universe_size(), rng, &mut out);
        out
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        self.find_rec(0, self.universe_size(), alive)
    }

    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        // The recurrence of Proposition 5.6 is exact: sibling subtrees fail
        // independently, so F(h) = g(F(h-1)) with g the ℓ-of-k failure
        // polynomial (validated against enumeration in this module's tests).
        Some(self.crash_probability(p))
    }

    fn min_quorum_size(&self) -> usize {
        self.l.pow(self.depth)
    }
}

impl MinWeightQuorumOracle for RtSystem {
    /// Exact pricing by tree recursion (`O(n log k)`): the recursive
    /// structure that makes RT's quorum list exponential is exactly what
    /// makes its pricing problem trivial.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        let n = self.universe_size();
        assert_eq!(prices.len(), n, "one price per server required");
        let mut leaves = Vec::with_capacity(self.min_quorum_size());
        let price = self.min_price_rec(0, n, prices, &mut leaves);
        Some((ServerSet::from_indices(n, leaves), price))
    }

    /// The depth-aligned product family: a column per choice of one
    /// `ℓ`-of-`k` child subset *per level* (the same subset at every node of
    /// that level), `C(k, ℓ)^h` columns in total. Each leaf survives a
    /// column iff its child index at every level belongs to that level's
    /// subset, so every leaf is covered exactly `C(k−1, ℓ−1)^h` times and
    /// the uniform mixture equalises loads at `(ℓ/k)^h` — Proposition 5.5's
    /// value, certified by the engine rather than assumed.
    ///
    /// Declines (falls back to column generation) when the family would
    /// exceed 65 536 columns.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        let per_level = bqs_combinatorics::binomial::binomial(self.k as u64, self.l as u64);
        if per_level.checked_pow(self.depth)? > 65_536 {
            return None;
        }
        let subsets: Vec<Vec<usize>> =
            bqs_combinatorics::subsets::KSubsets::new(self.k, self.l).collect();
        let n = self.universe_size();
        // Mixed-radix counter over one subset choice per level.
        let h = self.depth as usize;
        let mut choice = vec![0usize; h];
        let mut quorums = Vec::new();
        loop {
            let mut leaves = Vec::with_capacity(self.min_quorum_size());
            collect_aligned_leaves(self.k, &subsets, &choice, 0, 0, n, &mut leaves);
            quorums.push(ServerSet::from_indices(n, leaves));
            let mut pos = 0;
            while pos < h {
                choice[pos] += 1;
                if choice[pos] < subsets.len() {
                    break;
                }
                choice[pos] = 0;
                pos += 1;
            }
            if pos == h {
                break;
            }
        }
        let weights = vec![1.0; quorums.len()];
        Some((quorums, weights))
    }
}

/// Collects the leaves of the aligned column `choice` (one child subset per
/// level) under the subtree covering `[start, start + span)` at `level`.
fn collect_aligned_leaves(
    k: usize,
    subsets: &[Vec<usize>],
    choice: &[usize],
    level: usize,
    start: usize,
    span: usize,
    out: &mut Vec<usize>,
) {
    if span == 1 {
        out.push(start);
        return;
    }
    let child_span = span / k;
    for &c in &subsets[choice[level]] {
        collect_aligned_leaves(
            k,
            subsets,
            choice,
            level + 1,
            start + c * child_span,
            child_span,
            out,
        );
    }
}

impl AnalyzedConstruction for RtSystem {
    fn masking_b(&self) -> usize {
        let is = self.min_intersection();
        let mt = self.min_transversal();
        ((is.saturating_sub(1)) / 2).min(mt.saturating_sub(1))
    }

    fn resilience(&self) -> usize {
        self.min_transversal() - 1
    }

    fn analytic_load(&self) -> f64 {
        // Fair system (Proposition 5.5): L = (l/k)^h = n^{-(1 - log_k l)}.
        (self.l as f64 / self.k as f64).powi(self.depth as i32)
    }

    fn crash_probability_upper_bound(&self, p: f64) -> Option<f64> {
        Some(self.crash_probability(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(RtSystem::new(4, 3, 2).is_ok());
        assert!(RtSystem::new(4, 2, 2).is_err()); // 2l = k: not > k/2
        assert!(RtSystem::new(4, 4, 2).is_err());
        assert!(RtSystem::new(3, 2, 0).is_err());
        assert!(RtSystem::new(2, 2, 3).is_err());
    }

    #[test]
    fn figure_2_instance_parameters() {
        // RT(4, 3) of depth 2: n = 16, c = 9, IS = MT = 4, b = 1 by Corollary 5.4...
        // (IS - 1)/2 = 1, MT - 1 = 3 -> b = 1.
        let rt = RtSystem::new(4, 3, 2).unwrap();
        assert_eq!(rt.universe_size(), 16);
        assert_eq!(rt.min_quorum_size(), 9);
        assert_eq!(rt.min_intersection(), 4);
        assert_eq!(rt.min_transversal(), 4);
        assert_eq!(rt.masking_b(), 1);
        assert_eq!(AnalyzedConstruction::resilience(&rt), 3);
        assert!((rt.analytic_load() - 9.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_depth2_matches_analytic() {
        let rt = RtSystem::new(4, 3, 2).unwrap();
        let e = rt.to_explicit(100_000).unwrap();
        // 4 choose 3 = 4 options per node; 5 internal nodes in a (4,3) depth-2 tree
        // contribute 4 (root) * 4^3 (chosen children) = 256 quorums.
        assert_eq!(e.num_quorums(), 256);
        assert_eq!(min_quorum_size(e.quorums()), 9);
        assert_eq!(min_intersection_size(e.quorums()), 4);
        assert_eq!(min_transversal_size(e.quorums(), 16), 4);
        assert_eq!(masking_level(e.quorums(), 16), Some(1));
        let (load, _) = optimal_load(e.quorums(), 16).unwrap();
        assert!((load - rt.analytic_load()).abs() < 1e-6);
    }

    #[test]
    fn rt33_depth2_explicit() {
        // RT(3,2) depth 2 over 9 servers: c = 4, IS = 1, MT = 4 -> regular system.
        let rt = RtSystem::new(3, 2, 2).unwrap();
        let e = rt.to_explicit(10_000).unwrap();
        assert_eq!(e.universe_size(), 9);
        assert_eq!(min_quorum_size(e.quorums()), 4);
        assert_eq!(min_intersection_size(e.quorums()), 1);
        assert_eq!(rt.masking_b(), 0);
    }

    #[test]
    fn rt_4_3_polynomial_and_critical_probability() {
        // The paper: g(p) = 6p^2 - 8p^3 + 3p^4 and p_c = 0.2324.
        let rt = RtSystem::new(4, 3, 1).unwrap();
        for &p in &[0.05, 0.1, 0.2, 0.3, 0.5] {
            let g = rt.building_block_failure(p);
            let poly = 6.0 * p.powi(2) - 8.0 * p.powi(3) + 3.0 * p.powi(4);
            assert!((g - poly).abs() < 1e-12, "p={p}");
        }
        let pc = rt.critical_probability();
        assert!((pc - 0.2324).abs() < 5e-4, "pc={pc}");
        assert!(pc < 0.5);
    }

    #[test]
    fn crash_probability_decays_below_pc_and_grows_above() {
        let shallow = RtSystem::new(4, 3, 2).unwrap();
        let deep = RtSystem::new(4, 3, 5).unwrap();
        // Below p_c = 0.2324 the failure probability decays with depth.
        assert!(deep.crash_probability(0.1) < shallow.crash_probability(0.1));
        // Above p_c it grows towards 1.
        assert!(deep.crash_probability(0.4) > shallow.crash_probability(0.4));
        assert!(deep.crash_probability(0.4) > 0.9);
    }

    #[test]
    fn proposition_5_7_bound_dominates_exact() {
        let rt = RtSystem::new(4, 3, 3).unwrap();
        for &p in &[0.01, 0.05, 0.1, 0.15] {
            let exact = rt.crash_probability(p);
            let bound = rt.crash_probability_prop_5_7_bound(p).unwrap();
            assert!(exact <= bound + 1e-12, "p={p} exact={exact} bound={bound}");
        }
        // Precondition p < 1/C(4,2) = 1/6.
        assert!(rt.crash_probability_prop_5_7_bound(0.2).is_none());
    }

    #[test]
    fn crash_probability_matches_exact_enumeration() {
        // Depth-2 RT(3,2) has 9 servers: exact enumeration is feasible.
        let rt = RtSystem::new(3, 2, 2).unwrap();
        for &p in &[0.1, 0.3, 0.5] {
            let exact = exact_crash_probability(&rt, p).unwrap();
            let recurrence = rt.crash_probability(p);
            assert!(
                (exact - recurrence).abs() < 1e-9,
                "p={p}: {exact} vs {recurrence}"
            );
        }
    }

    #[test]
    fn sampling_and_availability() {
        let rt = RtSystem::new(4, 3, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let q = rt.sample_quorum(&mut rng);
            assert_eq!(q.len(), 9);
        }
        assert!(rt.is_available(&ServerSet::full(16)));
        // Kill two leaves in each of 2 different children-of-root: still available.
        let mut alive = ServerSet::full(16);
        alive.remove(0);
        alive.remove(1);
        assert!(!rt
            .find_live_quorum(&alive)
            .map(|q| q.contains(0) || q.contains(1))
            .unwrap_or(true));
        // Killing 2 leaves in every child of the root makes every child unavailable.
        let mut dead = ServerSet::full(16);
        for c in 0..4 {
            dead.remove(c * 4);
            dead.remove(c * 4 + 1);
        }
        assert!(!rt.is_available(&dead));
    }

    #[test]
    fn pricing_oracle_matches_explicit_scan() {
        let rt = RtSystem::new(4, 3, 2).unwrap();
        let e = rt.to_explicit(100_000).unwrap();
        for seed in 0..4u64 {
            let prices: Vec<f64> = (0..16)
                .map(|i| ((i as u64 * 23 + seed * 5 + 1) % 19) as f64 / 19.0)
                .collect();
            let (q, v) = rt.min_weight_quorum(&prices).unwrap();
            let (_, v_ref) = e.min_weight_quorum(&prices).unwrap();
            assert!((v - v_ref).abs() < 1e-12, "seed={seed}: {v} vs {v_ref}");
            let recomputed: f64 = q.iter().map(|u| prices[u]).sum();
            assert!((recomputed - v).abs() < 1e-12);
        }
    }

    #[test]
    fn certified_load_matches_proposition_5_5_at_scale() {
        // RT(4, 3) depth 5 (n = 1024, the Section 8 instance): certified LP
        // load equals (3/4)^5.
        let rt = RtSystem::new(4, 3, 5).unwrap();
        let certified = optimal_load_oracle(&rt).unwrap();
        assert!(
            (certified.load - rt.analytic_load()).abs() <= 1e-9,
            "certified {} vs analytic {}",
            certified.load,
            rt.analytic_load()
        );
        assert!(certified.gap <= 1e-9, "gap={}", certified.gap);
    }

    #[test]
    fn section8_rt_instance() {
        // Section 8: RT(4,3) depth 5, n = 1024, b = 15, f = 31, Fp <= 0.0001 at p=1/8.
        let rt = RtSystem::new(4, 3, 5).unwrap();
        assert_eq!(rt.universe_size(), 1024);
        assert_eq!(rt.masking_b(), 15);
        assert_eq!(AnalyzedConstruction::resilience(&rt), 31);
        let fp = rt.crash_probability(0.125);
        assert!(fp <= 1e-4, "fp={fp}");
        // Load n^{-(1 - log_4 3)} = (3/4)^5.
        assert!((rt.analytic_load() - 0.75f64.powi(5)).abs() < 1e-12);
    }
}
