//! The finite-projective-plane (FPP) quorum system (Section 6 of the paper).
//!
//! The lines of a projective plane of order `q` form a regular quorum system over
//! `n = q² + q + 1` servers: every line has `q + 1` points and any two lines meet in
//! exactly one point (so `IS = 1` — it masks no Byzantine failures on its own). Its
//! load `(q+1)/n ≈ 1/√n` is optimal for regular quorum systems [NW98], which is why
//! the paper boosts it: composing FPP over a masking threshold (boostFPP) inherits
//! the optimal load while acquiring the threshold's masking ability.
//!
//! The FPP's availability is poor — `MT = q + 1` and in fact `F_p(FPP) → 1` as
//! `n → ∞` [RST92, Woo96] — which is also inherited, and is why boostFPP needs
//! `p < 1/4`.
//!
//! For planes up to order `q = 5` the crash probability is computed
//! **exactly** from the plane's line-free survivor profile
//! ([`FppSystem::crash_probability_exact`]) — the outer factor of boostFPP's
//! exact evaluation via Theorem 4.7. The profile comes from a counting
//! interface DP ([`ProjectivePlane::line_free_profile`]), so `q = 5`
//! (31 points, far past the `2^n` enumeration wall) is exact too; `q = 7`'s
//! interface was measured to exceed the DP's state budget and declines.

use std::sync::OnceLock;

use rand::RngCore;

use bqs_combinatorics::projective::ProjectivePlane;
use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::{ExplicitQuorumSystem, QuorumSystem};

use crate::AnalyzedConstruction;

/// The quorum system whose quorums are the lines of PG(2, q).
#[derive(Debug, Clone)]
pub struct FppSystem {
    plane: ProjectivePlane,
    lines: Vec<ServerSet>,
    /// Lazily-computed line-free profile of the plane (`None` inside means the
    /// plane is too large for the one-time enumeration); shared by every
    /// closed-form evaluation so sweeps pay the `2^n` cost at most once.
    line_free_profile: OnceLock<Option<Vec<u64>>>,
}

impl FppSystem {
    /// Builds the FPP quorum system of order `q` (a prime power).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] when `q` is not a prime power.
    pub fn new(q: u64) -> Result<Self, QuorumError> {
        let plane = ProjectivePlane::new(q).map_err(|e| {
            QuorumError::InvalidParameters(format!("cannot build FPP of order {q}: {e}"))
        })?;
        let n = plane.num_points();
        let lines = plane
            .lines()
            .map(|l| ServerSet::from_indices(n, l.iter().copied()))
            .collect();
        Ok(FppSystem {
            plane,
            lines,
            line_free_profile: OnceLock::new(),
        })
    }

    /// Exact crash probability of the FPP: the system is unavailable iff the
    /// surviving point set contains no complete line, so with `N_m` the number
    /// of line-free `m`-subsets ([`ProjectivePlane::line_free_profile`]),
    ///
    /// `F_p(FPP) = Σ_m N_m (1 − p)^m p^{n − m}`.
    ///
    /// Returns `None` for planes whose one-time profile computation is gated
    /// out (`q ≥ 7`, the measured interface wall of the counting DP); the
    /// profile is cached, so sweeps over many `p` values pay the one-time
    /// counting sweep at most once per system.
    #[must_use]
    pub fn crash_probability_exact(&self, p: f64) -> Option<f64> {
        let profile = self
            .line_free_profile
            .get_or_init(|| self.plane.line_free_profile())
            .as_ref()?;
        let p = p.clamp(0.0, 1.0);
        let q = 1.0 - p;
        let n = self.universe_size() as i32;
        let fp: f64 = profile
            .iter()
            .enumerate()
            .map(|(m, &count)| count as f64 * q.powi(m as i32) * p.powi(n - m as i32))
            .sum();
        Some(fp.clamp(0.0, 1.0))
    }

    /// The plane order `q`.
    #[must_use]
    pub fn order(&self) -> u64 {
        self.plane.order()
    }

    /// The underlying projective plane.
    #[must_use]
    pub fn plane(&self) -> &ProjectivePlane {
        &self.plane
    }

    /// The lines (quorums) as server sets.
    #[must_use]
    pub fn lines(&self) -> &[ServerSet] {
        &self.lines
    }

    /// Converts to an explicit quorum system (always feasible: `q² + q + 1` quorums).
    ///
    /// # Errors
    ///
    /// Never fails for a validly constructed plane; the `Result` mirrors the other
    /// constructions' `to_explicit` signatures.
    pub fn to_explicit(&self) -> Result<ExplicitQuorumSystem, QuorumError> {
        Ok(
            ExplicitQuorumSystem::new(self.universe_size(), self.lines.clone())?
                .with_name(self.name()),
        )
    }

    /// The simple union-bound estimate (6) from the proof of Proposition 6.3:
    /// `F_p(FPP) ≤ 1 − (1−p)^{q+1} ≤ (q+1) p` — the probability that one fixed line
    /// survives, used as the outer factor of the boostFPP bound.
    #[must_use]
    pub fn single_line_survival_bound(&self, p: f64) -> f64 {
        let q = self.plane.order() as f64;
        (1.0 - (1.0 - p).powf(q + 1.0)).min((q + 1.0) * p).min(1.0)
    }
}

impl QuorumSystem for FppSystem {
    fn universe_size(&self) -> usize {
        self.plane.num_points()
    }

    fn name(&self) -> String {
        format!("FPP(q={})", self.plane.order())
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let idx = rand::seq::index::sample(rng, self.lines.len(), 1).index(0);
        self.lines[idx].clone()
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        self.lines.iter().find(|l| l.is_subset_of(alive)).cloned()
    }

    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        self.crash_probability_exact(p)
    }

    fn min_quorum_size(&self) -> usize {
        self.plane.order() as usize + 1
    }
}

impl MinWeightQuorumOracle for FppSystem {
    /// Exact pricing by scanning the `q² + q + 1` lines — the quorum list of
    /// an FPP is polynomial in `n`, so the scan *is* the structure-aware
    /// oracle (`O(n·(q+1))` per call).
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        assert_eq!(
            prices.len(),
            self.universe_size(),
            "one price per server required"
        );
        self.lines
            .iter()
            .map(|l| (l, l.iter().map(|u| prices[u]).sum::<f64>()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, v)| (l.clone(), v))
    }

    /// The uniform mixture over all lines: every point lies on exactly
    /// `q + 1` of the `q² + q + 1` lines, so it equalises loads at
    /// `(q+1)/n` — the regular-system optimum of [NW98].
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        Some((self.lines.clone(), vec![1.0; self.lines.len()]))
    }
}

impl AnalyzedConstruction for FppSystem {
    fn masking_b(&self) -> usize {
        0 // IS = 1: a regular quorum system
    }

    fn resilience(&self) -> usize {
        // MT(FPP) = q + 1 (the smallest transversals are the lines themselves).
        self.plane.order() as usize
    }

    fn analytic_load(&self) -> f64 {
        // Fair system: L = (q+1) / (q^2+q+1) ~ 1/sqrt(n), optimal for regular systems.
        (self.plane.order() as f64 + 1.0) / self.universe_size() as f64
    }

    fn crash_probability_upper_bound(&self, _p: f64) -> Option<f64> {
        None // Fp(FPP) -> 1; only lower bounds are meaningful
    }

    fn crash_probability_lower_bound(&self, p: f64) -> Option<f64> {
        // Proposition 4.3 with MT = q + 1.
        Some(p.clamp(0.0, 1.0).powi(self.plane.order() as i32 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fano_system() {
        let fpp = FppSystem::new(2).unwrap();
        assert_eq!(fpp.universe_size(), 7);
        assert_eq!(fpp.min_quorum_size(), 3);
        assert_eq!(fpp.lines().len(), 7);
        assert_eq!(fpp.masking_b(), 0);
    }

    #[test]
    fn invalid_order_rejected() {
        assert!(FppSystem::new(6).is_err());
        assert!(FppSystem::new(0).is_err());
    }

    #[test]
    fn explicit_measures_match_theory() {
        let fpp = FppSystem::new(3).unwrap();
        let e = fpp.to_explicit().unwrap();
        assert_eq!(e.universe_size(), 13);
        assert_eq!(min_quorum_size(e.quorums()), 4);
        assert_eq!(min_intersection_size(e.quorums()), 1);
        // The minimal transversals of an FPP are its lines: MT = q + 1.
        assert_eq!(min_transversal_size(e.quorums(), 13), 4);
        assert_eq!(masking_level(e.quorums(), 13), Some(0));
        // Fair: the LP load equals (q+1)/n.
        let (load, _) = optimal_load(e.quorums(), 13).unwrap();
        assert!((load - fpp.analytic_load()).abs() < 1e-6);
        assert!((load - 4.0 / 13.0).abs() < 1e-6);
    }

    #[test]
    fn load_is_near_one_over_sqrt_n() {
        for q in [2u64, 3, 4, 5, 7, 8, 9] {
            let fpp = FppSystem::new(q).unwrap();
            let n = fpp.universe_size() as f64;
            // (q+1)/(q^2+q+1) -> 1/sqrt(n); the ratio approaches 1 as q grows.
            let ratio = fpp.analytic_load() * n.sqrt();
            assert!(ratio > 0.95 && ratio < 1.2, "q={q} ratio={ratio}");
        }
    }

    #[test]
    fn availability_requires_a_full_line() {
        let fpp = FppSystem::new(2).unwrap();
        assert!(fpp.is_available(&ServerSet::full(7)));
        // Remove one point from every line: take a line's complement... simpler,
        // kill 5 of 7 points; no 3-point line can survive within 2 points.
        let alive = ServerSet::from_indices(7, [0, 1]);
        assert!(!fpp.is_available(&alive));
        // A single crash leaves many full lines.
        let mut alive2 = ServerSet::full(7);
        alive2.remove(3);
        let q = fpp.find_live_quorum(&alive2).unwrap();
        assert!(q.is_subset_of(&alive2));
    }

    #[test]
    fn sampling_returns_lines() {
        let fpp = FppSystem::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let q = fpp.sample_quorum(&mut rng);
            assert!(fpp.lines().contains(&q));
        }
    }

    #[test]
    fn exact_closed_form_matches_enumeration() {
        // The survivor-profile closed form must track full 2^n enumeration to
        // 1e-12 on every plane small enough to enumerate.
        for q in [2u64, 3] {
            let fpp = FppSystem::new(q).unwrap();
            for &p in &[0.0, 0.05, 0.125, 0.3, 0.5, 0.8, 1.0] {
                let closed = fpp.crash_probability_exact(p).unwrap();
                let enumerated = exact_crash_probability(&fpp, p).unwrap();
                assert!(
                    (closed - enumerated).abs() < 1e-12,
                    "q={q} p={p}: closed {closed} vs enumerated {enumerated}"
                );
            }
        }
    }

    #[test]
    fn exact_closed_form_reaches_order_five() {
        // q = 5 has 31 points — far past the 2^n enumeration wall — but the
        // counting profile makes its closed form exact. Pin it against the
        // Monte-Carlo estimator and the analytic envelope.
        let fpp = FppSystem::new(5).unwrap();
        let exact = fpp.crash_probability_exact(0.1).unwrap();
        assert!((0.0..=1.0).contains(&exact));
        assert_eq!(
            fpp.crash_probability_closed_form(0.1).unwrap().to_bits(),
            exact.to_bits()
        );
        // Proposition 4.3 lower bound with MT = q + 1.
        assert!(exact >= fpp.crash_probability_lower_bound(0.1).unwrap() - 1e-12);
        let mut rng = StdRng::seed_from_u64(7);
        let est = monte_carlo_crash_probability(&fpp, 0.1, 40_000, &mut rng);
        assert!(
            (est.mean - exact).abs() <= 4.0 * est.ci95_half_width() + 1e-9,
            "exact {exact} vs MC {} ± {}",
            est.mean,
            est.ci95_half_width()
        );
        // F_p is monotone in p and the profile evaluation respects the edges.
        assert_eq!(fpp.crash_probability_exact(0.0).unwrap(), 0.0);
        assert_eq!(fpp.crash_probability_exact(1.0).unwrap(), 1.0);
        assert!(fpp.crash_probability_exact(0.3).unwrap() > exact);
    }

    #[test]
    fn exact_closed_form_gated_for_large_planes() {
        // q = 7 fits the counting DP's 64-line mask but its interface was
        // measured past the state budget: the closed form declines (fast) and
        // the engine falls back to its usual dispatch.
        let fpp = FppSystem::new(7).unwrap();
        assert!(fpp.crash_probability_exact(0.1).is_none());
        assert!(fpp.crash_probability_closed_form(0.1).is_none());
    }

    #[test]
    fn pricing_oracle_picks_the_cheapest_line() {
        let fpp = FppSystem::new(3).unwrap();
        let prices: Vec<f64> = (0..13).map(|i| ((i * 19 + 3) % 29) as f64 / 29.0).collect();
        let (q, v) = fpp.min_weight_quorum(&prices).unwrap();
        assert!(fpp.lines().contains(&q));
        let best: f64 = fpp
            .lines()
            .iter()
            .map(|l| l.iter().map(|u| prices[u]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        assert!((v - best).abs() < 1e-12);
        // Certified load equals the fair closed form (q+1)/n.
        let certified = optimal_load_oracle(&fpp).unwrap();
        assert!((certified.load - fpp.analytic_load()).abs() <= 1e-9);
        assert!(certified.gap <= 1e-9);
    }

    #[test]
    fn survival_bound_behaviour() {
        let fpp = FppSystem::new(3).unwrap();
        assert_eq!(fpp.single_line_survival_bound(0.0), 0.0);
        assert!(fpp.single_line_survival_bound(0.05) <= 0.2 + 1e-12);
        assert!(fpp.single_line_survival_bound(0.9) > 0.999);
        assert!(fpp.single_line_survival_bound(0.9) <= 1.0);
    }
}
