//! The b-masking quorum constructions of Malkhi, Reiter & Wool.
//!
//! This crate implements every construction discussed in *The Load and Availability
//! of Byzantine Quorum Systems* (PODC 1997 / SIAM J. Computing):
//!
//! | System | Paper section | Module | Headline property |
//! |---|---|---|---|
//! | Threshold | [MR98a] baseline (Table 2) | [`threshold`] | masks up to `b < n/4`, load `≈ 1/2` |
//! | Grid | [MR98a] baseline (Table 2) | [`grid`] | load `≈ 2b/√n`, availability → 0 |
//! | M-Grid | Section 5.1 | [`mgrid`] | **optimal load** `≈ 2√((b+1)/n)` for `b ≤ (√n−1)/2` |
//! | RT(k, ℓ) | Section 5.2 | [`rt`] | masks `b = O(n^α)`, near-optimal crash probability |
//! | boostFPP | Section 6 | [`boost_fpp`] | **optimal load** `≈ 3/(4q)`, masks up to `b → n/4` |
//! | M-Path | Section 7 | [`mpath`] | **optimal load and optimal crash probability** for all `p < 1/2` |
//! | Majority / RegularGrid / Singleton | regular baselines | [`majority`] | inputs for boosting and comparisons |
//!
//! All constructions implement [`bqs_core::quorum::QuorumSystem`] (operational
//! interface: sample a quorum, find a live quorum under failures) and the
//! [`AnalyzedConstruction`] trait defined here (the analytic quantities reported in
//! Table 2 of the paper).
//!
//! # Example
//!
//! ```
//! use bqs_constructions::prelude::*;
//! use bqs_core::prelude::*;
//!
//! // The paper's Figure 1 instance: a 7x7 M-Grid masking b = 3 Byzantine servers.
//! let mgrid = MGridSystem::new(7, 3).unwrap();
//! assert_eq!(mgrid.universe_size(), 49);
//! assert_eq!(mgrid.masking_b(), 3);
//!
//! // Its load is about 2*sqrt((b+1)/n) — optimal up to a factor sqrt(2).
//! let load = mgrid.analytic_load();
//! assert!(load < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boost_fpp;
pub mod fpp;
pub mod grid;
pub mod majority;
pub mod mgrid;
pub mod mpath;
pub mod rt;
pub mod square;
pub mod threshold;

pub use boost_fpp::BoostFppSystem;
pub use fpp::FppSystem;
pub use grid::GridSystem;
pub use majority::{MajoritySystem, RegularGridSystem, SingletonSystem};
pub use mgrid::MGridSystem;
pub use mpath::MPathSystem;
pub use rt::RtSystem;
pub use threshold::ThresholdSystem;

/// Analytic characterisation of a construction: the quantities the paper reports for
/// each system in Table 2 and uses throughout its comparisons.
///
/// All values are *analytic* (closed-form) properties of the construction; the
/// `bqs-core` measures recompute them exactly on explicit instances, and the tests in
/// this crate check that the two agree.
pub trait AnalyzedConstruction: bqs_core::quorum::QuorumSystem {
    /// The number of Byzantine failures the construction masks (its `b`).
    fn masking_b(&self) -> usize;

    /// The resilience `f = MT(Q) − 1`: crash failures it is guaranteed to survive.
    fn resilience(&self) -> usize;

    /// The load `L(Q)` (closed form; all of the paper's constructions are fair, so
    /// this equals `c(Q)/n` by Proposition 3.9).
    fn analytic_load(&self) -> f64;

    /// An upper bound on the crash probability `F_p(Q)` at crash probability `p`,
    /// when a useful one is known (`None` for the constructions whose `F_p → 1`).
    fn crash_probability_upper_bound(&self, p: f64) -> Option<f64>;

    /// A lower bound on `F_p(Q)`, defaulting to Proposition 4.3's `p^{f+1}`.
    fn crash_probability_lower_bound(&self, p: f64) -> Option<f64> {
        Some(bqs_core::bounds::crash_probability_lower_bound_resilience(
            p,
            self.resilience() + 1,
        ))
    }

    /// The universal load lower bound of Corollary 4.2 for this system's size and
    /// masking level, for optimality comparisons.
    fn load_lower_bound(&self) -> f64 {
        bqs_core::bounds::load_lower_bound_universal(self.universe_size(), self.masking_b())
    }

    /// The ratio of the achieved load to the universal lower bound (1.0 = optimal).
    fn load_optimality_ratio(&self) -> f64 {
        self.analytic_load() / self.load_lower_bound()
    }
}

/// Convenient glob import of every construction.
pub mod prelude {
    pub use crate::boost_fpp::BoostFppSystem;
    pub use crate::fpp::FppSystem;
    pub use crate::grid::GridSystem;
    pub use crate::majority::{MajoritySystem, RegularGridSystem, SingletonSystem};
    pub use crate::mgrid::MGridSystem;
    pub use crate::mpath::MPathSystem;
    pub use crate::rt::RtSystem;
    pub use crate::threshold::ThresholdSystem;
    pub use crate::AnalyzedConstruction;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// Every construction must satisfy Theorem 4.1's lower bound and the basic
    /// sanity relations between its analytic quantities.
    #[test]
    fn all_constructions_respect_load_lower_bounds() {
        let systems: Vec<Box<dyn AnalyzedConstruction>> = vec![
            Box::new(ThresholdSystem::masking(21, 5).unwrap()),
            Box::new(GridSystem::new(10, 3).unwrap()),
            Box::new(MGridSystem::new(9, 4).unwrap()),
            Box::new(RtSystem::new(4, 3, 3).unwrap()),
            Box::new(BoostFppSystem::new(3, 4).unwrap()),
            Box::new(MPathSystem::new(9, 4).unwrap()),
        ];
        for sys in &systems {
            let n = sys.universe_size();
            let b = sys.masking_b();
            let load = sys.analytic_load();
            let bound = bqs_core::bounds::load_lower_bound(n, b, sys.min_quorum_size());
            assert!(
                load + 1e-9 >= bound,
                "{}: load {load} below Theorem 4.1 bound {bound}",
                sys.name()
            );
            assert!(sys.load_optimality_ratio() >= 1.0 - 1e-9, "{}", sys.name());
            assert!(sys.resilience() >= b, "{}", sys.name());
            assert!(
                bqs_core::masking::masking_feasible(n, b),
                "{}: 4b < n must hold",
                sys.name()
            );
        }
    }

    /// The optimal-load constructions (M-Grid, boostFPP, M-Path) stay within a small
    /// constant of the universal bound, while Threshold does not (for small b).
    #[test]
    fn load_optimality_separation() {
        let mgrid = MGridSystem::new(16, 7).unwrap();
        let mpath = MPathSystem::new(16, 7).unwrap();
        let boost = BoostFppSystem::new(4, 3).unwrap();
        let threshold = ThresholdSystem::masking(1024, 7).unwrap();
        for sys in [&mgrid as &dyn AnalyzedConstruction, &mpath, &boost] {
            assert!(
                sys.load_optimality_ratio() < 2.5,
                "{} ratio {}",
                sys.name(),
                sys.load_optimality_ratio()
            );
        }
        assert!(
            threshold.load_optimality_ratio() > 2.5,
            "threshold load should be far from optimal for small b: {}",
            threshold.load_optimality_ratio()
        );
    }
}
