//! The boostFPP construction (Section 6 of the paper).
//!
//! `boostFPP(q, b) = FPP(q) ∘ Thresh(3b+1 of 4b+1)`: a finite projective plane of
//! order `q` composed over the minimal b-masking threshold system. By Theorem 4.7 and
//! Proposition 6.1 the composed system has
//!
//! * `n = (4b+1)(q² + q + 1)` servers,
//! * quorums of size `c = (3b+1)(q+1)`,
//! * intersections of size exactly `2b + 1` (so it is b-masking),
//! * minimal transversals of size `(b+1)(q+1)` — resilience far above `b`,
//! * load `≈ 3/(4q)`, which is **optimal** for b-masking systems of this size
//!   (Proposition 6.2),
//! * crash probability `F_p ≤ (q+1) e^{−b(1−4p)²/2}` for `p < 1/4`
//!   (Proposition 6.3) — and `F_p → 1` when `p > 1/4`.
//!
//! This is the paper's "boosting" technique at work: any regular quorum system can be
//! made Byzantine-tolerant by composing it over a masking threshold; the FPP is the
//! load-optimal choice of outer system.
//!
//! Crash-probability evaluation is **exact** for `q ≤ 4` (which includes the
//! paper's Section 8 instance `boostFPP(3, 19)` at `n = 1001`): Theorem 4.7
//! gives `F_p = F_{r(p)}(FPP)` with `r(p)` the inner threshold's binomial
//! tail, and the FPP factor is evaluated through the plane's line-free
//! survivor profile — see [`BoostFppSystem::crash_probability_exact`].

use rand::RngCore;

use bqs_core::bitset::ServerSet;
use bqs_core::composition::ComposedSystem;
use bqs_core::error::QuorumError;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::QuorumSystem;

use crate::fpp::FppSystem;
use crate::threshold::ThresholdSystem;
use crate::AnalyzedConstruction;

/// The boostFPP(q, b) b-masking quorum system.
#[derive(Debug, Clone)]
pub struct BoostFppSystem {
    q: u64,
    b: usize,
    composed: ComposedSystem<FppSystem, ThresholdSystem>,
}

impl BoostFppSystem {
    /// Builds boostFPP(q, b) for a prime-power plane order `q` and masking level `b`.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] when `q` is not a prime power.
    pub fn new(q: u64, b: usize) -> Result<Self, QuorumError> {
        let fpp = FppSystem::new(q)?;
        let thresh = ThresholdSystem::minimal_masking(b)?;
        Ok(BoostFppSystem {
            q,
            b,
            composed: ComposedSystem::new(fpp, thresh),
        })
    }

    /// The plane order `q`.
    #[must_use]
    pub fn order(&self) -> u64 {
        self.q
    }

    /// The masking parameter `b`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The outer FPP component.
    #[must_use]
    pub fn fpp(&self) -> &FppSystem {
        self.composed.outer()
    }

    /// The inner threshold component `Thresh(3b+1 of 4b+1)`.
    #[must_use]
    pub fn threshold(&self) -> &ThresholdSystem {
        self.composed.inner()
    }

    /// Minimal intersection size, exactly `2b + 1` (Proposition 6.1).
    #[must_use]
    pub fn min_intersection(&self) -> usize {
        2 * self.b + 1
    }

    /// Minimal transversal size `(b+1)(q+1)` (Proposition 6.1).
    #[must_use]
    pub fn min_transversal(&self) -> usize {
        (self.b + 1) * (self.q as usize + 1)
    }

    /// Exact crash probability via Theorem 4.7's composition law:
    /// `F_p(boostFPP) = F_{r(p)}(FPP)` with `r(p)` the exact crash probability
    /// of the inner `Thresh(3b+1 of 4b+1)` (a binomial tail) and the outer FPP
    /// evaluated through its line-free survivor profile. Exact for **any** `b`
    /// whenever the plane is small enough to profile (`q ≤ 5` via the
    /// counting-DP profile — which covers the paper's Section 8 instance
    /// `boostFPP(q=3, b=19)` at `n = 1001` and reaches `boostFPP(q=5, ·)` at
    /// 31 copies); `None` for larger plane orders (`q ≥ 7`, the measured
    /// interface wall of the counting profile).
    #[must_use]
    pub fn crash_probability_exact(&self, p: f64) -> Option<f64> {
        self.composed.crash_probability_closed_form(p)
    }

    /// The Chernoff-based upper bound of Proposition 6.3:
    /// `F_p ≤ (q+1) e^{−b(1−4p)²/2}`.
    ///
    /// Returns `None` if and only if `p ≥ 1/4`: the bound's exponent
    /// `−b(1−4p)²/2` stops decaying there, and in fact `F_p → 1` for
    /// `p > 1/4` (the inner threshold needs fewer than a quarter of each
    /// copy's servers to crash), so no sub-unit upper bound of this shape
    /// exists. Callers wanting a value at every `p` can fall back to
    /// [`BoostFppSystem::crash_probability_exact`] (exact, `q ≤ 4`) or the
    /// trivial bound `1`.
    #[must_use]
    pub fn crash_probability_prop_6_3_bound(&self, p: f64) -> Option<f64> {
        if p >= 0.25 {
            return None;
        }
        let inner = bqs_combinatorics::binomial::thresh_crash_upper_bound(self.b as u64, p);
        Some(((self.q as f64 + 1.0) * inner).min(1.0))
    }

    /// A sharper numeric bound with the same structure as Proposition 6.3's proof:
    /// plug the *exact* inner threshold crash probability `r(p)` into the FPP
    /// union-style estimate `F_p(FPP at r) ≤ 1 − (1 − r)^{q+1}`.
    #[must_use]
    pub fn crash_probability_numeric_bound(&self, p: f64) -> f64 {
        let r = self.threshold().crash_probability(p);
        1.0 - (1.0 - r).powi(self.q as i32 + 1)
    }
}

impl QuorumSystem for BoostFppSystem {
    fn universe_size(&self) -> usize {
        self.composed.universe_size()
    }

    fn name(&self) -> String {
        format!("boostFPP(q={}, b={})", self.q, self.b)
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        self.composed.sample_quorum(rng)
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        self.composed.find_live_quorum(alive)
    }

    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        self.crash_probability_exact(p)
    }

    fn min_quorum_size(&self) -> usize {
        self.composed.min_quorum_size()
    }
}

impl MinWeightQuorumOracle for BoostFppSystem {
    /// Exact pricing by Theorem 4.7 composition: the inner threshold oracle
    /// prices every copy (`3b+1` cheapest servers each), and the outer FPP
    /// oracle picks the cheapest line over those per-copy optima — both
    /// polynomial, so boostFPP prices at `n ≈ 1000` in microseconds.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        self.composed.min_weight_quorum(prices)
    }

    /// The aligned product of the FPP line family and the inner threshold's
    /// cyclic shifts — `(q²+q+1)·(4b+1)` columns equalising loads at the
    /// Theorem 4.7 product.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        self.composed.symmetric_strategy_hint()
    }
}

impl AnalyzedConstruction for BoostFppSystem {
    fn masking_b(&self) -> usize {
        self.b
    }

    fn resilience(&self) -> usize {
        self.min_transversal() - 1
    }

    fn analytic_load(&self) -> f64 {
        // Theorem 4.7: loads multiply; both components are fair.
        self.fpp().analytic_load() * self.threshold().analytic_load()
    }

    fn crash_probability_upper_bound(&self, p: f64) -> Option<f64> {
        if p >= 0.25 {
            None
        } else {
            Some(self.crash_probability_numeric_bound(p))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn proposition_6_1_parameters() {
        let sys = BoostFppSystem::new(3, 2).unwrap();
        // n = (4b+1)(q^2+q+1) = 9 * 13 = 117.
        assert_eq!(sys.universe_size(), 117);
        // c = (3b+1)(q+1) = 7 * 4 = 28.
        assert_eq!(sys.min_quorum_size(), 28);
        assert_eq!(sys.min_intersection(), 5);
        assert_eq!(sys.min_transversal(), 12);
        assert_eq!(sys.masking_b(), 2);
        assert_eq!(AnalyzedConstruction::resilience(&sys), 11);
    }

    #[test]
    fn proposition_6_2_load_is_roughly_three_over_four_q() {
        for (q, b) in [(3u64, 2usize), (4, 3), (5, 5), (7, 4)] {
            let sys = BoostFppSystem::new(q, b).unwrap();
            let load = sys.analytic_load();
            let target = 3.0 / (4.0 * q as f64);
            assert!(
                (load - target).abs() < 0.35 * target,
                "q={q} b={b} load={load} target={target}"
            );
            // Optimality: within a constant of the universal lower bound sqrt(2b/n).
            let lower = bqs_core::bounds::load_lower_bound_universal(sys.universe_size(), b);
            assert!(load >= lower - 1e-9);
            assert!(load <= 1.7 * lower, "q={q} b={b} load={load} lower={lower}");
        }
    }

    #[test]
    fn sampled_quorums_intersect_in_2b_plus_1() {
        let sys = BoostFppSystem::new(2, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..40 {
            let q1 = sys.sample_quorum(&mut rng);
            let q2 = sys.sample_quorum(&mut rng);
            assert_eq!(q1.len(), sys.min_quorum_size());
            assert!(q1.intersection_size(&q2) > 2 * sys.b());
        }
    }

    #[test]
    fn masking_verified_on_small_explicit_instance() {
        // boostFPP(2, 1): FPP(2) over 4-of-5 threshold, n = 35. Too many quorums to
        // enumerate cheaply in full, so verify the masking property structurally on a
        // sample plus the composed-parameter formulas.
        let sys = BoostFppSystem::new(2, 1).unwrap();
        assert_eq!(sys.universe_size(), 35);
        assert_eq!(sys.min_intersection(), 3);
        assert!(sys.min_transversal() > sys.b());
    }

    #[test]
    fn availability_and_live_quorums() {
        let sys = BoostFppSystem::new(2, 1).unwrap();
        let n = sys.universe_size();
        assert!(sys.is_available(&ServerSet::full(n)));
        // Crash one server per copy (5 servers per copy, threshold 4-of-5): every
        // copy still available, so the system is.
        let mut alive = ServerSet::full(n);
        for copy in 0..7 {
            alive.remove(copy * 5);
        }
        let q = sys.find_live_quorum(&alive).unwrap();
        assert!(q.is_subset_of(&alive));
        // Crash two servers in every copy: every copy dies, so no quorum survives.
        let mut dead = ServerSet::full(n);
        for copy in 0..7 {
            dead.remove(copy * 5);
            dead.remove(copy * 5 + 1);
        }
        assert!(!sys.is_available(&dead));
    }

    #[test]
    fn exact_closed_form_matches_enumeration_on_smallest_instance() {
        // boostFPP(q=2, b=0) composes FPP(2) over the trivial 1-of-1 threshold:
        // 7 servers, fully enumerable.
        let sys = BoostFppSystem::new(2, 0).unwrap();
        assert_eq!(sys.universe_size(), 7);
        for &p in &[0.0, 0.05, 0.125, 0.3, 0.5, 0.8, 1.0] {
            let closed = sys.crash_probability_exact(p).unwrap();
            let enumerated = exact_crash_probability(&sys, p).unwrap();
            assert!(
                (closed - enumerated).abs() < 1e-12,
                "p={p}: closed {closed} vs enumerated {enumerated}"
            );
        }
    }

    #[test]
    fn exact_closed_form_consistent_with_monte_carlo() {
        // n = 35 is beyond enumeration; the closed form must sit inside the
        // Monte-Carlo confidence interval of the same system.
        let sys = BoostFppSystem::new(2, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for &p in &[0.1, 0.2, 0.35] {
            let closed = sys.crash_probability_exact(p).unwrap();
            let est = monte_carlo_crash_probability(&sys, p, 3000, &mut rng);
            assert!(
                (closed - est.mean).abs() <= est.ci95_half_width() + 0.02,
                "p={p}: closed {closed} vs mc {} ± {}",
                est.mean,
                est.ci95_half_width()
            );
        }
    }

    #[test]
    fn exact_closed_form_respects_paper_bounds_across_p_grid() {
        // The exact value must sit inside the paper's analytic envelope:
        // below the Proposition 6.3 numeric/Chernoff bounds (p < 1/4) and
        // above the resilience lower bound p^MT (Proposition 4.3).
        for (q, b) in [(2u64, 2usize), (3, 5), (3, 19)] {
            let sys = BoostFppSystem::new(q, b).unwrap();
            for i in 1..20 {
                let p = i as f64 * 0.05;
                let exact = sys.crash_probability_exact(p).unwrap();
                assert!((0.0..=1.0).contains(&exact), "q={q} b={b} p={p}");
                if p < 0.25 {
                    let numeric = sys.crash_probability_numeric_bound(p);
                    let chernoff = sys.crash_probability_prop_6_3_bound(p).unwrap();
                    assert!(
                        exact <= numeric + 1e-12,
                        "q={q} b={b} p={p}: exact {exact} above numeric bound {numeric}"
                    );
                    assert!(exact <= chernoff + 1e-12, "q={q} b={b} p={p}");
                }
                let lower = bqs_core::bounds::crash_probability_lower_bound_resilience(
                    p,
                    sys.min_transversal(),
                );
                assert!(
                    exact >= lower - 1e-12,
                    "q={q} b={b} p={p}: exact {exact} below lower bound {lower}"
                );
            }
        }
    }

    #[test]
    fn exact_closed_form_reaches_plane_order_five() {
        // q = 5's plane has 31 points — past the 2^n enumeration wall — but
        // the counting profile makes the Theorem 4.7 closed form exact:
        // F_p(boostFPP) = F_{r(p)}(FPP(5)) with r(p) the inner threshold's
        // exact crash probability.
        let sys = BoostFppSystem::new(5, 2).unwrap();
        let fpp = FppSystem::new(5).unwrap();
        for &p in &[0.05, 0.125, 0.3] {
            let closed = sys.crash_probability_exact(p).unwrap();
            let r = sys.threshold().crash_probability(p);
            let outer = fpp.crash_probability_exact(r).unwrap();
            assert!(
                (closed - outer).abs() <= 1e-12,
                "p={p}: composed {closed} vs outer-at-r {outer}"
            );
            // Inside the analytic envelope of Proposition 6.3.
            assert!(closed <= sys.crash_probability_numeric_bound(p) + 1e-12);
        }
        // And the evaluation engine reports it as exact closed form.
        let est = Evaluator::new().crash_probability(&sys, 0.125);
        assert_eq!(est.method, FpMethod::ClosedForm);
        assert!(est.is_exact());
    }

    #[test]
    fn exact_closed_form_gated_for_large_plane_orders() {
        // q = 7 is past the counting profile's measured interface wall: no
        // survivor profile, no closed form.
        let sys = BoostFppSystem::new(7, 2).unwrap();
        assert!(sys.crash_probability_exact(0.1).is_none());
    }

    #[test]
    fn section8_exact_value_fixes_the_zero_hit_rows() {
        // The Section 8 instance the benchmark previously reported as `0e0`
        // (no Monte-Carlo trial hit the tail at p = 0.05): the exact value is
        // tiny but positive, and still below the paper's p = 1/8 bound.
        let sys = BoostFppSystem::new(3, 19).unwrap();
        let fp_low = sys.crash_probability_exact(0.05).unwrap();
        assert!(fp_low > 0.0, "fp={fp_low}");
        assert!(fp_low < 1e-6, "fp={fp_low}");
        let fp_paper = sys.crash_probability_exact(0.125).unwrap();
        assert!(fp_paper <= 0.372, "fp={fp_paper}");
    }

    #[test]
    fn certified_load_matches_theorem_4_7_product_at_section8_scale() {
        // boostFPP(3, 19) at n = 1001: the certified LP load must equal the
        // Theorem 4.7 product of the component loads (~1/4), which no
        // explicit enumeration could ever verify at this size.
        let sys = BoostFppSystem::new(3, 19).unwrap();
        let certified = optimal_load_oracle(&sys).unwrap();
        assert!(
            (certified.load - sys.analytic_load()).abs() <= 1e-9,
            "certified {} vs analytic {}",
            certified.load,
            sys.analytic_load()
        );
        assert!(certified.gap <= 1e-9, "gap={}", certified.gap);
    }

    #[test]
    fn pricing_oracle_composes_inner_and_outer() {
        let sys = BoostFppSystem::new(2, 1).unwrap(); // n = 35
        let n = sys.universe_size();
        let prices: Vec<f64> = (0..n).map(|i| ((i * 17 + 7) % 31) as f64 / 31.0).collect();
        let (q, v) = sys.min_weight_quorum(&prices).unwrap();
        // The quorum picks 3 copies (a Fano line) x 4-of-5 servers each.
        assert_eq!(q.len(), sys.min_quorum_size());
        let recomputed: f64 = q.iter().map(|u| prices[u]).sum();
        assert!((recomputed - v).abs() < 1e-12);
        // Reference: brute-force over lines x per-copy cheapest-4 choices.
        let mut best = f64::INFINITY;
        for line in sys.fpp().lines() {
            let mut total = 0.0;
            for copy in line.iter() {
                let mut copy_prices: Vec<f64> = prices[copy * 5..(copy + 1) * 5].to_vec();
                copy_prices.sort_by(f64::total_cmp);
                total += copy_prices[..4].iter().sum::<f64>();
            }
            best = best.min(total);
        }
        assert!((v - best).abs() < 1e-12, "{v} vs {best}");
    }

    #[test]
    fn prop_6_3_bound_none_exactly_at_one_quarter() {
        let sys = BoostFppSystem::new(3, 4).unwrap();
        // The documented None condition is p >= 1/4 — inclusive at the edge.
        assert!(sys.crash_probability_prop_6_3_bound(0.25).is_none());
        assert!(sys.crash_probability_prop_6_3_bound(0.2499).is_some());
        assert!(sys.crash_probability_prop_6_3_bound(1.0).is_none());
        assert!(sys.crash_probability_prop_6_3_bound(0.0).is_some());
    }

    #[test]
    fn proposition_6_3_bound_behaviour() {
        let sys = BoostFppSystem::new(3, 50).unwrap();
        // For p < 1/4 the bound decays geometrically in b.
        let small_b = BoostFppSystem::new(3, 5).unwrap();
        let p = 0.1;
        assert!(
            sys.crash_probability_prop_6_3_bound(p).unwrap()
                < small_b.crash_probability_prop_6_3_bound(p).unwrap()
        );
        // Not applicable at p >= 1/4.
        assert!(sys.crash_probability_prop_6_3_bound(0.3).is_none());
        // The numeric bound is tighter than (or equal to) the Chernoff form.
        let chernoff = sys.crash_probability_prop_6_3_bound(p).unwrap();
        let numeric = sys.crash_probability_numeric_bound(p);
        assert!(
            numeric <= chernoff + 1e-9,
            "numeric={numeric} chernoff={chernoff}"
        );
    }

    #[test]
    fn monte_carlo_crash_probability_respects_bounds() {
        let sys = BoostFppSystem::new(2, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let p = 0.1;
        let est = monte_carlo_crash_probability(&sys, p, 2000, &mut rng);
        let bound = sys.crash_probability_numeric_bound(p);
        assert!(
            est.mean <= bound + est.ci95_half_width() + 0.01,
            "mc={} bound={bound}",
            est.mean
        );
        // Lower bound of Proposition 4.3: p^{MT}.
        let lower =
            bqs_core::bounds::crash_probability_lower_bound_resilience(p, sys.min_transversal());
        assert!(est.mean + est.ci95_half_width() >= lower);
    }

    #[test]
    fn section8_boostfpp_instance() {
        // Section 8: q = 3, b = 19 -> n = 1001, f = 79, load ~ 1/4, Fp <= 0.372 at p=1/8.
        let sys = BoostFppSystem::new(3, 19).unwrap();
        assert_eq!(sys.universe_size(), 1001);
        assert_eq!(AnalyzedConstruction::resilience(&sys), 79);
        let load = sys.analytic_load();
        assert!((load - 0.25).abs() < 0.05, "load={load}");
        let fp = sys.crash_probability_numeric_bound(0.125);
        assert!(fp <= 0.372 + 1e-9, "fp={fp}");
    }

    #[test]
    fn invalid_order_rejected() {
        assert!(BoostFppSystem::new(6, 2).is_err());
        assert!(BoostFppSystem::new(10, 1).is_err());
    }
}
