//! The M-Path construction (Section 7 of the paper).
//!
//! Servers are the vertices of a triangulated `√n × √n` grid (the triangular
//! lattice); a quorum is the union of `√(2b+1)` vertex-disjoint left-right paths and
//! `√(2b+1)` vertex-disjoint top-bottom paths (Figure 3 of the paper shows a 9×9
//! instance with `b = 4`). Any quorum's LR paths cross any other quorum's TB paths in
//! at least `2b+1` vertices, so the system is b-masking (Proposition 7.1); the
//! straight-line access strategy gives load `≤ 2√((2b+1)/n)` — optimal
//! (Proposition 7.2); and, uniquely among the paper's constructions, the crash
//! probability vanishes exponentially for *every* `p < 1/2` by a percolation argument
//! (Proposition 7.3) — `F_p ≤ exp(−Ω(√n − √b))`.
//!
//! Operationally, quorum discovery under failures uses max-flow (Menger) on the
//! node-split grid from the `bqs-graph` crate; the load-optimal sampling strategy
//! uses straight rows and columns only, exactly as in the proof of Proposition 7.2.

use rand::RngCore;

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::quorum::QuorumSystem;
use bqs_graph::disjoint_paths::{find_disjoint_paths, find_straight_disjoint_paths};
use bqs_graph::grid::{Axis, TriangulatedGrid};
use bqs_graph::maxflow::max_vertex_disjoint_paths;

use crate::AnalyzedConstruction;

/// The M-Path(b) quorum system over a triangulated `side × side` grid.
#[derive(Debug, Clone)]
pub struct MPathSystem {
    grid: TriangulatedGrid,
    b: usize,
    /// Paths per direction, `⌈√(2b+1)⌉`.
    paths: usize,
}

impl MPathSystem {
    /// Creates M-Path(b) on a `side × side` triangulated grid.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] unless `⌈√(2b+1)⌉ ≤ side` and the
    /// resilience `side − ⌈√(2b+1)⌉` is at least `b` (Proposition 7.1's condition
    /// `b ≤ √n − √2·n^{1/4}` up to rounding).
    pub fn new(side: usize, b: usize) -> Result<Self, QuorumError> {
        if side == 0 {
            return Err(QuorumError::InvalidParameters(
                "grid side must be positive".into(),
            ));
        }
        let paths = integer_sqrt_ceil(2 * b + 1);
        if paths > side {
            return Err(QuorumError::InvalidParameters(format!(
                "M-Path(b={b}) needs ceil(sqrt(2b+1)) = {paths} <= side = {side}"
            )));
        }
        if side - paths < b {
            return Err(QuorumError::InvalidParameters(format!(
                "M-Path(b={b}) resilience {} is below b (side={side})",
                side - paths
            )));
        }
        Ok(MPathSystem {
            grid: TriangulatedGrid::new(side),
            b,
            paths,
        })
    }

    /// Creates M-Path(b) for a universe of `n` servers (`n` a perfect square).
    ///
    /// # Errors
    ///
    /// Same as [`MPathSystem::new`] plus the perfect-square requirement.
    pub fn for_universe(n: usize, b: usize) -> Result<Self, QuorumError> {
        let side = (n as f64).sqrt().round() as usize;
        if side * side != n || side == 0 {
            return Err(QuorumError::InvalidParameters(format!(
                "universe size {n} is not a perfect square"
            )));
        }
        MPathSystem::new(side, b)
    }

    /// The largest `b` accepted on a `side × side` grid.
    #[must_use]
    pub fn max_b(side: usize) -> usize {
        (0..=side)
            .rev()
            .find(|&b| MPathSystem::new(side, b).is_ok())
            .unwrap_or(0)
    }

    /// The masking parameter `b`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The grid side `√n`.
    #[must_use]
    pub fn side(&self) -> usize {
        self.grid.side()
    }

    /// Disjoint paths required per direction, `⌈√(2b+1)⌉`.
    #[must_use]
    pub fn paths_per_direction(&self) -> usize {
        self.paths
    }

    /// The underlying triangulated grid.
    #[must_use]
    pub fn grid(&self) -> &TriangulatedGrid {
        &self.grid
    }

    /// Minimal transversal size `MT = √n − √(2b+1) + 1` (Proposition 7.1).
    #[must_use]
    pub fn min_transversal(&self) -> usize {
        self.grid.side() - self.paths + 1
    }

    /// Checks whether `candidate` contains an M-Path quorum: at least
    /// `⌈√(2b+1)⌉` vertex-disjoint LR crossings and as many TB crossings.
    #[must_use]
    pub fn contains_quorum(&self, candidate: &ServerSet) -> bool {
        let alive = self.to_mask(candidate);
        max_vertex_disjoint_paths(&self.grid, &alive, Axis::LeftRight) >= self.paths
            && max_vertex_disjoint_paths(&self.grid, &alive, Axis::TopBottom) >= self.paths
    }

    fn to_mask(&self, set: &ServerSet) -> Vec<bool> {
        (0..self.grid.num_vertices())
            .map(|v| set.contains(v))
            .collect()
    }

    /// The percolation-flavoured crash-probability upper bound used in the worked
    /// example of Section 8: combine the counting bound on the crossing probability
    /// (remark after Theorem B.1, valid for `p' < 1/3`) with the ACCFR interior-event
    /// inequality (Theorem B.3) at an intermediate `p < p' < 1/3`, and take the union
    /// bound over the two directions. Returns `None` when `p` is too close to `1/3`
    /// for this elementary estimate to be meaningful (the asymptotic result of
    /// Proposition 7.3 still holds for all `p < 1/2`, but needs the full
    /// Menshikov-type theorem rather than a computable constant).
    #[must_use]
    pub fn crash_probability_counting_bound(&self, p: f64) -> Option<f64> {
        if p >= 1.0 / 3.0 {
            return None;
        }
        let side = self.grid.side();
        let k_minus_1 = self.paths.saturating_sub(1);
        // Optimise the intermediate probability p' over a grid in (p, 1/3): larger p'
        // weakens the crossing bound but strengthens the ACCFR factor. The paper's
        // worked example uses p' = 1/7 for p = 1/8; the grid search recovers a value
        // at least that good.
        let mut best: Option<f64> = None;
        for step in 1..100 {
            let p_prime = p + (1.0 / 3.0 - p) * (step as f64 / 100.0);
            let crossing_at_p_prime =
                bqs_graph::percolation::crossing_probability_lower_bound(side, p_prime);
            if crossing_at_p_prime <= 0.0 {
                continue;
            }
            let interior = bqs_graph::percolation::interior_event_lower_bound(
                crossing_at_p_prime,
                p,
                p_prime,
                k_minus_1,
            );
            let bound = (2.0 * (1.0 - interior)).min(1.0);
            best = Some(best.map_or(bound, |b: f64| b.min(bound)));
        }
        best
    }
}

/// `⌈√x⌉` for small integers.
fn integer_sqrt_ceil(x: usize) -> usize {
    let mut r = (x as f64).sqrt() as usize;
    while r * r < x {
        r += 1;
    }
    while r > 0 && (r - 1) * (r - 1) >= x {
        r -= 1;
    }
    r
}

impl QuorumSystem for MPathSystem {
    fn universe_size(&self) -> usize {
        self.grid.num_vertices()
    }

    fn name(&self) -> String {
        format!("M-Path(n={}, b={})", self.grid.num_vertices(), self.b)
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        // Proposition 7.2's strategy: straight rows and columns chosen uniformly.
        let side = self.grid.side();
        let rows = rand::seq::index::sample(rng, side, self.paths);
        let cols = rand::seq::index::sample(rng, side, self.paths);
        let mut out = ServerSet::new(self.universe_size());
        for r in rows.iter() {
            for v in self.grid.straight_path(Axis::LeftRight, r) {
                out.insert(v);
            }
        }
        for c in cols.iter() {
            for v in self.grid.straight_path(Axis::TopBottom, c) {
                out.insert(v);
            }
        }
        out
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        let mask = self.to_mask(alive);
        // Fast path: enough fully-alive straight lines.
        let straight_lr =
            find_straight_disjoint_paths(&self.grid, &mask, Axis::LeftRight, self.paths);
        let straight_tb =
            find_straight_disjoint_paths(&self.grid, &mask, Axis::TopBottom, self.paths);
        let lr = if straight_lr.len() == self.paths {
            straight_lr
        } else {
            find_disjoint_paths(&self.grid, &mask, Axis::LeftRight, self.paths)
        };
        if lr.len() < self.paths {
            return None;
        }
        let tb = if straight_tb.len() == self.paths {
            straight_tb
        } else {
            find_disjoint_paths(&self.grid, &mask, Axis::TopBottom, self.paths)
        };
        if tb.len() < self.paths {
            return None;
        }
        let mut out = ServerSet::new(self.universe_size());
        for p in lr.iter().chain(tb.iter()) {
            for &v in p {
                out.insert(v);
            }
        }
        Some(out)
    }

    fn min_quorum_size(&self) -> usize {
        // Straight-line quorums: `paths` rows and `paths` columns overlapping in
        // paths² cells; shortest possible quorums use shortest crossings, which on
        // the triangulated grid are exactly the straight lines.
        2 * self.paths * self.grid.side() - self.paths * self.paths
    }
}

impl AnalyzedConstruction for MPathSystem {
    fn masking_b(&self) -> usize {
        self.b
    }

    fn resilience(&self) -> usize {
        self.min_transversal() - 1
    }

    fn analytic_load(&self) -> f64 {
        // Proposition 7.2: L <= 2 sqrt(2b+1) / sqrt(n); the straight-line strategy
        // achieves c(Q)/n with c = 2*paths*side - paths^2.
        self.min_quorum_size() as f64 / self.universe_size() as f64
    }

    fn crash_probability_upper_bound(&self, p: f64) -> Option<f64> {
        self.crash_probability_counting_bound(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::bounds::load_lower_bound_universal;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(MPathSystem::new(9, 4).is_ok());
        assert!(MPathSystem::new(0, 1).is_err());
        assert!(MPathSystem::new(3, 5).is_err());
        // Resilience constraint: side=4, b=3 -> paths=3, side-paths=1 < 3.
        assert!(MPathSystem::new(4, 3).is_err());
        assert!(MPathSystem::for_universe(81, 4).is_ok());
        assert!(MPathSystem::for_universe(80, 4).is_err());
    }

    #[test]
    fn figure_3_instance() {
        // Figure 3: 9x9 grid, b = 4 -> 3 LR + 3 TB paths.
        let m = MPathSystem::new(9, 4).unwrap();
        assert_eq!(m.paths_per_direction(), 3);
        assert_eq!(m.universe_size(), 81);
        assert_eq!(m.min_quorum_size(), 2 * 3 * 9 - 9);
        assert_eq!(m.min_transversal(), 7);
        assert_eq!(AnalyzedConstruction::resilience(&m), 6);
    }

    #[test]
    fn sampled_quorums_are_quorums_and_intersect_enough() {
        let m = MPathSystem::new(7, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let q1 = m.sample_quorum(&mut rng);
            let q2 = m.sample_quorum(&mut rng);
            assert!(m.contains_quorum(&q1));
            assert!(q1.intersection_size(&q2) > 2 * m.b());
        }
    }

    #[test]
    fn load_is_optimal_up_to_factor_two() {
        for (side, b) in [(7usize, 3usize), (9, 4), (16, 7)] {
            let m = MPathSystem::new(side, b).unwrap();
            let n = m.universe_size();
            let load = m.analytic_load();
            let lower = load_lower_bound_universal(n, b);
            assert!(load >= lower - 1e-9, "side={side} b={b}");
            assert!(
                load <= 2.0 * ((2 * b + 1) as f64 / n as f64).sqrt() + 1e-9,
                "Proposition 7.2 upper bound violated: side={side} b={b} load={load}"
            );
        }
    }

    #[test]
    fn availability_with_scattered_failures() {
        let m = MPathSystem::new(6, 2).unwrap();
        let n = m.universe_size();
        assert!(m.is_available(&ServerSet::full(n)));
        // A few scattered crashes: the grid still percolates.
        let mut alive = ServerSet::full(n);
        alive.remove(7);
        alive.remove(14);
        alive.remove(21);
        let q = m.find_live_quorum(&alive).unwrap();
        assert!(q.is_subset_of(&alive));
        assert!(m.contains_quorum(&q));
        // Killing a full column severs all LR crossings.
        let mut dead = ServerSet::full(n);
        for r in 0..6 {
            dead.remove(r * 6 + 3);
        }
        assert!(!m.is_available(&dead));
    }

    #[test]
    fn live_quorum_uses_non_straight_paths_when_needed() {
        // Kill one cell in every row but keep the grid percolating: straight rows are
        // all broken but max-flow still finds disjoint crossings.
        let m = MPathSystem::new(6, 1).unwrap(); // needs 2 LR + 2 TB paths
        let n = m.universe_size();
        let mut alive = ServerSet::full(n);
        for r in 0..6 {
            alive.remove(r * 6 + (r % 2) * 3); // stagger the failures
        }
        let q = m.find_live_quorum(&alive);
        assert!(q.is_some(), "non-straight disjoint crossings should exist");
        let q = q.unwrap();
        assert!(q.is_subset_of(&alive));
        assert!(m.contains_quorum(&q));
    }

    #[test]
    fn counting_bound_behaviour() {
        let m = MPathSystem::new(32, 7).unwrap();
        // Small p: bound should be far below 1 and decreasing in p.
        let b_low = m.crash_probability_counting_bound(0.01).unwrap();
        let b_mid = m.crash_probability_counting_bound(0.1).unwrap();
        assert!(b_low <= b_mid + 1e-12);
        assert!(b_low < 0.05, "b_low={b_low}");
        // Not applicable near or above 1/3.
        assert!(m.crash_probability_counting_bound(0.34).is_none());
    }

    #[test]
    fn section8_mpath_instance() {
        // Section 8: n = 1024, 4 LR + 4 TB paths -> b = 7, f = 29 (MT = 32 - 4 + 1).
        let m = MPathSystem::new(32, 7).unwrap();
        assert_eq!(m.paths_per_direction(), 4);
        assert_eq!(AnalyzedConstruction::resilience(&m), 28);
        // The paper reports Fp <= 0.001 using the estimate after Theorem B.1 with
        // p' = 1/7; the optimised counting bound must do at least as well.
        let fp = m.crash_probability_counting_bound(0.125).unwrap();
        assert!(fp <= 0.001, "fp={fp}");
        let load = m.analytic_load();
        assert!((load - 0.25).abs() < 0.05, "load={load}");
    }

    #[test]
    fn monte_carlo_crash_probability_small_below_half() {
        let m = MPathSystem::new(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let est_low = monte_carlo_crash_probability(&m, 0.05, 200, &mut rng);
        let est_high = monte_carlo_crash_probability(&m, 0.6, 200, &mut rng);
        assert!(
            est_low.mean < 0.3,
            "Fp at p=0.05 should be small: {}",
            est_low.mean
        );
        assert!(
            est_high.mean > 0.7,
            "Fp at p=0.6 should be near 1: {}",
            est_high.mean
        );
    }

    #[test]
    fn max_b_is_consistent() {
        for side in [4usize, 6, 9, 12] {
            let b = MPathSystem::max_b(side);
            assert!(MPathSystem::new(side, b).is_ok(), "side={side} b={b}");
            assert!(MPathSystem::new(side, b + 1).is_err(), "side={side} b={b}");
        }
    }
}
