//! The M-Path construction (Section 7 of the paper).
//!
//! Servers are the vertices of a triangulated `√n × √n` grid (the triangular
//! lattice); a quorum is the union of `√(2b+1)` vertex-disjoint left-right paths and
//! `√(2b+1)` vertex-disjoint top-bottom paths (Figure 3 of the paper shows a 9×9
//! instance with `b = 4`). Any quorum's LR paths cross any other quorum's TB paths in
//! at least `2b+1` vertices, so the system is b-masking (Proposition 7.1); the
//! straight-line access strategy gives load `≤ 2√((2b+1)/n)` — optimal
//! (Proposition 7.2); and, uniquely among the paper's constructions, the crash
//! probability vanishes exponentially for *every* `p < 1/2` by a percolation argument
//! (Proposition 7.3) — `F_p ≤ exp(−Ω(√n − √b))`.
//!
//! Operationally, quorum discovery under failures uses max-flow (Menger) on the
//! node-split grid from the `bqs-graph` crate; the load-optimal sampling strategy
//! uses straight rows and columns only, exactly as in the proof of Proposition 7.2.
//!
//! Crash-probability evaluation is **exact** up to grid side
//! [`EXACT_DP_MAX_SIDE`] via the transfer-matrix DP of
//! [`bqs_graph::crossing_dp`] (dispatched through
//! [`QuorumSystem::crash_probability_closed_form`] and tagged
//! [`FpMethod::Dp`]); sides up to [`PRUNED_DP_MAX_SIDE`] with at most
//! [`PRUNED_DP_MAX_PATHS`] paths per direction get a **certified enclosure**
//! from the ε-pruned sweep (tagged [`FpMethod::DpPruned`], with the rigorous
//! `[lower, upper]` carried on the estimate); larger grids — or wider path
//! counts, whose interface alphabet explodes — fall back to Monte-Carlo,
//! since exact crossing probabilities are exponential in `√n` for every
//! known method.

use rand::RngCore;

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::eval::FpMethod;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::QuorumSystem;
use bqs_graph::crossing_dp::{
    mpath_crash_probability_exact, mpath_crash_probability_pruned,
    mpath_crash_probability_pruned_grid, ProbabilityInterval,
};
use bqs_graph::disjoint_paths::{
    find_disjoint_paths, find_straight_disjoint_paths, min_price_crossing,
};
use bqs_graph::grid::{Axis, TriangulatedGrid};
use bqs_graph::maxflow::max_vertex_disjoint_paths;

use crate::AnalyzedConstruction;

/// Largest grid side for which [`MPathSystem::crash_probability_exact`] runs
/// the transfer-matrix sweep of [`bqs_graph::crossing_dp`] by default. The
/// DP's interface-state count is exponential in the side (like every known
/// exact method for crossing probabilities); up to side 6 (`n = 36`, already
/// beyond the `2^25` enumeration limit) a sweep point costs milliseconds to a
/// few seconds, while side 7 crosses into minutes.
pub const EXACT_DP_MAX_SIDE: usize = 6;

/// Interface-state budget handed to the transfer-matrix sweep; at
/// [`EXACT_DP_MAX_SIDE`] the worst case (`k = 4`, `p ≈ 1/2`) stays well
/// within it.
pub const EXACT_DP_STATE_BUDGET: usize = 4_000_000;

/// Largest grid side dispatched to the **ε-pruned** transfer-matrix sweep
/// ([`MPathSystem::crash_probability_pruned`], tagged
/// [`FpMethod::DpPruned`]). Past [`EXACT_DP_MAX_SIDE`] the exact state set
/// explodes, but the mass distribution over interface states is so skewed
/// that dropping states below [`PRUNED_DP_EPSILON`] certifies `F_p` to
/// widths orders of magnitude under `1e-9` at paper-scale `p` (measured at
/// the dispatch settings: `~1e-12` at side 7 and `~5e-11` at side 8 for a
/// single point at `p = 0.125`; grid sweeps certify tighter still — a state
/// survives if *any* lane keeps it, so a three-point paper `p`-grid at side
/// 8 stays below `5e-12` everywhere). Sides 9–10 remain
/// reachable through [`bqs_graph::crossing_dp`] directly with a
/// caller-chosen ε and budget, but a single sweep there costs tens of
/// minutes on one core, so the evaluator hands them to Monte-Carlo with
/// Wilson bounds instead.
pub const PRUNED_DP_MAX_SIDE: usize = 8;

/// Surviving-state budget handed to the ε-pruned sweep. Sized so that at
/// [`PRUNED_DP_MAX_SIDE`] with [`PRUNED_DP_EPSILON`] forced budget pruning
/// never fires and ε alone controls the certified width (the forced-prune
/// path yields uselessly wide intervals: the mass the budget evicts is not
/// concentrated in few states). The budget still bounds memory, not
/// correctness: overflow is force-pruned into the interval width rather
/// than aborting (see
/// [`bqs_graph::crossing_dp::mpath_crash_probability_pruned`]).
pub const PRUNED_DP_STATE_BUDGET: usize = 1 << 26;

/// Mass floor for the dispatched ε-pruned sweep. The certified width
/// scales linearly in ε (states dropped per step ≈ states alive × ε), so
/// `1e-16` lands the side-8 widths three to six orders of magnitude under
/// the `1e-9` acceptance gate while keeping a side-7 sweep around 25 s and
/// a side-8 sweep around 5 min on one core. The library default
/// ([`bqs_graph::crossing_dp::DEFAULT_PRUNE_EPSILON`] `= 1e-24`) is tighter
/// than needed here and roughly doubles the sweep time.
pub const PRUNED_DP_EPSILON: f64 = 1e-16;

/// Largest path count `k = ⌈√(2b+1)⌉` dispatched to the ε-pruned sweep. The
/// interface alphabet is combinatorial in `k` (states track pairwise
/// connectivity among `k` frontier paths per direction), so the sweep cost
/// jumps by orders of magnitude from `k = 2` to `k = 3`: every dispatch
/// measurement above (widths, sweep times) is at `k = 2`, while a `k = 3`
/// side-8 sweep at the dispatch ε and budget runs for hours on one core.
/// Systems with `b ≥ 2` (hence `k ≥ 3`) therefore decline the pruned entry
/// and fall through to Monte-Carlo with Wilson bounds.
pub const PRUNED_DP_MAX_PATHS: usize = 2;

/// The M-Path(b) quorum system over a triangulated `side × side` grid.
#[derive(Debug, Clone)]
pub struct MPathSystem {
    grid: TriangulatedGrid,
    b: usize,
    /// Paths per direction, `⌈√(2b+1)⌉`.
    paths: usize,
}

impl MPathSystem {
    /// Creates M-Path(b) on a `side × side` triangulated grid.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] unless `⌈√(2b+1)⌉ ≤ side` and the
    /// resilience `side − ⌈√(2b+1)⌉` is at least `b` (Proposition 7.1's condition
    /// `b ≤ √n − √2·n^{1/4}` up to rounding).
    pub fn new(side: usize, b: usize) -> Result<Self, QuorumError> {
        if side == 0 {
            return Err(QuorumError::InvalidParameters(
                "grid side must be positive".into(),
            ));
        }
        let paths = integer_sqrt_ceil(2 * b + 1);
        if paths > side {
            return Err(QuorumError::InvalidParameters(format!(
                "M-Path(b={b}) needs ceil(sqrt(2b+1)) = {paths} <= side = {side}"
            )));
        }
        if side - paths < b {
            return Err(QuorumError::InvalidParameters(format!(
                "M-Path(b={b}) resilience {} is below b (side={side})",
                side - paths
            )));
        }
        Ok(MPathSystem {
            grid: TriangulatedGrid::new(side),
            b,
            paths,
        })
    }

    /// Creates M-Path(b) for a universe of `n` servers (`n` a perfect square).
    ///
    /// # Errors
    ///
    /// Same as [`MPathSystem::new`] plus the perfect-square requirement.
    pub fn for_universe(n: usize, b: usize) -> Result<Self, QuorumError> {
        let side = (n as f64).sqrt().round() as usize;
        if side * side != n || side == 0 {
            return Err(QuorumError::InvalidParameters(format!(
                "universe size {n} is not a perfect square"
            )));
        }
        MPathSystem::new(side, b)
    }

    /// The largest `b` accepted on a `side × side` grid.
    #[must_use]
    pub fn max_b(side: usize) -> usize {
        (0..=side)
            .rev()
            .find(|&b| MPathSystem::new(side, b).is_ok())
            .unwrap_or(0)
    }

    /// The masking parameter `b`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The grid side `√n`.
    #[must_use]
    pub fn side(&self) -> usize {
        self.grid.side()
    }

    /// Disjoint paths required per direction, `⌈√(2b+1)⌉`.
    #[must_use]
    pub fn paths_per_direction(&self) -> usize {
        self.paths
    }

    /// The underlying triangulated grid.
    #[must_use]
    pub fn grid(&self) -> &TriangulatedGrid {
        &self.grid
    }

    /// Minimal transversal size `MT = √n − √(2b+1) + 1` (Proposition 7.1).
    #[must_use]
    pub fn min_transversal(&self) -> usize {
        self.grid.side() - self.paths + 1
    }

    /// Checks whether `candidate` contains an M-Path quorum: at least
    /// `⌈√(2b+1)⌉` vertex-disjoint LR crossings and as many TB crossings.
    #[must_use]
    pub fn contains_quorum(&self, candidate: &ServerSet) -> bool {
        let alive = self.to_mask(candidate);
        max_vertex_disjoint_paths(&self.grid, &alive, Axis::LeftRight) >= self.paths
            && max_vertex_disjoint_paths(&self.grid, &alive, Axis::TopBottom) >= self.paths
    }

    fn to_mask(&self, set: &ServerSet) -> Vec<bool> {
        (0..self.grid.num_vertices())
            .map(|v| set.contains(v))
            .collect()
    }

    /// The straight-line quorum made of the given rows (LR crossings) and
    /// columns (TB crossings) — the quorum shape of Proposition 7.2's
    /// access strategy, shared by the pricing oracle and the warm-start
    /// family.
    fn straight_union(&self, rows: &[usize], cols: &[usize]) -> ServerSet {
        let mut out = ServerSet::new(self.universe_size());
        for &r in rows {
            for v in self.grid.straight_path(Axis::LeftRight, r) {
                out.insert(v);
            }
        }
        for &c in cols {
            for v in self.grid.straight_path(Axis::TopBottom, c) {
                out.insert(v);
            }
        }
        out
    }

    /// Exact crash probability by the boundary-interface transfer-matrix DP of
    /// [`bqs_graph::crossing_dp`]: the probability that the grid does not
    /// simultaneously contain `⌈√(2b+1)⌉` vertex-disjoint alive left-right
    /// crossings and as many top-bottom crossings, computed by a column sweep
    /// over capped shortest-blocking-path matrices (exact to floating-point
    /// rounding; see the module docs for the self-matching duality it rests
    /// on).
    ///
    /// Returns `None` when `side >` [`EXACT_DP_MAX_SIDE`] or the sweep
    /// exceeds its state budget — the DP, like every known exact method for
    /// percolation crossing probabilities, is exponential in `√n`, so large
    /// grids still need Monte-Carlo.
    #[must_use]
    pub fn crash_probability_exact(&self, p: f64) -> Option<f64> {
        if self.grid.side() > EXACT_DP_MAX_SIDE {
            return None;
        }
        mpath_crash_probability_exact(self.grid.side(), self.paths, p, EXACT_DP_STATE_BUDGET)
    }

    /// Certified enclosure of the crash probability by the **ε-pruned**
    /// transfer-matrix sweep, for grids past the exact wall
    /// ([`EXACT_DP_MAX_SIDE`]`< side ≤`[`PRUNED_DP_MAX_SIDE`]): interface
    /// states below the mass floor — or beyond the state budget, lowest
    /// mass first — are dropped and their total mass is banked into the
    /// interval width, so the true `F_p` lies in the returned `[lower,
    /// upper]` by construction. At paper-scale `p` the width is orders of
    /// magnitude below `1e-9` (pinned in tests).
    ///
    /// Returns `None` outside the side range or above
    /// [`PRUNED_DP_MAX_PATHS`] paths per direction — small grids should use
    /// the exact sweep, larger grids and wider path counts Monte-Carlo.
    #[must_use]
    pub fn crash_probability_pruned(&self, p: f64) -> Option<ProbabilityInterval> {
        let side = self.grid.side();
        if !(EXACT_DP_MAX_SIDE + 1..=PRUNED_DP_MAX_SIDE).contains(&side)
            || self.paths > PRUNED_DP_MAX_PATHS
        {
            return None;
        }
        mpath_crash_probability_pruned(
            side,
            self.paths,
            p,
            PRUNED_DP_STATE_BUDGET,
            PRUNED_DP_EPSILON,
        )
    }

    /// The percolation-flavoured crash-probability upper bound used in the worked
    /// example of Section 8: combine the counting bound on the crossing probability
    /// (remark after Theorem B.1, valid for `p' < 1/3`) with the ACCFR interior-event
    /// inequality (Theorem B.3) at an intermediate `p < p' < 1/3`, and take the union
    /// bound over the two directions.
    ///
    /// Returns `None` in exactly two situations:
    ///
    /// 1. **`p ≥ 1/3`** — the counting bound on the crossing probability (the
    ///    remark after Theorem B.1) needs `3p' < 1` at some intermediate
    ///    `p' > p`, so no admissible `p'` exists at all;
    /// 2. **the counting bound is vacuous at every admissible `p'`** — on
    ///    small grids (or `p` close to `1/3`) the estimate
    ///    `1 − √n (3p')^{√n} / (1 − 3p')` can clamp to `0` for the whole
    ///    optimisation grid, e.g. `side = 3` at `p = 0.2`, leaving no finite
    ///    candidate.
    ///
    /// The asymptotic Proposition 7.3 still holds for all `p < 1/2`, but
    /// needs the full Menshikov-type theorem rather than a computable
    /// constant; callers wanting true values where the bound degenerates can
    /// use [`MPathSystem::crash_probability_exact`] on small grids.
    #[must_use]
    pub fn crash_probability_counting_bound(&self, p: f64) -> Option<f64> {
        if p >= 1.0 / 3.0 {
            return None;
        }
        let side = self.grid.side();
        let k_minus_1 = self.paths.saturating_sub(1);
        // Optimise the intermediate probability p' over a grid in (p, 1/3): larger p'
        // weakens the crossing bound but strengthens the ACCFR factor. The paper's
        // worked example uses p' = 1/7 for p = 1/8; the grid search recovers a value
        // at least that good.
        let mut best: Option<f64> = None;
        for step in 1..100 {
            let p_prime = p + (1.0 / 3.0 - p) * (step as f64 / 100.0);
            let crossing_at_p_prime =
                bqs_graph::percolation::crossing_probability_lower_bound(side, p_prime);
            if crossing_at_p_prime <= 0.0 {
                continue;
            }
            let interior = bqs_graph::percolation::interior_event_lower_bound(
                crossing_at_p_prime,
                p,
                p_prime,
                k_minus_1,
            );
            let bound = (2.0 * (1.0 - interior)).min(1.0);
            best = Some(best.map_or(bound, |b: f64| b.min(bound)));
        }
        best
    }
}

/// `⌈√x⌉` for small integers.
fn integer_sqrt_ceil(x: usize) -> usize {
    let mut r = (x as f64).sqrt() as usize;
    while r * r < x {
        r += 1;
    }
    while r > 0 && (r - 1) * (r - 1) >= x {
        r -= 1;
    }
    r
}

impl QuorumSystem for MPathSystem {
    fn universe_size(&self) -> usize {
        self.grid.num_vertices()
    }

    fn name(&self) -> String {
        format!("M-Path(n={}, b={})", self.grid.num_vertices(), self.b)
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        // Proposition 7.2's strategy: straight rows and columns chosen uniformly.
        let side = self.grid.side();
        let rows = rand::seq::index::sample(rng, side, self.paths);
        let cols = rand::seq::index::sample(rng, side, self.paths);
        let mut out = ServerSet::new(self.universe_size());
        for r in rows.iter() {
            for v in self.grid.straight_path(Axis::LeftRight, r) {
                out.insert(v);
            }
        }
        for c in cols.iter() {
            for v in self.grid.straight_path(Axis::TopBottom, c) {
                out.insert(v);
            }
        }
        out
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        let mask = self.to_mask(alive);
        // Fast path: enough fully-alive straight lines.
        let straight_lr =
            find_straight_disjoint_paths(&self.grid, &mask, Axis::LeftRight, self.paths);
        let straight_tb =
            find_straight_disjoint_paths(&self.grid, &mask, Axis::TopBottom, self.paths);
        let lr = if straight_lr.len() == self.paths {
            straight_lr
        } else {
            find_disjoint_paths(&self.grid, &mask, Axis::LeftRight, self.paths)
        };
        if lr.len() < self.paths {
            return None;
        }
        let tb = if straight_tb.len() == self.paths {
            straight_tb
        } else {
            find_disjoint_paths(&self.grid, &mask, Axis::TopBottom, self.paths)
        };
        if tb.len() < self.paths {
            return None;
        }
        let mut out = ServerSet::new(self.universe_size());
        for p in lr.iter().chain(tb.iter()) {
            for &v in p {
                out.insert(v);
            }
        }
        Some(out)
    }

    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        self.crash_probability_exact(p)
    }

    fn crash_probability_closed_form_batch(&self, ps: &[f64]) -> Option<Vec<f64>> {
        if self.grid.side() > EXACT_DP_MAX_SIDE {
            return None;
        }
        // One transfer-matrix sweep for the whole grid: the interface state
        // space depends only on (side, k), so every point shares the
        // enumeration and pays only its own multiply-adds. Bit-identical to
        // per-point evaluation (pinned in bqs-graph's tests).
        bqs_graph::crossing_dp::mpath_crash_probability_exact_grid(
            self.grid.side(),
            self.paths,
            ps,
            EXACT_DP_STATE_BUDGET,
        )
    }

    fn closed_form_method(&self) -> FpMethod {
        // The "closed form" is the transfer-matrix sweep, not an algebraic
        // expression — tag it so dispatch tables and benchmarks can tell.
        FpMethod::Dp
    }

    fn crash_probability_interval(&self, p: f64) -> Option<(f64, f64)> {
        self.crash_probability_pruned(p)
            .map(|iv| (iv.lower, iv.upper))
    }

    fn crash_probability_interval_batch(&self, ps: &[f64]) -> Option<Vec<(f64, f64)>> {
        let side = self.grid.side();
        if !(EXACT_DP_MAX_SIDE + 1..=PRUNED_DP_MAX_SIDE).contains(&side)
            || self.paths > PRUNED_DP_MAX_PATHS
        {
            return None;
        }
        // One pruned sweep for the whole grid; each lane keeps its own
        // discarded-mass total so every interval is certified for its own p.
        // (A state survives if any lane keeps it, so batch intervals can be
        // *tighter* than per-point ones — never less rigorous.)
        mpath_crash_probability_pruned_grid(
            side,
            self.paths,
            ps,
            PRUNED_DP_STATE_BUDGET,
            PRUNED_DP_EPSILON,
        )
        .map(|ivs| ivs.into_iter().map(|iv| (iv.lower, iv.upper)).collect())
    }

    fn min_quorum_size(&self) -> usize {
        // Straight-line quorums: `paths` rows and `paths` columns overlapping in
        // paths² cells; shortest possible quorums use shortest crossings, which on
        // the triangulated grid are exactly the straight lines.
        2 * self.paths * self.grid.side() - self.paths * self.paths
    }
}

impl MinWeightQuorumOracle for MPathSystem {
    /// Exact pricing over the **straight-line quorum family** of
    /// Proposition 7.2 — the `⌈√(2b+1)⌉` rows × `⌈√(2b+1)⌉` columns unions
    /// that the load-optimal access strategy actually uses — via the same
    /// enumeration as the M-Grid oracle.
    ///
    /// Restricting the family loses nothing for load purposes: Theorem 4.1
    /// lower-bounds the *full* system's load by `c(Q)/n`, the straight-line
    /// family's uniform strategy achieves exactly that, and adding the
    /// (longer) bent-path quorums can only leave the optimum unchanged — so
    /// the certified value over this family **is** `L(M-Path)`. Bent paths
    /// are also individually dominated under any price vector down to the
    /// overlap term: `k ·` [`min_price_crossing`] (Dijkstra over the priced
    /// triangular lattice) lower-bounds any quorum's one-directional path
    /// system, which the tests pin against this oracle's answers.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        let side = self.grid.side();
        let (rows, cols, price) = crate::square::min_price_rows_and_columns(
            side,
            prices,
            self.paths,
            self.paths,
            crate::mgrid::ORACLE_SUBSET_BUDGET,
        )?;
        debug_assert!(
            price + 1e-9
                >= self.paths as f64
                    * min_price_crossing(&self.grid, prices, Axis::LeftRight)
                        .max(min_price_crossing(&self.grid, prices, Axis::TopBottom)),
            "straight-line oracle undercut the Dijkstra crossing bound"
        );
        Some((self.straight_union(&rows, &cols), price))
    }

    /// All cyclic row-window × column-window straight-line quorums — the
    /// explicit form of Proposition 7.2's access strategy, balanced so the
    /// uniform mixture achieves `c(Q)/n` exactly.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        Some(crate::square::balanced_line_strategy(
            self.grid.side(),
            self.paths,
            self.paths,
            |rows, cols| self.straight_union(rows, cols),
        ))
    }
}

impl AnalyzedConstruction for MPathSystem {
    fn masking_b(&self) -> usize {
        self.b
    }

    fn resilience(&self) -> usize {
        self.min_transversal() - 1
    }

    fn analytic_load(&self) -> f64 {
        // Proposition 7.2: L <= 2 sqrt(2b+1) / sqrt(n); the straight-line strategy
        // achieves c(Q)/n with c = 2*paths*side - paths^2.
        self.min_quorum_size() as f64 / self.universe_size() as f64
    }

    fn crash_probability_upper_bound(&self, p: f64) -> Option<f64> {
        self.crash_probability_counting_bound(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::bounds::load_lower_bound_universal;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(MPathSystem::new(9, 4).is_ok());
        assert!(MPathSystem::new(0, 1).is_err());
        assert!(MPathSystem::new(3, 5).is_err());
        // Resilience constraint: side=4, b=3 -> paths=3, side-paths=1 < 3.
        assert!(MPathSystem::new(4, 3).is_err());
        assert!(MPathSystem::for_universe(81, 4).is_ok());
        assert!(MPathSystem::for_universe(80, 4).is_err());
    }

    #[test]
    fn figure_3_instance() {
        // Figure 3: 9x9 grid, b = 4 -> 3 LR + 3 TB paths.
        let m = MPathSystem::new(9, 4).unwrap();
        assert_eq!(m.paths_per_direction(), 3);
        assert_eq!(m.universe_size(), 81);
        assert_eq!(m.min_quorum_size(), 2 * 3 * 9 - 9);
        assert_eq!(m.min_transversal(), 7);
        assert_eq!(AnalyzedConstruction::resilience(&m), 6);
    }

    #[test]
    fn sampled_quorums_are_quorums_and_intersect_enough() {
        let m = MPathSystem::new(7, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let q1 = m.sample_quorum(&mut rng);
            let q2 = m.sample_quorum(&mut rng);
            assert!(m.contains_quorum(&q1));
            assert!(q1.intersection_size(&q2) > 2 * m.b());
        }
    }

    #[test]
    fn load_is_optimal_up_to_factor_two() {
        for (side, b) in [(7usize, 3usize), (9, 4), (16, 7)] {
            let m = MPathSystem::new(side, b).unwrap();
            let n = m.universe_size();
            let load = m.analytic_load();
            let lower = load_lower_bound_universal(n, b);
            assert!(load >= lower - 1e-9, "side={side} b={b}");
            assert!(
                load <= 2.0 * ((2 * b + 1) as f64 / n as f64).sqrt() + 1e-9,
                "Proposition 7.2 upper bound violated: side={side} b={b} load={load}"
            );
        }
    }

    #[test]
    fn availability_with_scattered_failures() {
        let m = MPathSystem::new(6, 2).unwrap();
        let n = m.universe_size();
        assert!(m.is_available(&ServerSet::full(n)));
        // A few scattered crashes: the grid still percolates.
        let mut alive = ServerSet::full(n);
        alive.remove(7);
        alive.remove(14);
        alive.remove(21);
        let q = m.find_live_quorum(&alive).unwrap();
        assert!(q.is_subset_of(&alive));
        assert!(m.contains_quorum(&q));
        // Killing a full column severs all LR crossings.
        let mut dead = ServerSet::full(n);
        for r in 0..6 {
            dead.remove(r * 6 + 3);
        }
        assert!(!m.is_available(&dead));
    }

    #[test]
    fn live_quorum_uses_non_straight_paths_when_needed() {
        // Kill one cell in every row but keep the grid percolating: straight rows are
        // all broken but max-flow still finds disjoint crossings.
        let m = MPathSystem::new(6, 1).unwrap(); // needs 2 LR + 2 TB paths
        let n = m.universe_size();
        let mut alive = ServerSet::full(n);
        for r in 0..6 {
            alive.remove(r * 6 + (r % 2) * 3); // stagger the failures
        }
        let q = m.find_live_quorum(&alive);
        assert!(q.is_some(), "non-straight disjoint crossings should exist");
        let q = q.unwrap();
        assert!(q.is_subset_of(&alive));
        assert!(m.contains_quorum(&q));
    }

    #[test]
    fn exact_dp_matches_enumeration_on_small_instances() {
        // Bit-level parity of the transfer-matrix sweep against the engine's
        // full 2^n enumeration (which checks availability by max-flow), for
        // every feasible (side <= 4, b) instance.
        let eval = Evaluator::new();
        // Full p-grid on side 3; side 4 costs 2^16 max-flow availability
        // checks per point, so sample the grid more sparsely there.
        let cases: &[(usize, usize, &[f64])] = &[
            (3, 0, &[0.05, 0.125, 0.3, 0.5, 0.85]),
            (3, 1, &[0.05, 0.125, 0.3, 0.5, 0.85]),
            (4, 0, &[0.125, 0.5]),
            (4, 1, &[0.125, 0.5]),
        ];
        for &(side, b, ps) in cases {
            let m = MPathSystem::new(side, b).unwrap();
            for &p in ps {
                let dp = m.crash_probability_exact(p).unwrap();
                let enumerated = eval.exact(&m, p).unwrap();
                assert!(
                    (dp - enumerated).abs() < 1e-12,
                    "side={side} b={b} p={p}: dp {dp} vs enumerated {enumerated}"
                );
            }
        }
    }

    #[test]
    fn batched_dp_sweep_is_bit_identical_to_per_point() {
        // The p-grid sweep shares one interface-state enumeration across the
        // whole grid; every lane must still equal its solo evaluation to the
        // last bit, both directly and through the Evaluator sweep.
        let m = MPathSystem::new(4, 1).unwrap();
        let ps = [0.05, 0.125, 0.3, 0.5];
        let batch = m.crash_probability_closed_form_batch(&ps).unwrap();
        let eval = Evaluator::new();
        let swept = eval.sweep(&m, &ps);
        for ((&p, &b), est) in ps.iter().zip(&batch).zip(&swept) {
            let single = m.crash_probability_exact(p).unwrap();
            assert_eq!(b.to_bits(), single.to_bits(), "p={p}");
            assert_eq!(est.value.to_bits(), single.to_bits(), "p={p}");
            assert_eq!(est.method, FpMethod::Dp);
        }
        // Beyond the DP gate the batch declines as a whole.
        let big = MPathSystem::new(12, 3).unwrap();
        assert!(big.crash_probability_closed_form_batch(&ps).is_none());
    }

    #[test]
    fn engine_dispatches_mpath_to_dp() {
        let m = MPathSystem::new(4, 1).unwrap();
        let fp = Evaluator::new().crash_probability(&m, 0.125);
        assert_eq!(fp.method, FpMethod::Dp);
        assert!(fp.is_exact());
        assert_eq!(fp.method.label(), "dp");
        // Beyond the DP gate the closed form declines and the engine samples.
        let big = MPathSystem::new(12, 3).unwrap();
        assert!(big.crash_probability_exact(0.125).is_none());
        let fp_big = Evaluator::new()
            .with_trials(50)
            .with_exact_limit(0)
            .crash_probability(&big, 0.125);
        assert_eq!(fp_big.method, FpMethod::MonteCarlo);
    }

    #[test]
    fn pruned_dispatch_boundaries_are_sharp() {
        // Below the exact wall the pruned entry declines (the exact sweep is
        // the right tool); above PRUNED_DP_MAX_SIDE it declines instantly so
        // the evaluator can fall through to Monte-Carlo.
        let small = MPathSystem::new(EXACT_DP_MAX_SIDE, 2).unwrap();
        assert!(small.crash_probability_pruned(0.125).is_none());
        let big = MPathSystem::new(PRUNED_DP_MAX_SIDE + 1, 2).unwrap();
        assert!(big.crash_probability_pruned(0.125).is_none());
        assert!(big.crash_probability_interval(0.125).is_none());
        assert!(big.crash_probability_interval_batch(&[0.125]).is_none());
        let fp = Evaluator::new()
            .with_trials(50)
            .with_exact_limit(0)
            .crash_probability(&big, 0.125);
        assert_eq!(fp.method, FpMethod::MonteCarlo);
        assert!(!fp.is_certified());
        // Inside the side range but past the path gate (b = 3 gives k = 3,
        // whose interface alphabet makes the pruned sweep run for hours) the
        // entry must decline *instantly* so capped-effort evaluators — like
        // the analysis sweeps — land on Monte-Carlo, not a surprise DP.
        let wide = MPathSystem::new(PRUNED_DP_MAX_SIDE, 3).unwrap();
        assert!(wide.paths_per_direction() > PRUNED_DP_MAX_PATHS);
        assert!(wide.crash_probability_pruned(0.125).is_none());
        assert!(wide.crash_probability_interval(0.125).is_none());
        assert!(wide.crash_probability_interval_batch(&[0.125]).is_none());
        let fp_wide = Evaluator::new()
            .with_trials(50)
            .with_exact_limit(0)
            .crash_probability(&wide, 0.125);
        assert_eq!(fp_wide.method, FpMethod::MonteCarlo);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "side-7 pruned sweeps take ≈25 s in release and ~20× that without optimizations"
    )]
    fn engine_dispatches_past_exact_wall_to_pruned_dp() {
        // Side 7 (n = 49) is past both the 2^25 enumeration limit and the
        // exact-DP wall: the evaluator must return the certified ε-pruned
        // enclosure, not a Monte-Carlo estimate.
        let m = MPathSystem::new(7, 1).unwrap();
        let fp = Evaluator::new().crash_probability(&m, 0.125);
        assert_eq!(fp.method, FpMethod::DpPruned);
        assert!(fp.is_certified());
        assert!(!fp.is_exact());
        let (lower, upper) = fp.interval.unwrap();
        assert!(upper - lower <= 1e-9, "width {}", upper - lower);
        assert!(lower >= 0.0 && upper <= 1.0 && upper > 0.0);
        assert_eq!(fp.value.to_bits(), (0.5 * (lower + upper)).to_bits());
        // The sweep path shares one state enumeration across the p-grid and
        // must stay certified lane by lane.
        let ps = [0.05, 0.125];
        let swept = Evaluator::new().sweep(&m, &ps);
        for (est, &p) in swept.iter().zip(&ps) {
            assert_eq!(est.method, FpMethod::DpPruned, "p={p}");
            let (lo, up) = est.interval.unwrap();
            assert!(up - lo <= 1e-9, "p={p} width {}", up - lo);
        }
        // Per-point and batch runs agree far inside the certified widths.
        let (blo, bup) = swept[1].interval.unwrap();
        assert!((0.5 * (blo + bup) - fp.value).abs() <= 1e-9);
    }

    #[test]
    fn exact_dp_respects_paper_bounds_across_p_grid() {
        // The exact value must sit inside the paper's analytic envelope:
        // under the counting upper bound where that bound applies, and above
        // the resilience lower bound p^MT everywhere.
        for (side, b) in [(4usize, 1usize), (5, 1), (5, 2)] {
            let m = MPathSystem::new(side, b).unwrap();
            for i in [1usize, 3, 5, 7, 9, 13] {
                let p = i as f64 * 0.05;
                let exact = m.crash_probability_exact(p).unwrap();
                assert!((0.0..=1.0).contains(&exact), "side={side} b={b} p={p}");
                if let Some(upper) = m.crash_probability_counting_bound(p) {
                    assert!(
                        exact <= upper + 1e-12,
                        "side={side} b={b} p={p}: exact {exact} above bound {upper}"
                    );
                }
                let lower = bqs_core::bounds::crash_probability_lower_bound_resilience(
                    p,
                    m.min_transversal(),
                );
                assert!(
                    exact >= lower - 1e-12,
                    "side={side} b={b} p={p}: exact {exact} below lower bound {lower}"
                );
            }
        }
    }

    #[test]
    fn counting_bound_none_edges_are_documented_ones() {
        let m = MPathSystem::new(32, 7).unwrap();
        // Condition 1: p >= 1/3, inclusive at the edge.
        assert!(m.crash_probability_counting_bound(1.0 / 3.0).is_none());
        assert!(m.crash_probability_counting_bound(0.34).is_none());
        // Condition 2a: p < 1/3 but so close that the Theorem B.1 estimate
        // clamps to zero for every admissible intermediate p' — even on the
        // Section 8 grid (at p = 0.3 every p' in (0.3, 1/3) has
        // 32·(3p')³² / (1 − 3p') > 1).
        assert!(m.crash_probability_counting_bound(0.3).is_none());
        assert!(m.crash_probability_counting_bound(0.2).is_some());
        // Condition 2b: grids too small for the estimate at moderate p.
        let tiny = MPathSystem::new(3, 1).unwrap();
        assert!(tiny.crash_probability_counting_bound(0.2).is_none());
        assert!(tiny.crash_probability_counting_bound(0.01).is_some());
    }

    #[test]
    fn counting_bound_behaviour() {
        let m = MPathSystem::new(32, 7).unwrap();
        // Small p: bound should be far below 1 and decreasing in p.
        let b_low = m.crash_probability_counting_bound(0.01).unwrap();
        let b_mid = m.crash_probability_counting_bound(0.1).unwrap();
        assert!(b_low <= b_mid + 1e-12);
        assert!(b_low < 0.05, "b_low={b_low}");
        // Not applicable near or above 1/3.
        assert!(m.crash_probability_counting_bound(0.34).is_none());
    }

    #[test]
    fn section8_mpath_instance() {
        // Section 8: n = 1024, 4 LR + 4 TB paths -> b = 7, f = 29 (MT = 32 - 4 + 1).
        let m = MPathSystem::new(32, 7).unwrap();
        assert_eq!(m.paths_per_direction(), 4);
        assert_eq!(AnalyzedConstruction::resilience(&m), 28);
        // The paper reports Fp <= 0.001 using the estimate after Theorem B.1 with
        // p' = 1/7; the optimised counting bound must do at least as well.
        let fp = m.crash_probability_counting_bound(0.125).unwrap();
        assert!(fp <= 0.001, "fp={fp}");
        let load = m.analytic_load();
        assert!((load - 0.25).abs() < 0.05, "load={load}");
    }

    #[test]
    fn pricing_oracle_matches_straight_family_scan_and_crossing_bound() {
        // Reference: brute-force over all (rows, cols) straight unions.
        let m = MPathSystem::new(5, 2).unwrap(); // paths = ceil(sqrt(5)) = 3
        let k = m.paths_per_direction();
        let n = m.universe_size();
        for seed in 0..4u64 {
            let prices: Vec<f64> = (0..n)
                .map(|i| ((i as u64 * 43 + seed * 17 + 9) % 37) as f64 / 37.0)
                .collect();
            let (q, v) = m.min_weight_quorum(&prices).unwrap();
            let recomputed: f64 = q.iter().map(|u| prices[u]).sum();
            assert!((recomputed - v).abs() < 1e-12);
            let mut best = f64::INFINITY;
            for rows in bqs_combinatorics::subsets::KSubsets::new(5, k) {
                for cols in bqs_combinatorics::subsets::KSubsets::new(5, k) {
                    let mut total = 0.0;
                    for r in 0..5 {
                        for c in 0..5 {
                            if rows.contains(&r) || cols.contains(&c) {
                                total += prices[r * 5 + c];
                            }
                        }
                    }
                    best = best.min(total);
                }
            }
            assert!((v - best).abs() < 1e-12, "seed={seed}: {v} vs {best}");
            // The Dijkstra bound over the priced lattice never exceeds the
            // straight-line optimum (bent paths only help the bound).
            let dij = min_price_crossing(m.grid(), &prices, Axis::LeftRight)
                .max(min_price_crossing(m.grid(), &prices, Axis::TopBottom));
            assert!(k as f64 * dij <= v + 1e-9, "seed={seed}");
        }
    }

    #[test]
    fn certified_load_matches_proposition_7_2_at_section8_scale() {
        // n = 1024, b = 7 (Section 8): Theorem 4.1 gives L >= c/n and the
        // straight-line strategy achieves it; the certified LP must land on
        // exactly that value.
        let m = MPathSystem::new(32, 7).unwrap();
        let certified = optimal_load_oracle(&m).unwrap();
        assert!(
            (certified.load - m.analytic_load()).abs() <= 1e-9,
            "certified {} vs analytic {}",
            certified.load,
            m.analytic_load()
        );
        assert!(certified.gap <= 1e-9, "gap={}", certified.gap);
        // Every strategy quorum must be a genuine M-Path quorum.
        for q in &certified.quorums {
            assert!(m.contains_quorum(q));
        }
    }

    #[test]
    fn monte_carlo_crash_probability_small_below_half() {
        let m = MPathSystem::new(8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        let est_low = monte_carlo_crash_probability(&m, 0.05, 200, &mut rng);
        let est_high = monte_carlo_crash_probability(&m, 0.6, 200, &mut rng);
        assert!(
            est_low.mean < 0.3,
            "Fp at p=0.05 should be small: {}",
            est_low.mean
        );
        assert!(
            est_high.mean > 0.7,
            "Fp at p=0.6 should be near 1: {}",
            est_high.mean
        );
    }

    #[test]
    fn max_b_is_consistent() {
        for side in [4usize, 6, 9, 12] {
            let b = MPathSystem::max_b(side);
            assert!(MPathSystem::new(side, b).is_ok(), "side={side} b={b}");
            assert!(MPathSystem::new(side, b + 1).is_err(), "side={side} b={b}");
        }
    }
}
