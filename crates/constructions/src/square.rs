//! Shared helpers for constructions that arrange the universe in a `√n × √n` square
//! (the Grid baseline of [MR98a] and the M-Grid of Section 5.1).

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;

/// A square arrangement of `side × side` servers, indexed row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquareGrid {
    side: usize,
}

impl SquareGrid {
    /// Creates a `side × side` arrangement.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `side == 0`.
    pub fn new(side: usize) -> Result<Self, QuorumError> {
        if side == 0 {
            return Err(QuorumError::InvalidParameters(
                "grid side must be positive".into(),
            ));
        }
        Ok(SquareGrid { side })
    }

    /// Creates the arrangement for a universe of `n` servers, requiring `n` to be a
    /// perfect square.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `n` is not a positive perfect
    /// square.
    pub fn for_universe(n: usize) -> Result<Self, QuorumError> {
        let side = (n as f64).sqrt().round() as usize;
        if side == 0 || side * side != n {
            return Err(QuorumError::InvalidParameters(format!(
                "universe size {n} is not a perfect square"
            )));
        }
        SquareGrid::new(side)
    }

    /// The side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// The universe size `side²`.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.side * self.side
    }

    /// Row-major index of `(row, col)`.
    #[must_use]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.side && col < self.side);
        row * self.side + col
    }

    /// The coordinates of a server index.
    #[must_use]
    pub fn coords(&self, v: usize) -> (usize, usize) {
        (v / self.side, v % self.side)
    }

    /// The servers of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> ServerSet {
        ServerSet::from_indices(
            self.universe_size(),
            (0..self.side).map(|c| self.index(r, c)),
        )
    }

    /// The servers of column `c`.
    #[must_use]
    pub fn column(&self, c: usize) -> ServerSet {
        ServerSet::from_indices(
            self.universe_size(),
            (0..self.side).map(|r| self.index(r, c)),
        )
    }

    /// The indices of rows that are entirely contained in `alive`.
    #[must_use]
    pub fn fully_alive_rows(&self, alive: &ServerSet) -> Vec<usize> {
        (0..self.side)
            .filter(|&r| (0..self.side).all(|c| alive.contains(self.index(r, c))))
            .collect()
    }

    /// The indices of columns that are entirely contained in `alive`.
    #[must_use]
    pub fn fully_alive_columns(&self, alive: &ServerSet) -> Vec<usize> {
        (0..self.side)
            .filter(|&c| (0..self.side).all(|r| alive.contains(self.index(r, c))))
            .collect()
    }

    /// Number of rows entirely contained in `alive`, counted without
    /// allocating (the hot-path sibling of [`SquareGrid::fully_alive_rows`]).
    #[must_use]
    pub fn fully_alive_row_count(&self, alive: &ServerSet) -> usize {
        (0..self.side)
            .filter(|&r| (0..self.side).all(|c| alive.contains(self.index(r, c))))
            .count()
    }

    /// Number of columns entirely contained in `alive`, counted without
    /// allocating.
    #[must_use]
    pub fn fully_alive_column_count(&self, alive: &ServerSet) -> usize {
        (0..self.side)
            .filter(|&c| (0..self.side).all(|r| alive.contains(self.index(r, c))))
            .count()
    }

    /// Number of fully-alive rows when the universe is given as a raw `u64`
    /// mask (valid only for `side² <= 64`).
    #[must_use]
    pub fn fully_alive_row_count_u64(&self, alive: u64) -> usize {
        debug_assert!(self.universe_size() <= 64);
        let row = if self.side == 64 {
            u64::MAX
        } else {
            (1u64 << self.side) - 1
        };
        (0..self.side)
            .filter(|&r| (alive >> (r * self.side)) & row == row)
            .count()
    }

    /// Number of fully-alive columns when the universe is given as a raw
    /// `u64` mask (valid only for `side² <= 64`).
    ///
    /// Column `c` is fully alive iff bit `c` survives the AND-fold of every
    /// row's slice of the mask, so the count is `side` shift-ANDs plus one
    /// popcount — this runs once per mask inside `2^n` exact enumeration.
    #[must_use]
    pub fn fully_alive_column_count_u64(&self, alive: u64) -> usize {
        debug_assert!(self.universe_size() <= 64);
        let row = if self.side == 64 {
            u64::MAX
        } else {
            (1u64 << self.side) - 1
        };
        let folded = (0..self.side).fold(row, |acc, r| acc & (alive >> (r * self.side)));
        (folded & row).count_ones() as usize
    }

    /// The union of the given rows and columns as a server set.
    #[must_use]
    pub fn union_of(&self, rows: &[usize], cols: &[usize]) -> ServerSet {
        let mut set = ServerSet::new(self.universe_size());
        for &r in rows {
            for c in 0..self.side {
                set.insert(self.index(r, c));
            }
        }
        for &c in cols {
            for r in 0..self.side {
                set.insert(self.index(r, c));
            }
        }
        set
    }
}

/// Exact probability that, with each server alive independently with
/// probability `1 - p`, a `side × side` grid has at least `min_rows` fully
/// alive rows **and** at least `min_cols` fully alive columns.
///
/// This is the availability event of both grid constructions (Grid needs
/// `2b + 1` rows and one column; M-Grid needs `⌈√(b+1)⌉` of each), so
/// `1 -` this value is their exact `F_p` — no enumeration required.
///
/// Derivation: condition on a set `S` of columns being fully alive. Given
/// `|S| = j`, the rows are independent and each is fully alive with
/// probability `(1-p)^(side-j)` (its cells in `S` are already alive). The
/// generalized inclusion–exclusion identity for "at least `m` of `N`
/// exchangeable events, jointly with any row event" then gives
///
/// ```text
/// P = Σ_{j=m}^{s} (-1)^(j-m) C(j-1, m-1) C(s, j) (1-p)^(js) · P[Bin(s, (1-p)^(s-j)) >= min_rows]
/// ```
///
/// # Panics
///
/// Panics unless `1 <= min_cols <= side` and `min_rows <= side`.
#[must_use]
pub fn rows_and_columns_alive_probability(
    side: usize,
    min_rows: usize,
    min_cols: usize,
    p: f64,
) -> f64 {
    assert!(
        (1..=side).contains(&min_cols) && min_rows <= side,
        "need 1 <= min_cols <= side and min_rows <= side (side={side}, min_rows={min_rows}, min_cols={min_cols})"
    );
    let p = p.clamp(0.0, 1.0);
    let q = 1.0 - p;
    let s = side as u64;
    let mut total = 0.0;
    for j in min_cols..=side {
        let sign = if (j - min_cols).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        let coeff = bqs_combinatorics::binomial::binomial(j as u64 - 1, min_cols as u64 - 1) as f64
            * bqs_combinatorics::binomial::binomial(s, j as u64) as f64;
        let cols_alive = q.powi((j * side) as i32);
        let row_alive = q.powi((side - j) as i32);
        let rows_tail = bqs_combinatorics::binomial::binomial_tail(s, min_rows as u64, row_alive);
        total += sign * coeff * cols_alive * rows_tail;
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let g = SquareGrid::new(4).unwrap();
        assert_eq!(g.universe_size(), 16);
        assert_eq!(g.index(2, 3), 11);
        assert_eq!(g.coords(11), (2, 3));
        assert!(SquareGrid::new(0).is_err());
        assert!(SquareGrid::for_universe(49).is_ok());
        assert!(SquareGrid::for_universe(48).is_err());
        assert!(SquareGrid::for_universe(0).is_err());
    }

    #[test]
    fn rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        assert_eq!(g.row(1).to_vec(), vec![3, 4, 5]);
        assert_eq!(g.column(2).to_vec(), vec![2, 5, 8]);
        assert_eq!(g.row(0).intersection_size(&g.column(0)), 1);
    }

    #[test]
    fn alive_rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        let mut alive = ServerSet::full(9);
        alive.remove(g.index(1, 1));
        assert_eq!(g.fully_alive_rows(&alive), vec![0, 2]);
        assert_eq!(g.fully_alive_columns(&alive), vec![0, 2]);
    }

    #[test]
    fn union_of_rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        let u = g.union_of(&[0], &[1]);
        // Row 0 (3 servers) + column 1 (3 servers) sharing one cell = 5 servers.
        assert_eq!(u.len(), 5);
        assert!(u.contains(g.index(0, 0)));
        assert!(u.contains(g.index(2, 1)));
        assert!(!u.contains(g.index(2, 2)));
    }
}
