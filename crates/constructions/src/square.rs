//! Shared helpers for constructions that arrange the universe in a `√n × √n` square
//! (the Grid baseline of [MR98a] and the M-Grid of Section 5.1).

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;

/// A square arrangement of `side × side` servers, indexed row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquareGrid {
    side: usize,
}

impl SquareGrid {
    /// Creates a `side × side` arrangement.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `side == 0`.
    pub fn new(side: usize) -> Result<Self, QuorumError> {
        if side == 0 {
            return Err(QuorumError::InvalidParameters(
                "grid side must be positive".into(),
            ));
        }
        Ok(SquareGrid { side })
    }

    /// Creates the arrangement for a universe of `n` servers, requiring `n` to be a
    /// perfect square.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `n` is not a positive perfect
    /// square.
    pub fn for_universe(n: usize) -> Result<Self, QuorumError> {
        let side = (n as f64).sqrt().round() as usize;
        if side == 0 || side * side != n {
            return Err(QuorumError::InvalidParameters(format!(
                "universe size {n} is not a perfect square"
            )));
        }
        SquareGrid::new(side)
    }

    /// The side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// The universe size `side²`.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.side * self.side
    }

    /// Row-major index of `(row, col)`.
    #[must_use]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.side && col < self.side);
        row * self.side + col
    }

    /// The coordinates of a server index.
    #[must_use]
    pub fn coords(&self, v: usize) -> (usize, usize) {
        (v / self.side, v % self.side)
    }

    /// The servers of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> ServerSet {
        ServerSet::from_indices(
            self.universe_size(),
            (0..self.side).map(|c| self.index(r, c)),
        )
    }

    /// The servers of column `c`.
    #[must_use]
    pub fn column(&self, c: usize) -> ServerSet {
        ServerSet::from_indices(
            self.universe_size(),
            (0..self.side).map(|r| self.index(r, c)),
        )
    }

    /// The indices of rows that are entirely contained in `alive`.
    #[must_use]
    pub fn fully_alive_rows(&self, alive: &ServerSet) -> Vec<usize> {
        (0..self.side)
            .filter(|&r| (0..self.side).all(|c| alive.contains(self.index(r, c))))
            .collect()
    }

    /// The indices of columns that are entirely contained in `alive`.
    #[must_use]
    pub fn fully_alive_columns(&self, alive: &ServerSet) -> Vec<usize> {
        (0..self.side)
            .filter(|&c| (0..self.side).all(|r| alive.contains(self.index(r, c))))
            .collect()
    }

    /// Number of rows entirely contained in `alive`, counted without
    /// allocating (the hot-path sibling of [`SquareGrid::fully_alive_rows`]).
    #[must_use]
    pub fn fully_alive_row_count(&self, alive: &ServerSet) -> usize {
        (0..self.side)
            .filter(|&r| (0..self.side).all(|c| alive.contains(self.index(r, c))))
            .count()
    }

    /// Number of columns entirely contained in `alive`, counted without
    /// allocating.
    #[must_use]
    pub fn fully_alive_column_count(&self, alive: &ServerSet) -> usize {
        (0..self.side)
            .filter(|&c| (0..self.side).all(|r| alive.contains(self.index(r, c))))
            .count()
    }

    /// Number of fully-alive rows when the universe is given as a raw `u64`
    /// mask (valid only for `side² <= 64`).
    #[must_use]
    #[inline]
    pub fn fully_alive_row_count_u64(&self, alive: u64) -> usize {
        debug_assert!(self.universe_size() <= 64);
        let row = if self.side == 64 {
            u64::MAX
        } else {
            (1u64 << self.side) - 1
        };
        (0..self.side)
            .filter(|&r| (alive >> (r * self.side)) & row == row)
            .count()
    }

    /// Number of fully-alive columns when the universe is given as a raw
    /// `u64` mask (valid only for `side² <= 64`).
    ///
    /// Column `c` is fully alive iff bit `c` survives the AND-fold of every
    /// row's slice of the mask, so the count is `side` shift-ANDs plus one
    /// popcount — this runs once per mask inside `2^n` exact enumeration.
    #[must_use]
    #[inline]
    pub fn fully_alive_column_count_u64(&self, alive: u64) -> usize {
        debug_assert!(self.universe_size() <= 64);
        let row = if self.side == 64 {
            u64::MAX
        } else {
            (1u64 << self.side) - 1
        };
        let folded = (0..self.side).fold(row, |acc, r| acc & (alive >> (r * self.side)));
        (folded & row).count_ones() as usize
    }

    /// Fully-alive row and column counts for four masks at once: one pass
    /// over the rows answers every lane (`counts[i] = (rows, cols)` for
    /// `alive[i]`), with the per-row slice extraction, row test and column
    /// AND-fold running lane-parallel — the `u64x4` shape the autovectorizer
    /// lifts to SIMD inside `2^n` exact enumeration.
    #[must_use]
    #[inline]
    pub fn fully_alive_counts_u64x4(
        &self,
        alive: [u64; bqs_core::quorum::AVAILABILITY_LANES],
    ) -> [(usize, usize); bqs_core::quorum::AVAILABILITY_LANES] {
        debug_assert!(self.universe_size() <= 64);
        const LANES: usize = bqs_core::quorum::AVAILABILITY_LANES;
        let row = if self.side == 64 {
            u64::MAX
        } else {
            (1u64 << self.side) - 1
        };
        let mut rows = [0usize; LANES];
        let mut folds = [row; LANES];
        for r in 0..self.side {
            let shift = r * self.side;
            for i in 0..LANES {
                let slice = (alive[i] >> shift) & row;
                rows[i] += usize::from(slice == row);
                folds[i] &= slice;
            }
        }
        std::array::from_fn(|i| (rows[i], folds[i].count_ones() as usize))
    }

    /// Builds the packed line tables for this side — the table-driven
    /// sibling of [`SquareGrid::fully_alive_counts_u64x4`] for enumeration
    /// sweeps (see [`LineCountTables`]).
    #[must_use]
    pub fn line_count_tables(&self) -> LineCountTables {
        LineCountTables::new(self.side)
    }

    /// The union of the given rows and columns as a server set.
    #[must_use]
    pub fn union_of(&self, rows: &[usize], cols: &[usize]) -> ServerSet {
        let mut set = ServerSet::new(self.universe_size());
        for &r in rows {
            for c in 0..self.side {
                set.insert(self.index(r, c));
            }
        }
        for &c in cols {
            for r in 0..self.side {
                set.insert(self.index(r, c));
            }
        }
        set
    }
}

/// Packed lookup tables answering "how many fully-alive rows / which
/// columns survive the AND-fold" for a `side × side` mask in a handful of
/// table probes instead of a shift-and-compare pass over every row.
///
/// The `side²`-bit mask is cut into chunks of whole rows, each at most 15
/// bits wide, and every chunk gets a `2^bits`-entry table whose packed
/// `u16` entry holds the chunk's fully-alive row count (high byte) and its
/// column AND-fold (low byte, valid for `side ≤ 8` — exactly the `n ≤ 64`
/// range of the word-level availability API). The payoff comes from
/// [`LineCountTables::unavailable_mass_range`], which runs the whole
/// exact-enumeration inner loop against the tables: the low chunk's index
/// walks sequentially so the probes stream through L1, the build cost
/// (≲ 64 KiB of tables) is paid once per range, and on the n = 25 Grid the
/// sweep runs ~4× faster than the per-batch row pass it replaces.
#[derive(Debug, Clone)]
pub struct LineCountTables {
    side: usize,
    chunks: Vec<LineChunk>,
}

#[derive(Debug, Clone)]
struct LineChunk {
    shift: u32,
    index_mask: u64,
    /// `(full_rows << 8) | column_fold` per chunk value.
    table: Vec<u16>,
}

impl LineCountTables {
    /// Builds the tables for a `side × side` grid (`side ≤ 8`).
    ///
    /// # Panics
    ///
    /// Panics if `side == 0` or `side > 8` (the word-level availability API
    /// only covers universes of at most 64 servers).
    #[must_use]
    pub fn new(side: usize) -> Self {
        assert!(side > 0 && side <= 8, "line tables need 1 <= side <= 8");
        let row = (1u16 << side) - 1;
        let rows_per_chunk = (15 / side).clamp(1, side);
        let chunks = (0..side)
            .step_by(rows_per_chunk)
            .map(|first_row| {
                let rows = rows_per_chunk.min(side - first_row);
                let bits = rows * side;
                let table = (0..1usize << bits)
                    .map(|v| {
                        let mut full = 0u16;
                        let mut fold = row;
                        for r in 0..rows {
                            let slice = (v >> (r * side)) as u16 & row;
                            full += u16::from(slice == row);
                            fold &= slice;
                        }
                        (full << 8) | fold
                    })
                    .collect();
                LineChunk {
                    shift: (first_row * side) as u32,
                    index_mask: (1u64 << bits) - 1,
                    table,
                }
            })
            .collect();
        LineCountTables { side, chunks }
    }

    /// The side the tables were built for.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Fully-alive `(rows, columns)` counts for one mask via table probes —
    /// bit-identical to
    /// ([`SquareGrid::fully_alive_row_count_u64`],
    /// [`SquareGrid::fully_alive_column_count_u64`]).
    #[must_use]
    #[inline]
    pub fn counts_u64(&self, alive: u64) -> (usize, usize) {
        let mut rows = 0u16;
        let mut fold = 0xffu16;
        for chunk in &self.chunks {
            let entry = chunk.table[((alive >> chunk.shift) & chunk.index_mask) as usize];
            rows += entry >> 8;
            fold &= entry;
        }
        (rows as usize, (fold & 0xff).count_ones() as usize)
    }

    /// Sums `weights[popcount(m)]` over every mask `m` in `start..end` with
    /// fewer than `min_rows` fully-alive rows or fewer than `min_cols`
    /// fully-alive columns — the entire inner loop of exact `F_p`
    /// enumeration for the line-quorum grids, in the shape
    /// [`bqs_core::quorum::QuorumSystem::unavailable_mass_u64_range`]
    /// requires: a single `f64` accumulation chain in ascending mask order,
    /// bit-identical to testing each mask through the scalar availability
    /// path.
    ///
    /// The common one- and two-chunk layouts (`side ≤ 5`, every universe the
    /// engine actually enumerates) get dedicated loops: the two-chunk loop
    /// probes the high table once per 2^`lo_bits` masks and streams the low
    /// table sequentially, so each mask costs one L1 load, one popcount and
    /// a compare.
    #[must_use]
    pub fn unavailable_mass_range(
        &self,
        min_rows: usize,
        min_cols: usize,
        weights: &[f64],
        start: u64,
        end: u64,
    ) -> f64 {
        let mut acc = 0.0;
        match self.chunks.as_slice() {
            [only] => {
                for m in start..end {
                    let e = only.table[((m >> only.shift) & only.index_mask) as usize];
                    if ((e >> 8) as usize) < min_rows
                        || (((e & 0xff).count_ones()) as usize) < min_cols
                    {
                        acc += weights[m.count_ones() as usize];
                    }
                }
            }
            [lo, hi] => {
                debug_assert_eq!(lo.shift, 0);
                let mut m = start;
                while m < end {
                    let hi_idx = (m >> hi.shift) & hi.index_mask;
                    let hi_entry = hi.table[hi_idx as usize];
                    let hi_rows = hi_entry >> 8;
                    let seg_end = end.min((hi_idx + 1) << hi.shift);
                    while m < seg_end {
                        let lo_entry = lo.table[(m & lo.index_mask) as usize];
                        let fold = hi_entry & lo_entry & 0xff;
                        if (((hi_rows + (lo_entry >> 8)) as usize) < min_rows)
                            || ((fold.count_ones() as usize) < min_cols)
                        {
                            acc += weights[m.count_ones() as usize];
                        }
                        m += 1;
                    }
                }
            }
            _ => {
                for m in start..end {
                    let (rows, cols) = self.counts_u64(m);
                    if rows < min_rows || cols < min_cols {
                        acc += weights[m.count_ones() as usize];
                    }
                }
            }
        }
        acc
    }
}

/// The uniform-weight strategy over [`balanced_line_family`], with each
/// `(rows, cols)` pair materialised by the construction-specific `union`
/// (full grid lines for Grid/M-Grid/RegularGrid, straight triangulated-grid
/// crossings for M-Path) — the shared body of those constructions'
/// `symmetric_strategy_hint` implementations.
#[must_use]
pub fn balanced_line_strategy(
    side: usize,
    num_rows: usize,
    num_cols: usize,
    union: impl Fn(&[usize], &[usize]) -> ServerSet,
) -> (Vec<ServerSet>, Vec<f64>) {
    let family = balanced_line_family(side, num_rows, num_cols);
    let quorums: Vec<ServerSet> = family
        .iter()
        .map(|(rows, cols)| union(rows, cols))
        .collect();
    let weights = vec![1.0; quorums.len()];
    (quorums, weights)
}

/// Exact minimum-price selection of `num_rows` full rows and `num_cols` full
/// columns of a `side × side` grid — the pricing oracle shared by every
/// construction whose quorums are unions of grid lines (Grid, M-Grid, the
/// regular row+column grid, and M-Path's straight-line strategy family).
///
/// The price of a union counts each cell once:
///
/// ```text
/// price(R, C) = Σ_{r∈R} rowsum(r) + Σ_{c∈C} colsum(c) − Σ_{r∈R, c∈C} p[r][c],
/// ```
///
/// which couples the two choices through the overlap term. The minimum is
/// found *exactly* by enumerating every size-`num_cols` (or size-`num_rows`,
/// whichever axis has fewer subsets) line set and selecting the best
/// complementary lines greedily — optimal because, with one axis fixed, the
/// other axis' contributions `rowsum(r) − Σ_{c∈C} p[r][c]` are independent
/// across lines. Ties break towards smaller indices, keeping the oracle
/// deterministic.
///
/// Returns `(rows, columns, price)`, or `None` when the line counts do not
/// fit the grid, or — on degenerate parameterisations whose enumerated axis
/// has more than `max_subsets` subsets — when the branch-and-bound fallback
/// (see below) exhausts its node budget without proving optimality (callers
/// fall back to the explicit LP).
///
/// When the subset space exceeds `max_subsets` the oracle no longer gives up
/// immediately: it switches to a best-first branch-and-bound over the
/// enumerated axis, pruning with the lower bound
///
/// ```text
/// bound(S, next) = Σ_{j∈S} enumsum(j) + minsum(next, t) + pick_floor(S) − maxred(next, t)
/// ```
///
/// where `t` lines are still to choose, `minsum` is the sum of the `t`
/// cheapest remaining enumerated lines, `pick_floor(S)` the cheapest
/// `k_pick` picked lines given the overlap already fixed by `S`, and
/// `maxred` caps how much the remaining choices can still reduce the picked
/// lines (each future line `j` by at most its `k_pick` largest cells). Every
/// pruned subtree provably contains no cheaper union, so an answer is exact;
/// the node budget (`max_subsets` nodes) keeps degenerate instances from
/// running away, declining instead.
#[must_use]
pub fn min_price_rows_and_columns(
    side: usize,
    prices: &[f64],
    num_rows: usize,
    num_cols: usize,
    max_subsets: u128,
) -> Option<(Vec<usize>, Vec<usize>, f64)> {
    assert_eq!(prices.len(), side * side, "one price per grid cell");
    if num_rows == 0 || num_cols == 0 || num_rows > side || num_cols > side {
        return None;
    }
    // Enumerate the axis needing fewer subsets. C(side, k) is unimodal in k
    // (not monotonic), so compare the actual subset counts rather than the
    // line counts: for e.g. side = 40, rows = 36, cols = 6 the *row* axis is
    // the cheap one (C(40, 36) = C(40, 4) « C(40, 6)).
    let subsets = |k: usize| bqs_combinatorics::binomial::binomial(side as u64, k as u64);
    let transpose = subsets(num_rows) < subsets(num_cols);
    let (k_enum, k_pick) = if transpose {
        (num_rows, num_cols)
    } else {
        (num_cols, num_rows)
    };
    // `cell(i, j)`: price of the cell on picked-axis line i, enumerated-axis
    // line j (rows are the picked axis unless transposed).
    let cell = |i: usize, j: usize| -> f64 {
        if transpose {
            prices[j * side + i]
        } else {
            prices[i * side + j]
        }
    };
    let pick_sums: Vec<f64> = (0..side)
        .map(|i| (0..side).map(|j| cell(i, j)).sum())
        .collect();
    let enum_sums: Vec<f64> = (0..side)
        .map(|j| (0..side).map(|i| cell(i, j)).sum())
        .collect();

    if subsets(k_enum) > max_subsets {
        // Degenerate parameterisation: too many subsets to enumerate.
        // Branch-and-bound stays exact and only declines when its node
        // budget runs out.
        let node_budget = usize::try_from(max_subsets).unwrap_or(usize::MAX);
        return branch_and_bound_lines(
            side,
            &cell,
            &pick_sums,
            &enum_sums,
            k_enum,
            k_pick,
            node_budget,
        )
        .map(|(enum_set, picked, price)| {
            let (mut rows, mut cols) = if transpose {
                (enum_set, picked)
            } else {
                (picked, enum_set)
            };
            rows.sort_unstable();
            cols.sort_unstable();
            (rows, cols, price)
        });
    }

    let mut best: Option<(Vec<usize>, Vec<usize>, f64)> = None;
    let mut adjusted: Vec<(f64, usize)> = vec![(0.0, 0); side];
    for enum_set in bqs_combinatorics::subsets::KSubsets::new(side, k_enum) {
        let base: f64 = enum_set.iter().map(|&j| enum_sums[j]).sum();
        for i in 0..side {
            let overlap: f64 = enum_set.iter().map(|&j| cell(i, j)).sum();
            adjusted[i] = (pick_sums[i] - overlap, i);
        }
        adjusted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let price: f64 = base + adjusted[..k_pick].iter().map(|&(v, _)| v).sum::<f64>();
        if best.as_ref().is_none_or(|(_, _, b)| price < *b) {
            let picked: Vec<usize> = adjusted[..k_pick].iter().map(|&(_, i)| i).collect();
            best = Some(if transpose {
                (enum_set.clone(), picked, price)
            } else {
                (picked, enum_set.clone(), price)
            });
        }
    }
    best.map(|(mut rows, mut cols, price)| {
        rows.sort_unstable();
        cols.sort_unstable();
        (rows, cols, price)
    })
}

/// Exact branch-and-bound over the enumerated axis for parameterisations
/// whose subset space is too large to enumerate (see
/// [`min_price_rows_and_columns`] for the bound). Returns
/// `(enumerated lines, picked lines, price)` in original indices, or `None`
/// when the node budget runs out before optimality is proved.
fn branch_and_bound_lines(
    side: usize,
    cell: &impl Fn(usize, usize) -> f64,
    pick_sums: &[f64],
    enum_sums: &[f64],
    k_enum: usize,
    k_pick: usize,
    node_budget: usize,
) -> Option<(Vec<usize>, Vec<usize>, f64)> {
    // Candidate enumerated lines, cheapest total first: the leftmost DFS
    // leaf is then the greedy incumbent, and the `minsum` term of the bound
    // is a contiguous prefix of the remaining candidates.
    let mut cands: Vec<usize> = (0..side).collect();
    cands.sort_by(|&a, &b| enum_sums[a].total_cmp(&enum_sums[b]).then(a.cmp(&b)));
    let cand_sum: Vec<f64> = cands.iter().map(|&j| enum_sums[j]).collect();
    let mut presum = vec![0.0; side + 1];
    for (idx, &s) in cand_sum.iter().enumerate() {
        presum[idx + 1] = presum[idx] + s;
    }
    // Per-candidate picked-axis cells, and the most a candidate can ever
    // subtract from the picked axis: its `k_pick` largest cells.
    let cols_by_cand: Vec<Vec<f64>> = cands
        .iter()
        .map(|&j| (0..side).map(|i| cell(i, j)).collect())
        .collect();
    let colmax: Vec<f64> = cols_by_cand
        .iter()
        .map(|col| {
            let mut sorted = col.clone();
            sorted.sort_by(|a, b| b.total_cmp(a));
            sorted[..k_pick].iter().sum()
        })
        .collect();
    // maxred[next][t]: the sum of the `t` largest `colmax` values among
    // candidates `next..` — how much `t` future choices can still reduce the
    // picked axis, whatever they are.
    let maxred: Vec<Vec<f64>> = (0..=side)
        .map(|next| {
            let mut suffix = colmax[next..].to_vec();
            suffix.sort_by(|a, b| b.total_cmp(a));
            let tmax = k_enum.min(suffix.len());
            let mut row = vec![0.0; tmax + 1];
            for t in 0..tmax {
                row[t + 1] = row[t] + suffix[t];
            }
            row
        })
        .collect();

    struct Bb<'a> {
        side: usize,
        k_enum: usize,
        k_pick: usize,
        cands: &'a [usize],
        cand_sum: &'a [f64],
        presum: &'a [f64],
        cols_by_cand: &'a [Vec<f64>],
        maxred: &'a [Vec<f64>],
        pick_sums: &'a [f64],
        /// Σ cell(i, j) over the chosen enumerated lines, per picked line i.
        overlaps: Vec<f64>,
        /// Chosen candidate *positions*, ascending.
        chosen: Vec<usize>,
        scratch: Vec<(f64, usize)>,
        nodes: usize,
        budget: usize,
        aborted: bool,
        best_price: f64,
        best_enum: Vec<usize>,
        best_pick: Vec<usize>,
    }

    impl Bb<'_> {
        /// Cheapest-possible picked-axis total given the overlap fixed so
        /// far; fills `scratch` sorted so leaves can read the line indices.
        fn pick_floor(&mut self) -> f64 {
            for (i, slot) in self.scratch.iter_mut().enumerate() {
                *slot = (self.pick_sums[i] - self.overlaps[i], i);
            }
            self.scratch
                .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            self.scratch[..self.k_pick].iter().map(|&(v, _)| v).sum()
        }

        fn dfs(&mut self, next: usize, partial: f64) {
            self.nodes += 1;
            if self.nodes > self.budget {
                self.aborted = true;
                return;
            }
            let t = self.k_enum - self.chosen.len();
            let floor = self.pick_floor();
            if t == 0 {
                let price = partial + floor;
                if price < self.best_price {
                    self.best_price = price;
                    self.best_enum = self.chosen.iter().map(|&pos| self.cands[pos]).collect();
                    self.best_pick = self.scratch[..self.k_pick]
                        .iter()
                        .map(|&(_, i)| i)
                        .collect();
                }
                return;
            }
            if next + t > self.side {
                return;
            }
            let bound = partial + (self.presum[next + t] - self.presum[next]) + floor
                - self.maxred[next][t];
            if bound >= self.best_price {
                return;
            }
            for pos in next..=(self.side - t) {
                self.chosen.push(pos);
                for (o, c) in self.overlaps.iter_mut().zip(&self.cols_by_cand[pos]) {
                    *o += c;
                }
                self.dfs(pos + 1, partial + self.cand_sum[pos]);
                for (o, c) in self.overlaps.iter_mut().zip(&self.cols_by_cand[pos]) {
                    *o -= c;
                }
                self.chosen.pop();
                if self.aborted {
                    return;
                }
            }
        }
    }

    let mut bb = Bb {
        side,
        k_enum,
        k_pick,
        cands: &cands,
        cand_sum: &cand_sum,
        presum: &presum,
        cols_by_cand: &cols_by_cand,
        maxred: &maxred,
        pick_sums,
        overlaps: vec![0.0; side],
        chosen: Vec::with_capacity(k_enum),
        scratch: vec![(0.0, 0); side],
        nodes: 0,
        budget: node_budget,
        aborted: false,
        best_price: f64::INFINITY,
        best_enum: Vec::new(),
        best_pick: Vec::new(),
    };
    bb.dfs(0, 0.0);
    if bb.aborted || bb.best_enum.is_empty() {
        return None;
    }
    Some((bb.best_enum, bb.best_pick, bb.best_price))
}

/// The perfectly balanced line family behind the grid constructions'
/// symmetric strategy hint: every pair of a cyclic `num_rows`-window of rows
/// and a cyclic `num_cols`-window of columns, as `(rows, cols)` index lists
/// (`side²` pairs).
///
/// Each cell `(r, c)` lies in exactly `num_rows` row windows and `num_cols`
/// column windows, so across the full family it is covered exactly
/// `num_rows·side + num_cols·side − num_rows·num_cols` times — the uniform
/// mixture over the family therefore loads every server equally at `c(Q)/n`,
/// which is what lets the load engine certify grid-union systems in a single
/// oracle call.
///
/// # Panics
///
/// Panics unless `1 <= num_rows, num_cols <= side`.
#[must_use]
pub fn balanced_line_family(
    side: usize,
    num_rows: usize,
    num_cols: usize,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(
        (1..=side).contains(&num_rows) && (1..=side).contains(&num_cols),
        "window sizes must be in 1..=side"
    );
    let window =
        |start: usize, len: usize| -> Vec<usize> { (0..len).map(|o| (start + o) % side).collect() };
    let mut family = Vec::with_capacity(side * side);
    for i in 0..side {
        for j in 0..side {
            family.push((window(i, num_rows), window(j, num_cols)));
        }
    }
    family
}

/// Exact probability that, with each server alive independently with
/// probability `1 - p`, a `side × side` grid has at least `min_rows` fully
/// alive rows **and** at least `min_cols` fully alive columns.
///
/// This is the availability event of both grid constructions (Grid needs
/// `2b + 1` rows and one column; M-Grid needs `⌈√(b+1)⌉` of each), so
/// `1 -` this value is their exact `F_p` — no enumeration required.
///
/// Derivation: condition on a set `S` of columns being fully alive. Given
/// `|S| = j`, the rows are independent and each is fully alive with
/// probability `(1-p)^(side-j)` (its cells in `S` are already alive). The
/// generalized inclusion–exclusion identity for "at least `m` of `N`
/// exchangeable events, jointly with any row event" then gives
///
/// ```text
/// P = Σ_{j=m}^{s} (-1)^(j-m) C(j-1, m-1) C(s, j) (1-p)^(js) · P[Bin(s, (1-p)^(s-j)) >= min_rows]
/// ```
///
/// # Panics
///
/// Panics unless `1 <= min_cols <= side` and `min_rows <= side`.
#[must_use]
pub fn rows_and_columns_alive_probability(
    side: usize,
    min_rows: usize,
    min_cols: usize,
    p: f64,
) -> f64 {
    assert!(
        (1..=side).contains(&min_cols) && min_rows <= side,
        "need 1 <= min_cols <= side and min_rows <= side (side={side}, min_rows={min_rows}, min_cols={min_cols})"
    );
    let p = p.clamp(0.0, 1.0);
    let q = 1.0 - p;
    let s = side as u64;
    let mut total = 0.0;
    for j in min_cols..=side {
        let sign = if (j - min_cols).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        let coeff = bqs_combinatorics::binomial::binomial(j as u64 - 1, min_cols as u64 - 1) as f64
            * bqs_combinatorics::binomial::binomial(s, j as u64) as f64;
        let cols_alive = q.powi((j * side) as i32);
        let row_alive = q.powi((side - j) as i32);
        let rows_tail = bqs_combinatorics::binomial::binomial_tail(s, min_rows as u64, row_alive);
        total += sign * coeff * cols_alive * rows_tail;
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_count_tables_match_direct_counts() {
        // Sides 3 and 4 exercise the one- and two-chunk layouts exhaustively;
        // side 6 spot-checks the generic (>2 chunk) per-mask path.
        for side in [3usize, 4] {
            let g = SquareGrid::new(side).unwrap();
            let t = g.line_count_tables();
            assert_eq!(t.side(), side);
            for mask in 0u64..1 << (side * side) {
                let direct = (
                    g.fully_alive_row_count_u64(mask),
                    g.fully_alive_column_count_u64(mask),
                );
                assert_eq!(t.counts_u64(mask), direct, "side={side} mask={mask:#x}");
            }
        }
        let g = SquareGrid::new(6).unwrap();
        let t = g.line_count_tables();
        for mask in (0u64..1 << 36).step_by((1 << 36) / 997) {
            let direct = (
                g.fully_alive_row_count_u64(mask),
                g.fully_alive_column_count_u64(mask),
            );
            assert_eq!(t.counts_u64(mask), direct, "side=6 mask={mask:#x}");
        }
    }

    #[test]
    fn unavailable_mass_range_is_bit_identical_to_scalar_chain() {
        // The kernel must reproduce the engine's generic accumulation chain
        // exactly (single f64 chain, ascending masks) — compare with
        // `to_bits`, over full ranges and over split sub-ranges.
        for (side, min_rows, min_cols) in [(3usize, 2usize, 1usize), (4, 3, 1), (4, 2, 2)] {
            let g = SquareGrid::new(side).unwrap();
            let t = g.line_count_tables();
            let n = side * side;
            let p = 0.125f64;
            let q = 1.0 - p;
            let weights: Vec<f64> = (0..=n as i32)
                .map(|k| q.powi(k) * p.powi(n as i32 - k))
                .collect();
            let total = 1u64 << n;
            let mut reference = 0.0f64;
            for m in 0..total {
                let rows = g.fully_alive_row_count_u64(m);
                let cols = g.fully_alive_column_count_u64(m);
                if rows < min_rows || cols < min_cols {
                    reference += weights[m.count_ones() as usize];
                }
            }
            let whole = t.unavailable_mass_range(min_rows, min_cols, &weights, 0, total);
            assert_eq!(
                whole.to_bits(),
                reference.to_bits(),
                "side={side} rows>={min_rows} cols>={min_cols}"
            );
            // Arbitrary (unaligned) sub-ranges must also run the same chain.
            let cut = total / 3 + 1;
            let head = t.unavailable_mass_range(min_rows, min_cols, &weights, 0, cut);
            let tail = t.unavailable_mass_range(min_rows, min_cols, &weights, cut, total);
            assert!((head + tail - reference).abs() < 1e-15);
        }
    }

    #[test]
    fn construction_and_indexing() {
        let g = SquareGrid::new(4).unwrap();
        assert_eq!(g.universe_size(), 16);
        assert_eq!(g.index(2, 3), 11);
        assert_eq!(g.coords(11), (2, 3));
        assert!(SquareGrid::new(0).is_err());
        assert!(SquareGrid::for_universe(49).is_ok());
        assert!(SquareGrid::for_universe(48).is_err());
        assert!(SquareGrid::for_universe(0).is_err());
    }

    #[test]
    fn rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        assert_eq!(g.row(1).to_vec(), vec![3, 4, 5]);
        assert_eq!(g.column(2).to_vec(), vec![2, 5, 8]);
        assert_eq!(g.row(0).intersection_size(&g.column(0)), 1);
    }

    #[test]
    fn alive_rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        let mut alive = ServerSet::full(9);
        alive.remove(g.index(1, 1));
        assert_eq!(g.fully_alive_rows(&alive), vec![0, 2]);
        assert_eq!(g.fully_alive_columns(&alive), vec![0, 2]);
    }

    /// Brute-force reference for the line-pricing oracle.
    fn brute_force_min_price(side: usize, prices: &[f64], num_rows: usize, num_cols: usize) -> f64 {
        let mut best = f64::INFINITY;
        for rows in bqs_combinatorics::subsets::KSubsets::new(side, num_rows) {
            for cols in bqs_combinatorics::subsets::KSubsets::new(side, num_cols) {
                let mut price = 0.0;
                for r in 0..side {
                    for c in 0..side {
                        if rows.contains(&r) || cols.contains(&c) {
                            price += prices[r * side + c];
                        }
                    }
                }
                best = best.min(price);
            }
        }
        best
    }

    #[test]
    fn min_price_lines_matches_brute_force() {
        // Deterministic pseudo-random prices over a 5x5 grid, every feasible
        // (num_rows, num_cols) shape.
        let side = 5;
        let prices: Vec<f64> = (0..side * side)
            .map(|i| ((i * 31 + 17) % 53) as f64 / 53.0)
            .collect();
        for num_rows in 1..=3 {
            for num_cols in 1..=3 {
                let (rows, cols, price) =
                    min_price_rows_and_columns(side, &prices, num_rows, num_cols, 1 << 20).unwrap();
                assert_eq!(rows.len(), num_rows);
                assert_eq!(cols.len(), num_cols);
                // The reported price equals the union price of the returned lines.
                let mut direct = 0.0;
                for r in 0..side {
                    for c in 0..side {
                        if rows.contains(&r) || cols.contains(&c) {
                            direct += prices[r * side + c];
                        }
                    }
                }
                assert!((price - direct).abs() < 1e-12);
                let brute = brute_force_min_price(side, &prices, num_rows, num_cols);
                assert!(
                    (price - brute).abs() < 1e-12,
                    "rows={num_rows} cols={num_cols}: {price} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn min_price_lines_edge_cases() {
        let prices = vec![0.5; 9];
        // Whole grid: 3 rows + 3 cols covers everything once.
        let (_, _, price) = min_price_rows_and_columns(3, &prices, 3, 3, 1 << 10).unwrap();
        assert!((price - 4.5).abs() < 1e-12);
        // Infeasible shapes and exhausted budgets decline.
        assert!(min_price_rows_and_columns(3, &prices, 0, 1, 1 << 10).is_none());
        assert!(min_price_rows_and_columns(3, &prices, 4, 1, 1 << 10).is_none());
        assert!(min_price_rows_and_columns(3, &prices, 2, 2, 1).is_none());
    }

    #[test]
    fn union_of_rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        let u = g.union_of(&[0], &[1]);
        // Row 0 (3 servers) + column 1 (3 servers) sharing one cell = 5 servers.
        assert_eq!(u.len(), 5);
        assert!(u.contains(g.index(0, 0)));
        assert!(u.contains(g.index(2, 1)));
        assert!(!u.contains(g.index(2, 2)));
    }

    #[test]
    fn branch_and_bound_fallback_matches_enumeration_when_forced() {
        // C(10, 3) = 120 > 100 forces the branch-and-bound path; the full
        // enumeration (generous budget) is the reference. Planted cheap
        // lines plus deterministic noise keep the optimum unique so both
        // paths must return the identical line sets.
        let side = 10;
        for seed in 0..4u64 {
            let prices: Vec<f64> = (0..side * side)
                .map(|i| {
                    let r = i / side;
                    let c = i % side;
                    let noise = ((i as u64 * 131 + seed * 17 + 7) % 23) as f64 / 230.0;
                    if [1usize, 4, 6].contains(&r) || [2usize, 3, 8].contains(&c) {
                        noise
                    } else {
                        5.0 + noise
                    }
                })
                .collect();
            let exhaustive = min_price_rows_and_columns(side, &prices, 3, 3, u128::MAX).unwrap();
            let forced = min_price_rows_and_columns(side, &prices, 3, 3, 100).unwrap();
            assert_eq!(forced.0, exhaustive.0, "seed={seed}");
            assert_eq!(forced.1, exhaustive.1, "seed={seed}");
            assert!((forced.2 - exhaustive.2).abs() < 1e-9, "seed={seed}");
            // A hopeless node budget still declines instead of answering
            // wrong.
            assert!(min_price_rows_and_columns(side, &prices, 3, 3, 1).is_none());
        }
    }
}
