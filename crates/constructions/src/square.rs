//! Shared helpers for constructions that arrange the universe in a `√n × √n` square
//! (the Grid baseline of [MR98a] and the M-Grid of Section 5.1).

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;

/// A square arrangement of `side × side` servers, indexed row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquareGrid {
    side: usize,
}

impl SquareGrid {
    /// Creates a `side × side` arrangement.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `side == 0`.
    pub fn new(side: usize) -> Result<Self, QuorumError> {
        if side == 0 {
            return Err(QuorumError::InvalidParameters(
                "grid side must be positive".into(),
            ));
        }
        Ok(SquareGrid { side })
    }

    /// Creates the arrangement for a universe of `n` servers, requiring `n` to be a
    /// perfect square.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `n` is not a positive perfect
    /// square.
    pub fn for_universe(n: usize) -> Result<Self, QuorumError> {
        let side = (n as f64).sqrt().round() as usize;
        if side == 0 || side * side != n {
            return Err(QuorumError::InvalidParameters(format!(
                "universe size {n} is not a perfect square"
            )));
        }
        SquareGrid::new(side)
    }

    /// The side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// The universe size `side²`.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.side * self.side
    }

    /// Row-major index of `(row, col)`.
    #[must_use]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.side && col < self.side);
        row * self.side + col
    }

    /// The coordinates of a server index.
    #[must_use]
    pub fn coords(&self, v: usize) -> (usize, usize) {
        (v / self.side, v % self.side)
    }

    /// The servers of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> ServerSet {
        ServerSet::from_indices(self.universe_size(), (0..self.side).map(|c| self.index(r, c)))
    }

    /// The servers of column `c`.
    #[must_use]
    pub fn column(&self, c: usize) -> ServerSet {
        ServerSet::from_indices(self.universe_size(), (0..self.side).map(|r| self.index(r, c)))
    }

    /// The indices of rows that are entirely contained in `alive`.
    #[must_use]
    pub fn fully_alive_rows(&self, alive: &ServerSet) -> Vec<usize> {
        (0..self.side)
            .filter(|&r| (0..self.side).all(|c| alive.contains(self.index(r, c))))
            .collect()
    }

    /// The indices of columns that are entirely contained in `alive`.
    #[must_use]
    pub fn fully_alive_columns(&self, alive: &ServerSet) -> Vec<usize> {
        (0..self.side)
            .filter(|&c| (0..self.side).all(|r| alive.contains(self.index(r, c))))
            .collect()
    }

    /// The union of the given rows and columns as a server set.
    #[must_use]
    pub fn union_of(&self, rows: &[usize], cols: &[usize]) -> ServerSet {
        let mut set = ServerSet::new(self.universe_size());
        for &r in rows {
            for c in 0..self.side {
                set.insert(self.index(r, c));
            }
        }
        for &c in cols {
            for r in 0..self.side {
                set.insert(self.index(r, c));
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let g = SquareGrid::new(4).unwrap();
        assert_eq!(g.universe_size(), 16);
        assert_eq!(g.index(2, 3), 11);
        assert_eq!(g.coords(11), (2, 3));
        assert!(SquareGrid::new(0).is_err());
        assert!(SquareGrid::for_universe(49).is_ok());
        assert!(SquareGrid::for_universe(48).is_err());
        assert!(SquareGrid::for_universe(0).is_err());
    }

    #[test]
    fn rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        assert_eq!(g.row(1).to_vec(), vec![3, 4, 5]);
        assert_eq!(g.column(2).to_vec(), vec![2, 5, 8]);
        assert_eq!(g.row(0).intersection_size(&g.column(0)), 1);
    }

    #[test]
    fn alive_rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        let mut alive = ServerSet::full(9);
        alive.remove(g.index(1, 1));
        assert_eq!(g.fully_alive_rows(&alive), vec![0, 2]);
        assert_eq!(g.fully_alive_columns(&alive), vec![0, 2]);
    }

    #[test]
    fn union_of_rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        let u = g.union_of(&[0], &[1]);
        // Row 0 (3 servers) + column 1 (3 servers) sharing one cell = 5 servers.
        assert_eq!(u.len(), 5);
        assert!(u.contains(g.index(0, 0)));
        assert!(u.contains(g.index(2, 1)));
        assert!(!u.contains(g.index(2, 2)));
    }
}
