//! Shared helpers for constructions that arrange the universe in a `√n × √n` square
//! (the Grid baseline of [MR98a] and the M-Grid of Section 5.1).

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;

/// A square arrangement of `side × side` servers, indexed row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquareGrid {
    side: usize,
}

impl SquareGrid {
    /// Creates a `side × side` arrangement.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `side == 0`.
    pub fn new(side: usize) -> Result<Self, QuorumError> {
        if side == 0 {
            return Err(QuorumError::InvalidParameters(
                "grid side must be positive".into(),
            ));
        }
        Ok(SquareGrid { side })
    }

    /// Creates the arrangement for a universe of `n` servers, requiring `n` to be a
    /// perfect square.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if `n` is not a positive perfect
    /// square.
    pub fn for_universe(n: usize) -> Result<Self, QuorumError> {
        let side = (n as f64).sqrt().round() as usize;
        if side == 0 || side * side != n {
            return Err(QuorumError::InvalidParameters(format!(
                "universe size {n} is not a perfect square"
            )));
        }
        SquareGrid::new(side)
    }

    /// The side length.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// The universe size `side²`.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.side * self.side
    }

    /// Row-major index of `(row, col)`.
    #[must_use]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.side && col < self.side);
        row * self.side + col
    }

    /// The coordinates of a server index.
    #[must_use]
    pub fn coords(&self, v: usize) -> (usize, usize) {
        (v / self.side, v % self.side)
    }

    /// The servers of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> ServerSet {
        ServerSet::from_indices(
            self.universe_size(),
            (0..self.side).map(|c| self.index(r, c)),
        )
    }

    /// The servers of column `c`.
    #[must_use]
    pub fn column(&self, c: usize) -> ServerSet {
        ServerSet::from_indices(
            self.universe_size(),
            (0..self.side).map(|r| self.index(r, c)),
        )
    }

    /// The indices of rows that are entirely contained in `alive`.
    #[must_use]
    pub fn fully_alive_rows(&self, alive: &ServerSet) -> Vec<usize> {
        (0..self.side)
            .filter(|&r| (0..self.side).all(|c| alive.contains(self.index(r, c))))
            .collect()
    }

    /// The indices of columns that are entirely contained in `alive`.
    #[must_use]
    pub fn fully_alive_columns(&self, alive: &ServerSet) -> Vec<usize> {
        (0..self.side)
            .filter(|&c| (0..self.side).all(|r| alive.contains(self.index(r, c))))
            .collect()
    }

    /// Number of rows entirely contained in `alive`, counted without
    /// allocating (the hot-path sibling of [`SquareGrid::fully_alive_rows`]).
    #[must_use]
    pub fn fully_alive_row_count(&self, alive: &ServerSet) -> usize {
        (0..self.side)
            .filter(|&r| (0..self.side).all(|c| alive.contains(self.index(r, c))))
            .count()
    }

    /// Number of columns entirely contained in `alive`, counted without
    /// allocating.
    #[must_use]
    pub fn fully_alive_column_count(&self, alive: &ServerSet) -> usize {
        (0..self.side)
            .filter(|&c| (0..self.side).all(|r| alive.contains(self.index(r, c))))
            .count()
    }

    /// Number of fully-alive rows when the universe is given as a raw `u64`
    /// mask (valid only for `side² <= 64`).
    #[must_use]
    pub fn fully_alive_row_count_u64(&self, alive: u64) -> usize {
        debug_assert!(self.universe_size() <= 64);
        let row = if self.side == 64 {
            u64::MAX
        } else {
            (1u64 << self.side) - 1
        };
        (0..self.side)
            .filter(|&r| (alive >> (r * self.side)) & row == row)
            .count()
    }

    /// Number of fully-alive columns when the universe is given as a raw
    /// `u64` mask (valid only for `side² <= 64`).
    ///
    /// Column `c` is fully alive iff bit `c` survives the AND-fold of every
    /// row's slice of the mask, so the count is `side` shift-ANDs plus one
    /// popcount — this runs once per mask inside `2^n` exact enumeration.
    #[must_use]
    pub fn fully_alive_column_count_u64(&self, alive: u64) -> usize {
        debug_assert!(self.universe_size() <= 64);
        let row = if self.side == 64 {
            u64::MAX
        } else {
            (1u64 << self.side) - 1
        };
        let folded = (0..self.side).fold(row, |acc, r| acc & (alive >> (r * self.side)));
        (folded & row).count_ones() as usize
    }

    /// The union of the given rows and columns as a server set.
    #[must_use]
    pub fn union_of(&self, rows: &[usize], cols: &[usize]) -> ServerSet {
        let mut set = ServerSet::new(self.universe_size());
        for &r in rows {
            for c in 0..self.side {
                set.insert(self.index(r, c));
            }
        }
        for &c in cols {
            for r in 0..self.side {
                set.insert(self.index(r, c));
            }
        }
        set
    }
}

/// The uniform-weight strategy over [`balanced_line_family`], with each
/// `(rows, cols)` pair materialised by the construction-specific `union`
/// (full grid lines for Grid/M-Grid/RegularGrid, straight triangulated-grid
/// crossings for M-Path) — the shared body of those constructions'
/// `symmetric_strategy_hint` implementations.
#[must_use]
pub fn balanced_line_strategy(
    side: usize,
    num_rows: usize,
    num_cols: usize,
    union: impl Fn(&[usize], &[usize]) -> ServerSet,
) -> (Vec<ServerSet>, Vec<f64>) {
    let family = balanced_line_family(side, num_rows, num_cols);
    let quorums: Vec<ServerSet> = family
        .iter()
        .map(|(rows, cols)| union(rows, cols))
        .collect();
    let weights = vec![1.0; quorums.len()];
    (quorums, weights)
}

/// Exact minimum-price selection of `num_rows` full rows and `num_cols` full
/// columns of a `side × side` grid — the pricing oracle shared by every
/// construction whose quorums are unions of grid lines (Grid, M-Grid, the
/// regular row+column grid, and M-Path's straight-line strategy family).
///
/// The price of a union counts each cell once:
///
/// ```text
/// price(R, C) = Σ_{r∈R} rowsum(r) + Σ_{c∈C} colsum(c) − Σ_{r∈R, c∈C} p[r][c],
/// ```
///
/// which couples the two choices through the overlap term. The minimum is
/// found *exactly* by enumerating every size-`num_cols` (or size-`num_rows`,
/// whichever axis has fewer subsets) line set and selecting the best
/// complementary lines greedily — optimal because, with one axis fixed, the
/// other axis' contributions `rowsum(r) − Σ_{c∈C} p[r][c]` are independent
/// across lines. Ties break towards smaller indices, keeping the oracle
/// deterministic.
///
/// Returns `(rows, columns, price)`, or `None` when the enumerated axis has
/// more than `max_subsets` subsets (callers fall back to the explicit LP) or
/// the requested line counts do not fit the grid.
#[must_use]
pub fn min_price_rows_and_columns(
    side: usize,
    prices: &[f64],
    num_rows: usize,
    num_cols: usize,
    max_subsets: u128,
) -> Option<(Vec<usize>, Vec<usize>, f64)> {
    assert_eq!(prices.len(), side * side, "one price per grid cell");
    if num_rows == 0 || num_cols == 0 || num_rows > side || num_cols > side {
        return None;
    }
    // Enumerate the axis needing fewer subsets. C(side, k) is unimodal in k
    // (not monotonic), so compare the actual subset counts rather than the
    // line counts: for e.g. side = 40, rows = 36, cols = 6 the *row* axis is
    // the cheap one (C(40, 36) = C(40, 4) « C(40, 6)).
    let subsets = |k: usize| bqs_combinatorics::binomial::binomial(side as u64, k as u64);
    let transpose = subsets(num_rows) < subsets(num_cols);
    let (k_enum, k_pick) = if transpose {
        (num_rows, num_cols)
    } else {
        (num_cols, num_rows)
    };
    if subsets(k_enum) > max_subsets {
        return None;
    }
    // `cell(i, j)`: price of the cell on picked-axis line i, enumerated-axis
    // line j (rows are the picked axis unless transposed).
    let cell = |i: usize, j: usize| -> f64 {
        if transpose {
            prices[j * side + i]
        } else {
            prices[i * side + j]
        }
    };
    let pick_sums: Vec<f64> = (0..side)
        .map(|i| (0..side).map(|j| cell(i, j)).sum())
        .collect();
    let enum_sums: Vec<f64> = (0..side)
        .map(|j| (0..side).map(|i| cell(i, j)).sum())
        .collect();

    let mut best: Option<(Vec<usize>, Vec<usize>, f64)> = None;
    let mut adjusted: Vec<(f64, usize)> = vec![(0.0, 0); side];
    for enum_set in bqs_combinatorics::subsets::KSubsets::new(side, k_enum) {
        let base: f64 = enum_set.iter().map(|&j| enum_sums[j]).sum();
        for i in 0..side {
            let overlap: f64 = enum_set.iter().map(|&j| cell(i, j)).sum();
            adjusted[i] = (pick_sums[i] - overlap, i);
        }
        adjusted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let price: f64 = base + adjusted[..k_pick].iter().map(|&(v, _)| v).sum::<f64>();
        if best.as_ref().is_none_or(|(_, _, b)| price < *b) {
            let picked: Vec<usize> = adjusted[..k_pick].iter().map(|&(_, i)| i).collect();
            best = Some(if transpose {
                (enum_set.clone(), picked, price)
            } else {
                (picked, enum_set.clone(), price)
            });
        }
    }
    best.map(|(mut rows, mut cols, price)| {
        rows.sort_unstable();
        cols.sort_unstable();
        (rows, cols, price)
    })
}

/// The perfectly balanced line family behind the grid constructions'
/// symmetric strategy hint: every pair of a cyclic `num_rows`-window of rows
/// and a cyclic `num_cols`-window of columns, as `(rows, cols)` index lists
/// (`side²` pairs).
///
/// Each cell `(r, c)` lies in exactly `num_rows` row windows and `num_cols`
/// column windows, so across the full family it is covered exactly
/// `num_rows·side + num_cols·side − num_rows·num_cols` times — the uniform
/// mixture over the family therefore loads every server equally at `c(Q)/n`,
/// which is what lets the load engine certify grid-union systems in a single
/// oracle call.
///
/// # Panics
///
/// Panics unless `1 <= num_rows, num_cols <= side`.
#[must_use]
pub fn balanced_line_family(
    side: usize,
    num_rows: usize,
    num_cols: usize,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(
        (1..=side).contains(&num_rows) && (1..=side).contains(&num_cols),
        "window sizes must be in 1..=side"
    );
    let window =
        |start: usize, len: usize| -> Vec<usize> { (0..len).map(|o| (start + o) % side).collect() };
    let mut family = Vec::with_capacity(side * side);
    for i in 0..side {
        for j in 0..side {
            family.push((window(i, num_rows), window(j, num_cols)));
        }
    }
    family
}

/// Exact probability that, with each server alive independently with
/// probability `1 - p`, a `side × side` grid has at least `min_rows` fully
/// alive rows **and** at least `min_cols` fully alive columns.
///
/// This is the availability event of both grid constructions (Grid needs
/// `2b + 1` rows and one column; M-Grid needs `⌈√(b+1)⌉` of each), so
/// `1 -` this value is their exact `F_p` — no enumeration required.
///
/// Derivation: condition on a set `S` of columns being fully alive. Given
/// `|S| = j`, the rows are independent and each is fully alive with
/// probability `(1-p)^(side-j)` (its cells in `S` are already alive). The
/// generalized inclusion–exclusion identity for "at least `m` of `N`
/// exchangeable events, jointly with any row event" then gives
///
/// ```text
/// P = Σ_{j=m}^{s} (-1)^(j-m) C(j-1, m-1) C(s, j) (1-p)^(js) · P[Bin(s, (1-p)^(s-j)) >= min_rows]
/// ```
///
/// # Panics
///
/// Panics unless `1 <= min_cols <= side` and `min_rows <= side`.
#[must_use]
pub fn rows_and_columns_alive_probability(
    side: usize,
    min_rows: usize,
    min_cols: usize,
    p: f64,
) -> f64 {
    assert!(
        (1..=side).contains(&min_cols) && min_rows <= side,
        "need 1 <= min_cols <= side and min_rows <= side (side={side}, min_rows={min_rows}, min_cols={min_cols})"
    );
    let p = p.clamp(0.0, 1.0);
    let q = 1.0 - p;
    let s = side as u64;
    let mut total = 0.0;
    for j in min_cols..=side {
        let sign = if (j - min_cols).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        let coeff = bqs_combinatorics::binomial::binomial(j as u64 - 1, min_cols as u64 - 1) as f64
            * bqs_combinatorics::binomial::binomial(s, j as u64) as f64;
        let cols_alive = q.powi((j * side) as i32);
        let row_alive = q.powi((side - j) as i32);
        let rows_tail = bqs_combinatorics::binomial::binomial_tail(s, min_rows as u64, row_alive);
        total += sign * coeff * cols_alive * rows_tail;
    }
    total.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let g = SquareGrid::new(4).unwrap();
        assert_eq!(g.universe_size(), 16);
        assert_eq!(g.index(2, 3), 11);
        assert_eq!(g.coords(11), (2, 3));
        assert!(SquareGrid::new(0).is_err());
        assert!(SquareGrid::for_universe(49).is_ok());
        assert!(SquareGrid::for_universe(48).is_err());
        assert!(SquareGrid::for_universe(0).is_err());
    }

    #[test]
    fn rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        assert_eq!(g.row(1).to_vec(), vec![3, 4, 5]);
        assert_eq!(g.column(2).to_vec(), vec![2, 5, 8]);
        assert_eq!(g.row(0).intersection_size(&g.column(0)), 1);
    }

    #[test]
    fn alive_rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        let mut alive = ServerSet::full(9);
        alive.remove(g.index(1, 1));
        assert_eq!(g.fully_alive_rows(&alive), vec![0, 2]);
        assert_eq!(g.fully_alive_columns(&alive), vec![0, 2]);
    }

    /// Brute-force reference for the line-pricing oracle.
    fn brute_force_min_price(side: usize, prices: &[f64], num_rows: usize, num_cols: usize) -> f64 {
        let mut best = f64::INFINITY;
        for rows in bqs_combinatorics::subsets::KSubsets::new(side, num_rows) {
            for cols in bqs_combinatorics::subsets::KSubsets::new(side, num_cols) {
                let mut price = 0.0;
                for r in 0..side {
                    for c in 0..side {
                        if rows.contains(&r) || cols.contains(&c) {
                            price += prices[r * side + c];
                        }
                    }
                }
                best = best.min(price);
            }
        }
        best
    }

    #[test]
    fn min_price_lines_matches_brute_force() {
        // Deterministic pseudo-random prices over a 5x5 grid, every feasible
        // (num_rows, num_cols) shape.
        let side = 5;
        let prices: Vec<f64> = (0..side * side)
            .map(|i| ((i * 31 + 17) % 53) as f64 / 53.0)
            .collect();
        for num_rows in 1..=3 {
            for num_cols in 1..=3 {
                let (rows, cols, price) =
                    min_price_rows_and_columns(side, &prices, num_rows, num_cols, 1 << 20).unwrap();
                assert_eq!(rows.len(), num_rows);
                assert_eq!(cols.len(), num_cols);
                // The reported price equals the union price of the returned lines.
                let mut direct = 0.0;
                for r in 0..side {
                    for c in 0..side {
                        if rows.contains(&r) || cols.contains(&c) {
                            direct += prices[r * side + c];
                        }
                    }
                }
                assert!((price - direct).abs() < 1e-12);
                let brute = brute_force_min_price(side, &prices, num_rows, num_cols);
                assert!(
                    (price - brute).abs() < 1e-12,
                    "rows={num_rows} cols={num_cols}: {price} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn min_price_lines_edge_cases() {
        let prices = vec![0.5; 9];
        // Whole grid: 3 rows + 3 cols covers everything once.
        let (_, _, price) = min_price_rows_and_columns(3, &prices, 3, 3, 1 << 10).unwrap();
        assert!((price - 4.5).abs() < 1e-12);
        // Infeasible shapes and exhausted budgets decline.
        assert!(min_price_rows_and_columns(3, &prices, 0, 1, 1 << 10).is_none());
        assert!(min_price_rows_and_columns(3, &prices, 4, 1, 1 << 10).is_none());
        assert!(min_price_rows_and_columns(3, &prices, 2, 2, 1).is_none());
    }

    #[test]
    fn union_of_rows_and_columns() {
        let g = SquareGrid::new(3).unwrap();
        let u = g.union_of(&[0], &[1]);
        // Row 0 (3 servers) + column 1 (3 servers) sharing one cell = 5 servers.
        assert_eq!(u.len(), 5);
        assert!(u.contains(g.index(0, 0)));
        assert!(u.contains(g.index(2, 1)));
        assert!(!u.contains(g.index(2, 2)));
    }
}
