//! The Grid masking construction of [MR98a] (baseline for Table 2).
//!
//! Servers form a `√n × √n` grid; a quorum is the union of `2b + 1` full rows and one
//! full column. Any two quorums intersect in at least `2(2b+1)` servers (each
//! quorum's column crosses the other's rows), and the system masks `b` Byzantine
//! failures as long as the resilience `√n − 2b − 1` is at least `b`, i.e.
//! `b ≤ (√n − 1)/3`. Its load is roughly `2b/√n` — *not* optimal, which is the
//! paper's motivation for the improved M-Grid construction of Section 5.1.

use rand::RngCore;

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::{ExplicitQuorumSystem, QuorumSystem};

use crate::square::{min_price_rows_and_columns, SquareGrid};
use crate::AnalyzedConstruction;

/// The [MR98a] Grid b-masking quorum system over a `side × side` universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridSystem {
    grid: SquareGrid,
    b: usize,
}

impl GridSystem {
    /// Creates the Grid system masking `b` Byzantine failures over a `side × side`
    /// grid (`n = side²`).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] unless `2b + 1 ≤ side` and the
    /// resilience `side − 2b − 1` is at least `b` (i.e. `3b + 1 ≤ side`).
    pub fn new(side: usize, b: usize) -> Result<Self, QuorumError> {
        let grid = SquareGrid::new(side)?;
        if 2 * b + 1 > side {
            return Err(QuorumError::InvalidParameters(format!(
                "Grid(b={b}) needs 2b+1 <= side (side={side})"
            )));
        }
        if 3 * b + 1 > side {
            return Err(QuorumError::InvalidParameters(format!(
                "Grid(b={b}) is only b-masking when 3b+1 <= side (side={side})"
            )));
        }
        Ok(GridSystem { grid, b })
    }

    /// Creates the system for a universe of `n` servers (`n` must be a perfect
    /// square).
    ///
    /// # Errors
    ///
    /// Same as [`GridSystem::new`], plus the perfect-square requirement.
    pub fn for_universe(n: usize, b: usize) -> Result<Self, QuorumError> {
        let grid = SquareGrid::for_universe(n)?;
        GridSystem::new(grid.side(), b)
    }

    /// The masking parameter `b`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The grid side `√n`.
    #[must_use]
    pub fn side(&self) -> usize {
        self.grid.side()
    }

    /// Number of rows per quorum, `2b + 1`.
    #[must_use]
    pub fn rows_per_quorum(&self) -> usize {
        2 * self.b + 1
    }

    /// Minimal transversal size `MT = side − 2b` (hit all but `2b` rows).
    #[must_use]
    pub fn min_transversal(&self) -> usize {
        self.grid.side() - 2 * self.b
    }

    /// Exact crash probability in closed form: the system is available iff at
    /// least `2b + 1` rows and at least one column are fully alive, whose
    /// joint probability [`crate::square::rows_and_columns_alive_probability`]
    /// computes by inclusion–exclusion — no enumeration, any `n`.
    #[must_use]
    pub fn crash_probability(&self, p: f64) -> f64 {
        1.0 - crate::square::rows_and_columns_alive_probability(
            self.grid.side(),
            2 * self.b + 1,
            1,
            p,
        )
    }

    /// Materialises all `C(side, 2b+1) · side` quorums.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if the count exceeds `max_quorums`.
    pub fn to_explicit(&self, max_quorums: usize) -> Result<ExplicitQuorumSystem, QuorumError> {
        let side = self.grid.side();
        let count = bqs_combinatorics::binomial::binomial(side as u64, (2 * self.b + 1) as u64)
            .saturating_mul(side as u128);
        if count > max_quorums as u128 {
            return Err(QuorumError::InvalidParameters(format!(
                "{count} quorums exceed the cap of {max_quorums}"
            )));
        }
        let mut quorums = Vec::new();
        for rows in bqs_combinatorics::subsets::KSubsets::new(side, 2 * self.b + 1) {
            for col in 0..side {
                quorums.push(self.grid.union_of(&rows, &[col]));
            }
        }
        Ok(ExplicitQuorumSystem::new(self.grid.universe_size(), quorums)?.with_name(self.name()))
    }
}

impl QuorumSystem for GridSystem {
    fn universe_size(&self) -> usize {
        self.grid.universe_size()
    }

    fn name(&self) -> String {
        format!("Grid(n={}, b={})", self.grid.universe_size(), self.b)
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let side = self.grid.side();
        let rows: Vec<usize> = rand::seq::index::sample(rng, side, 2 * self.b + 1).into_vec();
        let col = rand::seq::index::sample(rng, side, 1).index(0);
        self.grid.union_of(&rows, &[col])
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        let rows = self.grid.fully_alive_rows(alive);
        if rows.len() < 2 * self.b + 1 {
            return None;
        }
        let cols = self.grid.fully_alive_columns(alive);
        let col = *cols.first()?;
        Some(self.grid.union_of(&rows[..2 * self.b + 1], &[col]))
    }

    fn is_available(&self, alive: &ServerSet) -> bool {
        // Allocation-free: availability only needs the *counts* of fully
        // alive rows/columns, not the quorum itself.
        self.grid.fully_alive_row_count(alive) > 2 * self.b
            && self.grid.fully_alive_column_count(alive) >= 1
    }

    #[inline]
    fn is_available_u64(&self, alive: u64, _scratch: &mut ServerSet) -> bool {
        self.grid.fully_alive_row_count_u64(alive) > 2 * self.b
            && self.grid.fully_alive_column_count_u64(alive) >= 1
    }

    #[inline]
    fn is_available_u64x4(
        &self,
        alive: [u64; bqs_core::quorum::AVAILABILITY_LANES],
        _scratch: &mut bqs_core::quorum::LaneScratch,
    ) -> [bool; bqs_core::quorum::AVAILABILITY_LANES] {
        // One lane-parallel pass over the rows answers all four masks.
        let counts = self.grid.fully_alive_counts_u64x4(alive);
        std::array::from_fn(|i| counts[i].0 > 2 * self.b && counts[i].1 >= 1)
    }

    fn unavailable_mass_u64_range(&self, weights: &[f64], start: u64, end: u64) -> Option<f64> {
        // Exact-enumeration fast path: build the packed line tables once for
        // the whole range (≲ 64 KiB, microseconds) and let the table kernel
        // stream the masks — bit-identical to the lane loop it replaces.
        let tables = self.grid.line_count_tables();
        Some(tables.unavailable_mass_range(2 * self.b + 1, 1, weights, start, end))
    }

    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        Some(self.crash_probability(p))
    }

    fn min_quorum_size(&self) -> usize {
        // (2b+1) rows of `side` servers plus one column minus the shared cells.
        let side = self.grid.side();
        (2 * self.b + 1) * side + side - (2 * self.b + 1)
    }
}

impl MinWeightQuorumOracle for GridSystem {
    /// Exact pricing of the cheapest `2b+1` rows + one column union via
    /// [`min_price_rows_and_columns`]: with the single column enumerated
    /// (only `side` candidates), the best rows for each are a greedy
    /// selection of adjusted row sums.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        let side = self.grid.side();
        let (rows, cols, price) =
            min_price_rows_and_columns(side, prices, 2 * self.b + 1, 1, u128::MAX)?;
        Some((self.grid.union_of(&rows, &cols), price))
    }

    /// All cyclic-(2b+1)-row-window × single-column pairs
    /// ([`crate::square::balanced_line_family`]): a perfectly balanced
    /// `side²`-quorum family whose uniform mixture achieves `c(Q)/n` exactly.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        Some(crate::square::balanced_line_strategy(
            self.grid.side(),
            2 * self.b + 1,
            1,
            |rows, cols| self.grid.union_of(rows, cols),
        ))
    }
}

impl AnalyzedConstruction for GridSystem {
    fn masking_b(&self) -> usize {
        self.b
    }

    fn resilience(&self) -> usize {
        self.min_transversal() - 1
    }

    fn analytic_load(&self) -> f64 {
        // Fair system: Proposition 3.9.
        self.min_quorum_size() as f64 / self.universe_size() as f64
    }

    fn crash_probability_upper_bound(&self, _p: f64) -> Option<f64> {
        // No useful upper bound: as [KC91, Woo96] show, Fp(Grid) -> 1 as n grows.
        None
    }

    fn crash_probability_lower_bound(&self, p: f64) -> Option<f64> {
        // Any configuration with a crash in every row disables the system (it also
        // disables every column, a fortiori every quorum):
        // Fp >= (1 - (1-p)^side)^side.
        let side = self.grid.side() as f64;
        Some((1.0 - (1.0 - p).powf(side)).powf(side))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(GridSystem::new(7, 2).is_ok());
        assert!(GridSystem::new(7, 3).is_err()); // 3b+1 = 10 > 7
        assert!(GridSystem::new(4, 1).is_ok());
        assert!(GridSystem::new(3, 1).is_err());
        assert!(GridSystem::for_universe(49, 2).is_ok());
        assert!(GridSystem::for_universe(50, 2).is_err());
    }

    #[test]
    fn quorum_sizes_and_load() {
        let g = GridSystem::new(7, 1).unwrap();
        // 3 rows * 7 + 7 - 3 = 25 servers per quorum.
        assert_eq!(g.min_quorum_size(), 25);
        assert!((g.analytic_load() - 25.0 / 49.0).abs() < 1e-12);
        // Load ~ 2b/sqrt(n) as the paper remarks (within a small constant).
        assert!(g.analytic_load() > 2.0 / 7.0);
    }

    #[test]
    fn explicit_system_is_b_masking() {
        let g = GridSystem::new(4, 1).unwrap();
        let e = g.to_explicit(10_000).unwrap();
        assert_eq!(e.universe_size(), 16);
        // C(4,3) * 4 = 16 quorums.
        assert_eq!(e.num_quorums(), 16);
        assert!(is_b_masking(e.quorums(), 16, 1));
        // On a side-4 grid any two quorums share at least 2 of their 3 rows, so the
        // intersections are far larger than the 2b+1 = 3 the masking property needs.
        assert!(min_intersection_size(e.quorums()) > 2);
        assert_eq!(min_transversal_size(e.quorums(), 16), g.min_transversal());
    }

    #[test]
    fn explicit_load_matches_analytic() {
        let g = GridSystem::new(4, 1).unwrap();
        let e = g.to_explicit(10_000).unwrap();
        let (load, _) = optimal_load(e.quorums(), 16).unwrap();
        assert!((load - g.analytic_load()).abs() < 1e-6);
    }

    #[test]
    fn sampling_and_live_quorum_shapes() {
        let g = GridSystem::new(7, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let q = g.sample_quorum(&mut rng);
            assert_eq!(q.len(), g.min_quorum_size());
        }
        // With everything alive a quorum is found.
        assert!(g.is_available(&ServerSet::full(49)));
        // Killing one server per row prevents any fully-alive row from existing.
        let mut alive = ServerSet::full(49);
        for r in 0..7 {
            alive.remove(r * 7 + (r % 7));
        }
        assert!(!g.is_available(&alive));
    }

    #[test]
    fn resilience_is_side_minus_2b_minus_1() {
        let g = GridSystem::new(10, 3).unwrap();
        assert_eq!(AnalyzedConstruction::resilience(&g), 10 - 6 - 1);
        assert!(AnalyzedConstruction::resilience(&g) >= g.masking_b());
    }

    #[test]
    fn closed_form_crash_probability_matches_enumeration() {
        for (side, b) in [(3usize, 0usize), (4, 1)] {
            let g = GridSystem::new(side, b).unwrap();
            for &p in &[0.0, 0.05, 0.125, 0.3, 0.5, 0.8, 1.0] {
                let closed = g.crash_probability(p);
                let enumerated = exact_crash_probability(&g, p).unwrap();
                assert!(
                    (closed - enumerated).abs() < 1e-9,
                    "side={side} b={b} p={p}: closed {closed} vs enumerated {enumerated}"
                );
                // The closed form can never undercut the row-kill lower bound.
                assert!(closed >= g.crash_probability_lower_bound(p).unwrap() - 1e-12);
            }
        }
        // And the evaluation engine must pick it up without enumeration.
        let big = GridSystem::new(30, 1).unwrap(); // n = 900, unenumerable
        let fp = Evaluator::new().crash_probability(&big, 0.125);
        assert_eq!(fp.method, FpMethod::ClosedForm);
        assert!((0.0..=1.0).contains(&fp.value));
    }

    #[test]
    fn word_level_availability_matches_set_availability() {
        let g = GridSystem::new(4, 1).unwrap();
        let n = g.universe_size();
        let mut scratch = ServerSet::new(n);
        let mut reference = ServerSet::new(n);
        for mask in (0u64..1 << n).step_by(97) {
            reference.assign_mask_u64(mask);
            assert_eq!(
                g.is_available_u64(mask, &mut scratch),
                g.is_available(&reference),
                "mask={mask:#x}"
            );
        }
    }

    #[test]
    fn pricing_oracle_matches_explicit_scan() {
        let g = GridSystem::new(4, 1).unwrap();
        let e = g.to_explicit(10_000).unwrap();
        for seed in 0..4u64 {
            let prices: Vec<f64> = (0..16)
                .map(|i| ((i as u64 * 29 + seed * 13 + 7) % 23) as f64 / 23.0)
                .collect();
            let (q, v) = g.min_weight_quorum(&prices).unwrap();
            let (_, v_ref) = e.min_weight_quorum(&prices).unwrap();
            assert!((v - v_ref).abs() < 1e-12, "seed={seed}: {v} vs {v_ref}");
            let recomputed: f64 = q.iter().map(|u| prices[u]).sum();
            assert!((recomputed - v).abs() < 1e-12);
        }
    }

    #[test]
    fn certified_load_matches_analytic_at_scale() {
        // n = 1024 (Section 8 scale): certified column-generation load
        // equals the fair-system closed form c/n.
        let g = GridSystem::new(32, 10).unwrap();
        let certified = optimal_load_oracle(&g).unwrap();
        assert!(
            (certified.load - g.analytic_load()).abs() <= 1e-9,
            "certified {} vs analytic {}",
            certified.load,
            g.analytic_load()
        );
        assert!(certified.gap <= 1e-9);
    }

    #[test]
    fn crash_probability_lower_bound_tends_to_one() {
        let small = GridSystem::new(5, 1).unwrap();
        let large = GridSystem::new(30, 1).unwrap();
        let p = 0.125;
        let lb_small = small.crash_probability_lower_bound(p).unwrap();
        let lb_large = large.crash_probability_lower_bound(p).unwrap();
        assert!(lb_large > lb_small, "bound should grow with n");
        assert!(lb_large > 0.5, "for n=900 the Grid is mostly dead");
    }
}
