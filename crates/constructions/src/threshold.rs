//! Threshold quorum systems.
//!
//! The `ℓ-of-k` threshold system takes every `ℓ`-subset of the `k` servers as a
//! quorum. Three roles in the paper:
//!
//! * the **Threshold construction of [MR98a]** (first row of Table 2): over `n`
//!   servers with `4b < n`, quorums of size `⌈(n + 2b + 1)/2⌉` give a b-masking
//!   system with load `1/2 + O(b/n)` and resilience `n − c(Q)`;
//! * the **minimal masking threshold** `Thresh(3b+1 of 4b+1)`, the inner component
//!   of boostFPP (Section 6);
//! * the **ℓ-of-k building block** of the recursive threshold systems RT(k, ℓ)
//!   (Section 5.2).

use rand::RngCore;

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::{ExplicitQuorumSystem, QuorumSystem};

use crate::AnalyzedConstruction;

/// An `ℓ-of-n` threshold quorum system: every `ℓ`-subset of the universe is a quorum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdSystem {
    n: usize,
    quorum_size: usize,
}

impl ThresholdSystem {
    /// Creates the `quorum_size`-of-`n` threshold system.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] unless `0 < quorum_size <= n` and
    /// `2 * quorum_size > n` (otherwise two quorums could be disjoint and the
    /// collection would not be a quorum system).
    pub fn new(n: usize, quorum_size: usize) -> Result<Self, QuorumError> {
        if quorum_size == 0 || quorum_size > n {
            return Err(QuorumError::InvalidParameters(format!(
                "quorum size {quorum_size} must be in 1..={n}"
            )));
        }
        if 2 * quorum_size <= n {
            return Err(QuorumError::InvalidParameters(format!(
                "{quorum_size}-of-{n} is not a quorum system: two quorums can be disjoint"
            )));
        }
        Ok(ThresholdSystem { n, quorum_size })
    }

    /// The b-masking threshold construction of [MR98a] over `n` servers: quorums of
    /// size `⌈(n + 2b + 1) / 2⌉`.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] unless `4b < n`.
    pub fn masking(n: usize, b: usize) -> Result<Self, QuorumError> {
        if 4 * b >= n {
            return Err(QuorumError::InvalidParameters(format!(
                "a b-masking system requires 4b < n (got b={b}, n={n})"
            )));
        }
        let quorum_size = (n + 2 * b + 1).div_ceil(2);
        ThresholdSystem::new(n, quorum_size)
    }

    /// The minimal-universe b-masking threshold `Thresh(3b+1 of 4b+1)` used as the
    /// inner component of boostFPP.
    ///
    /// # Errors
    ///
    /// Never fails for `b >= 0`; the `Result` keeps the constructor signatures
    /// uniform across the crate.
    pub fn minimal_masking(b: usize) -> Result<Self, QuorumError> {
        ThresholdSystem::new(4 * b + 1, 3 * b + 1)
    }

    /// The quorum size `ℓ`.
    #[must_use]
    pub fn quorum_size(&self) -> usize {
        self.quorum_size
    }

    /// Minimal intersection size `IS = 2ℓ − n`.
    #[must_use]
    pub fn min_intersection(&self) -> usize {
        2 * self.quorum_size - self.n
    }

    /// Minimal transversal size `MT = n − ℓ + 1`.
    #[must_use]
    pub fn min_transversal(&self) -> usize {
        self.n - self.quorum_size + 1
    }

    /// Exact crash probability: the system fails iff at least `n − ℓ + 1` servers
    /// crash (a binomial tail).
    #[must_use]
    pub fn crash_probability(&self, p: f64) -> f64 {
        bqs_core::availability::threshold_crash_probability(self.n, self.quorum_size, p)
    }

    /// Materialises all `C(n, ℓ)` quorums.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if the number of quorums exceeds
    /// `max_quorums`.
    pub fn to_explicit(&self, max_quorums: usize) -> Result<ExplicitQuorumSystem, QuorumError> {
        let count = bqs_combinatorics::binomial::binomial(self.n as u64, self.quorum_size as u64);
        if count > max_quorums as u128 {
            return Err(QuorumError::InvalidParameters(format!(
                "{} quorums exceed the cap of {max_quorums}",
                count
            )));
        }
        let quorums: Vec<ServerSet> =
            bqs_combinatorics::subsets::KSubsets::new(self.n, self.quorum_size)
                .map(|s| ServerSet::from_indices(self.n, s))
                .collect();
        Ok(ExplicitQuorumSystem::new(self.n, quorums)?.with_name(self.name()))
    }
}

impl QuorumSystem for ThresholdSystem {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn name(&self) -> String {
        format!("Threshold({}-of-{})", self.quorum_size, self.n)
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let picks = rand::seq::index::sample(rng, self.n, self.quorum_size);
        ServerSet::from_indices(self.n, picks.iter())
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        if alive.len() < self.quorum_size {
            return None;
        }
        Some(ServerSet::from_indices(
            self.n,
            alive.iter().take(self.quorum_size),
        ))
    }

    fn is_available(&self, alive: &ServerSet) -> bool {
        // Allocation-free: availability is a pure popcount test.
        alive.len() >= self.quorum_size
    }

    #[inline]
    fn is_available_u64(&self, alive: u64, _scratch: &mut ServerSet) -> bool {
        alive.count_ones() as usize >= self.quorum_size
    }

    #[inline]
    fn is_available_u64x4(
        &self,
        alive: [u64; bqs_core::quorum::AVAILABILITY_LANES],
        _scratch: &mut bqs_core::quorum::LaneScratch,
    ) -> [bool; bqs_core::quorum::AVAILABILITY_LANES] {
        std::array::from_fn(|i| alive[i].count_ones() as usize >= self.quorum_size)
    }

    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        Some(self.crash_probability(p))
    }

    fn min_quorum_size(&self) -> usize {
        self.quorum_size
    }
}

impl MinWeightQuorumOracle for ThresholdSystem {
    /// Every `ℓ`-subset is a quorum, so the cheapest quorum is the `ℓ`
    /// cheapest servers — a sort-and-prefix selection, exact at any `n`.
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        assert_eq!(prices.len(), self.n, "one price per server required");
        let mut idx: Vec<usize> = (0..self.n).collect();
        idx.sort_by(|&a, &b| prices[a].total_cmp(&prices[b]).then(a.cmp(&b)));
        let chosen = &idx[..self.quorum_size];
        let price = chosen.iter().map(|&u| prices[u]).sum();
        Some((
            ServerSet::from_indices(self.n, chosen.iter().copied()),
            price,
        ))
    }

    /// The `n` cyclic shifts of one `ℓ`-window: every server lies in exactly
    /// `ℓ` of them, so the uniform mixture loads every server at `ℓ/n` —
    /// the optimum the engine certifies against the oracle bound.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        let quorums: Vec<ServerSet> = (0..self.n)
            .map(|s| {
                ServerSet::from_indices(self.n, (0..self.quorum_size).map(|o| (s + o) % self.n))
            })
            .collect();
        let weights = vec![1.0; quorums.len()];
        Some((quorums, weights))
    }
}

impl AnalyzedConstruction for ThresholdSystem {
    fn masking_b(&self) -> usize {
        let is = self.min_intersection();
        let mt = self.min_transversal();
        if is == 0 || mt == 0 {
            return 0;
        }
        ((is - 1) / 2).min(mt - 1)
    }

    fn resilience(&self) -> usize {
        self.min_transversal() - 1
    }

    fn analytic_load(&self) -> f64 {
        // The system is fair, so Proposition 3.9 applies: L = c / n.
        self.quorum_size as f64 / self.n as f64
    }

    fn crash_probability_upper_bound(&self, p: f64) -> Option<f64> {
        Some(self.crash_probability(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basic_parameters() {
        let t = ThresholdSystem::new(7, 5).unwrap();
        assert_eq!(t.universe_size(), 7);
        assert_eq!(t.min_quorum_size(), 5);
        assert_eq!(t.min_intersection(), 3);
        assert_eq!(t.min_transversal(), 3);
        assert_eq!(t.masking_b(), 1);
        assert_eq!(AnalyzedConstruction::resilience(&t), 2);
        assert!((t.analytic_load() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ThresholdSystem::new(5, 0).is_err());
        assert!(ThresholdSystem::new(5, 6).is_err());
        assert!(ThresholdSystem::new(6, 3).is_err()); // 2*3 <= 6: disjoint quorums
        assert!(ThresholdSystem::masking(8, 2).is_err()); // 4b >= n
        assert!(ThresholdSystem::masking(9, 2).is_ok());
    }

    #[test]
    fn mr98a_masking_threshold_parameters() {
        // n = 16, b = 3: quorum size = ceil((16+7)/2) = 12, IS = 8 >= 2b+1 = 7,
        // MT = 5 >= b+1 = 4.
        let t = ThresholdSystem::masking(16, 3).unwrap();
        assert_eq!(t.quorum_size(), 12);
        assert!(t.min_intersection() >= 7);
        assert!(t.min_transversal() >= 4);
        assert!(t.masking_b() >= 3);
        // Load is 1/2 + O(b/n) (remark after Corollary 4.2).
        assert!(t.analytic_load() >= 0.5);
        assert!(t.analytic_load() <= 0.5 + (2.0 * 3.0 + 2.0) / 16.0);
    }

    #[test]
    fn minimal_masking_is_exactly_b_masking() {
        for b in 0..4usize {
            let t = ThresholdSystem::minimal_masking(b).unwrap();
            assert_eq!(t.universe_size(), 4 * b + 1);
            assert_eq!(t.masking_b(), b);
            // Verify against the exact explicit-system checker.
            let explicit = t.to_explicit(100_000).unwrap();
            assert_eq!(masking_level(explicit.quorums(), 4 * b + 1), Some(b));
        }
    }

    #[test]
    fn explicit_matches_analytic_measures() {
        let t = ThresholdSystem::new(6, 4).unwrap();
        let e = t.to_explicit(1000).unwrap();
        assert_eq!(min_quorum_size(e.quorums()), t.min_quorum_size());
        assert_eq!(min_intersection_size(e.quorums()), t.min_intersection());
        assert_eq!(min_transversal_size(e.quorums(), 6), t.min_transversal());
        let (lp_load, _) = optimal_load(e.quorums(), 6).unwrap();
        assert!((lp_load - t.analytic_load()).abs() < 1e-6);
    }

    #[test]
    fn explicit_cap_enforced() {
        let t = ThresholdSystem::new(30, 16).unwrap();
        assert!(t.to_explicit(1000).is_err());
    }

    #[test]
    fn crash_probability_matches_exact_enumeration() {
        let t = ThresholdSystem::new(6, 4).unwrap();
        for &p in &[0.1, 0.3, 0.5] {
            let closed = t.crash_probability(p);
            let exact = exact_crash_probability(&t, p).unwrap();
            assert!((closed - exact).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn closed_form_matches_enumeration_up_to_n_20() {
        // The closed form must track full enumeration to 1e-9 through n = 20
        // (2^20 configurations — the engine's popcount fast path keeps this
        // test cheap). It is also what the evaluation engine dispatches to.
        for (n, b) in [(13usize, 3usize), (17, 2), (20, 4)] {
            let t = ThresholdSystem::masking(n, b).unwrap();
            for &p in &[0.05, 0.125, 0.3, 0.5, 0.8] {
                let closed = t.crash_probability(p);
                let enumerated = exact_crash_probability(&t, p).unwrap();
                assert!(
                    (closed - enumerated).abs() < 1e-9,
                    "n={n} b={b} p={p}: closed {closed} vs enumerated {enumerated}"
                );
                let dispatched = Evaluator::new().crash_probability(&t, p);
                assert_eq!(dispatched.method, FpMethod::ClosedForm);
                assert!((dispatched.value - closed).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn sampled_quorums_have_right_size_and_are_uniformish() {
        let t = ThresholdSystem::new(9, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = vec![0usize; 9];
        for _ in 0..900 {
            let q = t.sample_quorum(&mut rng);
            assert_eq!(q.len(), 5);
            for u in q.iter() {
                seen[u] += 1;
            }
        }
        // Each server should appear in roughly 5/9 of the samples.
        for &count in &seen {
            let frac = count as f64 / 900.0;
            assert!((frac - 5.0 / 9.0).abs() < 0.1, "frac={frac}");
        }
    }

    #[test]
    fn find_live_quorum_thresholds() {
        let t = ThresholdSystem::new(5, 3).unwrap();
        let alive = ServerSet::from_indices(5, [0, 2, 4]);
        let q = t.find_live_quorum(&alive).unwrap();
        assert_eq!(q.len(), 3);
        assert!(q.is_subset_of(&alive));
        let too_few = ServerSet::from_indices(5, [1, 3]);
        assert!(t.find_live_quorum(&too_few).is_none());
    }

    #[test]
    fn pricing_oracle_selects_cheapest_prefix() {
        let t = ThresholdSystem::new(6, 4).unwrap();
        let prices = [0.9, 0.1, 0.5, 0.2, 0.8, 0.3];
        let (q, v) = t.min_weight_quorum(&prices).unwrap();
        assert_eq!(q.to_vec(), vec![1, 2, 3, 5]);
        assert!((v - 1.1).abs() < 1e-12);
        // Exactness against the explicit scan oracle on varied prices.
        let e = t.to_explicit(1000).unwrap();
        for seed in 0..5u64 {
            let prices: Vec<f64> = (0..6)
                .map(|i| ((i as u64 * 13 + seed * 7 + 3) % 17) as f64 / 17.0)
                .collect();
            let (_, v) = t.min_weight_quorum(&prices).unwrap();
            let (_, v_ref) = e.min_weight_quorum(&prices).unwrap();
            assert!((v - v_ref).abs() < 1e-12, "seed={seed}");
        }
    }

    #[test]
    fn certified_load_matches_closed_form_at_scale() {
        // n = 1024: far beyond any explicit enumeration; the certified
        // column-generation load must hit c/n = 768/1024 with gap <= 1e-9.
        let t = ThresholdSystem::masking(1024, 255).unwrap();
        let certified = optimal_load_oracle(&t).unwrap();
        assert!(
            (certified.load - t.analytic_load()).abs() <= 1e-9,
            "certified {} vs analytic {}",
            certified.load,
            t.analytic_load()
        );
        assert!(certified.gap <= 1e-9, "gap={}", certified.gap);
    }

    #[test]
    fn crash_probability_upper_bound_is_exact_here() {
        let t = ThresholdSystem::minimal_masking(2).unwrap();
        let p = 0.2;
        assert!(
            (t.crash_probability_upper_bound(p).unwrap() - t.crash_probability(p)).abs() < 1e-12
        );
    }
}
