//! The M-Grid construction (Section 5.1 of the paper).
//!
//! Servers form a `√n × √n` grid; a quorum is the union of `√(b+1)` rows and
//! `√(b+1)` columns (Figure 1 of the paper shows a 7×7 instance with `b = 3`).
//! Two quorums that share no line intersect in at least `2(b+1) > 2b` servers (each
//! quorum's rows cross the other's columns), and quorums sharing a line intersect in
//! at least `√n ≥ 2b+1` servers, so the system is b-masking for
//! `b ≤ (√n − 1)/2` (Proposition 5.1). It is fair, so its load is
//! `c(Q)/n ≈ 2√((b+1)/n)` (Proposition 5.2) — **optimal** to within a factor `√2`.
//! Its weakness is availability: one crash per row kills every quorum, so
//! `F_p → 1` as `n → ∞` (the closed-form lower bound of [KC91, Woo96]).

use rand::RngCore;

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::{ExplicitQuorumSystem, QuorumSystem};

use crate::square::{min_price_rows_and_columns, SquareGrid};
use crate::AnalyzedConstruction;

/// Subset-enumeration budget for the exact M-Grid pricing oracle: the oracle
/// enumerates `C(side, ⌈√(b+1)⌉)` line sets per call, which covers every
/// Section 8-scale instance (`C(32, 4) ≈ 3.6·10⁴`) with room to spare.
/// Degenerate parameterisations past the budget no longer decline outright:
/// they fall through to an exact branch-and-bound pricer with the same
/// budget counted in search nodes, which declines only when *it* cannot
/// prove optimality in budget (see
/// [`crate::square::min_price_rows_and_columns`]).
pub const ORACLE_SUBSET_BUDGET: u128 = 2_000_000;

/// The M-Grid(b) quorum system over a `side × side` universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MGridSystem {
    grid: SquareGrid,
    b: usize,
    /// Number of rows (= number of columns) per quorum, `⌈√(b+1)⌉`.
    lines: usize,
}

impl MGridSystem {
    /// Creates M-Grid(b) on a `side × side` grid.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] unless:
    /// * `⌈√(b+1)⌉ ≤ side` (quorums fit in the grid),
    /// * `2b + 1 ≤ side` (quorums sharing a line still intersect in `2b+1` servers,
    ///   Proposition 5.1's requirement `b ≤ (√n−1)/2`),
    /// * the resilience `side − ⌈√(b+1)⌉` is at least `b`.
    pub fn new(side: usize, b: usize) -> Result<Self, QuorumError> {
        let grid = SquareGrid::new(side)?;
        let lines = integer_sqrt_ceil(b + 1);
        if lines > side {
            return Err(QuorumError::InvalidParameters(format!(
                "M-Grid(b={b}) needs ceil(sqrt(b+1)) = {lines} <= side = {side}"
            )));
        }
        if 2 * b + 1 > side {
            return Err(QuorumError::InvalidParameters(format!(
                "M-Grid requires b <= (side-1)/2 (got b={b}, side={side})"
            )));
        }
        if side - lines < b {
            return Err(QuorumError::InvalidParameters(format!(
                "M-Grid(b={b}) resilience {} is below b",
                side - lines
            )));
        }
        Ok(MGridSystem { grid, b, lines })
    }

    /// Creates M-Grid(b) for a universe of `n` servers (`n` a perfect square).
    ///
    /// # Errors
    ///
    /// Same as [`MGridSystem::new`], plus the perfect-square requirement.
    pub fn for_universe(n: usize, b: usize) -> Result<Self, QuorumError> {
        let grid = SquareGrid::for_universe(n)?;
        MGridSystem::new(grid.side(), b)
    }

    /// The largest `b` supported on a `side × side` grid, `(side − 1) / 2`
    /// (Proposition 5.1).
    #[must_use]
    pub fn max_b(side: usize) -> usize {
        (side.saturating_sub(1)) / 2
    }

    /// The masking parameter `b`.
    #[must_use]
    pub fn b(&self) -> usize {
        self.b
    }

    /// The grid side `√n`.
    #[must_use]
    pub fn side(&self) -> usize {
        self.grid.side()
    }

    /// Rows (and columns) per quorum, `⌈√(b+1)⌉`.
    #[must_use]
    pub fn lines_per_quorum(&self) -> usize {
        self.lines
    }

    /// Minimal transversal size `MT = side − ⌈√(b+1)⌉ + 1`.
    #[must_use]
    pub fn min_transversal(&self) -> usize {
        self.grid.side() - self.lines + 1
    }

    /// The closed-form crash-probability lower bound of [KC91, Woo96]:
    /// `F_p ≥ (1 − (1−p)^√n)^√n` (one crash per row disables every quorum).
    #[must_use]
    pub fn crash_probability_kc_bound(&self, p: f64) -> f64 {
        let side = self.grid.side() as f64;
        (1.0 - (1.0 - p).powf(side)).powf(side)
    }

    /// Exact crash probability in closed form: the system is available iff at
    /// least `⌈√(b+1)⌉` rows *and* as many columns are fully alive, whose
    /// joint probability [`crate::square::rows_and_columns_alive_probability`]
    /// computes by inclusion–exclusion — no enumeration, any `n`. Sharpens the
    /// paper's [KC91, Woo96] lower bound into the exact value.
    #[must_use]
    pub fn crash_probability(&self, p: f64) -> f64 {
        1.0 - crate::square::rows_and_columns_alive_probability(
            self.grid.side(),
            self.lines,
            self.lines,
            p,
        )
    }

    /// Materialises all `C(side, lines)²` quorums.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::InvalidParameters`] if the count exceeds `max_quorums`.
    pub fn to_explicit(&self, max_quorums: usize) -> Result<ExplicitQuorumSystem, QuorumError> {
        let side = self.grid.side();
        let per_axis = bqs_combinatorics::binomial::binomial(side as u64, self.lines as u64);
        let count = per_axis.saturating_mul(per_axis);
        if count > max_quorums as u128 {
            return Err(QuorumError::InvalidParameters(format!(
                "{count} quorums exceed the cap of {max_quorums}"
            )));
        }
        let mut quorums = Vec::new();
        let row_choices: Vec<Vec<usize>> =
            bqs_combinatorics::subsets::KSubsets::new(side, self.lines).collect();
        for rows in &row_choices {
            for cols in &row_choices {
                quorums.push(self.grid.union_of(rows, cols));
            }
        }
        Ok(ExplicitQuorumSystem::new(self.grid.universe_size(), quorums)?.with_name(self.name()))
    }
}

/// `⌈√x⌉` for small integers.
fn integer_sqrt_ceil(x: usize) -> usize {
    let mut r = (x as f64).sqrt() as usize;
    while r * r < x {
        r += 1;
    }
    while r > 0 && (r - 1) * (r - 1) >= x {
        r -= 1;
    }
    r
}

impl QuorumSystem for MGridSystem {
    fn universe_size(&self) -> usize {
        self.grid.universe_size()
    }

    fn name(&self) -> String {
        format!("M-Grid(n={}, b={})", self.grid.universe_size(), self.b)
    }

    fn sample_quorum(&self, rng: &mut dyn RngCore) -> ServerSet {
        let side = self.grid.side();
        let rows: Vec<usize> = rand::seq::index::sample(rng, side, self.lines).into_vec();
        let cols: Vec<usize> = rand::seq::index::sample(rng, side, self.lines).into_vec();
        self.grid.union_of(&rows, &cols)
    }

    fn find_live_quorum(&self, alive: &ServerSet) -> Option<ServerSet> {
        let rows = self.grid.fully_alive_rows(alive);
        if rows.len() < self.lines {
            return None;
        }
        let cols = self.grid.fully_alive_columns(alive);
        if cols.len() < self.lines {
            return None;
        }
        Some(self.grid.union_of(&rows[..self.lines], &cols[..self.lines]))
    }

    fn is_available(&self, alive: &ServerSet) -> bool {
        // Allocation-free: only the counts of fully alive lines matter.
        self.grid.fully_alive_row_count(alive) >= self.lines
            && self.grid.fully_alive_column_count(alive) >= self.lines
    }

    #[inline]
    fn is_available_u64(&self, alive: u64, _scratch: &mut ServerSet) -> bool {
        self.grid.fully_alive_row_count_u64(alive) >= self.lines
            && self.grid.fully_alive_column_count_u64(alive) >= self.lines
    }

    #[inline]
    fn is_available_u64x4(
        &self,
        alive: [u64; bqs_core::quorum::AVAILABILITY_LANES],
        _scratch: &mut bqs_core::quorum::LaneScratch,
    ) -> [bool; bqs_core::quorum::AVAILABILITY_LANES] {
        // One lane-parallel pass over the rows answers all four masks.
        let counts = self.grid.fully_alive_counts_u64x4(alive);
        std::array::from_fn(|i| counts[i].0 >= self.lines && counts[i].1 >= self.lines)
    }

    fn unavailable_mass_u64_range(&self, weights: &[f64], start: u64, end: u64) -> Option<f64> {
        // Exact-enumeration fast path — see `GridSystem::unavailable_mass_u64_range`.
        let tables = self.grid.line_count_tables();
        Some(tables.unavailable_mass_range(self.lines, self.lines, weights, start, end))
    }

    fn crash_probability_closed_form(&self, p: f64) -> Option<f64> {
        Some(self.crash_probability(p))
    }

    fn min_quorum_size(&self) -> usize {
        // `lines` rows and `lines` columns overlap in lines² cells.
        2 * self.lines * self.grid.side() - self.lines * self.lines
    }
}

impl MinWeightQuorumOracle for MGridSystem {
    /// Exact pricing of the cheapest `⌈√(b+1)⌉` rows × `⌈√(b+1)⌉` columns
    /// union: one axis is enumerated (within [`ORACLE_SUBSET_BUDGET`]), the
    /// other selected greedily per candidate — optimal because row
    /// contributions are independent once the columns are fixed (see
    /// [`min_price_rows_and_columns`]).
    fn min_weight_quorum(&self, prices: &[f64]) -> Option<(ServerSet, f64)> {
        let (rows, cols, price) = min_price_rows_and_columns(
            self.grid.side(),
            prices,
            self.lines,
            self.lines,
            ORACLE_SUBSET_BUDGET,
        )?;
        Some((self.grid.union_of(&rows, &cols), price))
    }

    /// All cyclic row-window × column-window pairs
    /// ([`crate::square::balanced_line_family`]): a perfectly balanced
    /// `side²`-quorum family whose uniform mixture achieves `c(Q)/n` exactly.
    fn symmetric_strategy_hint(&self) -> Option<(Vec<ServerSet>, Vec<f64>)> {
        Some(crate::square::balanced_line_strategy(
            self.grid.side(),
            self.lines,
            self.lines,
            |rows, cols| self.grid.union_of(rows, cols),
        ))
    }
}

impl AnalyzedConstruction for MGridSystem {
    fn masking_b(&self) -> usize {
        self.b
    }

    fn resilience(&self) -> usize {
        self.min_transversal() - 1
    }

    fn analytic_load(&self) -> f64 {
        // Fair system (Proposition 5.2): L = c / n ≈ 2 sqrt((b+1)/n).
        self.min_quorum_size() as f64 / self.universe_size() as f64
    }

    fn crash_probability_upper_bound(&self, _p: f64) -> Option<f64> {
        None // the M-Grid's availability is its weak point; only the lower bound is useful
    }

    fn crash_probability_lower_bound(&self, p: f64) -> Option<f64> {
        Some(self.crash_probability_kc_bound(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::bounds::load_lower_bound_universal;
    use bqs_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn integer_sqrt_ceil_values() {
        assert_eq!(integer_sqrt_ceil(1), 1);
        assert_eq!(integer_sqrt_ceil(2), 2);
        assert_eq!(integer_sqrt_ceil(4), 2);
        assert_eq!(integer_sqrt_ceil(5), 3);
        assert_eq!(integer_sqrt_ceil(9), 3);
        assert_eq!(integer_sqrt_ceil(10), 4);
    }

    #[test]
    fn paper_figure_1_instance() {
        // Figure 1: 7x7 grid, b = 3 -> 2 rows + 2 columns per quorum.
        let m = MGridSystem::new(7, 3).unwrap();
        assert_eq!(m.lines_per_quorum(), 2);
        assert_eq!(m.min_quorum_size(), 2 * 2 * 7 - 4);
        assert_eq!(m.universe_size(), 49);
        assert!(MGridSystem::new(7, MGridSystem::max_b(7)).is_ok());
        assert!(MGridSystem::new(7, 4).is_err()); // 2b+1 = 9 > 7
    }

    #[test]
    fn explicit_small_instance_is_b_masking() {
        // 5x5 grid, b = 2: 2 rows + 2 cols per quorum, IS must be >= 5.
        let m = MGridSystem::new(5, 2).unwrap();
        let e = m.to_explicit(20_000).unwrap();
        assert!(is_b_masking(e.quorums(), 25, 2));
        // On this small instance the intersections are even larger than required, so
        // the achieved masking level can exceed the design parameter b = 2.
        assert!(masking_level(e.quorums(), 25) >= Some(2));
        assert_eq!(min_transversal_size(e.quorums(), 25), m.min_transversal());
        assert_eq!(min_quorum_size(e.quorums()), m.min_quorum_size());
    }

    #[test]
    fn explicit_load_matches_analytic_and_is_near_optimal() {
        let m = MGridSystem::new(5, 2).unwrap();
        let e = m.to_explicit(20_000).unwrap();
        let (lp_load, _) = optimal_load(e.quorums(), 25).unwrap();
        assert!((lp_load - m.analytic_load()).abs() < 1e-6);
        // Proposition 5.2 + remark: within a factor sqrt(2) of the universal bound.
        let lower = load_lower_bound_universal(25, 2);
        assert!(lp_load >= lower - 1e-9);
        assert!(lp_load <= 2.0f64.sqrt() * lower + 0.1);
    }

    #[test]
    fn masking_holds_at_max_b_for_various_sides() {
        for side in [5usize, 7, 9] {
            let b = MGridSystem::max_b(side);
            let m = MGridSystem::new(side, b).unwrap();
            assert!(AnalyzedConstruction::resilience(&m) >= b, "side={side}");
            // Verify the analytic intersection argument on sampled quorum pairs.
            let mut rng = StdRng::seed_from_u64(side as u64);
            for _ in 0..30 {
                let q1 = m.sample_quorum(&mut rng);
                let q2 = m.sample_quorum(&mut rng);
                assert!(q1.intersection_size(&q2) > 2 * b, "side={side} b={b}");
            }
        }
    }

    #[test]
    fn find_live_quorum_requires_enough_full_lines() {
        let m = MGridSystem::new(7, 3).unwrap();
        assert!(m.is_available(&ServerSet::full(49)));
        // One crash per row kills every quorum (rows are no longer fully alive).
        let mut alive = ServerSet::full(49);
        for r in 0..7 {
            alive.remove(r * 7 + (r * 3) % 7);
        }
        assert!(!m.is_available(&alive));
        // A single crash leaves plenty of full rows/columns.
        let mut alive2 = ServerSet::full(49);
        alive2.remove(24);
        let q = m.find_live_quorum(&alive2).unwrap();
        assert!(q.is_subset_of(&alive2));
        assert_eq!(q.len(), m.min_quorum_size());
    }

    #[test]
    fn closed_form_crash_probability_matches_enumeration() {
        for (side, b) in [(3usize, 1usize), (4, 1)] {
            let m = MGridSystem::new(side, b).unwrap();
            for &p in &[0.0, 0.05, 0.125, 0.3, 0.5, 0.8, 1.0] {
                let closed = m.crash_probability(p);
                let enumerated = exact_crash_probability(&m, p).unwrap();
                assert!(
                    (closed - enumerated).abs() < 1e-9,
                    "side={side} b={b} p={p}: closed {closed} vs enumerated {enumerated}"
                );
                // Exact value dominates the paper's [KC91, Woo96] lower bound.
                assert!(closed >= m.crash_probability_kc_bound(p) - 1e-12);
            }
        }
        // The Section 8 instance (n = 1024) now gets an exact F_p where the
        // paper could only report the 0.638 lower bound.
        let section8 = MGridSystem::new(32, 15).unwrap();
        let fp = Evaluator::new().crash_probability(&section8, 0.125);
        assert_eq!(fp.method, FpMethod::ClosedForm);
        assert!(fp.value >= 0.638 && fp.value <= 1.0, "fp={}", fp.value);
    }

    #[test]
    fn word_level_availability_matches_set_availability() {
        let m = MGridSystem::new(4, 1).unwrap();
        let n = m.universe_size();
        let mut scratch = ServerSet::new(n);
        let mut reference = ServerSet::new(n);
        for mask in (0u64..1 << n).step_by(89) {
            reference.assign_mask_u64(mask);
            assert_eq!(
                m.is_available_u64(mask, &mut scratch),
                m.is_available(&reference),
                "mask={mask:#x}"
            );
        }
    }

    #[test]
    fn pricing_oracle_matches_explicit_scan() {
        let m = MGridSystem::new(5, 2).unwrap();
        let e = m.to_explicit(20_000).unwrap();
        for seed in 0..4u64 {
            let prices: Vec<f64> = (0..25)
                .map(|i| ((i as u64 * 37 + seed * 11 + 5) % 41) as f64 / 41.0)
                .collect();
            let (q, v) = m.min_weight_quorum(&prices).unwrap();
            let (_, v_ref) = e.min_weight_quorum(&prices).unwrap();
            assert!((v - v_ref).abs() < 1e-12, "seed={seed}: {v} vs {v_ref}");
            let recomputed: f64 = q.iter().map(|u| prices[u]).sum();
            assert!((recomputed - v).abs() < 1e-12);
        }
    }

    #[test]
    fn certified_load_matches_analytic_at_section8_scale() {
        // The Section 8 instance (n = 1024, b = 15): load ~ 1/4, previously
        // only quotable from the closed form — now certified by the LP.
        let m = MGridSystem::new(32, 15).unwrap();
        let certified = optimal_load_oracle(&m).unwrap();
        assert!(
            (certified.load - m.analytic_load()).abs() <= 1e-9,
            "certified {} vs analytic {}",
            certified.load,
            m.analytic_load()
        );
        assert!(certified.gap <= 1e-9, "gap={}", certified.gap);
    }

    #[test]
    fn pricing_oracle_handles_previously_over_budget_parameterisation() {
        // M-Grid(b = 36) on side 73: 7 rows × 7 columns per quorum, and
        // C(73, 7) ≈ 1.6·10⁹ subsets — far past ORACLE_SUBSET_BUDGET, so the
        // enumeration path declines and, before the branch-and-bound
        // fallback, min_weight_quorum returned None outright. A planted
        // price structure (lines 0..7 free, everything else expensive) keeps
        // the optimum unique and lets branch-and-bound prove it in a handful
        // of nodes.
        let side = 73;
        let m = MGridSystem::new(side, 36).unwrap();
        assert_eq!(m.lines_per_quorum(), 7);
        let mut prices = vec![1.0; side * side];
        for r in 0..side {
            for c in 0..side {
                if r < 7 || c < 7 {
                    prices[r * side + c] = 0.0;
                }
            }
        }
        let (q, v) = m.min_weight_quorum(&prices).unwrap();
        assert_eq!(v, 0.0);
        assert_eq!(q.len(), 2 * 7 * side - 49);
        assert!(q.iter().all(|u| prices[u] == 0.0));
    }

    #[test]
    fn kc_crash_bound_grows_with_n() {
        let p = 0.125;
        let small = MGridSystem::new(7, 3).unwrap();
        let large = MGridSystem::new(32, 3).unwrap();
        assert!(
            large.crash_probability_kc_bound(p) > small.crash_probability_kc_bound(p),
            "Fp(M-Grid) must tend to 1"
        );
    }

    #[test]
    fn section8_mgrid_instance() {
        // Section 8: n = 1024, b = 15 -> 4 rows + 4 columns, f = 28, Fp >= 0.638 at
        // p = 1/8, load about 1/4.
        let m = MGridSystem::new(32, 15).unwrap();
        assert_eq!(m.lines_per_quorum(), 4);
        assert_eq!(AnalyzedConstruction::resilience(&m), 28);
        let load = m.analytic_load();
        assert!((load - 0.25).abs() < 0.02, "load={load}");
        let fp = m.crash_probability_kc_bound(0.125);
        assert!(fp >= 0.63, "fp={fp}");
    }
}
