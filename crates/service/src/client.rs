//! The concurrent strategy-driven protocol client.
//!
//! One [`ServiceClient`] runs on one client thread and performs closed-loop
//! masking-register operations against a [`Transport`]:
//!
//! 1. choose an access quorum with the *shared* probe-and-fallback policy
//!    ([`bqs_sim::client::choose_access_quorum`]) — sample from the system's
//!    access strategy (the certified-optimal one when the system is a
//!    [`bqs_core::strategic::StrategicQuorumSystem`]), retry a few times under
//!    sporadic failures, fall back to deterministic live-quorum discovery;
//! 2. fan the operation out to every quorum member in **one**
//!    [`Transport::send_batch`] call (one shard wake / one syscall per
//!    destination, not one per member);
//! 3. gather exactly one reply per member from the client's private reply
//!    mailbox, matching by request id — ids are strictly increasing across
//!    the client's lifetime, so stragglers from an aborted earlier operation
//!    are recognised and dropped without reallocating anything;
//! 4. for reads, resolve the value with the shared masking rule
//!    ([`bqs_sim::client::resolve_read`]): entries with at least `b + 1`
//!    supporters are safe, the freshest safe entry wins.
//!
//! The client is deliberately transport-agnostic and system-generic — it is
//! the same protocol logic as the single-threaded simulator's client, re-cast
//! over message passing so many of them can run against shared shards.

use std::sync::Arc;
use std::time::Duration;

use bqs_core::bitset::ServerSet;
use bqs_core::quorum::QuorumSystem;
use bqs_sim::client::{choose_access_quorum, resolve_read, ProtocolError};
use bqs_sim::server::Entry;
use rand::Rng;

use crate::mailbox::{ReplyHandle, ReplyMailbox};
use crate::transport::{Operation, Reply, Request, Transport};

/// Default bound on how long a client waits for a single reply before
/// declaring the transport dead. Quorum selection only ever targets
/// responsive servers, the loopback shards always answer, and `bqs-net`'s
/// socket transport converts expired per-request deadlines into in-band
/// no-answer replies — so under every workspace transport this fires only
/// when the service itself dies mid-request. It exists because
/// [`Transport::send`] returning `true` does *not* promise a reply ever
/// arrives (see the [`crate::transport`] module docs): without the bound the
/// masking protocol's probe-and-fallback would hang forever on a half-dead
/// service. Tune per deployment with [`ServiceClient::with_reply_deadline`].
const DEFAULT_REPLY_DEADLINE: Duration = Duration::from_secs(30);

/// Errors surfaced by the concurrent client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// A protocol-level failure (no live quorum / no safe value), identical in
    /// meaning to the simulator's [`ProtocolError`].
    Protocol(ProtocolError),
    /// The transport refused a request or a reply never arrived — the service
    /// is shutting down or a shard died.
    TransportFailure,
}

impl From<ProtocolError> for ServiceError {
    fn from(e: ProtocolError) -> Self {
        ServiceError::Protocol(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Protocol(e) => write!(f, "{e}"),
            ServiceError::TransportFailure => write!(f, "transport failed to deliver a reply"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The outcome of a completed service read.
#[derive(Debug, Clone)]
pub struct ServiceReadOutcome {
    /// The freshest safe entry.
    pub entry: Entry,
    /// The quorum that was contacted.
    pub quorum: ServerSet,
}

/// A closed-loop protocol client bound to a quorum system, a transport, and a
/// failure-detector view.
#[derive(Debug)]
pub struct ServiceClient<'s, Q: QuorumSystem + ?Sized, T: Transport + ?Sized> {
    system: &'s Q,
    transport: &'s T,
    responsive: ServerSet,
    b: usize,
    reply_deadline: Duration,
    next_request_id: u64,
    /// The client's one reply sink, shared by every operation it ever issues.
    /// Stragglers from aborted operations are filtered by id, so the mailbox
    /// never needs replacing.
    reply_mailbox: Arc<ReplyMailbox>,
    /// Scratch buffers reused across operations (fan-out requests, drained
    /// replies): the steady-state hot path allocates nothing.
    fanout: Vec<Request>,
    drained: Vec<Reply>,
}

impl<'s, Q: QuorumSystem + ?Sized, T: Transport + ?Sized> ServiceClient<'s, Q, T> {
    /// Creates a client over `system` (masking level `b`) speaking through
    /// `transport`, with `responsive` as its failure detector's view.
    #[must_use]
    pub fn new(system: &'s Q, transport: &'s T, responsive: ServerSet, b: usize) -> Self {
        ServiceClient {
            system,
            transport,
            responsive,
            b,
            reply_deadline: DEFAULT_REPLY_DEADLINE,
            next_request_id: 0,
            reply_mailbox: Arc::new(ReplyMailbox::new()),
            fanout: Vec::new(),
            drained: Vec::new(),
        }
    }

    /// Sets the per-reply wait bound (see [`crate::transport`]'s "no answer"
    /// contract: an accepted request is not a promise of a reply, so every
    /// wait must be bounded for the protocol to be hang-free).
    #[must_use]
    pub fn with_reply_deadline(mut self, deadline: Duration) -> Self {
        self.reply_deadline = deadline;
        self
    }

    /// The masking level the client assumes.
    #[must_use]
    pub fn masking_b(&self) -> usize {
        self.b
    }

    /// Fans `op` out to every member of `quorum` in one batched transport
    /// call and gathers one reply per member, matching by request id.
    ///
    /// Ids are strictly increasing across the client's lifetime, so a reply
    /// with an id below this operation's range is a straggler from an aborted
    /// earlier rendezvous and is silently dropped — the mailbox is never
    /// replaced, unlike the old channel-per-failure scheme.
    fn rendezvous(
        &mut self,
        quorum: &ServerSet,
        op: Operation,
    ) -> Result<Vec<(usize, Option<Entry>)>, ServiceError> {
        let expected = quorum.len();
        let first_id = self.next_request_id + 1;
        for server in quorum.iter() {
            self.next_request_id += 1;
            self.fanout.push(Request {
                server,
                op,
                request_id: self.next_request_id,
                reply: Arc::clone(&self.reply_mailbox) as ReplyHandle,
            });
        }
        if !self.transport.send_batch(&mut self.fanout) {
            // Partial delivery is possible; the id filter below absorbs any
            // replies the accepted members still produce.
            self.fanout.clear();
            return Err(ServiceError::TransportFailure);
        }
        let mut replies = Vec::with_capacity(expected);
        while replies.len() < expected {
            debug_assert!(self.drained.is_empty());
            if self
                .reply_mailbox
                .drain_timeout(self.reply_deadline, &mut self.drained)
                == 0
            {
                return Err(ServiceError::TransportFailure);
            }
            for reply in self.drained.drain(..) {
                if reply.request_id >= first_id {
                    replies.push((reply.server, reply.entry));
                }
            }
        }
        Ok(replies)
    }

    /// Writes `entry` to a quorum chosen by the access strategy.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] with [`ProtocolError::NoLiveQuorum`] when no
    /// quorum of responsive servers exists; [`ServiceError::TransportFailure`]
    /// when the service is gone.
    pub fn write<R: Rng>(&mut self, entry: Entry, rng: &mut R) -> Result<ServerSet, ServiceError> {
        let quorum = choose_access_quorum(self.system, &self.responsive, rng)?;
        self.rendezvous(&quorum, Operation::Write(entry))?;
        Ok(quorum)
    }

    /// Reads the register, masking up to `b` Byzantine replies.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] with [`ProtocolError::NoLiveQuorum`] /
    /// [`ProtocolError::NoSafeValue`] as in the simulator, or
    /// [`ServiceError::TransportFailure`] when the service is gone.
    pub fn read<R: Rng>(&mut self, rng: &mut R) -> Result<ServiceReadOutcome, ServiceError> {
        let quorum = choose_access_quorum(self.system, &self.responsive, rng)?;
        let replies = self.rendezvous(&quorum, Operation::Read)?;
        let (best, _safe) = resolve_read(&replies, self.b)?;
        Ok(ServiceReadOutcome {
            entry: best,
            quorum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::LoopbackService;
    use bqs_constructions::threshold::ThresholdSystem;
    use bqs_sim::fault::FaultPlan;
    use bqs_sim::server::ByzantineStrategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn read_your_write_through_the_loopback() {
        let system = ThresholdSystem::minimal_masking(1).unwrap(); // 4-of-5, b = 1
        let service = LoopbackService::spawn(&FaultPlan::none(5), 2, 3);
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let entry = Entry {
            timestamp: 1,
            value: 99,
        };
        client.write(entry, &mut rng).unwrap();
        let outcome = client.read(&mut rng).unwrap();
        assert_eq!(outcome.entry, entry);
        assert_eq!(outcome.quorum.len(), 4);
    }

    #[test]
    fn read_before_write_has_no_safe_value() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let service = LoopbackService::spawn(&FaultPlan::none(5), 1, 3);
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            client.read(&mut rng).unwrap_err(),
            ServiceError::Protocol(ProtocolError::NoSafeValue)
        );
    }

    #[test]
    fn fabrication_is_masked_concurrent_path() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let plan = FaultPlan::none(5)
            .with_byzantine(2, ByzantineStrategy::FabricateHighTimestamp { value: 666 });
        let service = LoopbackService::spawn(&plan, 2, 5);
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let entry = Entry {
            timestamp: 7,
            value: 10,
        };
        client.write(entry, &mut rng).unwrap();
        for _ in 0..20 {
            let outcome = client.read(&mut rng).unwrap();
            assert_eq!(outcome.entry, entry, "fabricated value leaked");
        }
    }

    /// A transport that accepts every request and never replies — the worst
    /// case the "no answer" contract permits (see [`crate::transport`]): an
    /// accepted request whose reply never arrives.
    #[derive(Debug)]
    struct BlackHoleTransport {
        n: usize,
        swallowed: std::sync::atomic::AtomicU64,
    }

    impl Transport for BlackHoleTransport {
        fn universe_size(&self) -> usize {
            self.n
        }

        fn send(&self, request: Request) -> bool {
            // Drop the reply sender on the floor: the client's channel hangs
            // up-less, exactly like a shard dying mid-request.
            drop(request);
            self.swallowed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            true
        }
    }

    #[test]
    fn accepted_request_with_no_reply_surfaces_transport_failure_not_a_hang() {
        // Satellite: `Transport::send` returning `true` is not a promise of a
        // reply. The client must bound its wait and surface the deadline as
        // `TransportFailure` so probe-and-fallback cannot hang.
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let transport = BlackHoleTransport {
            n: 5,
            swallowed: std::sync::atomic::AtomicU64::new(0),
        };
        let responsive = bqs_core::bitset::ServerSet::full(5);
        let mut client = ServiceClient::new(&system, &transport, responsive, 1)
            .with_reply_deadline(std::time::Duration::from_millis(50));
        let mut rng = StdRng::seed_from_u64(3);
        let started = std::time::Instant::now();
        let err = client
            .write(
                Entry {
                    timestamp: 1,
                    value: 1,
                },
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, ServiceError::TransportFailure);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "the deadline must fire promptly, not hang"
        );
        assert!(
            transport
                .swallowed
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 4
        );
        // Reads bound their waits the same way.
        let err = client.read(&mut rng).unwrap_err();
        assert_eq!(err, ServiceError::TransportFailure);
    }

    #[test]
    fn too_many_crashes_report_no_live_quorum() {
        let system = ThresholdSystem::minimal_masking(1).unwrap(); // tolerates 1 crash
        let plan = FaultPlan::none(5).with_crashed(0).with_crashed(1);
        let service = LoopbackService::spawn(&plan, 2, 5);
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(
            client
                .write(
                    Entry {
                        timestamp: 1,
                        value: 1
                    },
                    &mut rng
                )
                .unwrap_err(),
            ServiceError::Protocol(ProtocolError::NoLiveQuorum)
        );
    }
}
