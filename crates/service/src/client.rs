//! The concurrent strategy-driven protocol client.
//!
//! One [`ServiceClient`] runs on one client thread and performs closed-loop
//! masking-register operations against a [`Transport`]:
//!
//! 1. choose an access quorum with the *shared* probe-and-fallback policy
//!    ([`bqs_sim::client::choose_access_quorum`]) — sample from the system's
//!    access strategy (the certified-optimal one when the system is a
//!    [`bqs_core::strategic::StrategicQuorumSystem`]), retry a few times under
//!    sporadic failures, fall back to deterministic live-quorum discovery;
//! 2. fan the operation out to every quorum member in **one**
//!    [`Transport::send_batch`] call (one shard wake / one syscall per
//!    destination, not one per member);
//! 3. gather exactly one reply per member from the client's private reply
//!    mailbox, matching by request id — ids are strictly increasing across
//!    the client's lifetime, so stragglers from an aborted earlier operation
//!    are recognised and dropped without reallocating anything;
//! 4. for reads, resolve the value with the shared masking rule
//!    ([`bqs_sim::client::resolve_read`]): entries with at least `b + 1`
//!    supporters are safe, the freshest safe entry wins.
//!
//! The client is deliberately transport-agnostic and system-generic — it is
//! the same protocol logic as the single-threaded simulator's client, re-cast
//! over message passing so many of them can run against shared shards.

use std::sync::Arc;
use std::time::Duration;

use bqs_core::bitset::ServerSet;
use bqs_core::quorum::QuorumSystem;
use bqs_sim::client::{choose_access_quorum, resolve_read, ProtocolError};
use bqs_sim::server::{mix64, Entry};
use rand::Rng;

use crate::mailbox::{DrainStatus, ReplyHandle, ReplyMailbox};
use crate::metrics::ServiceMetrics;
use crate::transport::{Operation, Reply, Request, Transport};

/// Default bound on how long a client waits for a single reply before
/// declaring the transport dead. Quorum selection only ever targets
/// responsive servers, the loopback shards always answer, and `bqs-net`'s
/// socket transport converts expired per-request deadlines into in-band
/// no-answer replies — so under every workspace transport this fires only
/// when the service itself dies mid-request. It exists because
/// [`Transport::send`] returning `true` does *not* promise a reply ever
/// arrives (see the [`crate::transport`] module docs): without the bound the
/// masking protocol's probe-and-fallback would hang forever on a half-dead
/// service. Tune per deployment with [`ServiceClient::with_reply_deadline`].
const DEFAULT_REPLY_DEADLINE: Duration = Duration::from_secs(30);

/// Errors surfaced by the concurrent client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// A protocol-level failure (no live quorum / no safe value), identical in
    /// meaning to the simulator's [`ProtocolError`].
    Protocol(ProtocolError),
    /// The transport refused a request or a reply never arrived — the service
    /// is shutting down or a shard died.
    TransportFailure,
    /// The servers fenced the operation: the epoch this client is stamped
    /// with has been retired by a reconfiguration. `current` is the newest
    /// epoch a fencing server reported; the caller must fetch that epoch's
    /// configuration (universe + strategy), update the client, and retry.
    /// Never retried internally — retrying under the retired strategy can
    /// only be fenced again.
    EpochFenced {
        /// The newest epoch reported by a fencing server.
        current: u64,
    },
}

impl From<ProtocolError> for ServiceError {
    fn from(e: ProtocolError) -> Self {
        ServiceError::Protocol(e)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Protocol(e) => write!(f, "{e}"),
            ServiceError::TransportFailure => write!(f, "transport failed to deliver a reply"),
            ServiceError::EpochFenced { current } => {
                write!(f, "operation fenced: servers are at epoch {current}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Why one rendezvous attempt failed — the retry policy's input. All three
/// collapse to [`ServiceError::TransportFailure`] at the public surface, but
/// they are treated differently inside: refusals and quiet deadlines are
/// retryable transients, while a *closed* reply mailbox means the reply path
/// is gone for good (reader thread died, service torn down) and retrying the
/// same transport would only burn the backoff budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RendezvousFailure {
    /// The transport refused at least one request of the fan-out.
    Refused,
    /// The reply deadline passed with replies still missing; the transport
    /// may merely be slow.
    TimedOut,
    /// The reply mailbox reported closure: no reply can ever arrive.
    Closed,
    /// A server fenced the request: the client's epoch is retired. Carries
    /// the newest epoch a fencing server reported. Terminal for the retry
    /// loop — only a configuration refresh can make progress.
    Fenced(u64),
}

/// The outcome of a completed service read.
#[derive(Debug, Clone)]
pub struct ServiceReadOutcome {
    /// The freshest safe entry.
    pub entry: Entry,
    /// The quorum that was contacted.
    pub quorum: ServerSet,
}

/// A closed-loop protocol client bound to a quorum system, a transport, and a
/// failure-detector view.
#[derive(Debug)]
pub struct ServiceClient<'s, Q: QuorumSystem + ?Sized, T: Transport + ?Sized> {
    system: &'s Q,
    transport: &'s T,
    responsive: ServerSet,
    b: usize,
    reply_deadline: Duration,
    /// Client identity stamped on every request (see [`Request::origin`]).
    origin: u64,
    /// The reconfiguration epoch stamped on every request (see
    /// [`Request::epoch`]). Advanced by the epoch layer when it installs a
    /// re-certified strategy.
    epoch: u64,
    /// Retry budget per operation (0 = fail on the first transport failure).
    retry_limit: u32,
    /// Base backoff doubled per retry attempt, jittered to `[0.5, 1.5)`.
    retry_backoff: Duration,
    /// Optional degradation accounting (drops/timeouts/retries/aborts).
    metrics: Option<Arc<ServiceMetrics>>,
    next_request_id: u64,
    /// The client's one reply sink, shared by every operation it ever issues.
    /// Stragglers from aborted operations are filtered by id, so the mailbox
    /// never needs replacing.
    reply_mailbox: Arc<ReplyMailbox>,
    /// Scratch buffers reused across operations (fan-out requests, drained
    /// replies): the steady-state hot path allocates nothing.
    fanout: Vec<Request>,
    drained: Vec<Reply>,
}

impl<'s, Q: QuorumSystem + ?Sized, T: Transport + ?Sized> ServiceClient<'s, Q, T> {
    /// Creates a client over `system` (masking level `b`) speaking through
    /// `transport`, with `responsive` as its failure detector's view.
    #[must_use]
    pub fn new(system: &'s Q, transport: &'s T, responsive: ServerSet, b: usize) -> Self {
        ServiceClient {
            system,
            transport,
            responsive,
            b,
            reply_deadline: DEFAULT_REPLY_DEADLINE,
            origin: 0,
            epoch: 0,
            retry_limit: 0,
            retry_backoff: Duration::from_millis(1),
            metrics: None,
            next_request_id: 0,
            reply_mailbox: Arc::new(ReplyMailbox::new()),
            fanout: Vec::new(),
            drained: Vec::new(),
        }
    }

    /// Sets the per-reply wait bound (see [`crate::transport`]'s "no answer"
    /// contract: an accepted request is not a promise of a reply, so every
    /// wait must be bounded for the protocol to be hang-free).
    #[must_use]
    pub fn with_reply_deadline(mut self, deadline: Duration) -> Self {
        self.reply_deadline = deadline;
        self
    }

    /// Sets the client identity stamped on every request as
    /// [`Request::origin`]. Defaults to 0; give each client of a shared
    /// in-process service a distinct origin when per-client adversaries are in
    /// play (the socket path derives origins from connections instead).
    #[must_use]
    pub fn with_origin(mut self, origin: u64) -> Self {
        self.origin = origin;
        self
    }

    /// Sets the epoch stamped on every request this client issues (see
    /// [`Request::epoch`]). Defaults to 0 — correct for any service that has
    /// never reconfigured.
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Advances the epoch stamp mid-lifetime — what the epoch layer calls
    /// after installing a re-certified strategy. Must only be called between
    /// operations (it takes `&mut self`, so the borrow checker enforces
    /// that); every in-flight access has already completed or failed, which
    /// is exactly the "drain epoch e before sampling from e + 1" rule.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The epoch currently stamped on requests.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Replaces the failure-detector view — paired with [`set_epoch`] when a
    /// reconfiguration shrinks the universe to the surviving servers.
    ///
    /// [`set_epoch`]: ServiceClient::set_epoch
    pub fn set_responsive(&mut self, responsive: ServerSet) {
        self.responsive = responsive;
    }

    /// Enables graceful degradation: up to `limit` retries per operation after
    /// a refused send or an expired reply deadline, sleeping an exponentially
    /// doubled `base_backoff` jittered to `[0.5, 1.5)` between attempts (the
    /// same deterministic splitmix64 jitter the socket transport uses for
    /// reconnects). A *closed* reply path is never retried — closure means no
    /// reply can ever arrive (see [`DrainStatus::Closed`]), so the operation
    /// aborts immediately. Protocol-level errors (no live quorum, no safe
    /// value) are never retried either: they are answers, not failures.
    #[must_use]
    pub fn with_retries(mut self, limit: u32, base_backoff: Duration) -> Self {
        self.retry_limit = limit;
        self.retry_backoff = base_backoff;
        self
    }

    /// Attaches degradation accounting: timeouts, retries and aborts observed
    /// by this client are recorded into `metrics` (fault-injecting transports
    /// record drops into the same sink).
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<ServiceMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The client's reply mailbox — exposed so tests and harnesses can model
    /// reply-path death (closing it from outside) and assert the client fails
    /// fast instead of burning its deadline.
    #[must_use]
    pub fn reply_mailbox(&self) -> &Arc<ReplyMailbox> {
        &self.reply_mailbox
    }

    /// The masking level the client assumes.
    #[must_use]
    pub fn masking_b(&self) -> usize {
        self.b
    }

    /// Fans `op` out to every member of `quorum` in one batched transport
    /// call and gathers one reply per member, matching by request id.
    ///
    /// Ids are strictly increasing across the client's lifetime, so a reply
    /// with an id below this operation's range is a straggler from an aborted
    /// earlier rendezvous and is silently dropped — the mailbox is never
    /// replaced, unlike the old channel-per-failure scheme.
    fn rendezvous(
        &mut self,
        quorum: &ServerSet,
        op: Operation,
    ) -> Result<Vec<(usize, Option<Entry>)>, RendezvousFailure> {
        let expected = quorum.len();
        let first_id = self.next_request_id + 1;
        for server in quorum.iter() {
            self.next_request_id += 1;
            self.fanout.push(Request {
                server,
                op,
                request_id: self.next_request_id,
                origin: self.origin,
                epoch: self.epoch,
                reply: Arc::clone(&self.reply_mailbox) as ReplyHandle,
            });
        }
        if !self.transport.send_batch(&mut self.fanout) {
            // Partial delivery is possible; the id filter below absorbs any
            // replies the accepted members still produce.
            self.fanout.clear();
            return Err(RendezvousFailure::Refused);
        }
        let started = std::time::Instant::now();
        let mut replies: Vec<(usize, Option<Entry>)> = Vec::with_capacity(expected);
        while replies.len() < expected {
            debug_assert!(self.drained.is_empty());
            match self
                .reply_mailbox
                .drain_timeout(self.reply_deadline, &mut self.drained)
            {
                DrainStatus::Drained(_) => {}
                DrainStatus::TimedOut => {
                    if let Some(metrics) = &self.metrics {
                        metrics.record_timeout();
                        // Silence past the deadline is per-server failure
                        // evidence: accuse exactly the members still missing.
                        for server in quorum.iter() {
                            if !replies.iter().any(|&(s, _)| s == server) {
                                metrics.record_server_no_answer(server);
                            }
                        }
                    }
                    return Err(RendezvousFailure::TimedOut);
                }
                // The reply path is gone: fail fast, never wait out the
                // deadline, and let the caller skip the retry loop entirely.
                DrainStatus::Closed => return Err(RendezvousFailure::Closed),
            }
            let mut fenced_at: Option<u64> = None;
            for reply in self.drained.drain(..) {
                // Straggler filter first: replies from an aborted earlier
                // rendezvous (id below this operation's range) carry an older
                // epoch stamp and possibly an older strategy — they must
                // neither add support nor fence this operation.
                if reply.request_id < first_id {
                    continue;
                }
                if reply.stale {
                    // The servers retired this client's epoch mid-operation.
                    fenced_at = Some(fenced_at.map_or(reply.epoch, |e| e.max(reply.epoch)));
                    continue;
                }
                // Epoch guard: a served reply must echo this operation's own
                // stamp. With the id filter above this is belt-and-braces —
                // but it is the invariant the masking argument rests on (no
                // quorum mixes replies gathered under two strategies), so it
                // is enforced here rather than assumed.
                if reply.epoch != self.epoch {
                    continue;
                }
                // Duplicate filter: a duplicating network must not let a
                // single Byzantine server reach b + 1 support by echo.
                if replies.iter().any(|&(server, _)| server == reply.server) {
                    continue;
                }
                if let Some(metrics) = &self.metrics {
                    // Failure-detector evidence. A write is acknowledged by
                    // an in-band None, so only reads can accuse a server of
                    // giving no protocol answer.
                    let answered = match op {
                        Operation::Write(_) => true,
                        Operation::Read => reply.entry.is_some(),
                    };
                    if answered {
                        metrics.record_server_answer(
                            reply.server,
                            started.elapsed().as_nanos() as u64,
                        );
                    } else {
                        metrics.record_server_no_answer(reply.server);
                    }
                }
                replies.push((reply.server, reply.entry));
            }
            if let Some(current) = fenced_at {
                return Err(RendezvousFailure::Fenced(current));
            }
        }
        Ok(replies)
    }

    /// Applies the retry policy after a failed rendezvous: returns `true` to
    /// retry (after the jittered backoff sleep), `false` to abort. Closure is
    /// terminal regardless of remaining budget. (Fencing never reaches here —
    /// the operation loops surface it as [`ServiceError::EpochFenced`]
    /// before consulting the retry policy.)
    fn back_off_or_abort(&self, failure: RendezvousFailure, attempt: &mut u32) -> bool {
        if failure == RendezvousFailure::Closed || *attempt >= self.retry_limit {
            if let Some(metrics) = &self.metrics {
                metrics.record_abort();
            }
            return false;
        }
        *attempt += 1;
        if let Some(metrics) = &self.metrics {
            metrics.record_retry();
        }
        let base = self.retry_backoff.as_nanos() as u64;
        let doubled = base.saturating_mul(1u64 << (*attempt - 1).min(16));
        // The same deterministic [0.5, 1.5) jitter shape as the socket
        // transport's reconnect backoff, keyed so concurrent clients desync.
        let key = mix64(self.origin ^ self.next_request_id ^ u64::from(*attempt));
        let factor = 0.5 + (key >> 11) as f64 / (1u64 << 53) as f64;
        let nanos = (doubled as f64 * factor) as u64;
        if nanos > 0 {
            std::thread::sleep(Duration::from_nanos(nanos));
        }
        true
    }

    /// Writes `entry` to a quorum chosen by the access strategy.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] with [`ProtocolError::NoLiveQuorum`] when no
    /// quorum of responsive servers exists; [`ServiceError::TransportFailure`]
    /// when the service is gone.
    pub fn write<R: Rng>(&mut self, entry: Entry, rng: &mut R) -> Result<ServerSet, ServiceError> {
        let mut attempt = 0u32;
        loop {
            let quorum = choose_access_quorum(self.system, &self.responsive, rng)?;
            match self.rendezvous(&quorum, Operation::Write(entry)) {
                Ok(_) => return Ok(quorum),
                Err(RendezvousFailure::Fenced(current)) => {
                    return Err(ServiceError::EpochFenced { current })
                }
                Err(failure) => {
                    if !self.back_off_or_abort(failure, &mut attempt) {
                        return Err(ServiceError::TransportFailure);
                    }
                }
            }
        }
    }

    /// Reads the register, masking up to `b` Byzantine replies.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] with [`ProtocolError::NoLiveQuorum`] /
    /// [`ProtocolError::NoSafeValue`] as in the simulator, or
    /// [`ServiceError::TransportFailure`] when the service is gone.
    pub fn read<R: Rng>(&mut self, rng: &mut R) -> Result<ServiceReadOutcome, ServiceError> {
        let mut attempt = 0u32;
        loop {
            let quorum = choose_access_quorum(self.system, &self.responsive, rng)?;
            match self.rendezvous(&quorum, Operation::Read) {
                Ok(replies) => {
                    let (best, _safe) = resolve_read(&replies, self.b)?;
                    return Ok(ServiceReadOutcome {
                        entry: best,
                        quorum,
                    });
                }
                Err(RendezvousFailure::Fenced(current)) => {
                    return Err(ServiceError::EpochFenced { current })
                }
                Err(failure) => {
                    if !self.back_off_or_abort(failure, &mut attempt) {
                        return Err(ServiceError::TransportFailure);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::LoopbackService;
    use bqs_constructions::threshold::ThresholdSystem;
    use bqs_sim::fault::FaultPlan;
    use bqs_sim::server::ByzantineStrategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn read_your_write_through_the_loopback() {
        let system = ThresholdSystem::minimal_masking(1).unwrap(); // 4-of-5, b = 1
        let service = LoopbackService::spawn(&FaultPlan::none(5), 2, 3);
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let entry = Entry {
            timestamp: 1,
            value: 99,
        };
        client.write(entry, &mut rng).unwrap();
        let outcome = client.read(&mut rng).unwrap();
        assert_eq!(outcome.entry, entry);
        assert_eq!(outcome.quorum.len(), 4);
    }

    #[test]
    fn read_before_write_has_no_safe_value() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let service = LoopbackService::spawn(&FaultPlan::none(5), 1, 3);
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            client.read(&mut rng).unwrap_err(),
            ServiceError::Protocol(ProtocolError::NoSafeValue)
        );
    }

    #[test]
    fn fabrication_is_masked_concurrent_path() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let plan = FaultPlan::none(5)
            .with_byzantine(2, ByzantineStrategy::FabricateHighTimestamp { value: 666 });
        let service = LoopbackService::spawn(&plan, 2, 5);
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let entry = Entry {
            timestamp: 7,
            value: 10,
        };
        client.write(entry, &mut rng).unwrap();
        for _ in 0..20 {
            let outcome = client.read(&mut rng).unwrap();
            assert_eq!(outcome.entry, entry, "fabricated value leaked");
        }
    }

    /// A transport that accepts every request and never replies — the worst
    /// case the "no answer" contract permits (see [`crate::transport`]): an
    /// accepted request whose reply never arrives.
    #[derive(Debug)]
    struct BlackHoleTransport {
        n: usize,
        swallowed: std::sync::atomic::AtomicU64,
    }

    impl Transport for BlackHoleTransport {
        fn universe_size(&self) -> usize {
            self.n
        }

        fn send(&self, request: Request) -> bool {
            // Drop the reply sender on the floor: the client's channel hangs
            // up-less, exactly like a shard dying mid-request.
            drop(request);
            self.swallowed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            true
        }
    }

    #[test]
    fn accepted_request_with_no_reply_surfaces_transport_failure_not_a_hang() {
        // Satellite: `Transport::send` returning `true` is not a promise of a
        // reply. The client must bound its wait and surface the deadline as
        // `TransportFailure` so probe-and-fallback cannot hang.
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let transport = BlackHoleTransport {
            n: 5,
            swallowed: std::sync::atomic::AtomicU64::new(0),
        };
        let responsive = bqs_core::bitset::ServerSet::full(5);
        let mut client = ServiceClient::new(&system, &transport, responsive, 1)
            .with_reply_deadline(std::time::Duration::from_millis(50));
        let mut rng = StdRng::seed_from_u64(3);
        let started = std::time::Instant::now();
        let err = client
            .write(
                Entry {
                    timestamp: 1,
                    value: 1,
                },
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, ServiceError::TransportFailure);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "the deadline must fire promptly, not hang"
        );
        assert!(
            transport
                .swallowed
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 4
        );
        // Reads bound their waits the same way.
        let err = client.read(&mut rng).unwrap_err();
        assert_eq!(err, ServiceError::TransportFailure);
    }

    /// A transport that refuses every request addressed to one server and
    /// acknowledges the rest in-band immediately — the partial-delivery shape
    /// `send_batch`'s contract documents.
    #[derive(Debug)]
    struct PartialRefusalTransport {
        n: usize,
        refuse_server: usize,
    }

    impl Transport for PartialRefusalTransport {
        fn universe_size(&self) -> usize {
            self.n
        }

        fn send(&self, request: Request) -> bool {
            if request.server == self.refuse_server {
                return false;
            }
            request.reply.complete(Reply {
                server: request.server,
                request_id: request.request_id,
                entry: None,
                epoch: request.epoch,
                stale: false,
            });
            true
        }
    }

    #[test]
    fn send_batch_partial_refusal_contract() {
        // Satellite: pin the documented contract of `Transport::send_batch` —
        // a `false` return may be *partial*: accepted requests still reply,
        // refused ones never will.
        let transport = PartialRefusalTransport {
            n: 5,
            refuse_server: 2,
        };
        let mailbox = Arc::new(ReplyMailbox::new());
        let mut batch: Vec<Request> = (0..4)
            .map(|server| Request {
                server,
                op: Operation::Read,
                request_id: 100 + server as u64,
                origin: 0,
                epoch: 0,
                reply: Arc::clone(&mailbox) as ReplyHandle,
            })
            .collect();
        assert!(
            !transport.send_batch(&mut batch),
            "a batch containing a refused request must return false"
        );
        assert!(batch.is_empty(), "send_batch drains the batch either way");
        let mut drained = Vec::new();
        let status = mailbox.drain_timeout(Duration::from_millis(200), &mut drained);
        assert_eq!(status.count(), 3, "exactly the accepted requests reply");
        assert!(
            drained.iter().all(|r| r.server != 2),
            "the refused request must never produce a reply"
        );
        // Waiting longer buys nothing: the refused id is answerless forever,
        // which is why the client must fall back on its deadline.
        drained.clear();
        assert_eq!(
            mailbox.drain_timeout(Duration::from_millis(50), &mut drained),
            DrainStatus::TimedOut
        );

        // Client level: a fan-out that touches the refused server surfaces
        // TransportFailure without hanging, and the stragglers the accepted
        // members produced are invisible to the next operation (id filter).
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let responsive = bqs_core::bitset::ServerSet::full(5);
        let metrics = Arc::new(ServiceMetrics::new(5));
        let mut client = ServiceClient::new(&system, &transport, responsive, 1)
            .with_reply_deadline(Duration::from_millis(100))
            .with_metrics(Arc::clone(&metrics));
        let mut rng = StdRng::seed_from_u64(9);
        let started = std::time::Instant::now();
        // Every 4-of-5 quorum except one contains server 2; drive until a
        // refusal has been observed (deterministic well within the bound).
        let mut saw_refusal = false;
        for _ in 0..32 {
            match client.read(&mut rng) {
                Err(ServiceError::TransportFailure) => {
                    saw_refusal = true;
                }
                Err(ServiceError::Protocol(ProtocolError::NoSafeValue)) => {
                    // The quorum avoiding server 2: all-None replies resolve
                    // to no safe value — stragglers were filtered, or this
                    // operation would have double-counted old acks.
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(saw_refusal);
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "refusals must fail fast, not serially burn deadlines"
        );
        assert!(metrics.aborts() > 0, "refused fan-outs count as aborts");
    }

    #[test]
    fn closed_reply_path_fails_fast_and_is_never_retried() {
        // Satellite: the reader-thread-death path. A client whose reply
        // mailbox closes mid-wait must learn it immediately — not burn its
        // deadline — and must not retry: closure is terminal.
        let transport = BlackHoleTransport {
            n: 5,
            swallowed: std::sync::atomic::AtomicU64::new(0),
        };
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let responsive = bqs_core::bitset::ServerSet::full(5);
        let metrics = Arc::new(ServiceMetrics::new(5));
        let mut client = ServiceClient::new(&system, &transport, responsive, 1)
            .with_reply_deadline(Duration::from_secs(30))
            .with_retries(5, Duration::from_millis(1))
            .with_metrics(Arc::clone(&metrics));
        // The reader thread dies: its teardown closes the client's sink.
        client.reply_mailbox().close();
        let mut rng = StdRng::seed_from_u64(4);
        let started = std::time::Instant::now();
        let err = client
            .write(
                Entry {
                    timestamp: 1,
                    value: 1,
                },
                &mut rng,
            )
            .unwrap_err();
        assert_eq!(err, ServiceError::TransportFailure);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "closure must preempt the 30 s deadline"
        );
        assert_eq!(metrics.retries(), 0, "a closed reply path is not retried");
        assert_eq!(metrics.aborts(), 1);
        assert_eq!(metrics.timeouts(), 0);
    }

    /// Refuses the first `failures` batches, then delegates to an inner
    /// loopback service — a transient outage for exercising the retry loop.
    #[derive(Debug)]
    struct FlakyTransport {
        inner: LoopbackService,
        failures: std::sync::atomic::AtomicU64,
    }

    impl Transport for FlakyTransport {
        fn universe_size(&self) -> usize {
            self.inner.universe_size()
        }

        fn send(&self, request: Request) -> bool {
            self.inner.send(request)
        }

        fn send_batch(&self, requests: &mut Vec<Request>) -> bool {
            use std::sync::atomic::Ordering;
            if self
                .failures
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                    (f > 0).then(|| f - 1)
                })
                .is_ok()
            {
                requests.clear();
                return false;
            }
            self.inner.send_batch(requests)
        }
    }

    #[test]
    fn bounded_retry_recovers_from_transient_refusals() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let transport = FlakyTransport {
            inner: LoopbackService::spawn(&FaultPlan::none(5), 2, 3),
            failures: std::sync::atomic::AtomicU64::new(2),
        };
        let responsive = transport.inner.responsive_set().clone();
        let metrics = Arc::new(ServiceMetrics::new(5));
        let mut client = ServiceClient::new(&system, &transport, responsive, 1)
            .with_retries(3, Duration::from_micros(100))
            .with_metrics(Arc::clone(&metrics));
        let mut rng = StdRng::seed_from_u64(11);
        let entry = Entry {
            timestamp: 1,
            value: 42,
        };
        // Two refusals, then success on the third attempt — inside the budget.
        client.write(entry, &mut rng).unwrap();
        assert_eq!(metrics.retries(), 2);
        assert_eq!(metrics.aborts(), 0);
        let outcome = client.read(&mut rng).unwrap();
        assert_eq!(outcome.entry, entry);

        // A budget smaller than the outage aborts with the tally to prove it.
        let transport = FlakyTransport {
            inner: LoopbackService::spawn(&FaultPlan::none(5), 2, 3),
            failures: std::sync::atomic::AtomicU64::new(10),
        };
        let responsive = transport.inner.responsive_set().clone();
        let metrics = Arc::new(ServiceMetrics::new(5));
        let mut client = ServiceClient::new(&system, &transport, responsive, 1)
            .with_retries(2, Duration::from_micros(100))
            .with_metrics(Arc::clone(&metrics));
        assert_eq!(
            client.write(entry, &mut rng).unwrap_err(),
            ServiceError::TransportFailure
        );
        assert_eq!(metrics.retries(), 2);
        assert_eq!(metrics.aborts(), 1);
    }

    #[test]
    fn fenced_operations_surface_the_servers_epoch_and_are_not_retried() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let service = LoopbackService::spawn(&FaultPlan::none(5), 2, 13);
        let metrics = Arc::new(ServiceMetrics::new(5));
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1)
            .with_retries(5, Duration::from_micros(100))
            .with_metrics(Arc::clone(&metrics));
        let mut rng = StdRng::seed_from_u64(21);
        let entry = Entry {
            timestamp: 1,
            value: 7,
        };
        client.write(entry, &mut rng).unwrap();

        // The service reconfigures past this client's epoch.
        service.epoch_gate().finalize(2);
        assert_eq!(
            client.write(entry, &mut rng).unwrap_err(),
            ServiceError::EpochFenced { current: 2 }
        );
        assert_eq!(
            client.read(&mut rng).unwrap_err(),
            ServiceError::EpochFenced { current: 2 }
        );
        assert_eq!(metrics.retries(), 0, "fencing must bypass the retry loop");
        assert_eq!(metrics.aborts(), 0, "fencing is a signal, not a failure");

        // The epoch layer's recovery: adopt the reported epoch and retry.
        client.set_epoch(2);
        let outcome = client.read(&mut rng).unwrap();
        assert_eq!(outcome.entry, entry, "state survives the fence");
        assert_eq!(client.epoch(), 2);
    }

    #[test]
    fn per_server_evidence_accumulates_from_reads_and_timeouts() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        // Server 1 is crashed: its read replies are in-band Nones.
        let plan = FaultPlan::none(5).with_crashed(1);
        let service = LoopbackService::spawn(&plan, 2, 17);
        let metrics = Arc::new(ServiceMetrics::new(5));
        let responsive = bqs_core::bitset::ServerSet::full(5);
        let mut client =
            ServiceClient::new(&system, &service, responsive, 1).with_metrics(Arc::clone(&metrics));
        let mut rng = StdRng::seed_from_u64(23);
        // Several writes so every *healthy* server holds a value before the
        // reads start — a healthy server with an empty register also answers
        // a read in-band `None`, which is (correctly) accusal evidence until
        // a write reaches it.
        for ts in 1..=6 {
            client
                .write(
                    Entry {
                        timestamp: ts,
                        value: 5,
                    },
                    &mut rng,
                )
                .unwrap();
        }
        for _ in 0..12 {
            let _ = client.read(&mut rng);
        }
        let answers = metrics.server_answer_counts();
        let accusals = metrics.server_no_answer_counts();
        assert!(
            accusals[1] > 0,
            "the crashed server must accumulate no-answer evidence: {accusals:?}"
        );
        assert!(
            answers[1] <= 6,
            "the crashed server's only possible answers are write acks: {answers:?}"
        );
        assert!(
            (0..5).filter(|&s| s != 1).all(|s| accusals[s] == 0),
            "healthy servers holding the value must not be accused: {accusals:?}"
        );
        assert!(answers[0] > 0 && metrics.server_latency_quantile(0, 0.99).is_some());
    }

    #[test]
    fn too_many_crashes_report_no_live_quorum() {
        let system = ThresholdSystem::minimal_masking(1).unwrap(); // tolerates 1 crash
        let plan = FaultPlan::none(5).with_crashed(0).with_crashed(1);
        let service = LoopbackService::spawn(&plan, 2, 5);
        let mut client = ServiceClient::new(&system, &service, service.responsive_set().clone(), 1);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(
            client
                .write(
                    Entry {
                        timestamp: 1,
                        value: 1
                    },
                    &mut rng
                )
                .unwrap_err(),
            ServiceError::Protocol(ProtocolError::NoLiveQuorum)
        );
    }
}
