//! Closed-loop concurrent load generation with online safety checking.
//!
//! [`run_service`] spins up a sharded [`LoopbackService`] from a [`FaultPlan`]
//! and drives it with many concurrent closed-loop clients (each a thread
//! running a [`ServiceClient`]), then folds per-client tallies and the
//! service's lock-free metrics into a [`ServiceReport`] — the concurrent
//! analogue of the simulator's `run_workload`.
//!
//! # Safety checking under concurrency
//!
//! The single-threaded simulator can compare every read against "the last
//! completed write" because it is the only actor. Under concurrent clients
//! that predicate is ill-defined (reads may race in-flight writes, which the
//! masking register legitimately serves old-or-new), so the runner checks the
//! two predicates that remain sound:
//!
//! * **authenticity** — writers derive each value deterministically from its
//!   globally unique timestamp ([`authentic_value`]); any read whose value
//!   does not match its timestamp, or whose timestamp was never allocated,
//!   returned a *fabricated* pair — precisely what `b + 1`-support masking
//!   must prevent while at most `b` servers are Byzantine;
//! * **read-your-writes** (single-writer configurations only) — when the
//!   designated writer reads, no write is in flight anywhere, so at least
//!   `b + 1` correct servers of any read quorum hold its last completed
//!   write's exact entry and the freshest safe timestamp cannot be older.
//!
//! Both checks flag real protocol violations with certainty (no false
//! positives), and the fabrication check is exactly the one a `> b` Byzantine
//! coalition defeats — the negative tests rely on it.

use std::time::Instant;

use bqs_core::quorum::QuorumSystem;
use bqs_sim::client::ProtocolError;
use bqs_sim::fault::FaultPlan;
use bqs_sim::server::{Entry, Timestamp, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{ServiceClient, ServiceError};
use crate::shard::{LoopbackService, TimestampOracle};
use crate::transport::Transport;

/// Configuration of a concurrent service workload.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of concurrent client threads.
    pub clients: usize,
    /// Number of shard worker threads owning the replicas.
    pub shards: usize,
    /// Closed-loop operations each client performs.
    pub ops_per_client: usize,
    /// Fraction of a *writer* client's operations that are writes (its first
    /// operation is always a write so the register is initialised; reader
    /// clients only read).
    pub write_fraction: f64,
    /// How many clients are writers (client ids `0..writers`). With exactly
    /// one writer the runner additionally checks read-your-writes on the
    /// writer's own reads.
    pub writers: usize,
    /// Base seed deriving every per-client and per-shard RNG.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            clients: 8,
            shards: 4,
            ops_per_client: 500,
            write_fraction: 0.2,
            writers: 1,
            seed: 0xb9_51ce,
        }
    }
}

/// The result of a concurrent service workload.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Total operations attempted across all clients.
    pub operations: u64,
    /// Writes that completed (full-quorum acknowledgement).
    pub writes_completed: u64,
    /// Reads that completed with a safe value.
    pub reads_completed: u64,
    /// Operations that found no live quorum (availability loss).
    pub unavailable_operations: u64,
    /// Reads whose safe set was empty. Before the first write lands this is
    /// the only possible cause; in multi-writer runs concurrent in-flight
    /// writes can also split a quorum's support below `b + 1` for every
    /// entry — legitimate masking-register behaviour, not a protocol bug.
    pub inconclusive_reads: u64,
    /// Reads that returned a fabricated pair or (single-writer runs) violated
    /// read-your-writes — must be zero whenever the fault plan respects `b`.
    pub safety_violations: u64,
    /// Operations lost to transport failure (service shutdown mid-run).
    pub transport_failures: u64,
    /// Wall-clock duration of the client phase.
    pub elapsed_seconds: f64,
    /// Full protocol round trips (completed writes and reads plus
    /// inconclusive reads) per wall-clock second.
    pub throughput_ops_per_sec: f64,
    /// Per-server delivered-message counts.
    pub access_counts: Vec<u64>,
    /// Operations that actually contacted a quorum (completed writes, safe
    /// reads, and inconclusive reads) — the denominator of
    /// [`ServiceReport::empirical_loads`]. Operations that found no live
    /// quorum send no messages, so counting them would bias the per-server
    /// frequency low under faulty plans.
    pub load_operations: u64,
    /// Per-server empirical load (accesses / quorum-contacting operations),
    /// the concurrent measurement compared against the certified `L(Q)`.
    pub empirical_loads: Vec<f64>,
    /// Upper bound on the median operation latency, nanoseconds.
    pub latency_p50_upper_ns: Option<u64>,
    /// Upper bound on the 99th-percentile operation latency, nanoseconds.
    pub latency_p99_upper_ns: Option<u64>,
}

impl ServiceReport {
    /// The busiest server's empirical access frequency.
    #[must_use]
    pub fn max_empirical_load(&self) -> f64 {
        self.empirical_loads.iter().copied().fold(0.0, f64::max)
    }

    /// True when no read violated authenticity or read-your-writes.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.safety_violations == 0
    }
}

/// The deterministic value writers store for timestamp `ts`.
///
/// Reads verify `value == authentic_value(timestamp)`; a Byzantine server
/// fabricating a pair (or equivocating randomly) cannot satisfy the relation
/// except by collision, so any mismatching read that clears the `b + 1`
/// support threshold is a genuine masking failure.
#[must_use]
pub fn authentic_value(ts: Timestamp) -> Value {
    ts.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23) ^ 0xD1B5_4A32_D192_ED03
}

/// Per-client tallies folded into the final report.
#[derive(Debug, Default, Clone, Copy)]
struct ClientTally {
    writes: u64,
    reads: u64,
    unavailable: u64,
    inconclusive: u64,
    violations: u64,
    transport: u64,
}

/// Runs a concurrent closed-loop workload of `config.clients` clients over
/// `system` (masking level `b`) against a sharded loopback service with the
/// failures described by `plan`.
///
/// Pass a [`bqs_core::strategic::StrategicQuorumSystem`] built from a
/// [`bqs_core::load::CertifiedLoad`] to drive the service with the
/// certified-optimal access strategy — the empirical per-server load then
/// converges to the certified `L(Q)`.
///
/// # Panics
///
/// Panics if the plan's universe differs from the system's, or the
/// configuration is degenerate (zero clients/shards/operations, or more
/// writers than clients).
#[must_use]
pub fn run_service<Q>(
    system: &Q,
    b: usize,
    plan: &FaultPlan,
    config: &ServiceConfig,
) -> ServiceReport
where
    Q: QuorumSystem + ?Sized,
{
    assert_eq!(
        plan.universe_size(),
        system.universe_size(),
        "fault plan and quorum system must cover the same universe"
    );
    assert!(config.shards > 0, "need at least one shard");
    let service = LoopbackService::spawn(plan, config.shards, config.seed);
    let report = run_service_on(&service, system, b, config);
    drop(service); // join shard workers before returning
    report
}

/// Runs the closed-loop workload against an **existing** service pool,
/// leaving the pool alive afterwards. This is the amortised path for
/// repeated-trial harnesses: spawn one [`LoopbackService`], then alternate
/// [`LoopbackService::reset_plan`] and `run_service_on` — per-trial thread
/// spin-up no longer dominates, which is what lets the availability
/// validation in `bench_service` run at `n ≥ 100`.
///
/// `config.shards` is ignored (the pool's shard count was fixed at spawn);
/// `config.seed` still derives every per-client RNG. The pool's metrics are
/// zeroed at entry so the report covers exactly this run.
///
/// # Panics
///
/// Panics if the service's universe differs from the system's, or the
/// configuration is degenerate (zero clients/operations, or more writers
/// than clients).
#[must_use]
pub fn run_service_on<Q>(
    service: &LoopbackService,
    system: &Q,
    b: usize,
    config: &ServiceConfig,
) -> ServiceReport
where
    Q: QuorumSystem + ?Sized,
{
    assert_eq!(
        service.universe_size(),
        system.universe_size(),
        "service and quorum system must cover the same universe"
    );
    assert!(config.clients > 0, "need at least one client");
    assert!(config.ops_per_client > 0, "need at least one operation");
    assert!(
        config.writers >= 1 && config.writers <= config.clients,
        "writers must be within 1..=clients"
    );

    service.metrics().reset();
    let clock = TimestampOracle::new();
    let single_writer = config.writers == 1;

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.clients);
        for client_id in 0..config.clients {
            let clock = &clock;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(
                    config.seed ^ 0x00c1_1e47_u64.wrapping_mul(client_id as u64 + 1),
                );
                let mut client =
                    ServiceClient::new(system, service, service.responsive_set().clone(), b);
                let is_writer = client_id < config.writers;
                let mut last_completed_write_ts: Timestamp = 0;
                let mut tally = ClientTally::default();
                for op in 0..config.ops_per_client {
                    let do_write =
                        is_writer && (op == 0 || rng.gen::<f64>() < config.write_fraction);
                    let op_started = Instant::now();
                    if do_write {
                        let ts = clock.allocate();
                        let entry = Entry {
                            timestamp: ts,
                            value: authentic_value(ts),
                        };
                        match client.write(entry, &mut rng) {
                            Ok(_) => {
                                tally.writes += 1;
                                last_completed_write_ts = ts;
                                service
                                    .metrics()
                                    .record_operation(op_started.elapsed().as_nanos() as u64);
                            }
                            Err(ServiceError::Protocol(ProtocolError::NoLiveQuorum)) => {
                                tally.unavailable += 1;
                            }
                            Err(ServiceError::Protocol(ProtocolError::NoSafeValue)) => {
                                unreachable!("writes cannot lack safe values")
                            }
                            Err(ServiceError::TransportFailure) => tally.transport += 1,
                            Err(ServiceError::EpochFenced { .. }) => {
                                unreachable!("the closed-loop harness never reconfigures")
                            }
                        }
                    } else {
                        match client.read(&mut rng) {
                            Ok(outcome) => {
                                tally.reads += 1;
                                service
                                    .metrics()
                                    .record_operation(op_started.elapsed().as_nanos() as u64);
                                let e = outcome.entry;
                                let fabricated = e.value != authentic_value(e.timestamp)
                                    || e.timestamp > clock.latest();
                                let stale_own_write = single_writer
                                    && is_writer
                                    && e.timestamp < last_completed_write_ts;
                                if fabricated || stale_own_write {
                                    tally.violations += 1;
                                }
                            }
                            Err(ServiceError::Protocol(ProtocolError::NoLiveQuorum)) => {
                                tally.unavailable += 1;
                            }
                            Err(ServiceError::Protocol(ProtocolError::NoSafeValue)) => {
                                // A full quorum rendezvous happened; only the
                                // safe set was empty. It is a completed round
                                // trip for throughput/latency purposes.
                                tally.inconclusive += 1;
                                service
                                    .metrics()
                                    .record_operation(op_started.elapsed().as_nanos() as u64);
                            }
                            Err(ServiceError::TransportFailure) => tally.transport += 1,
                            Err(ServiceError::EpochFenced { .. }) => {
                                unreachable!("the closed-loop harness never reconfigures")
                            }
                        }
                    }
                }
                tally
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("client threads do not panic"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut folded = ClientTally::default();
    for t in &tallies {
        folded.writes += t.writes;
        folded.reads += t.reads;
        folded.unavailable += t.unavailable;
        folded.inconclusive += t.inconclusive;
        folded.violations += t.violations;
        folded.transport += t.transport;
    }
    let operations = (config.clients * config.ops_per_client) as u64;
    let completed = folded.writes + folded.reads;
    // Inconclusive reads contacted a full quorum (the rendezvous succeeded,
    // only the safe set was empty), so they carry load; unavailable and
    // transport-failed operations did not.
    let load_operations = completed + folded.inconclusive;
    let metrics = service.metrics();
    ServiceReport {
        operations,
        writes_completed: folded.writes,
        reads_completed: folded.reads,
        unavailable_operations: folded.unavailable,
        inconclusive_reads: folded.inconclusive,
        safety_violations: folded.violations,
        transport_failures: folded.transport,
        elapsed_seconds: elapsed,
        // Throughput counts full protocol round trips, inconclusive reads
        // included — the same population the latency histogram records and
        // the load denominator normalises by.
        throughput_ops_per_sec: if elapsed > 0.0 {
            load_operations as f64 / elapsed
        } else {
            0.0
        },
        access_counts: metrics.access_counts(),
        load_operations,
        empirical_loads: metrics.empirical_loads(load_operations),
        latency_p50_upper_ns: metrics.latency().quantile_upper_ns(0.50),
        latency_p99_upper_ns: metrics.latency().quantile_upper_ns(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_constructions::prelude::*;
    use bqs_core::load::optimal_load_oracle;
    use bqs_core::strategic::StrategicQuorumSystem;
    use bqs_sim::server::ByzantineStrategy;

    #[test]
    fn failure_free_concurrent_run_is_safe_and_available() {
        let sys = MGridSystem::new(5, 2).unwrap();
        let report = run_service(
            &sys,
            2,
            &FaultPlan::none(25),
            &ServiceConfig {
                clients: 6,
                shards: 3,
                ops_per_client: 150,
                write_fraction: 0.3,
                writers: 1,
                seed: 42,
            },
        );
        assert!(report.is_safe(), "{report:?}");
        assert_eq!(report.unavailable_operations, 0);
        assert_eq!(report.transport_failures, 0);
        assert_eq!(report.operations, 900);
        assert_eq!(
            report.writes_completed + report.reads_completed + report.inconclusive_reads,
            900
        );
        assert!(report.writes_completed > 0 && report.reads_completed > 0);
        assert!(report.throughput_ops_per_sec > 0.0);
        assert!(report.latency_p50_upper_ns.is_some());
    }

    #[test]
    fn certified_strategy_load_converges_concurrently() {
        // The headline loop in miniature: 32 concurrent clients sampling the
        // certified-optimal strategy; the busiest server's frequency must sit
        // in the binomial band around the certified L(Q).
        let sys = MGridSystem::new(5, 2).unwrap();
        let n = sys.universe_size();
        let certified = optimal_load_oracle(&sys).unwrap();
        let strategic = StrategicQuorumSystem::from_certified(sys, &certified).unwrap();
        let config = ServiceConfig {
            clients: 32,
            shards: 4,
            ops_per_client: 150,
            write_fraction: 0.3,
            writers: 1,
            seed: 7,
        };
        let report = run_service(&strategic, 2, &FaultPlan::none(n), &config);
        assert!(report.is_safe(), "{report:?}");
        assert_eq!(report.unavailable_operations, 0);
        let l = certified.load;
        let ops = report.load_operations as f64;
        let sigma = (l * (1.0 - l) / ops).sqrt();
        let tolerance = sigma * (5.0 + (2.0 * (n as f64).ln()).sqrt());
        let empirical = report.max_empirical_load();
        assert!(
            (empirical - l).abs() <= tolerance,
            "empirical {empirical} vs certified {l} (tolerance {tolerance})"
        );
    }

    #[test]
    fn within_b_byzantine_plan_stays_safe() {
        let sys = ThresholdSystem::minimal_masking(2).unwrap(); // n = 9, b = 2
        let plan = FaultPlan::none(9)
            .with_byzantine(
                0,
                ByzantineStrategy::FabricateHighTimestamp { value: 999_999 },
            )
            .with_byzantine(5, ByzantineStrategy::Equivocate);
        let report = run_service(
            &sys,
            2,
            &plan,
            &ServiceConfig {
                clients: 8,
                shards: 3,
                ops_per_client: 120,
                write_fraction: 0.25,
                writers: 1,
                seed: 11,
            },
        );
        assert!(report.is_safe(), "{report:?}");
        assert_eq!(report.unavailable_operations, 0);
    }

    #[test]
    fn exceeding_b_byzantine_coalition_is_detected_concurrently() {
        // Negative control (satellite): 2b+1 colluding fabricators defeat the
        // b+1 support threshold, and the concurrent runner's authenticity
        // check must catch the leaked pair — exercising the safety checker
        // itself.
        let sys = ThresholdSystem::minimal_masking(1).unwrap(); // n = 5, b = 1
        let plan = FaultPlan::none(5)
            .with_byzantine(0, ByzantineStrategy::FabricateHighTimestamp { value: 666 })
            .with_byzantine(1, ByzantineStrategy::FabricateHighTimestamp { value: 666 })
            .with_byzantine(2, ByzantineStrategy::FabricateHighTimestamp { value: 666 });
        let report = run_service(
            &sys,
            1,
            &plan,
            &ServiceConfig {
                clients: 6,
                shards: 2,
                ops_per_client: 80,
                write_fraction: 0.2,
                writers: 1,
                seed: 13,
            },
        );
        assert!(
            report.safety_violations > 0,
            "3 fabricators against b = 1 must break the authenticity check: {report:?}"
        );
    }

    #[test]
    fn crashes_beyond_resilience_cause_unavailability_not_unsafety() {
        let sys = ThresholdSystem::minimal_masking(1).unwrap(); // 4-of-5, tolerates 1 crash
        let plan = FaultPlan::none(5).with_crashed(0).with_crashed(1);
        let report = run_service(
            &sys,
            1,
            &plan,
            &ServiceConfig {
                clients: 4,
                shards: 2,
                ops_per_client: 25,
                write_fraction: 0.5,
                writers: 1,
                seed: 17,
            },
        );
        assert_eq!(report.unavailable_operations, report.operations);
        assert!(report.is_safe());
        // No operation contacted a quorum, so the load denominator is zero
        // and every empirical load is zero — not biased by the failed ops.
        assert_eq!(report.load_operations, 0);
        assert!(report.empirical_loads.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn multi_writer_runs_disable_ryw_but_keep_authenticity() {
        let sys = ThresholdSystem::minimal_masking(2).unwrap();
        let report = run_service(
            &sys,
            2,
            &FaultPlan::none(9),
            &ServiceConfig {
                clients: 6,
                shards: 2,
                ops_per_client: 100,
                write_fraction: 0.5,
                writers: 3,
                seed: 23,
            },
        );
        assert!(report.is_safe(), "{report:?}");
        assert!(report.writes_completed >= 3);
    }

    #[test]
    fn pool_reuse_across_trials_matches_fresh_spawns() {
        // The amortised path (satellite): one pool, many plans. Each trial
        // must see exactly its own plan's availability and its own metrics.
        let sys = ThresholdSystem::minimal_masking(1).unwrap(); // 4-of-5
        let config = ServiceConfig {
            clients: 3,
            shards: 2,
            ops_per_client: 30,
            write_fraction: 0.5,
            writers: 1,
            seed: 29,
        };
        let mut service = LoopbackService::spawn(&FaultPlan::none(5), 2, 29);
        // Trial 1: healthy — fully available.
        let r1 = run_service_on(&service, &sys, 1, &config);
        assert_eq!(r1.unavailable_operations, 0);
        assert!(r1.is_safe());
        // Trial 2: two crashes exceed the resilience — fully unavailable,
        // and the metrics reset means no load leaks over from trial 1.
        service.reset_plan(&FaultPlan::none(5).with_crashed(0).with_crashed(1), 31);
        let r2 = run_service_on(&service, &sys, 1, &config);
        assert_eq!(r2.unavailable_operations, r2.operations);
        assert_eq!(r2.load_operations, 0);
        assert!(r2.access_counts.iter().all(|&c| c == 0));
        // Trial 3: healthy again — the crash plan does not stick.
        service.reset_plan(&FaultPlan::none(5), 37);
        let r3 = run_service_on(&service, &sys, 1, &config);
        assert_eq!(r3.unavailable_operations, 0);
        assert!(r3.is_safe());
    }

    #[test]
    fn authentic_value_is_timestamp_determined() {
        assert_eq!(authentic_value(7), authentic_value(7));
        assert_ne!(authentic_value(7), authentic_value(8));
    }
}
