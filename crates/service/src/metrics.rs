//! Lock-free service metrics.
//!
//! Shard workers and client threads record into plain relaxed atomics — no
//! locks anywhere on the hot path:
//!
//! * per-server access counters (one `AtomicU64` per server), the empirical
//!   side of the load comparison against the certified `L(Q)`;
//! * a fixed-bucket power-of-two latency histogram (64 buckets of
//!   `AtomicU64`), enough to read off tail percentiles without allocating or
//!   coordinating;
//! * operation counters feeding the throughput report.
//!
//! Relaxed ordering is sufficient throughout: every counter is a monotone
//! tally whose final value is read after the worker and client threads have
//! been joined, and nothing branches on intermediate values.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free power-of-two latency histogram over nanosecond samples.
///
/// Bucket `i` counts samples whose nanosecond value has bit length `i`
/// (i.e. `2^(i-1) <= ns < 2^i`, with bucket 0 for `ns == 0`), so the whole
/// range from 1 ns to ~584 years fits in 64 buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one latency sample, lock-free.
    pub fn record(&self, nanos: u64) {
        let bucket = (64 - nanos.leading_zeros()) as usize;
        self.buckets[bucket.min(63)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// An upper bound (bucket ceiling) on the `q`-quantile latency in
    /// nanoseconds, or `None` when the histogram is empty. `q` is clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn quantile_upper_ns(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << i.min(63) });
            }
        }
        None
    }

    /// A point estimate of the `q`-quantile latency in nanoseconds, or `None`
    /// when the histogram is empty. `q` is clamped to `[0, 1]`.
    ///
    /// The estimate is the **midpoint** of the bucket holding the quantile
    /// rank: bucket `i` covers `[2^(i-1), 2^i)`, so the estimate for `i >= 2`
    /// is `3 * 2^(i-2)`. With the true quantile `x` somewhere in the bucket,
    /// the bucket-resolution error bound is `estimate / x ∈ (0.75, 1.5]` —
    /// i.e. the reported p50/p99/p999 is within −25 % / +50 % of the exact
    /// sample quantile, a factor bounded by the power-of-two bucket width
    /// (compare [`LatencyHistogram::quantile_upper_ns`], whose one-sided
    /// ceiling can overshoot by 2×).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(match i {
                    0 => 0,
                    1 => 1,
                    _ => 3u64 << (i - 2),
                });
            }
        }
        None
    }

    /// A snapshot of the raw bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Shared lock-free counters for one service instance.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Per-server delivered-message counters.
    accesses: Vec<AtomicU64>,
    /// Completed operations (reads + writes that returned to the client).
    operations: AtomicU64,
    /// End-to-end operation latency.
    latency: LatencyHistogram,
    /// Requests known lost in transit (recorded by fault-injecting transports).
    drops: AtomicU64,
    /// Reply-deadline expiries observed by clients waiting on a rendezvous.
    timeouts: AtomicU64,
    /// Operation attempts retried after a refused send or an expired deadline.
    retries: AtomicU64,
    /// Operations abandoned after exhausting their retry budget (or failing
    /// terminally, e.g. a closed reply path).
    aborts: AtomicU64,
    /// Per-server count of protocol answers (a reply carrying an entry, or a
    /// write acknowledgement) — the "this server is alive" half of the
    /// failure-detector evidence.
    server_answers: Vec<AtomicU64>,
    /// Per-server count of non-answers: read replies with no entry (crashed
    /// or silent replicas) and quorum members that never replied before the
    /// rendezvous deadline. The accusing half of the evidence; the suspicion
    /// engine in `bqs-epoch` reads the answer/no-answer ratio.
    server_no_answers: Vec<AtomicU64>,
    /// Per-server round-trip latency histograms, fed by replies that did
    /// arrive. A timeout-inflation adversary — delaying answers to just
    /// under the deadline so the no-answer counters never move — shows up
    /// here as a per-server p99 far above the fleet's.
    server_latency: Vec<LatencyHistogram>,
}

impl ServiceMetrics {
    /// Fresh counters for a universe of `n` servers.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ServiceMetrics {
            accesses: (0..n).map(|_| AtomicU64::new(0)).collect(),
            operations: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            drops: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            server_answers: (0..n).map(|_| AtomicU64::new(0)).collect(),
            server_no_answers: (0..n).map(|_| AtomicU64::new(0)).collect(),
            server_latency: (0..n).map(|_| LatencyHistogram::new()).collect(),
        }
    }

    /// Number of servers the access counters cover.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.accesses.len()
    }

    /// Records one protocol message delivered to `server` (relaxed; called by
    /// shard workers on every request).
    pub fn record_access(&self, server: usize) {
        self.accesses[server].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed operation and its end-to-end latency.
    pub fn record_operation(&self, latency_nanos: u64) {
        self.operations.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency_nanos);
    }

    /// Records one request dropped in transit (chaos drops, partitions).
    pub fn record_drop(&self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one reply-deadline expiry seen by a waiting client.
    pub fn record_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retried operation attempt.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one abandoned operation.
    pub fn record_abort(&self) {
        self.aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one protocol answer from `server`, with the round-trip
    /// latency observed by the waiting client.
    pub fn record_server_answer(&self, server: usize, latency_nanos: u64) {
        self.server_answers[server].fetch_add(1, Ordering::Relaxed);
        self.server_latency[server].record(latency_nanos);
    }

    /// Records one non-answer from `server`: a read reply with no entry, or
    /// a quorum member that stayed silent past the rendezvous deadline.
    pub fn record_server_no_answer(&self, server: usize) {
        self.server_no_answers[server].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of per-server answer counts.
    #[must_use]
    pub fn server_answer_counts(&self) -> Vec<u64> {
        self.server_answers
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot of per-server non-answer counts.
    #[must_use]
    pub fn server_no_answer_counts(&self) -> Vec<u64> {
        self.server_no_answers
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Point estimate of `server`'s `q`-quantile round-trip latency
    /// (nanoseconds; see [`LatencyHistogram::quantile`] for the bucket
    /// error bound), or `None` when no reply from it was ever timed.
    #[must_use]
    pub fn server_latency_quantile(&self, server: usize, q: f64) -> Option<u64> {
        self.server_latency[server].quantile(q)
    }

    /// Requests known lost in transit so far.
    #[must_use]
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Reply-deadline expiries so far.
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Retried attempts so far.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Abandoned operations so far.
    #[must_use]
    pub fn aborts(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Snapshot of per-server access counts.
    #[must_use]
    pub fn access_counts(&self) -> Vec<u64> {
        self.accesses
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Completed operations so far.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations.load(Ordering::Relaxed)
    }

    /// The latency histogram.
    #[must_use]
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Zeroes every counter and histogram bucket. Callers must guarantee no
    /// recording thread is active across the call (the loopback's
    /// `reset_plan` does, by taking the service `&mut`); with recorders
    /// running the reset would be merely approximate, never unsound.
    pub fn reset(&self) {
        for a in &self.accesses {
            a.store(0, Ordering::Relaxed);
        }
        self.operations.store(0, Ordering::Relaxed);
        self.drops.store(0, Ordering::Relaxed);
        self.timeouts.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.aborts.store(0, Ordering::Relaxed);
        for b in &self.latency.buckets {
            b.store(0, Ordering::Relaxed);
        }
        for a in &self.server_answers {
            a.store(0, Ordering::Relaxed);
        }
        for a in &self.server_no_answers {
            a.store(0, Ordering::Relaxed);
        }
        for h in &self.server_latency {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Per-server empirical load: access count over the given operation
    /// count (callers pass the number of quorum-contacting operations) — the
    /// concurrent analogue of `bqs_sim::Cluster::empirical_loads`, whose
    /// maximum converges to the access strategy's induced system load.
    #[must_use]
    pub fn empirical_loads(&self, operations: u64) -> Vec<f64> {
        self.accesses
            .iter()
            .map(|a| a.load(Ordering::Relaxed) as f64 / operations.max(1) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_upper_ns(0.5), None);
        for ns in [1u64, 2, 3, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        // Median of {1, 2, 3, 1000, 1e6}: the bucket holding 3 (2 <= ns < 4
        // has bit length 2, ceiling 4).
        assert_eq!(h.quantile_upper_ns(0.5), Some(4));
        // Max bucket ceiling covers the 1 ms sample.
        assert!(h.quantile_upper_ns(1.0).unwrap() >= 1_000_000);
        assert_eq!(h.snapshot().iter().sum::<u64>(), 5);
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.quantile_upper_ns(1.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(0));
    }

    #[test]
    fn quantile_midpoints_on_a_known_sample_set() {
        // Samples 1..=1000 ns: exact p50 = 500, p99 = 990, p999 = 1000.
        let h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns);
        }
        // Rank 500 lands in bucket 9 ([256, 512), cumulative 511): midpoint
        // 3 * 2^7 = 384. Rank 990 and rank 1000 land in bucket 10
        // ([512, 1024)): midpoint 3 * 2^8 = 768.
        assert_eq!(h.quantile(0.50), Some(384));
        assert_eq!(h.quantile(0.99), Some(768));
        assert_eq!(h.quantile(0.999), Some(768));
        // The documented bucket-resolution bound: estimate within
        // (0.75, 1.5] of the exact sample quantile.
        for (est, exact) in [(384u64, 500u64), (768, 990), (768, 1000)] {
            let ratio = est as f64 / exact as f64;
            assert!(ratio > 0.75 && ratio <= 1.5, "ratio {ratio}");
        }
        // Empty histogram: no estimate.
        assert_eq!(LatencyHistogram::new().quantile(0.5), None);
        // Degenerate q values clamp instead of panicking.
        assert_eq!(h.quantile(-1.0), Some(1));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn degradation_counters_accumulate_and_reset() {
        let m = ServiceMetrics::new(2);
        m.record_drop();
        m.record_drop();
        m.record_timeout();
        m.record_retry();
        m.record_retry();
        m.record_retry();
        m.record_abort();
        assert_eq!(
            (m.drops(), m.timeouts(), m.retries(), m.aborts()),
            (2, 1, 3, 1)
        );
        m.reset();
        assert_eq!(
            (m.drops(), m.timeouts(), m.retries(), m.aborts()),
            (0, 0, 0, 0)
        );
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = ServiceMetrics::new(2);
        m.record_access(1);
        m.record_operation(123);
        m.reset();
        assert_eq!(m.access_counts(), vec![0, 0]);
        assert_eq!(m.operations(), 0);
        assert_eq!(m.latency().count(), 0);
        // And it keeps recording normally afterwards.
        m.record_access(0);
        assert_eq!(m.access_counts(), vec![1, 0]);
    }

    #[test]
    fn server_evidence_counters_accumulate_and_reset() {
        let m = ServiceMetrics::new(3);
        m.record_server_answer(0, 1_000);
        m.record_server_answer(0, 2_000);
        m.record_server_no_answer(1);
        m.record_server_no_answer(1);
        m.record_server_no_answer(1);
        assert_eq!(m.server_answer_counts(), vec![2, 0, 0]);
        assert_eq!(m.server_no_answer_counts(), vec![0, 3, 0]);
        assert!(m.server_latency_quantile(0, 0.5).unwrap() > 0);
        assert_eq!(m.server_latency_quantile(2, 0.5), None);
        m.reset();
        assert_eq!(m.server_answer_counts(), vec![0, 0, 0]);
        assert_eq!(m.server_no_answer_counts(), vec![0, 0, 0]);
        assert_eq!(m.server_latency_quantile(0, 0.5), None);
    }

    #[test]
    fn metrics_accounting() {
        let m = ServiceMetrics::new(3);
        m.record_access(0);
        m.record_access(0);
        m.record_access(2);
        m.record_operation(500);
        m.record_operation(700);
        assert_eq!(m.access_counts(), vec![2, 0, 1]);
        assert_eq!(m.operations(), 2);
        assert_eq!(m.universe_size(), 3);
        let loads = m.empirical_loads(2);
        assert_eq!(loads, vec![1.0, 0.0, 0.5]);
        assert_eq!(m.latency().count(), 2);
    }
}
