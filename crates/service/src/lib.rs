//! A concurrent, strategy-driven quorum service runtime.
//!
//! The rest of the workspace *certifies* the paper's two headline measures —
//! exact/bounded `F_p` and the column-generation-certified load `L(Q)` — and
//! the `bqs-sim` crate *demonstrates* the masking register one operation at a
//! time. This crate closes the remaining gap: it serves the same register
//! under **many concurrent clients** against **sharded replica state**, so the
//! certified numbers can be observed empirically under actual contention —
//! per-server access frequency converging to the certified `L(Q)`, and
//! unavailability under crash plans converging to `F_p`.
//!
//! * [`transport`] — the [`transport::Transport`] trait: protocol messages
//!   addressed to server indices with in-band replies, so the in-process
//!   loopback can later be swapped for a network backend;
//! * [`mailbox`] — [`mailbox::Mailbox`]: the swap-buffer queue
//!   (`Mutex<Vec>` + `Condvar`, drain the whole batch per wakeup) that
//!   carries every hot-path message, and [`mailbox::ReplySink`], the
//!   allocation-free completion handle replies are delivered through;
//! * [`shard`] — [`shard::LoopbackService`]: replicas partitioned across
//!   worker threads that own them outright (per-shard mailboxes, no locks),
//!   reusing the simulator's `Replica`/`FaultPlan` fault machinery, plus the
//!   [`shard::TimestampOracle`] ordering concurrent writers;
//! * [`metrics`] — lock-free relaxed-atomic per-server access counters, a
//!   fixed-bucket latency histogram, and throughput counters;
//! * [`client`] — [`client::ServiceClient`]: the masking read/write protocol
//!   over any [`bqs_core::quorum::QuorumSystem`], re-using the simulator's
//!   probe-and-fallback quorum selection and `b + 1`-support read resolution,
//!   recast over message passing;
//! * [`runner`] — [`runner::run_service`]: a closed-loop load generator
//!   (configurable client count, read/write mix, `FaultPlan` reuse) with
//!   online safety checking sound under concurrency (value authenticity plus
//!   single-writer read-your-writes); [`runner::run_service_on`] runs the
//!   same workload against an existing service so repeated trials can reuse
//!   one shard pool;
//! * [`openloop`] — [`openloop::run_open_loop`]: an open-loop generator
//!   (Poisson arrivals at a configured *offered* rate, virtual clients
//!   multiplexed on a few worker threads, operation pipelining) that works
//!   over any [`transport::Transport`] and exposes the saturation knee that
//!   closed-loop generation structurally cannot.
//!
//! Drive it with a [`bqs_core::strategic::StrategicQuorumSystem`] built from
//! [`bqs_core::load::optimal_load_oracle`]'s certified strategy and the
//! empirical load report validates the certified `L(Q)` end to end; the
//! `bench_service` binary in `bqs-bench` does exactly that for Grid, M-Grid,
//! FPP and boostFPP at paper sizes and emits `BENCH_service.json`.
//!
//! # Example
//!
//! ```
//! use bqs_constructions::prelude::*;
//! use bqs_service::prelude::*;
//! use bqs_sim::prelude::*;
//!
//! // A b = 1 masking threshold over 5 servers with one fabricating server,
//! // served by 2 shards and hammered by 4 concurrent clients.
//! let system = ThresholdSystem::minimal_masking(1).unwrap();
//! let plan = FaultPlan::none(5)
//!     .with_byzantine(2, ByzantineStrategy::FabricateHighTimestamp { value: 666 });
//! let report = run_service(
//!     &system,
//!     1,
//!     &plan,
//!     &ServiceConfig {
//!         clients: 4,
//!         shards: 2,
//!         ops_per_client: 50,
//!         ..ServiceConfig::default()
//!     },
//! );
//! assert!(report.is_safe());
//! assert_eq!(report.unavailable_operations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod mailbox;
pub mod metrics;
pub mod openloop;
pub mod runner;
pub mod shard;
pub mod transport;

pub use client::{ServiceClient, ServiceError, ServiceReadOutcome};
pub use mailbox::{DrainStatus, Mailbox, ReplyHandle, ReplyMailbox, ReplySink};
pub use metrics::{LatencyHistogram, ServiceMetrics};
pub use openloop::{
    run_open_loop, run_open_loop_at_epoch, run_open_loop_session, OpenLoopConfig, OpenLoopReport,
    OpenLoopSession,
};
pub use runner::{authentic_value, run_service, run_service_on, ServiceConfig, ServiceReport};
pub use shard::{LoopbackService, TimestampOracle};
pub use transport::{Operation, Reply, Request, Transport};

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::client::{ServiceClient, ServiceError, ServiceReadOutcome};
    pub use crate::mailbox::{DrainStatus, Mailbox, ReplyHandle, ReplyMailbox, ReplySink};
    pub use crate::metrics::{LatencyHistogram, ServiceMetrics};
    pub use crate::openloop::{
        run_open_loop, run_open_loop_at_epoch, run_open_loop_session, OpenLoopConfig,
        OpenLoopReport, OpenLoopSession,
    };
    pub use crate::runner::{
        authentic_value, run_service, run_service_on, ServiceConfig, ServiceReport,
    };
    pub use crate::shard::{LoopbackService, TimestampOracle};
    pub use crate::transport::{Operation, Reply, Request, Transport};
}
