//! Open-loop load generation: Poisson arrivals at a configured *offered*
//! rate, independent of service completions.
//!
//! The closed-loop generator ([`crate::runner::run_service`]) structurally
//! caps throughput at `clients / RTT`: when the service slows down, the
//! clients slow down with it, so offered load always equals completed load
//! and the latency-vs-load curve degenerates to a single operating point per
//! client count. An **open-loop** generator decouples the two — operations
//! arrive by a Poisson process at rate λ whether or not earlier operations
//! have completed — which is what exposes the *saturation knee*: below
//! capacity, achieved throughput tracks offered load and latency is flat;
//! past capacity, queues grow, latency explodes, and achieved throughput
//! pins at the service's capacity. That knee is the measurement connecting
//! the paper's load theory (`L(Q)` bounds how much capacity a strategy can
//! extract per server) to real service capacity.
//!
//! # Mechanics
//!
//! * `virtual_clients` logical clients are multiplexed onto `workers` OS
//!   threads. Each worker runs its own Poisson arrival process at
//!   `offered_rate / workers` (the superposition of independent Poisson
//!   streams is Poisson at the summed rate), tagging every arrival with a
//!   virtual-client id.
//! * Operations **pipeline**: a worker fires a new arrival's quorum fan-out
//!   without waiting for earlier operations, keeping up to
//!   `max_in_flight_per_worker` operations outstanding. Each fan-out goes
//!   through **one** [`Transport::send_batch`] call (one shard wake or one
//!   coalesced wire frame per destination), and replies come back through
//!   one swap-buffer reply mailbox per worker, drained in whole batches and
//!   matched by [`Reply::request_id`] (the ids encode the owning operation)
//!   — so thousands of in-flight operations share one completion path with
//!   no per-op channel allocation.
//! * When the in-flight cap is hit, further arrivals are **shed** (counted,
//!   never silently dropped) — the open-loop semantics stay honest while
//!   memory stays bounded far past the knee.
//! * Per-operation deadlines bound every wait ([`crate::transport`]'s "no
//!   answer" contract: an accepted request is not a promise of a reply), so
//!   the generator cannot hang on a half-dead transport.
//!
//! The generator is transport-generic: the loopback measures the in-process
//! ceiling, `bqs-net`'s socket transports measure a real network stack, and
//! `bench_net` sweeps offered rate across both to locate each backend's knee
//! (`BENCH_net.json`).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bqs_core::quorum::QuorumSystem;
use bqs_sim::client::{choose_access_quorum, resolve_read, ProtocolError};
use bqs_sim::server::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mailbox::{DrainStatus, ReplyHandle, ReplyMailbox};
use crate::metrics::{LatencyHistogram, ServiceMetrics};
use crate::runner::authentic_value;
use crate::shard::TimestampOracle;
use crate::transport::{Operation, Reply, Request, Transport};

/// Configuration of one open-loop measurement point.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Total offered arrival rate, operations per second, across all workers.
    pub offered_rate: f64,
    /// Total operations scheduled (the measurement length in arrivals, which
    /// keeps runs deterministic in size; wall-clock follows as
    /// `total_arrivals / offered_rate` plus drain).
    pub total_arrivals: usize,
    /// OS threads multiplexing the virtual clients.
    pub workers: usize,
    /// Logical clients the arrivals are attributed to.
    pub virtual_clients: usize,
    /// Fraction of arrivals that are writes.
    pub write_fraction: f64,
    /// In-flight operation cap per worker; arrivals beyond it are shed.
    pub max_in_flight_per_worker: usize,
    /// Per-operation deadline: an operation whose quorum replies have not all
    /// arrived within this window is abandoned and counted as timed out.
    pub op_deadline: Duration,
    /// How long after its last arrival a worker keeps draining in-flight
    /// operations before abandoning the rest.
    pub tail_deadline: Duration,
    /// Base seed deriving every per-worker RNG.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            offered_rate: 1_000.0,
            total_arrivals: 2_000,
            workers: 2,
            virtual_clients: 1_000,
            write_fraction: 0.2,
            max_in_flight_per_worker: 2_048,
            op_deadline: Duration::from_secs(10),
            tail_deadline: Duration::from_secs(10),
            seed: 0x09e4_100b,
        }
    }
}

/// The result of one open-loop measurement point.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The configured offered rate (ops/sec).
    pub offered_rate: f64,
    /// Arrivals actually scheduled (= `total_arrivals`).
    pub scheduled: u64,
    /// Writes that completed their full quorum rendezvous.
    pub completed_writes: u64,
    /// Reads that completed with a safe value.
    pub completed_reads: u64,
    /// Reads that completed their rendezvous with an empty safe set.
    pub inconclusive_reads: u64,
    /// Arrivals shed at the in-flight cap (offered-but-never-sent load).
    pub shed: u64,
    /// Operations abandoned at their deadline with replies still missing.
    pub timed_out: u64,
    /// Arrivals that found no live quorum to contact.
    pub no_live_quorum: u64,
    /// Requests the transport refused outright (service shutting down).
    pub rejected_sends: u64,
    /// Operations fenced by the servers' epoch gate (the generator's epoch
    /// stamp fell outside the acceptance window). Nonzero only when a
    /// reconfiguration finalises past the epoch this run was started with.
    pub fenced: u64,
    /// Reads that returned a fabricated (timestamp, value) pair.
    pub safety_violations: u64,
    /// Wall-clock seconds from first arrival to last completion.
    pub elapsed_seconds: f64,
    /// The arrival rate actually realised by the Poisson schedule
    /// (`scheduled` over the span up to the last arrival). For small runs
    /// this fluctuates around `offered_rate` by `~1/sqrt(scheduled)`;
    /// saturation judgements should compare achieved throughput against
    /// *this*, not the configured rate, or schedule noise reads as capacity.
    pub realized_offered_ops_per_sec: f64,
    /// Completed round trips (writes + safe reads + inconclusive reads) per
    /// wall-clock second — the *achieved* rate to compare against offered.
    pub achieved_ops_per_sec: f64,
    /// Operations that contacted a full quorum — the load-accounting
    /// denominator matching `ServiceReport::load_operations`.
    pub load_operations: u64,
    /// Peak operations simultaneously in flight across all workers (summed
    /// per-worker peaks; an upper bound on the true global peak).
    pub peak_in_flight: u64,
    /// Mean end-to-end operation latency, nanoseconds.
    pub latency_mean_ns: u64,
    /// Exact latency percentiles over every completed operation, ns.
    pub latency_p50_ns: u64,
    /// 90th percentile latency, ns.
    pub latency_p90_ns: u64,
    /// 99th percentile latency, ns.
    pub latency_p99_ns: u64,
    /// Maximum observed latency, ns.
    pub latency_max_ns: u64,
    /// p50 estimate from the shared lock-free 64-bucket histogram
    /// ([`LatencyHistogram::quantile`]: bucket midpoint, within −25 %/+50 %
    /// of the exact quantile). Zero when nothing completed. Reported
    /// alongside the exact percentiles so sweep harnesses can use the
    /// allocation-free path.
    pub latency_hist_p50_ns: u64,
    /// p99 histogram estimate, ns (same error bound as the p50).
    pub latency_hist_p99_ns: u64,
    /// p99.9 histogram estimate, ns (same error bound as the p50).
    pub latency_hist_p999_ns: u64,
}

impl OpenLoopReport {
    /// Completed round trips: full-rendezvous writes and reads (safe or
    /// inconclusive).
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed_writes + self.completed_reads + self.inconclusive_reads
    }

    /// True when no read returned a fabricated pair.
    #[must_use]
    pub fn is_safe(&self) -> bool {
        self.safety_violations == 0
    }

    /// Fraction of the offered arrivals that completed a round trip.
    #[must_use]
    pub fn completion_ratio(&self) -> f64 {
        if self.scheduled == 0 {
            return 1.0;
        }
        self.completed() as f64 / self.scheduled as f64
    }
}

/// One in-flight operation awaiting its quorum replies.
struct PendingOp {
    started: Instant,
    deadline: Instant,
    is_write: bool,
    quorum: bqs_core::bitset::ServerSet,
    replies: Vec<(usize, Option<Entry>)>,
}

/// Per-worker tallies folded into the final report.
#[derive(Debug, Default)]
struct WorkerTally {
    writes: u64,
    reads: u64,
    inconclusive: u64,
    shed: u64,
    timed_out: u64,
    no_live_quorum: u64,
    rejected: u64,
    fenced: u64,
    violations: u64,
    peak_in_flight: u64,
    latencies_ns: Vec<u64>,
    last_completion: Option<Instant>,
    last_arrival: Option<Instant>,
}

/// Drives `transport` with Poisson arrivals at `config.offered_rate` and
/// returns the achieved-rate / latency measurement. `responsive` is the
/// failure detector's view used for quorum selection (pass the server side's
/// view for in-process measurements, or a full set when no faults are
/// injected); `b` is the masking level applied to reads.
///
/// The register is primed with one synchronous write before measurement
/// starts (when a live quorum exists), so steady-state reads do not pay the
/// cold-register inconclusive penalty.
///
/// # Panics
///
/// Panics if the transport's universe differs from the system's or the
/// configuration is degenerate (zero rate/arrivals/workers/cap, or a
/// write fraction outside `[0, 1]`).
#[must_use]
pub fn run_open_loop<Q, T>(
    system: &Q,
    b: usize,
    transport: &T,
    responsive: &bqs_core::bitset::ServerSet,
    config: &OpenLoopConfig,
) -> OpenLoopReport
where
    Q: QuorumSystem + ?Sized,
    T: Transport + ?Sized,
{
    run_open_loop_at_epoch(system, b, transport, responsive, config, 0, None)
}

/// Ambient state an open-loop run shares with the longer-lived session it is
/// part of. Reconfiguration harnesses run several measurement phases against
/// one persistent service; each phase is one open-loop run, but the phases
/// must share a single [`TimestampOracle`] — the freshness half of the safety
/// check compares read timestamps against the *writer's* clock, and a clock
/// restarted per phase would misread every earlier phase's (perfectly
/// authentic) entries as fabrications.
#[derive(Debug, Default, Clone, Copy)]
pub struct OpenLoopSession<'a> {
    /// The epoch stamped on every request of this run.
    pub epoch: u64,
    /// Client-side metrics: per-server access counts and failure-detector
    /// evidence (`None` skips the accounting).
    pub metrics: Option<&'a ServiceMetrics>,
    /// The writer clock; `None` makes the run its own single-phase session
    /// with a fresh clock.
    pub clock: Option<&'a TimestampOracle>,
}

/// [`run_open_loop`] with an explicit epoch stamp and optional client-side
/// metrics — the entry point reconfiguration harnesses use. `epoch` is
/// stamped on every request (a service that has never reconfigured runs at
/// epoch 0); when `metrics` is given, completed operations record per-server
/// access counts (feeding [`ServiceMetrics::empirical_loads`]) and every
/// reply feeds the per-server failure-detector evidence the `bqs-epoch`
/// suspicion engine reads.
///
/// # Panics
///
/// As [`run_open_loop`]; additionally if `metrics` covers a different
/// universe than the system.
#[must_use]
pub fn run_open_loop_at_epoch<Q, T>(
    system: &Q,
    b: usize,
    transport: &T,
    responsive: &bqs_core::bitset::ServerSet,
    config: &OpenLoopConfig,
    epoch: u64,
    metrics: Option<&ServiceMetrics>,
) -> OpenLoopReport
where
    Q: QuorumSystem + ?Sized,
    T: Transport + ?Sized,
{
    run_open_loop_session(
        system,
        b,
        transport,
        responsive,
        config,
        &OpenLoopSession {
            epoch,
            metrics,
            clock: None,
        },
    )
}

/// [`run_open_loop_at_epoch`] as one phase of a multi-run session: the
/// session supplies the epoch stamp, the evidence metrics, and (crucially)
/// the shared writer clock — see [`OpenLoopSession`].
///
/// # Panics
///
/// As [`run_open_loop_at_epoch`].
#[must_use]
pub fn run_open_loop_session<Q, T>(
    system: &Q,
    b: usize,
    transport: &T,
    responsive: &bqs_core::bitset::ServerSet,
    config: &OpenLoopConfig,
    session: &OpenLoopSession<'_>,
) -> OpenLoopReport
where
    Q: QuorumSystem + ?Sized,
    T: Transport + ?Sized,
{
    let epoch = session.epoch;
    let metrics = session.metrics;
    if let Some(metrics) = metrics {
        assert_eq!(
            metrics.universe_size(),
            system.universe_size(),
            "metrics and quorum system must cover the same universe"
        );
    }
    assert_eq!(
        transport.universe_size(),
        system.universe_size(),
        "transport and quorum system must cover the same universe"
    );
    assert!(
        config.offered_rate > 0.0 && config.offered_rate.is_finite(),
        "offered rate must be positive"
    );
    assert!(config.total_arrivals > 0, "need at least one arrival");
    assert!(config.workers > 0, "need at least one worker");
    assert!(
        config.virtual_clients > 0,
        "need at least one virtual client"
    );
    assert!(
        config.max_in_flight_per_worker > 0,
        "need a positive in-flight cap"
    );
    assert!(
        (0.0..=1.0).contains(&config.write_fraction),
        "write fraction is a probability"
    );

    let owned_clock;
    let clock: &TimestampOracle = match session.clock {
        Some(shared) => shared,
        None => {
            owned_clock = TimestampOracle::new();
            &owned_clock
        }
    };
    prime_register(
        system,
        transport,
        responsive,
        clock,
        config.seed,
        epoch,
        config.op_deadline,
    );

    let workers = config.workers.min(config.total_arrivals);
    let per_worker_rate = config.offered_rate / workers as f64;
    let hist = LatencyHistogram::new();
    let started = Instant::now();
    let tallies: Vec<WorkerTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let hist = &hist;
            // Spread the remainder so exactly `total_arrivals` are scheduled.
            let quota = config.total_arrivals / workers
                + usize::from(worker_id < config.total_arrivals % workers);
            handles.push(scope.spawn(move || {
                worker_loop(
                    system,
                    b,
                    transport,
                    responsive,
                    clock,
                    hist,
                    config,
                    worker_id,
                    quota,
                    per_worker_rate,
                    epoch,
                    metrics,
                )
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop workers do not panic"))
            .collect()
    });

    let mut folded = WorkerTally::default();
    let mut last_completion = started;
    let mut last_arrival = started;
    for t in tallies {
        folded.writes += t.writes;
        folded.reads += t.reads;
        folded.inconclusive += t.inconclusive;
        folded.shed += t.shed;
        folded.timed_out += t.timed_out;
        folded.no_live_quorum += t.no_live_quorum;
        folded.rejected += t.rejected;
        folded.fenced += t.fenced;
        folded.violations += t.violations;
        folded.peak_in_flight += t.peak_in_flight;
        folded.latencies_ns.extend(t.latencies_ns);
        if let Some(at) = t.last_completion {
            last_completion = last_completion.max(at);
        }
        if let Some(at) = t.last_arrival {
            last_arrival = last_arrival.max(at);
        }
    }
    folded.latencies_ns.sort_unstable();
    let elapsed = (last_completion - started).as_secs_f64();
    let completed = folded.writes + folded.reads + folded.inconclusive;
    let quantile = |q: f64| -> u64 {
        if folded.latencies_ns.is_empty() {
            return 0;
        }
        let rank = ((q * folded.latencies_ns.len() as f64).ceil() as usize)
            .clamp(1, folded.latencies_ns.len());
        folded.latencies_ns[rank - 1]
    };
    let mean = if folded.latencies_ns.is_empty() {
        0
    } else {
        (folded
            .latencies_ns
            .iter()
            .map(|&l| u128::from(l))
            .sum::<u128>()
            / folded.latencies_ns.len() as u128) as u64
    };
    OpenLoopReport {
        offered_rate: config.offered_rate,
        scheduled: config.total_arrivals as u64,
        completed_writes: folded.writes,
        completed_reads: folded.reads,
        inconclusive_reads: folded.inconclusive,
        shed: folded.shed,
        timed_out: folded.timed_out,
        no_live_quorum: folded.no_live_quorum,
        rejected_sends: folded.rejected,
        fenced: folded.fenced,
        safety_violations: folded.violations,
        elapsed_seconds: elapsed,
        realized_offered_ops_per_sec: {
            let span = (last_arrival - started).as_secs_f64();
            if span > 0.0 {
                config.total_arrivals as f64 / span
            } else {
                config.offered_rate
            }
        },
        achieved_ops_per_sec: if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            0.0
        },
        load_operations: completed,
        peak_in_flight: folded.peak_in_flight,
        latency_mean_ns: mean,
        latency_p50_ns: quantile(0.50),
        latency_p90_ns: quantile(0.90),
        latency_p99_ns: quantile(0.99),
        latency_max_ns: folded.latencies_ns.last().copied().unwrap_or(0),
        latency_hist_p50_ns: hist.quantile(0.50).unwrap_or(0),
        latency_hist_p99_ns: hist.quantile(0.99).unwrap_or(0),
        latency_hist_p999_ns: hist.quantile(0.999).unwrap_or(0),
    }
}

/// Writes one authentic entry synchronously so steady-state reads find a
/// safe value. Best-effort: skipped when no live quorum exists or replies
/// do not arrive within the run's per-operation deadline (a lossy transport
/// can swallow a priming reply; waiting longer than any real operation
/// would only stall the measurement).
#[allow(clippy::too_many_arguments)]
fn prime_register<Q, T>(
    system: &Q,
    transport: &T,
    responsive: &bqs_core::bitset::ServerSet,
    clock: &TimestampOracle,
    seed: u64,
    epoch: u64,
    deadline: Duration,
) where
    Q: QuorumSystem + ?Sized,
    T: Transport + ?Sized,
{
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let Ok(quorum) = choose_access_quorum(system, responsive, &mut rng) else {
        return;
    };
    let ts = clock.allocate();
    let entry = Entry {
        timestamp: ts,
        value: authentic_value(ts),
    };
    let mailbox = Arc::new(ReplyMailbox::new());
    let mut fanout: Vec<Request> = quorum
        .iter()
        .map(|server| Request {
            server,
            op: Operation::Write(entry),
            request_id: u64::MAX - server as u64,
            origin: 0,
            epoch,
            reply: Arc::clone(&mailbox) as ReplyHandle,
        })
        .collect();
    let sent = fanout.len();
    let _ = transport.send_batch(&mut fanout);
    let deadline = Instant::now() + deadline;
    let mut gathered = 0usize;
    let mut drained = Vec::new();
    while gathered < sent {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let status = mailbox.drain_timeout(deadline - now, &mut drained);
        let got = status.count();
        if got == 0 {
            // TimedOut and Closed alike end the priming wait: nothing more
            // is coming (or worth waiting for) before the real run starts.
            break;
        }
        gathered += got;
        drained.clear();
    }
}

/// One worker's event loop: schedule Poisson arrivals, pipeline quorum
/// fan-outs (one batched transport call each), drain whole batches of
/// replies from the worker's mailbox, match them by request id, expire
/// deadlines.
#[allow(clippy::too_many_arguments)]
fn worker_loop<Q, T>(
    system: &Q,
    b: usize,
    transport: &T,
    responsive: &bqs_core::bitset::ServerSet,
    clock: &TimestampOracle,
    hist: &LatencyHistogram,
    config: &OpenLoopConfig,
    worker_id: usize,
    quota: usize,
    rate: f64,
    epoch: u64,
    metrics: Option<&ServiceMetrics>,
) -> WorkerTally
where
    Q: QuorumSystem + ?Sized,
    T: Transport + ?Sized,
{
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ 0x0be4_100bu64.wrapping_mul(worker_id as u64 + 1));
    let reply_mailbox = Arc::new(ReplyMailbox::new());
    let mut fanout: Vec<Request> = Vec::new();
    let mut drained: Vec<Reply> = Vec::new();
    let mut pending: HashMap<u64, PendingOp> = HashMap::new();
    let mut tally = WorkerTally::default();
    // Request ids encode (worker, operation): the low 8 bits distinguish the
    // members of one fan-out (transports need per-request uniqueness), the
    // rest is the operation key the reply is matched back to.
    let worker_tag = (worker_id as u64 + 1) << 48;
    let mut op_seq: u64 = 0;
    let vclients_here = (config.virtual_clients / config.workers.max(1)).max(1);

    let started = Instant::now();
    let mut launched = 0usize;
    let mut next_arrival = started + exp_gap(rate, &mut rng);
    let mut tail_end: Option<Instant> = None;

    loop {
        let now = Instant::now();

        // Arrival phase: fire every arrival whose time has come.
        while launched < quota && now >= next_arrival {
            launched += 1;
            next_arrival += exp_gap(rate, &mut rng);
            tally.last_arrival = Some(now);
            if pending.len() >= config.max_in_flight_per_worker {
                tally.shed += 1;
                continue;
            }
            // The virtual client this arrival belongs to (uniform attribution
            // — each of the worker's virtual clients is a Poisson source of
            // rate `rate / vclients_here`).
            let _vclient = rng.gen_range_u64(0, vclients_here as u64);
            let quorum = match choose_access_quorum(system, responsive, &mut rng) {
                Ok(q) => q,
                Err(ProtocolError::NoLiveQuorum) => {
                    tally.no_live_quorum += 1;
                    continue;
                }
                Err(ProtocolError::NoSafeValue) => unreachable!("selection cannot lack values"),
            };
            let is_write = rng.gen_bool(config.write_fraction);
            let op = if is_write {
                let ts = clock.allocate();
                Operation::Write(Entry {
                    timestamp: ts,
                    value: authentic_value(ts),
                })
            } else {
                Operation::Read
            };
            op_seq += 1;
            let op_key = worker_tag | (op_seq << 8);
            let expected = quorum.len();
            let op_started = Instant::now();
            debug_assert!(fanout.is_empty());
            for (member, server) in quorum.iter().enumerate() {
                fanout.push(Request {
                    server,
                    op,
                    request_id: op_key | member as u64,
                    origin: worker_id as u64 + 1,
                    epoch,
                    reply: Arc::clone(&reply_mailbox) as ReplyHandle,
                });
            }
            if !transport.send_batch(&mut fanout) {
                // The op is unaccounted on the wire; stragglers from a
                // partially delivered fan-out are dropped by the id match
                // below (no pending entry exists for them).
                fanout.clear();
                tally.rejected += 1;
                continue;
            }
            pending.insert(
                op_key,
                PendingOp {
                    started: op_started,
                    deadline: op_started + config.op_deadline,
                    is_write,
                    quorum,
                    replies: Vec::with_capacity(expected),
                },
            );
            tally.peak_in_flight = tally.peak_in_flight.max(pending.len() as u64);
        }

        // Completion criteria: all arrivals fired and nothing left in flight
        // (or the tail window has closed on what remains).
        if launched >= quota {
            if pending.is_empty() {
                break;
            }
            let tail = *tail_end.get_or_insert_with(|| Instant::now() + config.tail_deadline);
            if Instant::now() >= tail {
                tally.timed_out += pending.len() as u64;
                pending.clear();
                break;
            }
        }

        // Reply phase: wait until the next arrival is due (bounded so
        // deadline expiry stays responsive), then drain everything ready.
        let wait = if launched < quota {
            next_arrival
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(20))
        } else {
            Duration::from_millis(20)
        };
        match reply_mailbox.drain_timeout(wait, &mut drained) {
            DrainStatus::Drained(_) => {
                for reply in drained.drain(..) {
                    handle_reply(
                        reply,
                        &mut pending,
                        &mut tally,
                        b,
                        clock,
                        hist,
                        epoch,
                        metrics,
                    );
                }
            }
            DrainStatus::TimedOut => {}
            DrainStatus::Closed => {
                // The reply path died under us: every in-flight operation is
                // answerless forever. Account them as timed out and stop
                // instead of spinning on a dead mailbox until the deadline.
                tally.timed_out += pending.len() as u64;
                pending.clear();
                break;
            }
        }

        // Expiry phase: abandon operations past their deadline, accusing
        // every quorum member that never answered (per-server no-answer
        // evidence for the failure detector).
        let now = Instant::now();
        if pending.values().any(|op| now >= op.deadline) {
            let before = pending.len();
            pending.retain(|_, op| {
                if now < op.deadline {
                    return true;
                }
                if let Some(metrics) = metrics {
                    for server in op.quorum.iter() {
                        if !op.replies.iter().any(|&(s, _)| s == server) {
                            metrics.record_server_no_answer(server);
                        }
                    }
                }
                false
            });
            tally.timed_out += (before - pending.len()) as u64;
        }
    }
    tally
}

/// Matches one reply to its pending operation and resolves the operation
/// when the last quorum member has answered.
#[allow(clippy::too_many_arguments)]
fn handle_reply(
    reply: Reply,
    pending: &mut HashMap<u64, PendingOp>,
    tally: &mut WorkerTally,
    b: usize,
    clock: &TimestampOracle,
    hist: &LatencyHistogram,
    epoch: u64,
    metrics: Option<&ServiceMetrics>,
) {
    let op_key = reply.request_id & !0xff;
    if reply.stale {
        // A server's epoch gate fenced this operation: the whole fan-out is
        // unusable (a fenced operation must never complete with fewer-than-
        // quorum strategies mixed in), so the op is abandoned here. Fencing
        // is a configuration signal, not server misbehaviour — no accusal.
        if pending.remove(&op_key).is_some() {
            tally.fenced += 1;
        }
        return;
    }
    if reply.epoch != epoch {
        return; // cross-epoch stray: must never count as support
    }
    let Some(op) = pending.get_mut(&op_key) else {
        return; // straggler from an expired/rejected operation
    };
    if op.replies.iter().any(|&(server, _)| server == reply.server) {
        return; // duplicate delivery: a server's echo must not add support
    }
    if let Some(metrics) = metrics {
        // Failure-detector evidence: a write is answered by any ack; a read
        // is answered only by an entry (in-band `None` is a crashed replica
        // owner declining to serve — see the transport's no-answer contract).
        let answered = op.is_write || reply.entry.is_some();
        if answered {
            metrics.record_server_answer(reply.server, op.started.elapsed().as_nanos() as u64);
        } else {
            metrics.record_server_no_answer(reply.server);
        }
    }
    op.replies.push((reply.server, reply.entry));
    if op.replies.len() < op.quorum.len() {
        return;
    }
    let op = pending.remove(&op_key).expect("just observed");
    let latency = op.started.elapsed().as_nanos() as u64;
    if op.is_write {
        tally.writes += 1;
    } else {
        match resolve_read(&op.replies, b) {
            Ok((best, _)) => {
                tally.reads += 1;
                if best.value != authentic_value(best.timestamp) || best.timestamp > clock.latest()
                {
                    tally.violations += 1;
                }
            }
            Err(ProtocolError::NoSafeValue) => tally.inconclusive += 1,
            Err(ProtocolError::NoLiveQuorum) => unreachable!("resolution cannot lack quorums"),
        }
    }
    if let Some(metrics) = metrics {
        // Client-side load accounting: the completed operation touched every
        // member of its quorum once (matches the server-side definition, but
        // works across any transport backend).
        for server in op.quorum.iter() {
            metrics.record_access(server);
        }
        metrics.record_operation(latency);
    }
    tally.latencies_ns.push(latency);
    hist.record(latency);
    tally.last_completion = Some(Instant::now());
}

/// One exponential inter-arrival gap at `rate` arrivals per second.
fn exp_gap<R: Rng>(rate: f64, rng: &mut R) -> Duration {
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1]: the log is finite and non-positive.
    Duration::from_secs_f64(-(1.0 - u).ln() / rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::LoopbackService;
    use bqs_constructions::prelude::*;
    use bqs_sim::fault::FaultPlan;
    use bqs_sim::server::ByzantineStrategy;

    fn quick(rate: f64, arrivals: usize) -> OpenLoopConfig {
        OpenLoopConfig {
            offered_rate: rate,
            total_arrivals: arrivals,
            workers: 2,
            virtual_clients: 64,
            write_fraction: 0.3,
            max_in_flight_per_worker: 256,
            op_deadline: Duration::from_secs(10),
            tail_deadline: Duration::from_secs(10),
            seed: 7,
        }
    }

    #[test]
    fn accounting_identity_and_safety_on_loopback() {
        let system = GridSystem::new(5, 1).unwrap();
        let plan = FaultPlan::none(25);
        let service = LoopbackService::spawn(&plan, 2, 42);
        let report = run_open_loop(
            &system,
            1,
            &service,
            service.responsive_set(),
            &quick(2_000.0, 400),
        );
        assert_eq!(
            report.scheduled,
            report.completed()
                + report.shed
                + report.timed_out
                + report.no_live_quorum
                + report.rejected_sends
                + report.fenced,
            "every arrival must be accounted for exactly once: {report:?}"
        );
        assert_eq!(report.fenced, 0, "nothing reconfigures in this run");
        assert!(report.is_safe());
        // Far below the loopback's capacity: everything completes.
        assert_eq!(report.completed(), 400);
        assert!(report.completed_writes > 0 && report.completed_reads > 0);
        assert!(report.achieved_ops_per_sec > 0.0);
        assert!(report.latency_p50_ns > 0);
        assert!(report.latency_p50_ns <= report.latency_p99_ns);
        assert!(report.latency_p99_ns <= report.latency_max_ns);
        // Histogram estimates track the exact percentiles within the
        // documented bucket-resolution bound (−25 %/+50 %).
        assert!(report.latency_hist_p50_ns > 0);
        assert!(report.latency_hist_p50_ns <= report.latency_hist_p99_ns);
        assert!(report.latency_hist_p99_ns <= report.latency_hist_p999_ns);
        let ratio = report.latency_hist_p50_ns as f64 / report.latency_p50_ns as f64;
        assert!(ratio > 0.75 && ratio <= 1.5, "hist p50 off: {ratio}");
        assert!(report.peak_in_flight >= 1);
        // Access counts accumulated on the server side for the load check
        // (every completed operation contacted a quorum, which in Grid(5, 1)
        // is at least 9 servers wide).
        let accesses: u64 = service.metrics().access_counts().iter().sum();
        assert!(accesses >= report.load_operations * 9);
    }

    #[test]
    fn byzantine_fabrication_is_masked_under_open_loop() {
        let system = MGridSystem::new(5, 2).unwrap();
        let plan = FaultPlan::none(25)
            .with_byzantine(
                3,
                ByzantineStrategy::FabricateHighTimestamp { value: 0xbad },
            )
            .with_byzantine(
                17,
                ByzantineStrategy::FabricateHighTimestamp { value: 0xbad },
            );
        let service = LoopbackService::spawn(&plan, 2, 43);
        let report = run_open_loop(
            &system,
            2,
            &service,
            service.responsive_set(),
            &quick(2_000.0, 300),
        );
        assert!(report.is_safe(), "b = 2 masks two fabricators: {report:?}");
        assert!(report.completed_reads > 0);
    }

    #[test]
    fn in_flight_cap_sheds_instead_of_queueing_unboundedly() {
        let system = GridSystem::new(5, 1).unwrap();
        let plan = FaultPlan::none(25);
        let service = LoopbackService::spawn(&plan, 1, 44);
        let config = OpenLoopConfig {
            max_in_flight_per_worker: 1,
            workers: 1,
            // Offered far past what one pipelined slot can serve.
            offered_rate: 200_000.0,
            total_arrivals: 2_000,
            ..quick(0.0, 0)
        };
        let report = run_open_loop(&system, 1, &service, service.responsive_set(), &config);
        assert!(
            report.shed > 0,
            "cap of 1 must shed at this rate: {report:?}"
        );
        assert_eq!(
            report.scheduled,
            report.completed()
                + report.shed
                + report.timed_out
                + report.no_live_quorum
                + report.rejected_sends
                + report.fenced
        );
        assert!(report.is_safe());
    }

    #[test]
    fn crashes_beyond_resilience_surface_as_no_live_quorum() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        // 4 crashes out of 5 leave no live quorum (quorums need 4 of 5).
        let plan = FaultPlan::none(5)
            .with_crashed(0)
            .with_crashed(1)
            .with_crashed(2)
            .with_crashed(3);
        let service = LoopbackService::spawn(&plan, 1, 45);
        let report = run_open_loop(
            &system,
            1,
            &service,
            service.responsive_set(),
            &quick(1_000.0, 100),
        );
        assert_eq!(report.no_live_quorum, 100, "{report:?}");
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn client_side_metrics_accumulate_accesses_and_evidence() {
        let system = GridSystem::new(5, 1).unwrap();
        let plan = FaultPlan::none(25);
        let service = LoopbackService::spawn(&plan, 2, 48);
        let metrics = ServiceMetrics::new(25);
        let report = run_open_loop_at_epoch(
            &system,
            1,
            &service,
            service.responsive_set(),
            &quick(2_000.0, 200),
            0,
            Some(&metrics),
        );
        assert_eq!(report.completed(), 200);
        // Every completed op recorded one access per quorum member on the
        // *client-side* metrics (Grid(5, 1) quorums are at least 9 wide).
        let accesses: u64 = metrics.access_counts().iter().sum();
        assert!(accesses >= report.load_operations * 9);
        assert_eq!(metrics.operations(), report.completed());
        // Healthy servers produce overwhelmingly answer evidence. A few
        // accusals are expected early on: a read reaching a server before any
        // write has landed there is served an in-band `None`, which counts
        // against the server until its register fills.
        let answers: u64 = metrics.server_answer_counts().iter().sum();
        let accusals: u64 = metrics.server_no_answer_counts().iter().sum();
        assert!(answers > 0);
        assert!(
            accusals * 10 < answers,
            "healthy run: answers ({answers}) must dwarf accusals ({accusals})"
        );
    }

    #[test]
    fn fenced_epochs_fail_fast_and_account_as_fenced() {
        let system = GridSystem::new(5, 1).unwrap();
        let plan = FaultPlan::none(25);
        let service = LoopbackService::spawn(&plan, 2, 49);
        // The service has reconfigured past this generator's epoch: every
        // fan-out meets the gate and comes back stale.
        service.epoch_gate().finalize(3);
        let metrics = ServiceMetrics::new(25);
        let report = run_open_loop_at_epoch(
            &system,
            1,
            &service,
            service.responsive_set(),
            &quick(2_000.0, 200),
            0,
            Some(&metrics),
        );
        assert_eq!(report.completed(), 0);
        assert!(report.fenced > 0, "{report:?}");
        assert_eq!(
            report.scheduled,
            report.completed()
                + report.shed
                + report.timed_out
                + report.no_live_quorum
                + report.rejected_sends
                + report.fenced,
            "fenced arrivals stay inside the accounting identity: {report:?}"
        );
        // Fenced operations never count as load and never accuse servers.
        assert_eq!(metrics.access_counts().iter().sum::<u64>(), 0);
        assert_eq!(metrics.server_answer_counts().iter().sum::<u64>(), 0);
    }

    #[test]
    #[should_panic(expected = "offered rate")]
    fn zero_rate_is_rejected() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let plan = FaultPlan::none(5);
        let service = LoopbackService::spawn(&plan, 1, 46);
        let _ = run_open_loop(
            &system,
            1,
            &service,
            service.responsive_set(),
            &quick(0.0, 10),
        );
    }
}
