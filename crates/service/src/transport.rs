//! The service's message transport abstraction.
//!
//! Clients never touch replica state directly: every protocol message is a
//! [`Request`] addressed to a server index and handed to a [`Transport`],
//! which routes it to whatever owns that server's replica — the in-process
//! sharded loopback of [`crate::shard::LoopbackService`] today, a network
//! backend tomorrow. Replies travel back over the per-client channel embedded
//! in the request, so the transport itself is connectionless and the client
//! needs no server-side registration.

use std::sync::mpsc;

use bqs_sim::server::Entry;

/// A protocol operation addressed to one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Store a timestamped entry (the write half of the masking protocol).
    Write(Entry),
    /// Report the stored entry (the read half).
    Read,
}

/// One protocol message: an operation for `server`, with the channel the
/// reply must be sent on.
#[derive(Debug)]
pub struct Request {
    /// The server index the operation is addressed to.
    pub server: usize,
    /// The operation to perform.
    pub op: Operation,
    /// Where the owning shard must send the [`Reply`].
    pub reply: mpsc::Sender<Reply>,
}

/// A server's answer to a [`Request`].
///
/// Writes are acknowledged with `entry = None`; reads report the replica's
/// (possibly adversarial) entry, or `None` when the server is crashed or
/// stays silent. The loopback transport always produces a reply frame even
/// for unresponsive servers — "no answer" is represented in-band so clients
/// need no timeout machinery; quorum selection already avoids unresponsive
/// servers through the failure-detector view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// The replying server.
    pub server: usize,
    /// The reported entry (reads), or `None` (write acks, crashed reads).
    pub entry: Option<Entry>,
}

/// Routes protocol messages to replica owners.
///
/// Implementations must be callable from many client threads at once
/// (`Send + Sync`) and must eventually produce exactly one [`Reply`] on the
/// request's channel for every request accepted.
pub trait Transport: Send + Sync {
    /// The number of servers reachable through this transport.
    fn universe_size(&self) -> usize;

    /// Hands a request to the owner of `request.server`. Returns `false` when
    /// the destination is gone (service shutting down); the request is dropped
    /// and no reply will arrive.
    fn send(&self, request: Request) -> bool;
}
