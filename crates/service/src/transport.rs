//! The service's message transport abstraction.
//!
//! Clients never touch replica state directly: every protocol message is a
//! [`Request`] addressed to a server index and handed to a [`Transport`],
//! which routes it to whatever owns that server's replica — the in-process
//! sharded loopback of [`crate::shard::LoopbackService`], or a real socket
//! backend (`bqs-net`'s `SocketTransport`). Replies travel back through the
//! completion sink ([`crate::mailbox::ReplyHandle`]) embedded in the request,
//! so the transport itself is connectionless from the client's point of view
//! and the client needs no server-side registration.
//!
//! # Correlation
//!
//! Every request carries a caller-chosen [`Request::request_id`] that the
//! replica owner echoes verbatim in the matching [`Reply::request_id`]. A
//! closed-loop client that gathers exactly one reply per quorum member can
//! ignore it; anything that *multiplexes* — pipelined open-loop operations
//! sharing one reply channel, or a socket transport matching wire replies to
//! pending requests — relies on it. Transports must preserve it end to end.
//!
//! # The "no answer" contract
//!
//! `entry == None` in a [`Reply`] is the in-band representation of "this
//! server gave no protocol answer": write acknowledgements, reads served by
//! crashed or silent replicas, and — on deadline-enforcing transports — a
//! request whose answer did not arrive in time. Timeouts are the *failure
//! detector*: the transport converts "no answer within the deadline" into the
//! same in-band frame a crashed server produces, so the masking protocol's
//! `b + 1`-support rule treats lost messages and dead servers uniformly.
//!
//! What [`Transport::send`] returning `true` does **not** promise is that a
//! reply will ever arrive. The loopback always answers (its shards reply even
//! for crashed replicas) and `bqs-net`'s socket transport always answers
//! (a deadline sweeper synthesises the in-band no-answer frame), but the
//! trait cannot enforce liveness on implementations — a shard can die
//! mid-request, a transport can be torn down with requests in flight.
//! Clients therefore MUST bound every wait on the reply sink and surface
//! expiry as a transport-level failure rather than blocking forever;
//! [`crate::client::ServiceClient`] does exactly that (see
//! `ServiceClient::with_reply_deadline`), which is what keeps the masking
//! protocol's probe-and-fallback loop from hanging on a half-dead service.
//!
//! # Epoch stamps
//!
//! Every request and reply carries an **epoch stamp** — the reconfiguration
//! generation the sender believes is current. Replica owners gate requests
//! through an epoch window (`bqs-sim`'s `EpochGate`): a request whose epoch
//! falls inside the window is served and its reply echoes the request's
//! epoch; a request outside it is *fenced* — answered in-band with
//! [`Reply::stale`] set and the gate's current epoch, never served. Fencing
//! is what makes reconfiguration safe in flight: once servers finalise epoch
//! `e + 1`, a straggling epoch-`e` request cannot contribute a reply to any
//! quorum, so no read ever mixes replies gathered under two different access
//! strategies. Transports carry both fields verbatim; a service that has
//! never reconfigured runs entirely at epoch 0 and the gate accepts
//! everything.
//!
//! # Batching
//!
//! A quorum operation fans out to every member of the chosen quorum at once,
//! so the natural unit of work is a *batch* of requests, not one.
//! [`Transport::send_batch`] hands the whole fan-out over in a single call;
//! batching-aware transports (the sharded loopback, the socket transport)
//! exploit it to pay one lock+wake per destination shard and one syscall per
//! destination connection instead of one per request. The default
//! implementation degrades to a `send` loop, so the batch entry point is an
//! optimisation surface, never a semantic one: delivery, correlation, and the
//! no-answer contract are identical on both paths.

use bqs_sim::server::Entry;

pub use crate::mailbox::{ReplyHandle, ReplySink};

/// A protocol operation addressed to one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Store a timestamped entry (the write half of the masking protocol).
    Write(Entry),
    /// Report the stored entry (the read half).
    Read,
}

/// One protocol message: an operation for `server`, with the completion sink
/// the reply must be delivered to.
#[derive(Debug)]
pub struct Request {
    /// The server index the operation is addressed to.
    pub server: usize,
    /// The operation to perform.
    pub op: Operation,
    /// Caller-chosen correlation id, echoed verbatim in the reply. Closed-loop
    /// clients may pass anything (e.g. 0); multiplexing callers pass ids
    /// unique among their in-flight requests.
    pub request_id: u64,
    /// The identity of the requesting client as seen by the replica owner —
    /// what a Byzantine server keys *per-client* equivocation on.
    ///
    /// In-process transports carry it through verbatim; the socket path does
    /// NOT put it on the wire — a real adversary distinguishes clients by
    /// their connections, so `bqs-net`'s server stamps each request with the
    /// accepting connection's id instead (one pooled connection per client ⇒
    /// origin ≡ client). Correct replicas ignore it entirely.
    pub origin: u64,
    /// The reconfiguration epoch the client is operating in. Servers serve
    /// requests whose epoch falls inside their acceptance window and fence
    /// the rest (see the module docs); epoch 0 is the pre-reconfiguration
    /// state every service starts in.
    pub epoch: u64,
    /// Where the owning shard must deliver the [`Reply`]. A shared handle —
    /// cloning it is an atomic increment, not a channel allocation.
    pub reply: ReplyHandle,
}

/// A server's answer to a [`Request`].
///
/// Writes are acknowledged with `entry = None`; reads report the replica's
/// (possibly adversarial) entry, or `None` when the server is crashed, stays
/// silent, or — on deadline-enforcing transports — did not answer in time.
/// Every transport in the workspace produces a reply frame for every accepted
/// request: "no answer" is represented in-band (see the module docs), so
/// protocol code needs no per-transport timeout machinery. Clients still
/// bound their waits defensively, because `Transport` cannot make liveness a
/// type-level guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reply {
    /// The replying server.
    pub server: usize,
    /// The [`Request::request_id`] this reply answers, echoed verbatim.
    pub request_id: u64,
    /// The reported entry (reads), or `None` (write acks, crashed reads,
    /// expired deadlines).
    pub entry: Option<Entry>,
    /// For served requests: the request's epoch, echoed. For fenced requests
    /// (`stale == true`): the server's current epoch, which tells the lagging
    /// client what generation to re-synchronise to.
    pub epoch: u64,
    /// True when the server refused to serve the request because its epoch
    /// fell outside the acceptance window. A stale reply carries no protocol
    /// answer (`entry == None`) and must never count toward quorum support.
    pub stale: bool,
}

/// Routes protocol messages to replica owners.
///
/// Implementations must be callable from many client threads at once
/// (`Send + Sync`) and must eventually produce exactly one [`Reply`] on the
/// request's sink for every request accepted — with the request's id
/// echoed — except when the implementation itself dies with requests in
/// flight (see the module docs; clients bound their waits for this reason).
pub trait Transport: Send + Sync {
    /// The number of servers reachable through this transport.
    fn universe_size(&self) -> usize;

    /// Hands a request to the owner of `request.server`. Returns `false` when
    /// the destination is gone (service shutting down); the request is dropped
    /// and no reply will arrive.
    fn send(&self, request: Request) -> bool;

    /// Hands a whole fan-out of requests over at once, draining `requests`
    /// (its capacity is kept for reuse by the caller).
    ///
    /// Returns `false` if **any** request was refused. Delivery may be
    /// partial on refusal — accepted requests still get replies, refused ones
    /// never will — so a `false` return means "treat every outstanding id in
    /// this batch as potentially answerless and fall back on your deadline",
    /// exactly as for a `false` from [`Transport::send`].
    ///
    /// The default implementation is a plain `send` loop; batching-aware
    /// transports override it to coalesce per-shard wakes or per-connection
    /// writes. Semantics are identical either way (see the module docs).
    fn send_batch(&self, requests: &mut Vec<Request>) -> bool {
        let mut ok = true;
        for request in requests.drain(..) {
            ok &= self.send(request);
        }
        ok
    }
}
