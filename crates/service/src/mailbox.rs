//! Swap-buffer mailboxes and the reply-completion sink.
//!
//! Every queue on the request path used to be an `mpsc` channel, which costs
//! one allocation per channel, one atomic handoff per message, and one
//! futex wake per `recv`. At socket rates the wakes dominate: a shard worker
//! paid a park/unpark round trip *per operation*. [`Mailbox`] replaces that
//! with the classic swap-buffer scheme:
//!
//! * producers lock a plain `Mutex<Vec<T>>`, push, and signal the condvar
//!   **only when the queue was empty** (a consumer might be parked);
//! * the consumer swaps the whole queue against its private drain buffer
//!   under one lock acquisition and processes the batch lock-free.
//!
//! A batch of `k` messages therefore costs one wake and two lock
//! acquisitions total, instead of `k` of each — and both `Vec`s keep their
//! capacity, so the steady state allocates nothing.
//!
//! [`ReplySink`] is the completion half: a [`crate::transport::Request`]
//! carries an [`ReplyHandle`] (a shared sink) instead of a per-operation
//! `mpsc::Sender`, so issuing an operation no longer allocates a channel
//! pair. [`ReplyMailbox`] is the standard sink — clients drain whole batches
//! of replies per wakeup and match them back by
//! [`crate::transport::Reply::request_id`].

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::transport::Reply;

/// A multi-producer single-consumer swap-buffer queue (see module docs).
///
/// "Single-consumer" is a usage convention, not a type-level guarantee: any
/// number of threads may call the drain methods, but each drained batch goes
/// to exactly one of them.
#[derive(Debug)]
pub struct Mailbox<T> {
    state: Mutex<MailboxState<T>>,
    available: Condvar,
}

#[derive(Debug)]
struct MailboxState<T> {
    queue: Vec<T>,
    closed: bool,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox::new()
    }
}

impl<T> Mailbox<T> {
    /// An empty, open mailbox.
    #[must_use]
    pub fn new() -> Self {
        Mailbox {
            state: Mutex::new(MailboxState {
                queue: Vec::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues one item. Returns `false` (dropping the item) when the
    /// mailbox is closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("mailbox lock");
        if state.closed {
            return false;
        }
        let was_empty = state.queue.is_empty();
        state.queue.push(item);
        drop(state);
        if was_empty {
            // Only an empty->non-empty transition can have a parked consumer;
            // signalling on every push would reintroduce the per-op wake.
            self.available.notify_one();
        }
        true
    }

    /// Enqueues a whole batch under one lock acquisition, draining `items`
    /// (its capacity is kept for reuse). Returns `false` — with `items`
    /// drained and dropped — when the mailbox is closed. All-or-nothing:
    /// a closed mailbox accepts none of the batch.
    pub fn push_batch(&self, items: &mut Vec<T>) -> bool {
        if items.is_empty() {
            return !self.state.lock().expect("mailbox lock").closed;
        }
        let mut state = self.state.lock().expect("mailbox lock");
        if state.closed {
            items.clear();
            return false;
        }
        let was_empty = state.queue.is_empty();
        if was_empty && state.queue.capacity() < items.capacity() {
            // The producer's buffer is the bigger one: swap instead of copy.
            std::mem::swap(&mut state.queue, items);
        } else {
            state.queue.append(items);
        }
        drop(state);
        if was_empty {
            self.available.notify_one();
        }
        true
    }

    /// Closes the mailbox: subsequent pushes are refused, and drains return
    /// whatever is still queued before reporting closure.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("mailbox lock");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Number of items currently queued (diagnostic).
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("mailbox lock").queue.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until items are available or the mailbox is closed, then swaps
    /// the whole queue into `into` (which must be empty — the caller's drain
    /// buffer). Returns `false` only when the mailbox is closed *and* empty:
    /// the consumer's loop condition.
    pub fn drain_blocking(&self, into: &mut Vec<T>) -> bool {
        debug_assert!(into.is_empty(), "drain buffer must be consumed");
        let mut state = self.state.lock().expect("mailbox lock");
        while state.queue.is_empty() {
            if state.closed {
                return false;
            }
            state = self.available.wait(state).expect("mailbox lock");
        }
        std::mem::swap(&mut state.queue, into);
        true
    }

    /// Waits up to `timeout` for items, then swaps whatever is queued into
    /// `into` (which must be empty).
    ///
    /// The three-way [`DrainStatus`] distinguishes "empty because quiet" from
    /// "empty because the peer dropped": [`DrainStatus::TimedOut`] means the
    /// producer may still deliver (keep waiting or retry), while
    /// [`DrainStatus::Closed`] means no reply can ever arrive (the producer —
    /// e.g. a connection reader thread — died or shut down), so the caller
    /// should fail over immediately instead of burning its deadline. Backlog
    /// always wins: a closed mailbox with queued items drains them as
    /// [`DrainStatus::Drained`] first and reports closure only once empty,
    /// mirroring [`Mailbox::drain_blocking`].
    pub fn drain_timeout(&self, timeout: Duration, into: &mut Vec<T>) -> DrainStatus {
        debug_assert!(into.is_empty(), "drain buffer must be consumed");
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("mailbox lock");
        while state.queue.is_empty() {
            if state.closed {
                return DrainStatus::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return DrainStatus::TimedOut;
            }
            let (next, timed_out) = self
                .available
                .wait_timeout(state, deadline - now)
                .expect("mailbox lock");
            state = next;
            if timed_out.timed_out() && state.queue.is_empty() {
                return if state.closed {
                    DrainStatus::Closed
                } else {
                    DrainStatus::TimedOut
                };
            }
        }
        std::mem::swap(&mut state.queue, into);
        DrainStatus::Drained(into.len())
    }
}

/// Outcome of a [`Mailbox::drain_timeout`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainStatus {
    /// Items were drained into the caller's buffer (count is non-zero).
    Drained(usize),
    /// The deadline passed with nothing queued; the producer is merely quiet
    /// and may still deliver later.
    TimedOut,
    /// The mailbox is closed and empty: the producer is gone and nothing will
    /// ever arrive. Callers should fail fast rather than wait again.
    Closed,
}

impl DrainStatus {
    /// Number of items drained (zero for the empty outcomes).
    #[must_use]
    pub fn count(self) -> usize {
        match self {
            DrainStatus::Drained(n) => n,
            DrainStatus::TimedOut | DrainStatus::Closed => 0,
        }
    }

    /// True when the mailbox is known closed (no future delivery possible).
    #[must_use]
    pub fn is_closed(self) -> bool {
        self == DrainStatus::Closed
    }
}

/// A completion sink for [`Reply`]s — what a [`crate::transport::Request`]
/// carries in place of a per-operation channel sender.
///
/// Implementations must be callable from any thread. Delivering to a dead
/// client (a closed mailbox, a torn-down connection) is a silent no-op:
/// exactly the old "reply receiver dropped" semantics.
pub trait ReplySink: Send + Sync + std::fmt::Debug {
    /// Delivers one reply. Must not block beyond a short critical section.
    fn complete(&self, reply: Reply);
}

/// A shared, cloneable handle to a reply sink. Cloning is one atomic
/// increment — no channel allocation per operation.
pub type ReplyHandle = Arc<dyn ReplySink>;

/// The standard sink: a swap-buffer mailbox of replies, drained in whole
/// batches by the owning client.
pub type ReplyMailbox = Mailbox<Reply>;

impl ReplySink for ReplyMailbox {
    fn complete(&self, reply: Reply) {
        let _ = self.push(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_then_drain_returns_the_whole_batch() {
        let mb: Mailbox<u32> = Mailbox::new();
        assert!(mb.push(1));
        assert!(mb.push(2));
        assert!(mb.push(3));
        let mut batch = Vec::new();
        assert!(mb.drain_blocking(&mut batch));
        assert_eq!(batch, vec![1, 2, 3]);
        assert!(mb.is_empty());
    }

    #[test]
    fn push_batch_moves_everything_and_keeps_the_producer_buffer() {
        let mb: Mailbox<u32> = Mailbox::new();
        let mut producer = vec![7, 8, 9];
        assert!(mb.push_batch(&mut producer));
        assert!(producer.is_empty());
        assert!(producer.capacity() > 0 || mb.len() == 3);
        let mut batch = Vec::new();
        assert_eq!(
            mb.drain_timeout(Duration::from_millis(10), &mut batch),
            DrainStatus::Drained(3)
        );
        assert_eq!(batch, vec![7, 8, 9]);
    }

    #[test]
    fn close_refuses_pushes_but_drains_the_backlog() {
        let mb: Mailbox<u32> = Mailbox::new();
        assert!(mb.push(1));
        mb.close();
        assert!(!mb.push(2));
        let mut stale = vec![3];
        assert!(!mb.push_batch(&mut stale));
        assert!(stale.is_empty(), "a refused batch is dropped, not leaked");
        let mut batch = Vec::new();
        assert!(mb.drain_blocking(&mut batch), "backlog first");
        assert_eq!(batch, vec![1]);
        batch.clear();
        assert!(!mb.drain_blocking(&mut batch), "then closure");
    }

    #[test]
    fn drain_timeout_times_out_empty() {
        let mb: Mailbox<u32> = Mailbox::new();
        let mut batch = Vec::new();
        let started = Instant::now();
        assert_eq!(
            mb.drain_timeout(Duration::from_millis(20), &mut batch),
            DrainStatus::TimedOut
        );
        assert!(started.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn drain_timeout_distinguishes_closure_from_quiet() {
        // Backlog on a closed mailbox drains first, then closure is reported.
        let mb: Mailbox<u32> = Mailbox::new();
        assert!(mb.push(5));
        mb.close();
        let mut batch = Vec::new();
        assert_eq!(
            mb.drain_timeout(Duration::from_millis(10), &mut batch),
            DrainStatus::Drained(1)
        );
        assert_eq!(batch, vec![5]);
        batch.clear();
        let status = mb.drain_timeout(Duration::from_secs(5), &mut batch);
        assert_eq!(status, DrainStatus::Closed);
        assert!(status.is_closed());
        assert_eq!(status.count(), 0);
    }

    #[test]
    fn reader_thread_death_wakes_a_parked_drainer_with_closed() {
        // Regression for the shutdown-ordering bug: a consumer parked in
        // drain_timeout whose producer (e.g. a connection reader thread) dies
        // mid-wait must learn `Closed` promptly — well before its deadline —
        // instead of timing out ambiguously.
        let mb: Arc<Mailbox<u32>> = Arc::new(Mailbox::new());
        let reader = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                // The reader thread dies: its teardown path closes the mailbox.
                mb.close();
            })
        };
        let mut batch = Vec::new();
        let started = Instant::now();
        let status = mb.drain_timeout(Duration::from_secs(10), &mut batch);
        assert_eq!(status, DrainStatus::Closed);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "closure must preempt the deadline"
        );
        reader.join().unwrap();
    }

    #[test]
    fn blocked_consumer_is_woken_by_a_producer() {
        let mb: Arc<Mailbox<u32>> = Arc::new(Mailbox::new());
        let producer = {
            let mb = Arc::clone(&mb);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                assert!(mb.push(42));
            })
        };
        let mut batch = Vec::new();
        assert!(mb.drain_blocking(&mut batch));
        assert_eq!(batch, vec![42]);
        producer.join().unwrap();
    }

    #[test]
    fn reply_mailbox_is_a_sink() {
        let mb = Arc::new(ReplyMailbox::new());
        let handle: ReplyHandle = Arc::clone(&mb) as ReplyHandle;
        handle.complete(Reply {
            server: 3,
            request_id: 9,
            entry: None,
            epoch: 0,
            stale: false,
        });
        let mut batch = Vec::new();
        assert!(mb.drain_blocking(&mut batch));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].request_id, 9);
        // Completing into a closed mailbox is a silent no-op.
        mb.close();
        handle.complete(Reply {
            server: 0,
            request_id: 1,
            entry: None,
            epoch: 0,
            stale: false,
        });
        batch.clear();
        assert!(!mb.drain_blocking(&mut batch));
    }
}
