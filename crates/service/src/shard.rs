//! Sharded in-process replica ownership — the loopback [`Transport`].
//!
//! The universe of `n` replicas is partitioned round-robin across `shards`
//! worker threads. Each worker *owns* its replicas outright (no locks, no
//! sharing) and drains a private swap-buffer mailbox of [`Request`]s, so
//! replica state is only ever touched by one thread — the same single-writer
//! discipline a networked replica server would have, which is what lets a
//! network backend replace [`LoopbackService`] behind the [`Transport`] trait
//! without touching client code (`bqs-net`'s `SocketServer` in fact *wraps* a
//! `LoopbackService`, keeping one replica-ownership implementation).
//!
//! The mailbox is the batching stage of the request path ([`crate::mailbox`]):
//! a worker drains its **whole** backlog per wakeup and applies the drained
//! operations back-to-back while the replica state is cache-hot, so under
//! load a shard pays one lock acquisition and at most one futex wake per
//! batch instead of per operation. [`LoopbackService::send_batch`] completes
//! the picture on the producer side — a quorum fan-out is bucketed by owning
//! shard and each bucket lands in its mailbox under a single lock.
//!
//! Fault injection reuses the simulator's [`FaultPlan`]/[`Replica`] machinery
//! wholesale: a crashed replica ignores writes and reads as `None`, Byzantine
//! replicas answer through their attack strategy, and the service exposes the
//! failure-detector view ([`LoopbackService::responsive_set`]) that clients
//! use for probe-and-fallback quorum selection.
//!
//! Besides protocol requests, shard mailboxes accept two control messages:
//! [`LoopbackService::reset_plan`] swaps every shard's replicas for a fresh
//! set built from a new [`FaultPlan`] without respawning the worker threads
//! (repeated-trial harnesses — the availability validation in
//! `bench_service` — rely on this: per-trial thread spin-up used to dominate
//! at n ≥ 100), and [`LoopbackService::crash_servers`] kills a chosen set of
//! replicas *at runtime* through `&self`, which is what reconfiguration
//! harnesses use to fail servers under load.
//!
//! Every request passes the service's shared [`EpochGate`] before touching a
//! replica: requests stamped with an epoch outside the acceptance window are
//! fenced — answered in-band with [`Reply::stale`] — so a reconfiguration
//! (`bqs-epoch`) can cut off a retired access strategy at the replica
//! boundary (see `bqs_sim::epoch` for the safety argument).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use bqs_core::bitset::ServerSet;
use bqs_sim::epoch::EpochGate;
use bqs_sim::fault::FaultPlan;
use bqs_sim::server::{Behavior, Replica};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::mailbox::Mailbox;
use crate::metrics::ServiceMetrics;
use crate::transport::{Operation, Reply, Request, Transport};

/// A shard mailbox message: a protocol request, the control message that
/// re-arms the shard with fresh replicas between trials, or the control
/// message that crashes a set of replicas at runtime.
#[derive(Debug)]
enum ShardMsg {
    Op(Request),
    Reset {
        replicas: Vec<(usize, Replica)>,
        rng: StdRng,
        ack: mpsc::Sender<()>,
    },
    Crash {
        servers: Vec<usize>,
        ack: mpsc::Sender<()>,
    },
}

/// An in-process sharded quorum service: replicas owned by worker threads,
/// per-shard swap-buffer mailboxes drained in whole batches, lock-free
/// metrics.
///
/// Dropping the service closes every mailbox and joins the workers.
#[derive(Debug)]
pub struct LoopbackService {
    mailboxes: Vec<Arc<Mailbox<ShardMsg>>>,
    workers: Vec<JoinHandle<()>>,
    n: usize,
    responsive: ServerSet,
    metrics: Arc<ServiceMetrics>,
    gate: Arc<EpochGate>,
}

/// Round-robin partition of a plan's replicas into per-shard ownership lists.
fn partition_replicas(plan: &FaultPlan, shards: usize) -> Vec<Vec<(usize, Replica)>> {
    let mut shard_replicas: Vec<Vec<(usize, Replica)>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, replica) in plan.build_replicas().into_iter().enumerate() {
        shard_replicas[i % shards].push((i, replica));
    }
    shard_replicas
}

/// The failure detector's view of a plan: servers that answer protocol
/// messages (everything except crashed and silent-Byzantine replicas).
fn responsive_view(plan: &FaultPlan) -> ServerSet {
    let n = plan.universe_size();
    ServerSet::from_indices(
        n,
        plan.build_replicas()
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_responsive())
            .map(|(i, _)| i),
    )
}

/// A shard's private RNG, derived from the service seed and the shard id
/// (used by equivocating Byzantine replicas).
fn shard_rng(seed: u64, shard_id: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x5a5a_0001u64.wrapping_mul(shard_id as u64 + 1)))
}

impl LoopbackService {
    /// Spawns `shards` worker threads owning the replicas described by
    /// `plan` (server `i` lives on shard `i % shards`). `seed` derives each
    /// shard's private RNG (used by equivocating Byzantine replicas).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or the plan covers an empty universe.
    #[must_use]
    pub fn spawn(plan: &FaultPlan, shards: usize, seed: u64) -> Self {
        let n = plan.universe_size();
        assert!(shards > 0, "a service needs at least one shard");
        assert!(n > 0, "a service needs at least one server");
        let shards = shards.min(n);
        let responsive = responsive_view(plan);
        let metrics = Arc::new(ServiceMetrics::new(n));
        let gate = Arc::new(EpochGate::new());

        let mut mailboxes = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for (shard_id, owned) in partition_replicas(plan, shards).into_iter().enumerate() {
            let mailbox = Arc::new(Mailbox::new());
            let worker_mailbox = Arc::clone(&mailbox);
            let metrics = Arc::clone(&metrics);
            let gate = Arc::clone(&gate);
            let rng = shard_rng(seed, shard_id);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bqs-shard-{shard_id}"))
                    .spawn(move || shard_worker(owned, &worker_mailbox, &metrics, &gate, rng))
                    .expect("spawning a shard worker"),
            );
            mailboxes.push(mailbox);
        }
        LoopbackService {
            mailboxes,
            workers,
            n,
            responsive,
            metrics,
            gate,
        }
    }

    /// Re-arms the service with fresh replicas built from `plan`, without
    /// respawning the shard worker threads: every shard swaps its ownership
    /// list (and reseeds its RNG from `seed`), the failure-detector view is
    /// recomputed, and the metrics are zeroed. Taking `&mut self` guarantees
    /// no client holds the service across the swap, so no request can observe
    /// half-old half-new replicas.
    ///
    /// This is what lets repeated-trial harnesses amortise thread spin-up:
    /// one pool serves hundreds of independently drawn fault plans.
    ///
    /// # Panics
    ///
    /// Panics if `plan` covers a different universe than the one the service
    /// was spawned with, or if a shard worker has died.
    pub fn reset_plan(&mut self, plan: &FaultPlan, seed: u64) {
        assert_eq!(
            plan.universe_size(),
            self.n,
            "reset_plan must keep the universe size"
        );
        let shards = self.mailboxes.len();
        let (ack_tx, ack_rx) = mpsc::channel();
        for (shard_id, replicas) in partition_replicas(plan, shards).into_iter().enumerate() {
            assert!(
                self.mailboxes[shard_id].push(ShardMsg::Reset {
                    replicas,
                    rng: shard_rng(seed, shard_id),
                    ack: ack_tx.clone(),
                }),
                "shard mailboxes outlive the service"
            );
        }
        drop(ack_tx);
        for _ in 0..shards {
            ack_rx.recv().expect("every shard acknowledges the reset");
        }
        self.responsive = responsive_view(plan);
        self.metrics.reset();
        self.gate.reset();
    }

    /// Crashes the listed servers at runtime: each owning shard swaps the
    /// replica for a crashed one (writes ignored, reads answered `None`),
    /// synchronously — when this returns, no later request observes the old
    /// behaviour. Unlike [`LoopbackService::reset_plan`] this takes `&self`
    /// (the control message rides the shard mailboxes), so a harness can
    /// fail servers while clients are actively driving load — which is
    /// exactly what the reconfiguration benches do. The failure-detector
    /// view is deliberately *not* updated: discovering the crash from access
    /// evidence is the suspicion engine's job.
    ///
    /// # Panics
    ///
    /// Panics if a server index is out of universe or a shard worker died.
    pub fn crash_servers(&self, servers: &[usize]) {
        let shards = self.mailboxes.len();
        let mut per_shard: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
        for &server in servers {
            assert!(server < self.n, "crash target outside the universe");
            per_shard[server % shards].push(server);
        }
        let (ack_tx, ack_rx) = mpsc::channel();
        let mut expected = 0usize;
        for (shard, targets) in per_shard.into_iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            expected += 1;
            assert!(
                self.mailboxes[shard].push(ShardMsg::Crash {
                    servers: targets,
                    ack: ack_tx.clone(),
                }),
                "shard mailboxes outlive the service"
            );
        }
        drop(ack_tx);
        for _ in 0..expected {
            ack_rx.recv().expect("every shard acknowledges the crash");
        }
    }

    /// The epoch gate shared by every shard worker. Reconfiguration managers
    /// hold a clone to run the open-window/finalise handoff; everything else
    /// can ignore it (a fresh service accepts exactly epoch 0).
    #[must_use]
    pub fn epoch_gate(&self) -> &Arc<EpochGate> {
        &self.gate
    }

    /// The failure detector's view: servers that answer protocol messages
    /// (everything except crashed and silent-Byzantine replicas). Static
    /// between [`LoopbackService::reset_plan`] calls, exactly as in the
    /// simulator's model.
    #[must_use]
    pub fn responsive_set(&self) -> &ServerSet {
        &self.responsive
    }

    /// The service's shared lock-free metrics.
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.mailboxes.len()
    }
}

impl Transport for LoopbackService {
    fn universe_size(&self) -> usize {
        self.n
    }

    fn send(&self, request: Request) -> bool {
        // An out-of-universe address is refused rather than wrapped: routed
        // modulo-shards it would panic the owning worker's lookup and take
        // every replica on that shard down with it.
        if request.server >= self.n {
            return false;
        }
        let shard = request.server % self.mailboxes.len();
        self.mailboxes[shard].push(ShardMsg::Op(request))
    }

    /// Buckets the fan-out by owning shard and lands each bucket in its
    /// mailbox under one lock acquisition — one wake per destination shard
    /// per batch, however many requests the batch carries.
    fn send_batch(&self, requests: &mut Vec<Request>) -> bool {
        let shards = self.mailboxes.len();
        let mut ok = true;
        let mut buckets: Vec<Vec<ShardMsg>> = (0..shards).map(|_| Vec::new()).collect();
        for request in requests.drain(..) {
            if request.server >= self.n {
                ok = false;
                continue;
            }
            buckets[request.server % shards].push(ShardMsg::Op(request));
        }
        for (shard, mut bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                ok &= self.mailboxes[shard].push_batch(&mut bucket);
            }
        }
        ok
    }
}

impl Drop for LoopbackService {
    fn drop(&mut self) {
        // Closing the mailboxes ends each worker's drain loop.
        for mailbox in &self.mailboxes {
            mailbox.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One shard's event loop: drain the **whole** mailbox per wakeup, apply the
/// drained operations back-to-back to the owned replicas (cache-hot, no
/// per-op lock or wake), always produce a reply frame with the request's id
/// echoed (in-band `None` for silent servers — see [`Reply`]); swap the
/// ownership list on a reset.
fn shard_worker(
    mut owned: Vec<(usize, Replica)>,
    mailbox: &Mailbox<ShardMsg>,
    metrics: &ServiceMetrics,
    gate: &EpochGate,
    mut rng: StdRng,
) {
    owned.sort_by_key(|(i, _)| *i);
    let mut batch = Vec::new();
    while mailbox.drain_blocking(&mut batch) {
        for msg in batch.drain(..) {
            let request = match msg {
                ShardMsg::Op(request) => request,
                ShardMsg::Reset {
                    mut replicas,
                    rng: fresh_rng,
                    ack,
                } => {
                    replicas.sort_by_key(|(i, _)| *i);
                    owned = replicas;
                    rng = fresh_rng;
                    let _ = ack.send(());
                    continue;
                }
                ShardMsg::Crash { servers, ack } => {
                    for server in servers {
                        let slot = owned
                            .binary_search_by_key(&server, |(i, _)| *i)
                            .expect("crash routed to the shard owning the server");
                        owned[slot].1 = Replica::new(Behavior::Crashed);
                    }
                    let _ = ack.send(());
                    continue;
                }
            };
            if !gate.accepts(request.epoch) {
                // Fenced: the access strategy this request was sampled under
                // is retired. Answer in-band so the client both fails fast
                // and learns the current epoch; the replica is never touched.
                request.reply.complete(Reply {
                    server: request.server,
                    request_id: request.request_id,
                    entry: None,
                    epoch: gate.current(),
                    stale: true,
                });
                continue;
            }
            let slot = owned
                .binary_search_by_key(&request.server, |(i, _)| *i)
                .expect("request routed to the shard owning the server");
            let replica = &mut owned[slot].1;
            metrics.record_access(request.server);
            let entry = match request.op {
                Operation::Write(entry) => {
                    replica.deliver_write(entry);
                    None
                }
                Operation::Read => replica.deliver_read(request.origin, &mut rng),
            };
            // A dead client (reply sink closed) is not the shard's problem.
            request.reply.complete(Reply {
                server: request.server,
                request_id: request.request_id,
                entry,
                epoch: request.epoch,
                stale: false,
            });
        }
    }
}

/// A monotone timestamp oracle shared by every writer of a service run, so
/// concurrent writes are totally ordered without coordination beyond one
/// atomic increment.
#[derive(Debug, Default)]
pub struct TimestampOracle {
    next: AtomicU64,
}

impl TimestampOracle {
    /// A fresh oracle starting at timestamp 1.
    #[must_use]
    pub fn new() -> Self {
        TimestampOracle::default()
    }

    /// Allocates the next timestamp (relaxed: the allocation itself is the
    /// only synchronisation needed; the value travels to readers through the
    /// mailbox handoffs' release/acquire edges).
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The highest timestamp allocated so far.
    #[must_use]
    pub fn latest(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{ReplyHandle, ReplyMailbox};
    use bqs_sim::server::{ByzantineStrategy, Entry};

    fn roundtrip(service: &LoopbackService, server: usize, op: Operation) -> Reply {
        roundtrip_at(service, server, op, 0)
    }

    fn roundtrip_at(service: &LoopbackService, server: usize, op: Operation, epoch: u64) -> Reply {
        let mb = Arc::new(ReplyMailbox::new());
        assert!(service.send(Request {
            server,
            op,
            request_id: 7,
            origin: 0,
            epoch,
            reply: Arc::clone(&mb) as ReplyHandle,
        }));
        let mut batch = Vec::new();
        assert!(mb.drain_blocking(&mut batch), "shard replies");
        assert_eq!(batch.len(), 1);
        batch.remove(0)
    }

    #[test]
    fn write_then_read_roundtrip_across_shards() {
        let service = LoopbackService::spawn(&FaultPlan::none(5), 3, 7);
        assert_eq!(service.universe_size(), 5);
        assert_eq!(service.shards(), 3);
        let entry = Entry {
            timestamp: 1,
            value: 42,
        };
        for s in 0..5 {
            assert_eq!(roundtrip(&service, s, Operation::Write(entry)).entry, None);
        }
        for s in 0..5 {
            let reply = roundtrip(&service, s, Operation::Read);
            assert_eq!(reply.server, s);
            assert_eq!(reply.request_id, 7, "shards must echo the request id");
            assert_eq!(reply.entry, Some(entry));
        }
        assert_eq!(service.metrics().access_counts(), vec![2; 5]);
    }

    #[test]
    fn send_batch_fans_out_across_shards_in_one_call() {
        let service = LoopbackService::spawn(&FaultPlan::none(5), 2, 11);
        let mb = Arc::new(ReplyMailbox::new());
        let mut fanout: Vec<Request> = (0..5)
            .map(|s| Request {
                server: s,
                op: Operation::Read,
                request_id: 100 + s as u64,
                origin: 0,
                epoch: 0,
                reply: Arc::clone(&mb) as ReplyHandle,
            })
            .collect();
        assert!(service.send_batch(&mut fanout));
        assert!(fanout.is_empty(), "the batch is drained");
        let mut replies = Vec::new();
        while replies.len() < 5 {
            let mut batch = Vec::new();
            assert!(mb.drain_blocking(&mut batch), "shards reply");
            replies.append(&mut batch);
        }
        replies.sort_by_key(|r| r.request_id);
        for (s, reply) in replies.iter().enumerate() {
            assert_eq!(reply.server, s);
            assert_eq!(reply.request_id, 100 + s as u64);
            assert_eq!(reply.entry, None);
        }
    }

    #[test]
    fn send_batch_refuses_out_of_universe_but_delivers_the_rest() {
        let service = LoopbackService::spawn(&FaultPlan::none(3), 2, 1);
        let mb = Arc::new(ReplyMailbox::new());
        let mut fanout: Vec<Request> = [0usize, 7, 2]
            .iter()
            .map(|&s| Request {
                server: s,
                op: Operation::Read,
                request_id: s as u64,
                origin: 0,
                epoch: 0,
                reply: Arc::clone(&mb) as ReplyHandle,
            })
            .collect();
        assert!(
            !service.send_batch(&mut fanout),
            "an out-of-universe member poisons the batch's return"
        );
        let mut replies = Vec::new();
        while replies.len() < 2 {
            let mut batch = Vec::new();
            assert!(mb.drain_blocking(&mut batch));
            replies.append(&mut batch);
        }
        replies.sort_by_key(|r| r.request_id);
        assert_eq!(replies[0].server, 0);
        assert_eq!(replies[1].server, 2);
    }

    #[test]
    fn crashed_and_silent_servers_are_unresponsive_but_replied_in_band() {
        let plan = FaultPlan::none(4)
            .with_crashed(1)
            .with_byzantine(2, ByzantineStrategy::Silent);
        let service = LoopbackService::spawn(&plan, 2, 0);
        assert_eq!(service.responsive_set().to_vec(), vec![0, 3]);
        // A read addressed to the crashed server still gets a frame, with no
        // protocol content.
        assert_eq!(roundtrip(&service, 1, Operation::Read).entry, None);
    }

    #[test]
    fn out_of_universe_requests_are_refused_not_routed() {
        let service = LoopbackService::spawn(&FaultPlan::none(3), 2, 1);
        let mb = Arc::new(ReplyMailbox::new());
        assert!(!service.send(Request {
            server: 3,
            op: Operation::Read,
            request_id: 0,
            origin: 0,
            epoch: 0,
            reply: mb as ReplyHandle,
        }));
        // The shards stay healthy afterwards.
        assert_eq!(roundtrip(&service, 2, Operation::Read).entry, None);
    }

    #[test]
    fn more_shards_than_servers_is_clamped() {
        let service = LoopbackService::spawn(&FaultPlan::none(2), 8, 1);
        assert_eq!(service.shards(), 2);
        assert_eq!(roundtrip(&service, 1, Operation::Read).entry, None);
    }

    #[test]
    fn reset_plan_swaps_replica_state_view_and_metrics() {
        let mut service = LoopbackService::spawn(&FaultPlan::none(5), 2, 3);
        let entry = Entry {
            timestamp: 9,
            value: 90,
        };
        for s in 0..5 {
            roundtrip(&service, s, Operation::Write(entry));
        }
        assert_eq!(roundtrip(&service, 0, Operation::Read).entry, Some(entry));

        // Re-arm with a plan that crashes server 1: replica state must be
        // fresh (the old write gone), the view updated, the metrics zeroed.
        service.reset_plan(&FaultPlan::none(5).with_crashed(1), 4);
        assert_eq!(service.responsive_set().to_vec(), vec![0, 2, 3, 4]);
        assert_eq!(roundtrip(&service, 0, Operation::Read).entry, None);
        assert_eq!(roundtrip(&service, 1, Operation::Read).entry, None);
        // Two reads since the reset, nothing from before.
        assert_eq!(service.metrics().access_counts(), vec![1, 1, 0, 0, 0]);

        // And back to a healthy plan: the crash does not stick.
        service.reset_plan(&FaultPlan::none(5), 5);
        assert_eq!(service.responsive_set().len(), 5);
    }

    #[test]
    #[should_panic(expected = "universe size")]
    fn reset_plan_rejects_universe_changes() {
        let mut service = LoopbackService::spawn(&FaultPlan::none(5), 2, 3);
        service.reset_plan(&FaultPlan::none(6), 0);
    }

    #[test]
    fn epoch_gate_fences_requests_outside_the_window() {
        let service = LoopbackService::spawn(&FaultPlan::none(4), 2, 5);
        let entry = Entry {
            timestamp: 3,
            value: 30,
        };
        roundtrip(&service, 0, Operation::Write(entry));

        // Epoch 1 is not yet accepted: fenced without touching the replica.
        let fenced = roundtrip_at(&service, 0, Operation::Read, 1);
        assert!(fenced.stale);
        assert_eq!(fenced.entry, None);
        assert_eq!(fenced.epoch, 0, "fenced replies report the current epoch");

        // Open the handoff window: both epochs are served; served replies
        // echo the request's own stamp.
        service.epoch_gate().open_window(1);
        let old = roundtrip_at(&service, 0, Operation::Read, 0);
        let new = roundtrip_at(&service, 0, Operation::Read, 1);
        assert!(!old.stale && !new.stale);
        assert_eq!((old.epoch, new.epoch), (0, 1));
        assert_eq!(old.entry, Some(entry));
        assert_eq!(new.entry, Some(entry));

        // Finalise: epoch-0 stragglers are fenced and told where to go.
        service.epoch_gate().finalize(1);
        let stale = roundtrip_at(&service, 0, Operation::Read, 0);
        assert!(stale.stale);
        assert_eq!(stale.epoch, 1);
        // Fenced requests never count as served accesses.
        let write_and_reads = 3;
        assert_eq!(
            service.metrics().access_counts()[0],
            write_and_reads,
            "gate rejections must not count toward load"
        );
    }

    #[test]
    fn crash_servers_kills_replicas_under_a_shared_reference() {
        let service = LoopbackService::spawn(&FaultPlan::none(5), 2, 6);
        let entry = Entry {
            timestamp: 5,
            value: 50,
        };
        for s in 0..5 {
            roundtrip(&service, s, Operation::Write(entry));
        }
        service.crash_servers(&[1, 4]);
        // Crashed replicas lose their protocol voice but still answer
        // in-band; the survivors keep their state.
        assert_eq!(roundtrip(&service, 1, Operation::Read).entry, None);
        assert_eq!(roundtrip(&service, 4, Operation::Read).entry, None);
        assert_eq!(roundtrip(&service, 0, Operation::Read).entry, Some(entry));
        // The failure-detector view is deliberately left untouched: the
        // suspicion engine discovers the crash from evidence.
        assert_eq!(service.responsive_set().len(), 5);
    }

    #[test]
    fn reset_plan_rearms_the_epoch_gate() {
        let mut service = LoopbackService::spawn(&FaultPlan::none(4), 2, 7);
        service.epoch_gate().finalize(3);
        assert!(roundtrip_at(&service, 0, Operation::Read, 0).stale);
        service.reset_plan(&FaultPlan::none(4), 8);
        let reply = roundtrip_at(&service, 0, Operation::Read, 0);
        assert!(!reply.stale, "a fresh trial starts back at epoch 0");
    }

    #[test]
    fn timestamp_oracle_is_monotone() {
        let oracle = TimestampOracle::new();
        assert_eq!(oracle.latest(), 0);
        assert_eq!(oracle.allocate(), 1);
        assert_eq!(oracle.allocate(), 2);
        assert_eq!(oracle.latest(), 2);
    }
}
