//! Ablations of the library's own algorithmic choices (DESIGN.md §4).
//!
//! * [`transversal_ablation`] — greedy hitting-set upper bound versus the exact
//!   branch-and-bound `MT(Q)`: how often the cheap bound is already tight, and how
//!   far off it can be (it seeds and prunes the exact search, so its quality matters
//!   for running time).
//! * [`mpath_discovery_ablation`] — the straight-line quorum discovery of
//!   Proposition 7.2 versus general max-flow discovery on the M-Path grid: success
//!   rate of the cheap path as the crash probability grows (beyond it the max-flow
//!   fallback is required for availability).

use rand::rngs::StdRng;
use rand::SeedableRng;

use bqs_constructions::prelude::*;
use bqs_core::quorum::QuorumSystem;
use bqs_core::transversal::{greedy_transversal, min_transversal_size};
use bqs_graph::disjoint_paths::{find_disjoint_paths, find_straight_disjoint_paths};
use bqs_graph::grid::Axis;
use bqs_graph::percolation::PercolationEstimator;

/// One row of the greedy-versus-exact transversal ablation.
#[derive(Debug, Clone)]
pub struct TransversalAblation {
    /// Construction the explicit instance came from.
    pub system: String,
    /// Size of the greedy transversal (upper bound on `MT`).
    pub greedy: usize,
    /// Exact minimal transversal size.
    pub exact: usize,
}

/// Compares the greedy and exact transversal sizes on explicit instances of every
/// construction small enough to materialise.
#[must_use]
pub fn transversal_ablation() -> Vec<TransversalAblation> {
    let mut rows = Vec::new();
    let mut push = |name: String, quorums: &[bqs_core::bitset::ServerSet], n: usize| {
        rows.push(TransversalAblation {
            system: name,
            greedy: greedy_transversal(quorums, n).len(),
            exact: min_transversal_size(quorums, n),
        });
    };
    let t = ThresholdSystem::minimal_masking(2).expect("valid");
    let te = t.to_explicit(100_000).expect("small");
    push(t.name(), te.quorums(), t.universe_size());

    let g = GridSystem::new(5, 1).expect("valid");
    let ge = g.to_explicit(100_000).expect("small");
    push(g.name(), ge.quorums(), g.universe_size());

    let m = MGridSystem::new(6, 2).expect("valid");
    let me = m.to_explicit(100_000).expect("small");
    push(m.name(), me.quorums(), m.universe_size());

    let rt = RtSystem::new(4, 3, 2).expect("valid");
    let rte = rt.to_explicit(100_000).expect("small");
    push(rt.name(), rte.quorums(), rt.universe_size());

    let fpp = FppSystem::new(3).expect("valid");
    let fe = fpp.to_explicit().expect("small");
    push(fpp.name(), fe.quorums(), fpp.universe_size());

    rows
}

/// One row of the M-Path discovery ablation.
#[derive(Debug, Clone)]
pub struct MPathDiscoveryAblation {
    /// Per-server crash probability.
    pub p: f64,
    /// Fraction of trials where straight lines alone produced a full quorum.
    pub straight_success_rate: f64,
    /// Fraction of trials where max-flow discovery produced a full quorum.
    pub maxflow_success_rate: f64,
    /// Number of trials.
    pub trials: usize,
}

/// Measures how far the straight-line strategy (Proposition 7.2) carries quorum
/// discovery as failures accumulate, against the general max-flow discovery.
#[must_use]
pub fn mpath_discovery_ablation(
    side: usize,
    b: usize,
    ps: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<MPathDiscoveryAblation> {
    let sys = MPathSystem::new(side, b).expect("valid M-Path parameters");
    let k = sys.paths_per_direction();
    let est = PercolationEstimator::new(side);
    let mut rng = StdRng::seed_from_u64(seed);
    ps.iter()
        .map(|&p| {
            let mut straight_ok = 0usize;
            let mut flow_ok = 0usize;
            for _ in 0..trials {
                let alive = est.sample_alive(p, &mut rng);
                let s_lr = find_straight_disjoint_paths(est.grid(), &alive, Axis::LeftRight, k);
                let s_tb = find_straight_disjoint_paths(est.grid(), &alive, Axis::TopBottom, k);
                if s_lr.len() == k && s_tb.len() == k {
                    straight_ok += 1;
                }
                let f_lr = find_disjoint_paths(est.grid(), &alive, Axis::LeftRight, k);
                if f_lr.len() == k {
                    let f_tb = find_disjoint_paths(est.grid(), &alive, Axis::TopBottom, k);
                    if f_tb.len() == k {
                        flow_ok += 1;
                    }
                }
            }
            MPathDiscoveryAblation {
                p,
                straight_success_rate: straight_ok as f64 / trials as f64,
                maxflow_success_rate: flow_ok as f64 / trials as f64,
                trials,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_never_beats_exact_and_is_often_tight() {
        let rows = transversal_ablation();
        assert!(rows.len() >= 5);
        for r in &rows {
            assert!(r.greedy >= r.exact, "{}: greedy below exact?!", r.system);
            assert!(
                r.greedy <= 2 * r.exact,
                "{}: greedy {} is more than twice exact {}",
                r.system,
                r.greedy,
                r.exact
            );
        }
        // On the threshold instance greedy is exactly tight (any k-l+1 servers work).
        let t = rows
            .iter()
            .find(|r| r.system.starts_with("Threshold"))
            .unwrap();
        assert_eq!(t.greedy, t.exact);
    }

    #[test]
    fn straight_lines_degrade_before_maxflow() {
        let rows = mpath_discovery_ablation(8, 2, &[0.0, 0.05, 0.15, 0.3], 60, 9);
        // With no failures both succeed always.
        assert_eq!(rows[0].straight_success_rate, 1.0);
        assert_eq!(rows[0].maxflow_success_rate, 1.0);
        for r in &rows {
            assert!(
                r.maxflow_success_rate >= r.straight_success_rate - 1e-12,
                "max-flow can never do worse than straight lines (p={})",
                r.p
            );
        }
        // At moderate p the gap is visible: straight lines break long before the grid
        // stops percolating.
        let mid = &rows[2];
        assert!(
            mid.maxflow_success_rate > mid.straight_success_rate,
            "expected a gap at p=0.15: straight {} vs maxflow {}",
            mid.straight_success_rate,
            mid.maxflow_success_rate
        );
    }
}
