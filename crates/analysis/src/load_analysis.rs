//! Load analysis: the figure-style sweeps behind Sections 4–7's load claims.
//!
//! * [`load_vs_n`] — load of each construction as the universe grows at (roughly)
//!   fixed masking level `b`, against the universal lower bound `√((2b+1)/n)` of
//!   Corollary 4.2 (reproduces the "optimal load" claims of Propositions 5.2, 6.2
//!   and 7.2 and the sub-optimality of Threshold/Grid/RT).
//! * [`lower_bound_envelope`] — Theorem 4.1's bound as a function of the quorum
//!   size, showing the `√((2b+1)n)` sweet spot of Corollary 4.2.
//! * [`lp_vs_fair_load`] — the ablation of DESIGN.md: the exact LP load against the
//!   closed-form fair load on small instances of every construction.

use bqs_constructions::prelude::*;
use bqs_core::bounds::{load_lower_bound, load_lower_bound_universal};
use bqs_core::load::optimal_load;
use bqs_core::quorum::QuorumSystem;

/// One point of the load-versus-n sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Construction name.
    pub system: String,
    /// Universe size.
    pub n: usize,
    /// Masking level of the instance.
    pub b: usize,
    /// Analytic load.
    pub load: f64,
    /// The universal lower bound `√((2b+1)/n)`.
    pub lower_bound: f64,
}

/// Sweeps the load of every construction over grid sides `sides`, at masking level
/// `b` (clamped per construction to its feasible range).
#[must_use]
pub fn load_vs_n(sides: &[usize], b: usize) -> Vec<LoadPoint> {
    let mut points = Vec::new();
    for &side in sides {
        let n = side * side;
        let mut push = |sys: &dyn AnalyzedConstruction| {
            points.push(LoadPoint {
                system: sys.name(),
                n: sys.universe_size(),
                b: sys.masking_b(),
                load: sys.analytic_load(),
                lower_bound: load_lower_bound_universal(sys.universe_size(), sys.masking_b()),
            });
        };
        if let Ok(sys) = ThresholdSystem::masking(n, b) {
            push(&sys);
        }
        if let Ok(sys) = GridSystem::new(side, b.min(side.saturating_sub(1) / 3)) {
            push(&sys);
        }
        if let Ok(sys) = MGridSystem::new(side, b.min(MGridSystem::max_b(side))) {
            push(&sys);
        }
        if let Ok(sys) = MPathSystem::new(side, b.min(MPathSystem::max_b(side))) {
            push(&sys);
        }
        let depth = ((n as f64).ln() / 4f64.ln()).round().max(1.0) as u32;
        if let Ok(sys) = RtSystem::new(4, 3, depth) {
            push(&sys);
        }
        let copies = (n / (4 * b + 1)).max(7);
        let q = (2u64..=64)
            .filter(|&q| bqs_combinatorics::primes::prime_power(q).is_some())
            .min_by_key(|&q| ((q * q + q + 1) as usize).abs_diff(copies))
            .unwrap_or(2);
        if let Ok(sys) = BoostFppSystem::new(q, b) {
            push(&sys);
        }
    }
    points
}

/// One point of the Theorem 4.1 envelope: the load lower bound as a function of the
/// minimum quorum size.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopePoint {
    /// Quorum size `c`.
    pub quorum_size: usize,
    /// `max{(2b+1)/c, c/n}`.
    pub bound: f64,
}

/// Theorem 4.1's lower bound as `c` ranges over `1..=n`.
#[must_use]
pub fn lower_bound_envelope(n: usize, b: usize) -> Vec<EnvelopePoint> {
    (1..=n)
        .map(|c| EnvelopePoint {
            quorum_size: c,
            bound: load_lower_bound(n, b, c),
        })
        .collect()
}

/// Result of the LP-versus-closed-form load ablation on one instance.
#[derive(Debug, Clone)]
pub struct LoadAblation {
    /// Construction name.
    pub system: String,
    /// Exact load from the linear program.
    pub lp_load: f64,
    /// Closed-form (fair-system) load.
    pub analytic_load: f64,
}

/// Runs the LP load against the analytic load on small explicit instances of every
/// construction that can be materialised.
#[must_use]
pub fn lp_vs_fair_load() -> Vec<LoadAblation> {
    let mut out = Vec::new();
    let mut push =
        |name: String, quorums: &[bqs_core::bitset::ServerSet], n: usize, analytic: f64| {
            if let Ok((lp, _)) = optimal_load(quorums, n) {
                out.push(LoadAblation {
                    system: name,
                    lp_load: lp,
                    analytic_load: analytic,
                });
            }
        };

    let t = ThresholdSystem::minimal_masking(1).expect("valid");
    let te = t.to_explicit(10_000).expect("small");
    push(t.name(), te.quorums(), t.universe_size(), t.analytic_load());

    let g = GridSystem::new(5, 1).expect("valid");
    let ge = g.to_explicit(10_000).expect("small");
    push(g.name(), ge.quorums(), g.universe_size(), g.analytic_load());

    let m = MGridSystem::new(5, 2).expect("valid");
    let me = m.to_explicit(10_000).expect("small");
    push(m.name(), me.quorums(), m.universe_size(), m.analytic_load());

    let rt = RtSystem::new(4, 3, 2).expect("valid");
    let rte = rt.to_explicit(10_000).expect("small");
    push(
        rt.name(),
        rte.quorums(),
        rt.universe_size(),
        rt.analytic_load(),
    );

    let fpp = FppSystem::new(3).expect("valid");
    let fe = fpp.to_explicit().expect("small");
    push(
        fpp.name(),
        fe.quorums(),
        fpp.universe_size(),
        fpp.analytic_load(),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_family_tracks_lower_bound() {
        let points = load_vs_n(&[16, 24, 32], 5);
        for p in &points {
            assert!(p.load + 1e-9 >= p.lower_bound, "{}", p.system);
            let ratio = p.load / p.lower_bound;
            if p.system.starts_with("M-Grid")
                || p.system.starts_with("M-Path")
                || p.system.starts_with("boostFPP")
            {
                assert!(ratio < 2.6, "{}: ratio {ratio}", p.system);
            }
            if p.system.starts_with("Threshold") {
                assert!(p.load >= 0.5, "{}", p.system);
            }
        }
    }

    #[test]
    fn load_decreases_with_n_for_grid_family() {
        let points = load_vs_n(&[16, 32], 3);
        let loads: Vec<f64> = points
            .iter()
            .filter(|p| p.system.starts_with("M-Grid"))
            .map(|p| p.load)
            .collect();
        assert_eq!(loads.len(), 2);
        assert!(loads[1] < loads[0]);
    }

    #[test]
    fn envelope_minimum_is_near_sqrt_2b1_n() {
        let n = 400;
        let b = 4;
        let env = lower_bound_envelope(n, b);
        let best = env
            .iter()
            .min_by(|a, x| a.bound.partial_cmp(&x.bound).unwrap())
            .unwrap();
        let expected = ((2 * b + 1) as f64 * n as f64).sqrt();
        assert!(
            (best.quorum_size as f64 - expected).abs() <= 3.0,
            "best at c={} expected ~{expected}",
            best.quorum_size
        );
        // The bound at the minimum is the universal bound.
        assert!((best.bound - load_lower_bound_universal(n, b)).abs() < 0.01);
    }

    #[test]
    fn lp_ablation_agrees_with_closed_forms() {
        let rows = lp_vs_fair_load();
        assert!(rows.len() >= 5);
        for r in &rows {
            assert!(
                (r.lp_load - r.analytic_load).abs() < 1e-5,
                "{}: LP {} vs analytic {}",
                r.system,
                r.lp_load,
                r.analytic_load
            );
        }
    }
}
