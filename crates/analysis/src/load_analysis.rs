//! Load analysis: the figure-style sweeps behind Sections 4–7's load claims.
//!
//! * [`load_vs_n`] — load of each construction as the universe grows at (roughly)
//!   fixed masking level `b`, against the universal lower bound `√((2b+1)/n)` of
//!   Corollary 4.2 (reproduces the "optimal load" claims of Propositions 5.2, 6.2
//!   and 7.2 and the sub-optimality of Threshold/Grid/RT).
//! * [`lower_bound_envelope`] — Theorem 4.1's bound as a function of the quorum
//!   size, showing the `√((2b+1)n)` sweet spot of Corollary 4.2.
//! * [`lp_vs_fair_load`] — the ablation of DESIGN.md: the exact LP load against the
//!   closed-form fair load on small instances of every construction.

use bqs_constructions::prelude::*;
use bqs_core::bounds::{load_lower_bound, load_lower_bound_universal};
use bqs_core::load::{optimal_load, optimal_load_oracle};
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::QuorumSystem;

/// One point of the load-versus-n sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Construction name.
    pub system: String,
    /// Universe size.
    pub n: usize,
    /// Masking level of the instance.
    pub b: usize,
    /// Analytic load.
    pub load: f64,
    /// The universal lower bound `√((2b+1)/n)`.
    pub lower_bound: f64,
}

/// Sweeps the load of every construction over grid sides `sides`, at masking level
/// `b` (clamped per construction to its feasible range).
#[must_use]
pub fn load_vs_n(sides: &[usize], b: usize) -> Vec<LoadPoint> {
    let mut points = Vec::new();
    for &side in sides {
        let n = side * side;
        let mut push = |sys: &dyn AnalyzedConstruction| {
            points.push(LoadPoint {
                system: sys.name(),
                n: sys.universe_size(),
                b: sys.masking_b(),
                load: sys.analytic_load(),
                lower_bound: load_lower_bound_universal(sys.universe_size(), sys.masking_b()),
            });
        };
        if let Ok(sys) = ThresholdSystem::masking(n, b) {
            push(&sys);
        }
        if let Ok(sys) = GridSystem::new(side, b.min(side.saturating_sub(1) / 3)) {
            push(&sys);
        }
        if let Ok(sys) = MGridSystem::new(side, b.min(MGridSystem::max_b(side))) {
            push(&sys);
        }
        if let Ok(sys) = MPathSystem::new(side, b.min(MPathSystem::max_b(side))) {
            push(&sys);
        }
        let depth = ((n as f64).ln() / 4f64.ln()).round().max(1.0) as u32;
        if let Ok(sys) = RtSystem::new(4, 3, depth) {
            push(&sys);
        }
        if let Some(q) = boost_fpp_order_for(n, b) {
            if let Ok(sys) = BoostFppSystem::new(q, b) {
                push(&sys);
            }
        }
    }
    points
}

/// The plane order whose boostFPP(q, b) universe `n(q) = (4b+1)(q²+q+1)`
/// comes closest to the target `n`, or `None` when even the best admissible
/// order misses by more than a factor of two — in which case the sweep skips
/// the point rather than plotting a system of wildly different size on the
/// same x-coordinate (the old `copies` heuristic with its `unwrap_or(2)`
/// fallback could do exactly that).
#[must_use]
pub fn boost_fpp_order_for(n: usize, b: usize) -> Option<u64> {
    nearest_plane_order(n, 4 * b as u64 + 1)
}

/// The prime-power plane order `q` whose scaled plane size
/// `copies · (q² + q + 1)` comes closest to the target universe `n`, subject
/// to the factor-of-two admissibility window — the shared selection behind
/// [`boost_fpp_order_for`] (`copies = 4b+1` inner servers per point) and the
/// plain-FPP roster entry (`copies = 1`).
#[must_use]
pub fn nearest_plane_order(n: usize, copies: u64) -> Option<u64> {
    let size = |q: u64| copies * (q * q + q + 1);
    let q = (2u64..=64)
        .filter(|&q| bqs_combinatorics::primes::prime_power(q).is_some())
        .min_by_key(|&q| (size(q) as i128 - n as i128).unsigned_abs())?;
    let achieved = size(q) as usize;
    (achieved <= 2 * n && n <= 2 * achieved).then_some(q)
}

/// One point of the certified load sweep: the closed-form `analytic_load`
/// pinned against the column-generation LP.
#[derive(Debug, Clone)]
pub struct CertifiedLoadPoint {
    /// Construction name.
    pub system: String,
    /// Universe size.
    pub n: usize,
    /// Masking level of the instance.
    pub b: usize,
    /// The closed-form (Proposition 3.9 / Theorem 4.7) load.
    pub analytic_load: f64,
    /// The certified LP load (strategy upper bound).
    pub lp_load: f64,
    /// The certified optimality gap of the LP result.
    pub gap: f64,
    /// Working-set columns the engine generated.
    pub columns: usize,
    /// How the LP value was obtained — always `"column_generation"` today:
    /// instances whose engine run fails (oracle decline, or a round-cap /
    /// stall certification failure) are dropped from the sweep with a
    /// stderr note rather than silently falling back (the field exists so
    /// an explicit-LP fallback could be reported distinctly if one is ever
    /// added).
    pub method: &'static str,
}

/// The certified companion of [`load_vs_n`]: for every construction at every
/// side, computes `L(Q)` by **column generation against the pricing oracle**
/// (`optimal_load_oracle`) and reports it next to the closed-form
/// `analytic_load` — the verification the explicit LP could never perform
/// beyond toy sizes. Scales to the paper's `n = 1024` instances (sides up to
/// 32 run in milliseconds per point). Instances whose oracle declines (for
/// example an M-Grid whose per-quorum line count exceeds the pricing budget)
/// are skipped — `bench_load` materialises its explicit-LP comparison
/// separately, and its `--quick` gate asserts that every construction here
/// dispatches to `"column_generation"`.
#[must_use]
pub fn lp_load_vs_n(sides: &[usize], b: usize) -> Vec<CertifiedLoadPoint> {
    let mut points = Vec::new();
    for &side in sides {
        for sys in certified_constructions(side, b) {
            if let Some(point) = certify(sys.as_ref()) {
                points.push(point);
            }
        }
    }
    points
}

/// An analysed construction with a pricing oracle — what the certified load
/// sweep (and `bench_load`) iterate over.
pub trait CertifiableConstruction: AnalyzedConstruction + MinWeightQuorumOracle {}
impl<T: AnalyzedConstruction + MinWeightQuorumOracle> CertifiableConstruction for T {}

/// The shared instance roster of the certified load sweep: one instance per
/// construction for a `side × side` universe at masking level `b` (clamped
/// per construction to its feasible range; the boostFPP and FPP instances
/// take the nearest admissible size within a factor of two, see
/// [`boost_fpp_order_for`]). [`lp_load_vs_n`] and the `bench_load` CI gate
/// both iterate exactly this list, so the gate certifies the same systems
/// the sweep reports.
#[must_use]
pub fn certified_constructions(side: usize, b: usize) -> Vec<Box<dyn CertifiableConstruction>> {
    let n = side * side;
    let mut systems: Vec<Box<dyn CertifiableConstruction>> = Vec::new();
    if let Ok(sys) = ThresholdSystem::masking(n, b) {
        systems.push(Box::new(sys));
    }
    if let Ok(sys) = GridSystem::new(side, b.min(side.saturating_sub(1) / 3)) {
        systems.push(Box::new(sys));
    }
    if let Ok(sys) = MGridSystem::new(side, b.min(MGridSystem::max_b(side))) {
        systems.push(Box::new(sys));
    }
    if let Ok(sys) = MPathSystem::new(side, b.min(MPathSystem::max_b(side))) {
        systems.push(Box::new(sys));
    }
    let depth = ((n as f64).ln() / 4f64.ln()).round().max(1.0) as u32;
    if let Ok(sys) = RtSystem::new(4, 3, depth) {
        systems.push(Box::new(sys));
    }
    if let Some(q) = boost_fpp_order_for(n, b) {
        if let Ok(sys) = BoostFppSystem::new(q, b) {
            systems.push(Box::new(sys));
        }
    }
    // The plain FPP (regular, b = 0): the load-optimal regular baseline, at
    // the nearest plane order within a factor of two of n.
    if let Some(q) = nearest_plane_order(n, 1) {
        if let Ok(sys) = FppSystem::new(q) {
            systems.push(Box::new(sys));
        }
    }
    systems
}

fn certify(sys: &dyn CertifiableConstruction) -> Option<CertifiedLoadPoint> {
    match optimal_load_oracle(sys) {
        Ok(certified) => Some(CertifiedLoadPoint {
            system: sys.name(),
            n: sys.universe_size(),
            b: sys.masking_b(),
            analytic_load: sys.analytic_load(),
            lp_load: certified.load,
            gap: certified.gap,
            columns: certified.columns,
            method: "column_generation",
        }),
        Err(e) => {
            // A dropped point is either a documented oracle decline or a
            // genuine certification failure (round cap / stall) — never hide
            // which: the sweep's "certified" claim covers only rows present.
            eprintln!("lp_load_vs_n: dropping {}: {e:?}", sys.name());
            None
        }
    }
}

/// One point of the Theorem 4.1 envelope: the load lower bound as a function of the
/// minimum quorum size.
#[derive(Debug, Clone, Copy)]
pub struct EnvelopePoint {
    /// Quorum size `c`.
    pub quorum_size: usize,
    /// `max{(2b+1)/c, c/n}`.
    pub bound: f64,
}

/// Theorem 4.1's lower bound as `c` ranges over `1..=n`.
#[must_use]
pub fn lower_bound_envelope(n: usize, b: usize) -> Vec<EnvelopePoint> {
    (1..=n)
        .map(|c| EnvelopePoint {
            quorum_size: c,
            bound: load_lower_bound(n, b, c),
        })
        .collect()
}

/// Result of the LP-versus-closed-form load ablation on one instance.
#[derive(Debug, Clone)]
pub struct LoadAblation {
    /// Construction name.
    pub system: String,
    /// Exact load from the linear program.
    pub lp_load: f64,
    /// Closed-form (fair-system) load.
    pub analytic_load: f64,
}

/// Runs the LP load against the analytic load on small explicit instances of every
/// construction that can be materialised.
#[must_use]
pub fn lp_vs_fair_load() -> Vec<LoadAblation> {
    let mut out = Vec::new();
    let mut push =
        |name: String, quorums: &[bqs_core::bitset::ServerSet], n: usize, analytic: f64| {
            if let Ok((lp, _)) = optimal_load(quorums, n) {
                out.push(LoadAblation {
                    system: name,
                    lp_load: lp,
                    analytic_load: analytic,
                });
            }
        };

    let t = ThresholdSystem::minimal_masking(1).expect("valid");
    let te = t.to_explicit(10_000).expect("small");
    push(t.name(), te.quorums(), t.universe_size(), t.analytic_load());

    let g = GridSystem::new(5, 1).expect("valid");
    let ge = g.to_explicit(10_000).expect("small");
    push(g.name(), ge.quorums(), g.universe_size(), g.analytic_load());

    let m = MGridSystem::new(5, 2).expect("valid");
    let me = m.to_explicit(10_000).expect("small");
    push(m.name(), me.quorums(), m.universe_size(), m.analytic_load());

    let rt = RtSystem::new(4, 3, 2).expect("valid");
    let rte = rt.to_explicit(10_000).expect("small");
    push(
        rt.name(),
        rte.quorums(),
        rt.universe_size(),
        rt.analytic_load(),
    );

    let fpp = FppSystem::new(3).expect("valid");
    let fe = fpp.to_explicit().expect("small");
    push(
        fpp.name(),
        fe.quorums(),
        fpp.universe_size(),
        fpp.analytic_load(),
    );

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_family_tracks_lower_bound() {
        let points = load_vs_n(&[16, 24, 32], 5);
        for p in &points {
            assert!(p.load + 1e-9 >= p.lower_bound, "{}", p.system);
            let ratio = p.load / p.lower_bound;
            if p.system.starts_with("M-Grid")
                || p.system.starts_with("M-Path")
                || p.system.starts_with("boostFPP")
            {
                assert!(ratio < 2.6, "{}: ratio {ratio}", p.system);
            }
            if p.system.starts_with("Threshold") {
                assert!(p.load >= 0.5, "{}", p.system);
            }
        }
    }

    #[test]
    fn load_decreases_with_n_for_grid_family() {
        let points = load_vs_n(&[16, 32], 3);
        let loads: Vec<f64> = points
            .iter()
            .filter(|p| p.system.starts_with("M-Grid"))
            .map(|p| p.load)
            .collect();
        assert_eq!(loads.len(), 2);
        assert!(loads[1] < loads[0]);
    }

    #[test]
    fn boost_fpp_order_selection_minimises_size_mismatch() {
        // n = 1024, b = 15: n(q) = 61(q²+q+1); q = 3 gives 793, q = 4 gives
        // 1281 — q = 3 is closer.
        assert_eq!(boost_fpp_order_for(1024, 15), Some(3));
        // n = 1024, b = 5: 21·(q²+q+1); q = 7 gives 1197, q = 5 gives 651.
        assert_eq!(boost_fpp_order_for(1024, 5), Some(7));
        // Tiny target with a huge masking level: even q = 2 overshoots the
        // 2x admissibility window (n(2) = 7(4b+1) >> 2n), so the point is
        // skipped instead of silently plotting a far-off instance — the old
        // `unwrap_or(2)` fallback would have kept it.
        assert_eq!(boost_fpp_order_for(64, 40), None);
        // The selected instance is always within a factor two of the target.
        for (n, b) in [(256usize, 5usize), (576, 5), (1024, 15), (4096, 20)] {
            if let Some(q) = boost_fpp_order_for(n, b) {
                let achieved = (4 * b + 1) * ((q * q + q + 1) as usize);
                assert!(achieved <= 2 * n && n <= 2 * achieved, "n={n} b={b} q={q}");
            }
        }
    }

    #[test]
    fn certified_sweep_pins_analytic_loads_to_the_lp() {
        // The headline verification: at n = 256 and n = 1024 every
        // construction's closed-form load is confirmed by the certified
        // column-generation LP to 1e-9 — a check the explicit LP could only
        // ever run on toy instances.
        let points = lp_load_vs_n(&[16, 32], 5);
        assert!(points.len() >= 10, "expected a full grid, got {points:?}");
        for p in &points {
            assert_eq!(p.method, "column_generation", "{}", p.system);
            assert!(p.gap <= 1e-9, "{}: gap {:e}", p.system, p.gap);
            assert!(
                (p.lp_load - p.analytic_load).abs() <= 1e-9,
                "{}: lp {} vs analytic {}",
                p.system,
                p.lp_load,
                p.analytic_load
            );
        }
        // All six constructions appear at side 32 (n = 1024).
        let at_1024: Vec<&CertifiedLoadPoint> = points.iter().filter(|p| p.n >= 793).collect();
        for prefix in ["Threshold", "Grid", "M-Grid", "M-Path", "RT", "boostFPP"] {
            assert!(
                at_1024.iter().any(|p| p.system.starts_with(prefix)),
                "{prefix} missing from the n = 1024 sweep"
            );
        }
    }

    #[test]
    fn envelope_minimum_is_near_sqrt_2b1_n() {
        let n = 400;
        let b = 4;
        let env = lower_bound_envelope(n, b);
        let best = env
            .iter()
            .min_by(|a, x| a.bound.partial_cmp(&x.bound).unwrap())
            .unwrap();
        let expected = ((2 * b + 1) as f64 * n as f64).sqrt();
        assert!(
            (best.quorum_size as f64 - expected).abs() <= 3.0,
            "best at c={} expected ~{expected}",
            best.quorum_size
        );
        // The bound at the minimum is the universal bound.
        assert!((best.bound - load_lower_bound_universal(n, b)).abs() < 0.01);
    }

    #[test]
    fn lp_ablation_agrees_with_closed_forms() {
        let rows = lp_vs_fair_load();
        assert!(rows.len() >= 5);
        for r in &rows {
            assert!(
                (r.lp_load - r.analytic_load).abs() < 1e-5,
                "{}: LP {} vs analytic {}",
                r.system,
                r.lp_load,
                r.analytic_load
            );
        }
    }
}
