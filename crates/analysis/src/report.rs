//! Plain-text table rendering for experiment reports.
//!
//! Every bench binary in `bqs-bench` prints its table or figure series through this
//! module so that the output of `cargo run -p bqs-bench --bin <experiment>` looks the
//! same across experiments and can be diffed against EXPERIMENTS.md.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render as empty, extra cells are kept).
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a header separator.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                out.push_str(&format!("{cell:<width$}"));
                if i + 1 < widths.len() {
                    out.push_str("  ");
                }
            }
            out.trim_end().to_string()
        };
        let mut lines = Vec::new();
        lines.push(render_row(&self.header));
        lines.push(
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        for row in &self.rows {
            lines.push(render_row(row));
        }
        lines.join("\n")
    }
}

/// Formats a probability for display: scientific notation when tiny, fixed otherwise.
#[must_use]
pub fn format_probability(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p < 1e-3 {
        format!("{p:.2e}")
    } else {
        format!("{p:.4}")
    }
}

/// Formats an optional probability, rendering `None` as a dash.
#[must_use]
pub fn format_optional_probability(p: Option<f64>) -> String {
    p.map_or_else(|| "-".to_string(), format_probability)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["system", "load"]);
        t.push_row(["M-Grid", "0.25"]);
        t.push_row(["boostFPP(3,19)", "0.2318"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("system"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("M-Grid"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.push_row(["1"]);
        t.push_row(["1", "2", "3"]);
        let rendered = t.render();
        assert!(rendered.lines().count() == 4);
    }

    #[test]
    fn probability_formatting() {
        assert_eq!(format_probability(0.0), "0");
        assert_eq!(format_probability(0.25), "0.2500");
        assert_eq!(format_probability(0.0000123), "1.23e-5");
        assert_eq!(format_optional_probability(None), "-");
        assert_eq!(format_optional_probability(Some(0.5)), "0.5000");
    }
}
