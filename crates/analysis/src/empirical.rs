//! Empirical-versus-analytic validation of the paper's two measures.
//!
//! The concurrent service runtime (`bqs-service`) produces *measurements*:
//! per-server access counts from strategy-driven clients, and per-fault-plan
//! availability outcomes. This module turns those raw numbers into
//! statistically honest comparisons against the *certified* analytic values —
//! the load `L(Q)` from the column-generation engine and the crash
//! probability `F_p` from the evaluation engine. It is deliberately
//! data-driven (plain counts in, verdicts out) so the analysis layer needs no
//! dependency on the service runtime that produced the data.
//!
//! # The load band
//!
//! Under a balanced certified strategy every server's access count over `N`
//! operations is Binomial(`N`, `L`), so one server's empirical frequency has
//! standard deviation `σ = √(L(1−L)/N)`. The *reported* statistic is the
//! busiest server's frequency — the maximum of `n` near-identically
//! distributed deviations — whose location drifts above `L` by about
//! `σ·√(2 ln n)` (the Gaussian max-order-statistic rate) before its own
//! `O(σ)` fluctuation. The acceptance band therefore allows the drift plus a
//! 3σ fluctuation: `|empirical − L| ≤ σ·(3 + √(2 ln n))`. A systematic error
//! (wrong strategy, broken accounting, lost messages) shows up as a `z`-score
//! far outside the band; honest sampling noise stays inside it.

use bqs_core::availability::wilson_score_interval;

/// The verdict of one empirical-load-versus-certified-`L(Q)` comparison.
#[derive(Debug, Clone)]
pub struct EmpiricalLoadCheck {
    /// Construction name.
    pub system: String,
    /// Universe size.
    pub n: usize,
    /// Quorum-contacting operations the frequencies are normalised by (each
    /// such operation contacts exactly one quorum).
    pub operations: u64,
    /// The certified analytic load `L(Q)`.
    pub certified_load: f64,
    /// The busiest server's empirical access frequency.
    pub empirical_max_load: f64,
    /// One server's binomial standard deviation `√(L(1−L)/N)`.
    pub sigma: f64,
    /// The acceptance band `σ·(3 + √(2 ln n))` around the certified load.
    pub tolerance: f64,
    /// `(empirical − certified) / σ`, the standardised deviation.
    pub z: f64,
    /// Whether the empirical maximum sits inside the band.
    pub within_tolerance: bool,
}

/// Compares the busiest server's empirical access frequency against the
/// certified load, with the max-order-statistic band described in the module
/// docs.
///
/// `access_counts` are per-server delivered-message counts over `operations`
/// quorum-contacting operations (each contacting exactly one quorum; pass
/// `ServiceReport::load_operations`, not the attempted-operation count, so
/// operations that found no live quorum do not bias the frequencies low).
///
/// # Panics
///
/// Panics if `access_counts` is empty, `operations` is zero, or
/// `certified_load` is outside `(0, 1]`.
#[must_use]
pub fn empirical_load_check(
    system: impl Into<String>,
    access_counts: &[u64],
    operations: u64,
    certified_load: f64,
) -> EmpiricalLoadCheck {
    assert!(!access_counts.is_empty(), "need per-server counts");
    assert!(operations > 0, "need at least one operation");
    assert!(
        certified_load > 0.0 && certified_load <= 1.0,
        "loads live in (0, 1]"
    );
    let n = access_counts.len();
    let ops = operations as f64;
    let empirical_max_load = access_counts
        .iter()
        .map(|&c| c as f64 / ops)
        .fold(0.0, f64::max);
    let sigma = (certified_load * (1.0 - certified_load) / ops).sqrt();
    let tolerance = sigma * (3.0 + (2.0 * (n as f64).ln()).sqrt());
    let deviation = empirical_max_load - certified_load;
    EmpiricalLoadCheck {
        system: system.into(),
        n,
        operations,
        certified_load,
        empirical_max_load,
        sigma,
        tolerance,
        z: if sigma > 0.0 { deviation / sigma } else { 0.0 },
        within_tolerance: deviation.abs() <= tolerance,
    }
}

/// The verdict of one empirical-availability-versus-`F_p` comparison.
#[derive(Debug, Clone)]
pub struct EmpiricalAvailabilityCheck {
    /// Construction name.
    pub system: String,
    /// The per-server crash probability of the trials.
    pub p: f64,
    /// Number of independent fault-plan trials.
    pub trials: usize,
    /// Trials in which the service found no live quorum.
    pub unavailable_trials: usize,
    /// The empirical crash frequency `unavailable / trials`.
    pub empirical_fp: f64,
    /// The analytic crash probability `F_p` being validated.
    pub analytic_fp: f64,
    /// Wilson 95% score interval around the empirical frequency.
    pub ci95: (f64, f64),
    /// Whether the analytic value falls inside the Wilson interval.
    pub consistent: bool,
}

/// Compares the empirical frequency of unavailable service runs (each under
/// an independently drawn crash plan at rate `p`) against the analytic `F_p`,
/// using the Wilson 95% score interval — the same tail-honest interval the
/// Monte-Carlo `F_p` estimator reports.
///
/// # Panics
///
/// Panics if `trials` is zero or `unavailable_trials > trials`.
#[must_use]
pub fn empirical_availability_check(
    system: impl Into<String>,
    p: f64,
    trials: usize,
    unavailable_trials: usize,
    analytic_fp: f64,
) -> EmpiricalAvailabilityCheck {
    assert!(trials > 0, "need at least one trial");
    assert!(
        unavailable_trials <= trials,
        "cannot fail more trials than were run"
    );
    let empirical_fp = unavailable_trials as f64 / trials as f64;
    let ci95 = wilson_score_interval(empirical_fp, trials);
    EmpiricalAvailabilityCheck {
        system: system.into(),
        p,
        trials,
        unavailable_trials,
        empirical_fp,
        analytic_fp,
        ci95,
        consistent: analytic_fp >= ci95.0 && analytic_fp <= ci95.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_balanced_counts_pass_the_load_band() {
        // 4 servers, 1000 ops, every op touching servers {0,1}: loads are
        // exactly [1, 1, 0, 0] against a certified L = 1.
        let check = empirical_load_check("toy", &[1000, 1000, 0, 0], 1000, 1.0);
        assert!(check.within_tolerance, "{check:?}");
        assert_eq!(check.empirical_max_load, 1.0);
        assert_eq!(check.z, 0.0);
    }

    #[test]
    fn noisy_but_unbiased_counts_pass() {
        // L = 0.25 over 10_000 ops; busiest server a hair above the mean.
        let counts = [2_540u64, 2_480, 2_460, 2_500];
        let check = empirical_load_check("noisy", &counts, 10_000, 0.25);
        assert!(check.within_tolerance, "{check:?}");
        assert!(check.z.abs() < 3.0, "{check:?}");
    }

    #[test]
    fn systematic_load_errors_are_flagged() {
        // Claimed L = 0.25 but the busiest server was hit 40% of the time —
        // far outside any sampling band at 10_000 ops.
        let counts = [4_000u64, 2_000, 2_000, 2_000];
        let check = empirical_load_check("broken", &counts, 10_000, 0.25);
        assert!(!check.within_tolerance, "{check:?}");
        assert!(check.z > 10.0);
    }

    #[test]
    fn tolerance_grows_with_universe_but_shrinks_with_ops() {
        let few_ops = empirical_load_check("a", &[25; 100], 100, 0.25);
        let many_ops = empirical_load_check("b", &[2_500; 100], 10_000, 0.25);
        assert!(many_ops.tolerance < few_ops.tolerance);
        let small_n = empirical_load_check("c", &[2_500; 4], 10_000, 0.25);
        assert!(small_n.tolerance < many_ops.tolerance);
    }

    #[test]
    fn availability_consistency_via_wilson() {
        // 7 unavailable out of 100 trials against F_p = 0.06: consistent.
        let check = empirical_availability_check("toy", 0.1, 100, 7, 0.06);
        assert!(check.consistent, "{check:?}");
        assert!((check.empirical_fp - 0.07).abs() < 1e-12);
        // Against F_p = 0.5: wildly inconsistent.
        let check = empirical_availability_check("toy", 0.1, 100, 7, 0.5);
        assert!(!check.consistent, "{check:?}");
    }

    #[test]
    fn zero_hit_availability_still_has_an_interval() {
        let check = empirical_availability_check("rare", 0.01, 500, 0, 1e-9);
        assert!(check.ci95.0 <= 1e-9, "{check:?}");
        assert!(check.consistent, "{check:?}");
    }
}
