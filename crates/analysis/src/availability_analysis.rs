//! Availability analysis: the figure-style sweeps behind the paper's `F_p` claims.
//!
//! * [`fp_vs_p`] — crash probability of each construction as the per-server crash
//!   probability `p` varies (exposes the crossovers the paper discusses: the grid
//!   family degrades, the RT/M-Path/boostFPP family stays available for small `p`).
//! * [`fp_vs_n`] — crash probability as the universe grows at fixed `p`, checking
//!   the Condorcet behaviour (`F_p → 0` vs `F_p → 1`).
//! * [`rt_fixed_point_sweep`] — the recurrence of Proposition 5.6, showing the sharp
//!   threshold at `p_c`.
//! * [`exact_vs_monte_carlo`] — the ablation of DESIGN.md: exact enumeration against
//!   the Monte-Carlo estimator on small instances.
//!
//! All sweeps run through [`Evaluator::sweep`] on its persistent worker pool:
//! each system's `(p)` grid is evaluated as one batch (thread spawn paid once
//! per sweep, points overlapped on multicore hosts). Structure-aware
//! constructions report *exact* values — closed forms for Threshold, Grid,
//! M-Grid, RT and now boostFPP (survivor-profile composition), the
//! transfer-matrix DP for M-Path up to the side-6 gate — small universes are
//! enumerated in parallel, and only the remaining large M-Path instances fall
//! back to Monte-Carlo with per-thread RNG streams.

use bqs_constructions::prelude::*;
use bqs_core::availability::CrashEstimate;
use bqs_core::eval::{Evaluator, FpEstimate};
use bqs_core::quorum::QuorumSystem;

/// A single `(p, F_p)` measurement for one system.
#[derive(Debug, Clone)]
pub struct AvailabilityPoint {
    /// Construction name.
    pub system: String,
    /// Universe size.
    pub n: usize,
    /// Per-server crash probability.
    pub p: f64,
    /// The engine's `F_p` answer (exact where the construction allows it,
    /// Monte-Carlo otherwise — see [`FpEstimate::method`]).
    pub fp: FpEstimate,
    /// Analytic upper bound, when the construction provides one.
    pub fp_upper_bound: Option<f64>,
    /// Analytic lower bound, when the construction provides one.
    pub fp_lower_bound: Option<f64>,
}

/// Sweeps one system over the whole `p` grid on the evaluator's persistent
/// worker pool and appends a point per grid value.
fn sweep_into(
    points: &mut Vec<AvailabilityPoint>,
    evaluator: &Evaluator,
    sys: &dyn AnalyzedConstruction,
    ps: &[f64],
) {
    for (est, &p) in evaluator.sweep(sys, ps).iter().zip(ps) {
        points.push(AvailabilityPoint {
            system: sys.name(),
            n: sys.universe_size(),
            p,
            fp: *est,
            fp_upper_bound: sys.crash_probability_upper_bound(p),
            fp_lower_bound: sys.crash_probability_lower_bound(p),
        });
    }
}

/// Sweeps `F_p` over the given `p` values for the standard comparison set of
/// constructions at grid side `side` and masking level `b` (clamped per system).
#[must_use]
pub fn fp_vs_p(
    side: usize,
    b: usize,
    ps: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    let evaluator = Evaluator::new().with_trials(trials.max(1)).with_seed(seed);
    // Large M-Path grids are past the transfer-matrix DP gate, and running a
    // max-flow per enumerated configuration is never worth it in a sweep:
    // force Monte-Carlo there with capped effort. (Sides within the gate
    // dispatch to the exact DP before this policy is consulted.)
    let mpath_evaluator = evaluator
        .clone()
        .with_trials(trials.clamp(1, 300))
        .with_exact_limit(0);
    let n = side * side;
    let mut points = Vec::new();

    let depth = ((n as f64).ln() / 4f64.ln()).round().max(1.0) as u32;
    let copies = (n / (4 * b + 1)).max(7);
    let q = (2u64..=64)
        .filter(|&q| bqs_combinatorics::primes::prime_power(q).is_some())
        .min_by_key(|&q| ((q * q + q + 1) as usize).abs_diff(copies))
        .unwrap_or(2);

    if let Ok(sys) = ThresholdSystem::masking(n, b) {
        sweep_into(&mut points, &evaluator, &sys, ps);
    }
    if let Ok(sys) = MGridSystem::new(side, b.min(MGridSystem::max_b(side))) {
        sweep_into(&mut points, &evaluator, &sys, ps);
    }
    if let Ok(sys) = RtSystem::new(4, 3, depth) {
        sweep_into(&mut points, &evaluator, &sys, ps);
    }
    if let Ok(sys) = BoostFppSystem::new(q, b) {
        sweep_into(&mut points, &evaluator, &sys, ps);
    }
    if let Ok(sys) = MPathSystem::new(side, b.min(MPathSystem::max_b(side))) {
        sweep_into(&mut points, &mpath_evaluator, &sys, ps);
    }
    points
}

/// Sweeps `F_p` at fixed `p` while the universe grows, for the Condorcet comparison
/// between the M-Grid (`F_p → 1`) and RT / M-Path (`F_p → 0` for `p < p_c` resp.
/// `p < 1/2`).
#[must_use]
pub fn fp_vs_n(
    sides: &[usize],
    b: usize,
    p: f64,
    trials: usize,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    let evaluator = Evaluator::new().with_trials(trials.max(1)).with_seed(seed);
    let mpath_evaluator = evaluator
        .clone()
        .with_trials(trials.clamp(1, 300))
        .with_exact_limit(0);
    let mut points = Vec::new();
    let ps = [p];
    for &side in sides {
        if let Ok(sys) = MGridSystem::new(side, b.min(MGridSystem::max_b(side))) {
            sweep_into(&mut points, &evaluator, &sys, &ps);
        }
        let n = side * side;
        let depth = ((n as f64).ln() / 4f64.ln()).round().max(1.0) as u32;
        if let Ok(sys) = RtSystem::new(4, 3, depth) {
            sweep_into(&mut points, &evaluator, &sys, &ps);
        }
        if let Ok(sys) = MPathSystem::new(side, b.min(MPathSystem::max_b(side))) {
            sweep_into(&mut points, &mpath_evaluator, &sys, &ps);
        }
    }
    points
}

/// One step of the RT fixed-point sweep of Proposition 5.6.
#[derive(Debug, Clone, Copy)]
pub struct RtSweepPoint {
    /// Per-server crash probability.
    pub p: f64,
    /// Crash probability of the depth-`h` system.
    pub fp: f64,
    /// Whether `p` is below the critical probability.
    pub below_critical: bool,
}

/// Evaluates the RT(k, ℓ) crash-probability recurrence at depth `depth` across `ps`.
#[must_use]
pub fn rt_fixed_point_sweep(k: usize, l: usize, depth: u32, ps: &[f64]) -> Vec<RtSweepPoint> {
    let rt = RtSystem::new(k, l, depth).expect("valid RT parameters");
    let pc = rt.critical_probability();
    ps.iter()
        .map(|&p| RtSweepPoint {
            p,
            fp: rt.crash_probability(p),
            below_critical: p < pc,
        })
        .collect()
}

/// Result of the exact-versus-Monte-Carlo ablation on one small instance.
#[derive(Debug, Clone)]
pub struct ExactVsMc {
    /// Construction name.
    pub system: String,
    /// Crash probability `p` used.
    pub p: f64,
    /// Exact crash probability by enumeration.
    pub exact: f64,
    /// Monte-Carlo estimate.
    pub estimate: CrashEstimate,
}

/// Compares exact enumeration with the Monte-Carlo estimator on small instances.
/// Both columns come from the same [`Evaluator`]: parallel allocation-free
/// enumeration on one side, parallel per-thread-stream sampling on the other.
#[must_use]
pub fn exact_vs_monte_carlo(trials: usize, seed: u64) -> Vec<ExactVsMc> {
    let evaluator = Evaluator::new().with_trials(trials.max(1)).with_seed(seed);
    let mut out = Vec::new();
    let ps = [0.1, 0.25, 0.4];

    let thresh = ThresholdSystem::minimal_masking(2).expect("valid");
    let rt = RtSystem::new(3, 2, 2).expect("valid");
    let grid = GridSystem::new(4, 1).expect("valid");
    let mgrid = MGridSystem::new(4, 1).expect("valid");
    let mpath = MPathSystem::new(4, 1).expect("valid");

    let systems: Vec<&dyn QuorumSystem> = vec![&thresh, &rt, &grid, &mgrid, &mpath];
    for sys in systems {
        for &p in &ps {
            let exact = evaluator.exact(sys, p).expect("small universe");
            let estimate = evaluator.monte_carlo(sys, p);
            out.push(ExactVsMc {
                system: sys.name(),
                p,
                exact,
                estimate,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_vs_p_shows_the_papers_ordering() {
        // At p = 1/8 on a 16x16 universe the RT and boostFPP systems should be far
        // more available than the M-Grid.
        let points = fp_vs_p(16, 3, &[0.125], 300, 7);
        let get = |prefix: &str| {
            points
                .iter()
                .find(|pt| pt.system.starts_with(prefix))
                .unwrap_or_else(|| panic!("{prefix} missing"))
        };
        assert!(get("RT").fp.value <= get("M-Grid").fp.value + 0.05);
        assert!(get("M-Path").fp.value <= get("M-Grid").fp.value + 0.05);
        // Every Monte-Carlo estimate respects its analytic bounds (within CI).
        for pt in &points {
            if let Some(up) = pt.fp_upper_bound {
                assert!(
                    pt.fp.value <= up + pt.fp.ci95_half_width() + 0.02,
                    "{} p={}",
                    pt.system,
                    pt.p
                );
            }
            if let Some(low) = pt.fp_lower_bound {
                assert!(
                    pt.fp.value + pt.fp.ci95_half_width() + 0.02 >= low,
                    "{} p={}",
                    pt.system,
                    pt.p
                );
            }
        }
    }

    #[test]
    fn fp_vs_n_condorcet_separation() {
        // At p = 0.125, growing the grid makes the M-Grid less available and the RT
        // more available.
        let points = fp_vs_n(&[8, 16], 3, 0.125, 300, 11);
        let series = |prefix: &str| -> Vec<f64> {
            points
                .iter()
                .filter(|pt| pt.system.starts_with(prefix))
                .map(|pt| pt.fp.value)
                .collect()
        };
        let mgrid = series("M-Grid");
        let rt = series("RT");
        assert_eq!(mgrid.len(), 2);
        assert!(
            mgrid[1] >= mgrid[0] - 0.05,
            "M-Grid should degrade: {mgrid:?}"
        );
        assert!(rt[1] <= rt[0] + 0.05, "RT should improve: {rt:?}");
    }

    #[test]
    fn rt_sweep_has_sharp_threshold() {
        let ps: Vec<f64> = (1..=9).map(|i| i as f64 * 0.05).collect();
        let sweep = rt_fixed_point_sweep(4, 3, 6, &ps);
        for pt in &sweep {
            if pt.p <= 0.15 {
                assert!(pt.fp < 0.01, "p={} fp={}", pt.p, pt.fp);
                assert!(pt.below_critical);
            }
            if pt.p >= 0.35 {
                assert!(pt.fp > 0.9, "p={} fp={}", pt.p, pt.fp);
                assert!(!pt.below_critical);
            }
        }
    }

    #[test]
    fn exact_and_monte_carlo_agree() {
        for row in exact_vs_monte_carlo(3000, 13) {
            assert!(
                (row.exact - row.estimate.mean).abs() <= row.estimate.ci95_half_width().max(0.03),
                "{} p={}: exact {} vs MC {}",
                row.system,
                row.p,
                row.exact,
                row.estimate.mean
            );
        }
    }
}
