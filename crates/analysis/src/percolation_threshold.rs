//! Percolation-threshold estimation for the M-Path availability argument.
//!
//! Proposition 7.3 rests on the fact that site percolation on the triangular lattice
//! has critical probability `p_c = 1/2` [Kes80]: below it, left-right crossings of a
//! `√n × √n` patch exist with probability `1 − e^{−ψ(p)√n}` (Theorem B.1). This
//! module estimates the finite-size crossing curve and locates its inflection —
//! reproducing, numerically, the `p_c = 1/2` input the paper takes from the
//! percolation literature — and measures the exponential decay rate `ψ(p)` of the
//! non-crossing probability.

use rand::rngs::StdRng;
use rand::SeedableRng;

use bqs_graph::crossing_dp::{crossing_probability_exact, DEFAULT_DP_STATE_BUDGET};
use bqs_graph::grid::Axis;
use bqs_graph::percolation::PercolationEstimator;

/// Largest grid side for which [`exact_crossing_curve`] runs the
/// transfer-matrix DP (the `k = 1` sweep of [`bqs_graph::crossing_dp`]);
/// side 7 already takes tens of seconds per point.
pub const EXACT_CURVE_MAX_SIDE: usize = 6;

/// One point of the crossing-probability curve.
#[derive(Debug, Clone, Copy)]
pub struct CrossingPoint {
    /// Per-site crash (closed) probability.
    pub p: f64,
    /// Estimated probability that an open left-right crossing exists.
    pub crossing_probability: f64,
    /// 95% confidence half-width (zero for exact points).
    pub ci95: f64,
}

/// Estimates the crossing-probability curve for a `side × side` triangulated grid.
#[must_use]
pub fn crossing_curve(side: usize, ps: &[f64], trials: usize, seed: u64) -> Vec<CrossingPoint> {
    let est = PercolationEstimator::new(side);
    let mut rng = StdRng::seed_from_u64(seed);
    ps.iter()
        .map(|&p| {
            let e = est.estimate_crossing_probability(p, Axis::LeftRight, trials.max(1), &mut rng);
            CrossingPoint {
                p,
                crossing_probability: e.mean,
                ci95: e.ci95_half_width(),
            }
        })
        .collect()
}

/// The **exact** crossing-probability curve by the transfer-matrix DP —
/// no sampling error, so finite-size effects around `p_c = 1/2` are visible
/// without Monte-Carlo noise. Returns `None` when `side >`
/// [`EXACT_CURVE_MAX_SIDE`] (use [`crossing_curve`] there).
#[must_use]
pub fn exact_crossing_curve(side: usize, ps: &[f64]) -> Option<Vec<CrossingPoint>> {
    if side > EXACT_CURVE_MAX_SIDE {
        return None;
    }
    ps.iter()
        .map(|&p| {
            crossing_probability_exact(side, p, Axis::LeftRight, DEFAULT_DP_STATE_BUDGET).map(|c| {
                CrossingPoint {
                    p,
                    crossing_probability: c,
                    ci95: 0.0,
                }
            })
        })
        .collect()
}

/// Estimates the critical probability as the `p` at which the crossing probability
/// drops through 1/2 (the standard finite-size estimator). The returned value
/// converges to the true `p_c = 1/2` of the triangular lattice as `side` grows.
#[must_use]
pub fn estimate_critical_probability(side: usize, trials: usize, seed: u64) -> f64 {
    // Bisection on the (monotone, noisy) crossing curve.
    let est = PercolationEstimator::new(side);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lo = 0.05;
    let mut hi = 0.95;
    for _ in 0..12 {
        let mid = 0.5 * (lo + hi);
        let e = est.estimate_crossing_probability(mid, Axis::LeftRight, trials.max(1), &mut rng);
        if e.mean > 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Estimates the decay rate `ψ(p)` of Theorem B.1 by measuring the non-crossing
/// probability at two grid sizes and fitting `P[no crossing] ≈ e^{−ψ √n}`.
/// Returns `None` when either measurement had no failures (decay too fast to
/// estimate at this trial budget — itself evidence of large `ψ`).
#[must_use]
pub fn estimate_decay_rate(
    small_side: usize,
    large_side: usize,
    p: f64,
    trials: usize,
    seed: u64,
) -> Option<f64> {
    assert!(small_side < large_side, "sides must increase");
    let mut rng = StdRng::seed_from_u64(seed);
    let small = PercolationEstimator::new(small_side);
    let large = PercolationEstimator::new(large_side);
    let f_small = 1.0
        - small
            .estimate_crossing_probability(p, Axis::LeftRight, trials.max(1), &mut rng)
            .mean;
    let f_large = 1.0
        - large
            .estimate_crossing_probability(p, Axis::LeftRight, trials.max(1), &mut rng)
            .mean;
    if f_small <= 0.0 || f_large <= 0.0 {
        return None;
    }
    // f(side) = exp(-psi * side)  =>  psi = (ln f_small - ln f_large) / (large - small)
    Some((f_small.ln() - f_large.ln()) / (large_side as f64 - small_side as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_curve_is_monotone_decreasing() {
        let ps = [0.1, 0.3, 0.5, 0.7, 0.9];
        let curve = crossing_curve(10, &ps, 300, 3);
        for w in curve.windows(2) {
            assert!(
                w[0].crossing_probability + 0.12 >= w[1].crossing_probability,
                "{:?}",
                w
            );
        }
        assert!(curve[0].crossing_probability > 0.95);
        assert!(curve[4].crossing_probability < 0.05);
    }

    #[test]
    fn exact_curve_brackets_monte_carlo_and_passes_through_half() {
        let ps = [0.2, 0.5, 0.75];
        let exact = exact_crossing_curve(5, &ps).expect("side within the DP gate");
        let mc = crossing_curve(5, &ps, 400, 7);
        for (e, m) in exact.iter().zip(&mc) {
            assert_eq!(e.ci95, 0.0);
            assert!(
                (e.crossing_probability - m.crossing_probability).abs() <= m.ci95 + 0.03,
                "p={}: exact {} vs mc {}",
                e.p,
                e.crossing_probability,
                m.crossing_probability
            );
        }
        // Self-duality of the triangular lattice: exactly 1/2 at p = 1/2.
        assert!((exact[1].crossing_probability - 0.5).abs() < 1e-12);
        // Past the gate the exact curve declines.
        assert!(exact_crossing_curve(12, &ps).is_none());
    }

    #[test]
    fn critical_probability_is_near_one_half() {
        // Site percolation on the triangular lattice: p_c = 1/2. Finite-size
        // estimates on moderate grids land within a few percent.
        let pc = estimate_critical_probability(16, 300, 5);
        assert!((pc - 0.5).abs() < 0.1, "pc={pc}");
    }

    #[test]
    fn decay_rate_positive_below_critical() {
        // At p = 0.35 < 1/2 the non-crossing probability decays with the side length.
        if let Some(psi) = estimate_decay_rate(6, 12, 0.35, 2000, 9) {
            assert!(psi > 0.0, "psi={psi}");
        }
        // At p far below p_c the failures may simply never occur at this budget.
        let fast = estimate_decay_rate(6, 12, 0.05, 200, 9);
        if let Some(psi) = fast {
            assert!(psi > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "sides must increase")]
    fn decay_rate_validates_sides() {
        let _ = estimate_decay_rate(12, 6, 0.3, 10, 1);
    }
}
