//! Load and availability analysis of Byzantine quorum systems.
//!
//! This crate turns the constructions of `bqs-constructions` and the measures of
//! `bqs-core` into the *experiments* of the paper:
//!
//! * [`comparison`] — Table 2 (the construction-by-construction comparison);
//! * [`scenario`] — the Section 8 worked example (`n = 1024`, `L ≈ 1/4`, `p = 1/8`);
//! * [`load_analysis`] — load-versus-n sweeps, the certified column-generation
//!   sweep `lp_load_vs_n` (pinning closed-form loads against the LP up to
//!   `n = 1024`), the Theorem 4.1 envelope, and the LP-versus-closed-form
//!   ablation;
//! * [`availability_analysis`] — `F_p` versus `p` and versus `n`, the RT fixed-point
//!   sweep, and the exact-versus-Monte-Carlo ablation;
//! * [`percolation_threshold`] — the finite-size percolation estimates behind the
//!   M-Path availability argument (Appendix B);
//! * [`empirical`] — statistically honest comparisons of the concurrent
//!   service runtime's measurements (per-server access counts, per-plan
//!   availability outcomes) against the certified `L(Q)` and `F_p`;
//! * [`report`] — the text-table rendering shared by the bench binaries.
//!
//! Each bench binary in `bqs-bench` is a thin wrapper that calls one of these
//! functions and prints the rendered table; EXPERIMENTS.md records the outputs next
//! to the values the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod availability_analysis;
pub mod comparison;
pub mod empirical;
pub mod load_analysis;
pub mod percolation_threshold;
pub mod report;
pub mod scenario;

pub use ablation::{mpath_discovery_ablation, transversal_ablation};
pub use availability_analysis::{exact_vs_monte_carlo, fp_vs_n, fp_vs_p, rt_fixed_point_sweep};
pub use comparison::{build_table2, render_table2, Table2Row};
pub use empirical::{
    empirical_availability_check, empirical_load_check, EmpiricalAvailabilityCheck,
    EmpiricalLoadCheck,
};
pub use load_analysis::{
    boost_fpp_order_for, certified_constructions, load_vs_n, lower_bound_envelope, lp_load_vs_n,
    lp_vs_fair_load, CertifiableConstruction, CertifiedLoadPoint,
};
pub use percolation_threshold::{crossing_curve, estimate_critical_probability};
pub use report::TextTable;
pub use scenario::{build_scenario, render_scenario, ScenarioRow};
