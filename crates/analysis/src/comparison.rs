//! Reproduction of Table 2: the side-by-side comparison of all constructions.
//!
//! Table 2 of the paper lists, for each construction, the largest masking level `b`,
//! the resilience `f`, the load `L`, and the asymptotic behaviour of the crash
//! probability `F_p`. This module instantiates every construction at a concrete
//! universe size, computes those quantities numerically, and tags each with the
//! paper's asymptotic claim so the bench binary can print both.

use bqs_constructions::prelude::*;
use bqs_core::eval::{Evaluator, FpEstimate};
use bqs_core::quorum::QuorumSystem;

/// One row of the reproduced Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Construction name (with its instantiated parameters).
    pub system: String,
    /// Universe size the row was instantiated at.
    pub n: usize,
    /// Masking level `b` of the instance.
    pub b: usize,
    /// Resilience `f` of the instance.
    pub f: usize,
    /// Load of the instance.
    pub load: f64,
    /// Ratio of the load to the universal lower bound `√((2b+1)/n)`.
    pub load_optimality_ratio: f64,
    /// Crash-probability upper bound at the reference crash probability, if known.
    pub fp_upper: Option<f64>,
    /// Crash-probability lower bound at the reference crash probability, if known.
    pub fp_lower: Option<f64>,
    /// The engine's value for `F_p` at the reference crash probability — a
    /// column the paper could not print: exact for every construction with a
    /// closed form or DP, Monte-Carlo (with Wilson bounds) otherwise. All
    /// rows are evaluated as one batch through [`Evaluator::sweep_systems`].
    pub fp_engine: FpEstimate,
    /// The paper's asymptotic claim for the maximum b (column "b <" of Table 2).
    pub paper_max_b: &'static str,
    /// The paper's asymptotic claim for the load (column "L").
    pub paper_load: &'static str,
    /// The paper's asymptotic claim for `F_p`.
    pub paper_fp: &'static str,
}

/// The reference crash probability used for the numeric `F_p` columns.
pub const REFERENCE_CRASH_P: f64 = 0.125;

/// Builds the Table 2 comparison at a universe of (approximately) `n = side²`
/// servers, masking roughly `b` failures where each construction permits.
///
/// `side` is the grid side used by the grid-family constructions; the Threshold,
/// RT and boostFPP rows pick the nearest parameterisations with a comparable
/// universe size (exactly as the paper's Section 8 example does for n = 1024).
#[must_use]
pub fn build_table2(side: usize, b: usize) -> Vec<Table2Row> {
    let n = side * side;
    let mut systems: Vec<(
        Box<dyn AnalyzedConstruction>,
        &'static str,
        &'static str,
        &'static str,
    )> = Vec::new();

    if let Ok(sys) = ThresholdSystem::masking(n, b) {
        systems.push((Box::new(sys), "n/4", "1/2 + O(b/n)", "exp(-Omega(f)) *"));
    }
    let grid_b = b.min(side.saturating_sub(1) / 3);
    if let Ok(sys) = GridSystem::new(side, grid_b) {
        systems.push((Box::new(sys), "sqrt(n)/3", "O(b/sqrt(n))", "-> 1"));
    }
    if let Ok(sys) = MGridSystem::new(side, b.min(MGridSystem::max_b(side))) {
        systems.push((Box::new(sys), "sqrt(n)/2", "O(sqrt(b/n)) +", "-> 1"));
    }
    // RT(4,3) at the depth that best matches n.
    let depth = ((n as f64).ln() / 4f64.ln()).round().max(1.0) as u32;
    if let Ok(sys) = RtSystem::new(4, 3, depth) {
        systems.push((
            Box::new(sys),
            "O(min{n^a1, n^a2})",
            "n^-(1-log_k l)",
            "exp(-Omega(f)) *",
        ));
    }
    // boostFPP with a plane order giving roughly n servers for the requested b.
    let target_copies = (n / (4 * b + 1)).max(7);
    let q = best_plane_order(target_copies);
    if let Ok(sys) = BoostFppSystem::new(q, b) {
        systems.push((
            Box::new(sys),
            "n/4",
            "O(sqrt(b/n)) +",
            "exp(-Omega(b - log(n/b)))",
        ));
    }
    if let Ok(sys) = MPathSystem::new(side, b.min(MPathSystem::max_b(side))) {
        systems.push((
            Box::new(sys),
            "(1-o(1)) sqrt(n)",
            "O(sqrt(b/n)) +",
            "exp(-Omega(f)) *",
        ));
    }

    // One batched sweep over every row (exact where the construction allows,
    // capped Monte-Carlo otherwise — the M-Path row at paper scale runs a
    // max-flow per trial, so keep the sampling effort modest).
    let evaluator = Evaluator::new().with_trials(400).with_seed(0x7AB2);
    let refs: Vec<&dyn QuorumSystem> = systems
        .iter()
        .map(|(sys, _, _, _)| sys.as_ref() as &dyn QuorumSystem)
        .collect();
    let fp_grid = evaluator.sweep_systems(&refs, &[REFERENCE_CRASH_P]);

    systems
        .iter()
        .zip(fp_grid)
        .map(|((sys, paper_max_b, paper_load, paper_fp), fps)| {
            row(sys.as_ref(), fps[0], paper_max_b, paper_load, paper_fp)
        })
        .collect()
}

/// Picks the prime-power plane order `q` whose plane has the number of points
/// closest to `target_copies`.
fn best_plane_order(target_copies: usize) -> u64 {
    let mut best_q = 2u64;
    let mut best_err = usize::MAX;
    for q in 2u64..=64 {
        if bqs_combinatorics::primes::prime_power(q).is_none() {
            continue;
        }
        let points = (q * q + q + 1) as usize;
        let err = points.abs_diff(target_copies);
        if err < best_err {
            best_err = err;
            best_q = q;
        }
    }
    best_q
}

fn row(
    sys: &dyn AnalyzedConstruction,
    fp_engine: FpEstimate,
    paper_max_b: &'static str,
    paper_load: &'static str,
    paper_fp: &'static str,
) -> Table2Row {
    Table2Row {
        system: sys.name(),
        n: sys.universe_size(),
        b: sys.masking_b(),
        f: sys.resilience(),
        load: sys.analytic_load(),
        load_optimality_ratio: sys.load_optimality_ratio(),
        fp_upper: sys.crash_probability_upper_bound(REFERENCE_CRASH_P),
        fp_lower: sys.crash_probability_lower_bound(REFERENCE_CRASH_P),
        fp_engine,
        paper_max_b,
        paper_load,
        paper_fp,
    }
}

/// Renders the rows as a text table (used by the `table2` bench binary).
#[must_use]
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut table = crate::report::TextTable::new([
        "system",
        "n",
        "b",
        "f",
        "L",
        "L / lower-bound",
        "Fp upper (p=1/8)",
        "Fp lower (p=1/8)",
        "Fp engine (p=1/8)",
        "paper: max b",
        "paper: L",
        "paper: Fp",
    ]);
    for r in rows {
        let engine = if r.fp_engine.is_exact() {
            format!(
                "{} ({})",
                crate::report::format_probability(r.fp_engine.value),
                r.fp_engine.method.label()
            )
        } else {
            format!(
                "{} (<= {})",
                crate::report::format_probability(r.fp_engine.value),
                crate::report::format_probability(r.fp_engine.ci95_upper_bound())
            )
        };
        table.push_row([
            r.system.clone(),
            r.n.to_string(),
            r.b.to_string(),
            r.f.to_string(),
            format!("{:.4}", r.load),
            format!("{:.2}", r.load_optimality_ratio),
            crate::report::format_optional_probability(r.fp_upper),
            crate::report::format_optional_probability(r.fp_lower),
            engine,
            r.paper_max_b.to_string(),
            r.paper_load.to_string(),
            r.paper_fp.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_all_six_constructions() {
        let rows = build_table2(32, 7);
        let names: Vec<&str> = rows.iter().map(|r| r.system.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("Threshold")));
        assert!(names.iter().any(|n| n.starts_with("Grid")));
        assert!(names.iter().any(|n| n.starts_with("M-Grid")));
        assert!(names.iter().any(|n| n.starts_with("RT")));
        assert!(names.iter().any(|n| n.starts_with("boostFPP")));
        assert!(names.iter().any(|n| n.starts_with("M-Path")));
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn every_row_respects_invariants() {
        for r in build_table2(32, 7) {
            assert!(r.f >= r.b, "{}", r.system);
            assert!(r.load > 0.0 && r.load <= 1.0, "{}", r.system);
            assert!(r.load_optimality_ratio >= 1.0 - 1e-9, "{}", r.system);
            if let (Some(up), Some(low)) = (r.fp_upper, r.fp_lower) {
                assert!(
                    up + 1e-9 >= low,
                    "{}: upper {up} below lower {low}",
                    r.system
                );
            }
        }
    }

    #[test]
    fn table2_shape_matches_paper_claims() {
        // The qualitative "who wins" of Table 2: the Threshold has the largest b and
        // the worst load; the optimal-load family stays within ~2x of the bound;
        // the M-Grid and Grid have no useful Fp upper bound.
        let rows = build_table2(32, 7);
        let get = |prefix: &str| rows.iter().find(|r| r.system.starts_with(prefix)).unwrap();
        let threshold = get("Threshold");
        let mgrid = get("M-Grid");
        let mpath = get("M-Path");
        let grid = get("Grid");
        assert!(threshold.b >= mgrid.b);
        assert!(threshold.load > mgrid.load);
        assert!(mgrid.load_optimality_ratio < 2.5);
        assert!(mpath.load_optimality_ratio < 2.5);
        assert!(threshold.load_optimality_ratio > 2.5);
        assert!(grid.fp_upper.is_none());
        assert!(mgrid.fp_upper.is_none());
        assert!(mpath.fp_upper.is_some());
        assert!(threshold.fp_upper.is_some());
    }

    #[test]
    fn engine_fp_column_dispatches_and_respects_bounds() {
        let rows = build_table2(32, 7);
        for r in &rows {
            let fp = &r.fp_engine;
            assert!((0.0..=1.0).contains(&fp.value), "{}", r.system);
            // The closed-form families answer exactly even at n = 1024; the
            // paper-scale M-Path row is past the DP gate and must sample —
            // with a non-degenerate Wilson upper bound.
            if ["Threshold", "Grid", "M-Grid", "RT"]
                .iter()
                .any(|p| r.system.starts_with(p))
            {
                assert!(fp.is_exact(), "{} method {:?}", r.system, fp.method);
            }
            if r.system.starts_with("M-Path") {
                assert!(!fp.is_exact(), "{}", r.system);
                assert!(fp.ci95_upper_bound() > fp.value);
            }
            if let Some(up) = r.fp_upper {
                let slack = if fp.is_exact() { 1e-9 } else { 0.06 };
                assert!(
                    fp.value <= up + slack,
                    "{}: engine {} above upper bound {up}",
                    r.system,
                    fp.value
                );
            }
        }
        // At a universe where the chosen plane order is <= 4, the boostFPP row
        // is exact through the survivor-profile composition.
        let small = build_table2(16, 3);
        let boost = small
            .iter()
            .find(|r| r.system.starts_with("boostFPP"))
            .unwrap();
        assert!(boost.fp_engine.is_exact(), "{:?}", boost.fp_engine.method);
    }

    #[test]
    fn rendering_includes_header_and_rows() {
        let rows = build_table2(16, 3);
        let rendered = render_table2(&rows);
        assert!(rendered.contains("system"));
        assert!(rendered.lines().count() >= rows.len() + 2);
    }

    #[test]
    fn plane_order_selection() {
        assert_eq!(best_plane_order(7), 2);
        assert_eq!(best_plane_order(13), 3);
        assert_eq!(best_plane_order(70), 8); // 8^2+8+1 = 73
    }
}
