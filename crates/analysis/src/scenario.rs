//! Reproduction of the Section 8 worked example.
//!
//! The paper's discussion fixes `n = 1024` servers, a target load `L ≈ 1/4`, and an
//! individual crash probability `p = 1/8`, then compares what each construction can
//! deliver:
//!
//! | System | b | f | Fp |
//! |---|---|---|---|
//! | M-Grid | 15 | 28 | ≥ 0.638 |
//! | boostFPP (n = 1001, q = 3) | 19 | 79 | ≤ 0.372 |
//! | M-Path (4 LR + 4 TB paths) | 7 | 29 | ≤ 0.001 |
//! | RT(4, 3) depth 5 | 15 | 31 | ≤ 0.0001 |
//!
//! `build_scenario` re-derives every row from the constructions themselves, and the
//! Monte-Carlo column adds a simulated estimate of the true `F_p` (which the paper
//! could only bound analytically).

use bqs_constructions::prelude::*;
use bqs_core::eval::{Evaluator, FpEstimate};

/// One row of the Section 8 scenario comparison.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Construction name.
    pub system: String,
    /// Universe size of the instance (1024, or 1001 for boostFPP).
    pub n: usize,
    /// Byzantine masking level.
    pub b: usize,
    /// Resilience to crashes.
    pub f: usize,
    /// Analytic load.
    pub load: f64,
    /// Analytic crash-probability bound at `p = 1/8` (upper bound where available,
    /// otherwise the lower bound), with its direction.
    pub fp_bound: Option<f64>,
    /// `true` if `fp_bound` is an upper bound, `false` if it is a lower bound.
    pub fp_bound_is_upper: bool,
    /// The engine's estimate of the true crash probability at `p = 1/8`:
    /// exact for M-Grid and RT (closed forms) and for boostFPP (the
    /// survivor-profile composition — the paper could only bound this row by
    /// `F_p ≤ 0.372`; the exact value is far smaller), Monte-Carlo for the
    /// side-32 M-Path, which is past the transfer-matrix DP gate.
    pub fp: FpEstimate,
    /// The value the paper reports for this row.
    pub paper_fp_claim: &'static str,
    /// The resilience the paper reports for this row.
    pub paper_f: usize,
}

impl ScenarioRow {
    /// The engine's point value for `F_p` (see [`ScenarioRow::fp`]).
    #[must_use]
    pub fn fp_value(&self) -> f64 {
        self.fp.value
    }
}

/// The crash probability of the Section 8 scenario.
pub const SCENARIO_P: f64 = 0.125;

/// Builds the four rows of the Section 8 comparison. `trials` controls the
/// Monte-Carlo effort for the systems without an exact method (the paper has
/// no such column; 2 000 trials gives ±0.02 at 95% confidence). M-Grid, RT
/// **and boostFPP** report *exact* values through the evaluation engine —
/// only the side-32 M-Path row still samples.
#[must_use]
pub fn build_scenario(trials: usize) -> Vec<ScenarioRow> {
    let evaluator = Evaluator::new()
        .with_trials(trials.max(1))
        .with_seed(0x5ec8);
    let mut rows = Vec::new();

    // M-Grid: n = 1024, b = 15.
    let mgrid = MGridSystem::new(32, 15).expect("paper parameters are valid");
    rows.push(make_row(
        &mgrid,
        mgrid.crash_probability_lower_bound(SCENARIO_P),
        false,
        "Fp >= 0.638",
        28,
        &evaluator,
    ));

    // boostFPP: q = 3, b = 19 -> n = 1001.
    let boost = BoostFppSystem::new(3, 19).expect("paper parameters are valid");
    rows.push(make_row(
        &boost,
        boost.crash_probability_upper_bound(SCENARIO_P),
        true,
        "Fp <= 0.372",
        79,
        &evaluator,
    ));

    // M-Path: n = 1024, 4 + 4 paths -> b = 7.
    let mpath = MPathSystem::new(32, 7).expect("paper parameters are valid");
    rows.push(make_row(
        &mpath,
        mpath.crash_probability_upper_bound(SCENARIO_P),
        true,
        "Fp <= 0.001",
        29,
        // max-flow verification is costlier per trial: always sample
        &evaluator
            .clone()
            .with_trials(trials.clamp(1, 400))
            .with_exact_limit(0),
    ));

    // RT(4,3) depth 5: n = 1024, b = 15.
    let rt = RtSystem::new(4, 3, 5).expect("paper parameters are valid");
    rows.push(make_row(
        &rt,
        rt.crash_probability_upper_bound(SCENARIO_P),
        true,
        "Fp <= 0.0001",
        31,
        &evaluator,
    ));

    rows
}

fn make_row<S: AnalyzedConstruction + ?Sized>(
    sys: &S,
    fp_bound: Option<f64>,
    fp_bound_is_upper: bool,
    paper_fp_claim: &'static str,
    paper_f: usize,
    evaluator: &Evaluator,
) -> ScenarioRow {
    ScenarioRow {
        system: sys.name(),
        n: sys.universe_size(),
        b: sys.masking_b(),
        f: sys.resilience(),
        load: sys.analytic_load(),
        fp_bound,
        fp_bound_is_upper,
        fp: evaluator.crash_probability(sys, SCENARIO_P),
        paper_fp_claim,
        paper_f,
    }
}

/// Renders the scenario rows as a text table.
#[must_use]
pub fn render_scenario(rows: &[ScenarioRow]) -> String {
    let mut table = crate::report::TextTable::new([
        "system",
        "n",
        "b",
        "f",
        "f (paper)",
        "load",
        "Fp bound (p=1/8)",
        "Fp (engine)",
        "paper claim",
    ]);
    for r in rows {
        let bound = match (r.fp_bound, r.fp_bound_is_upper) {
            (Some(v), true) => format!("<= {}", crate::report::format_probability(v)),
            (Some(v), false) => format!(">= {}", crate::report::format_probability(v)),
            (None, _) => "-".to_string(),
        };
        let engine_fp = if r.fp.is_exact() {
            format!("{} (exact)", crate::report::format_probability(r.fp.value))
        } else {
            // Monte-Carlo: show the Wilson 95% interval, which stays
            // informative when no trial failed (a bare "0 ± 0" would not be).
            let (lower, upper) = r.fp.ci95_bounds();
            format!(
                "{} (95% in [{}, {}])",
                crate::report::format_probability(r.fp.value),
                crate::report::format_probability(lower),
                crate::report::format_probability(upper)
            )
        };
        table.push_row([
            r.system.clone(),
            r.n.to_string(),
            r.b.to_string(),
            r.f.to_string(),
            r.paper_f.to_string(),
            format!("{:.4}", r.load),
            bound,
            engine_fp,
            r.paper_fp_claim.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_reproduces_paper_parameters() {
        let rows = build_scenario(50);
        assert_eq!(rows.len(), 4);
        let get = |prefix: &str| rows.iter().find(|r| r.system.starts_with(prefix)).unwrap();

        let mgrid = get("M-Grid");
        assert_eq!(mgrid.n, 1024);
        assert_eq!(mgrid.b, 15);
        assert_eq!(mgrid.f, 28);
        assert!(mgrid.fp_bound.unwrap() >= 0.63);
        assert!(!mgrid.fp_bound_is_upper);

        let boost = get("boostFPP");
        assert_eq!(boost.n, 1001);
        assert_eq!(boost.b, 19);
        assert_eq!(boost.f, 79);
        assert!(boost.fp_bound.unwrap() <= 0.372);

        let mpath = get("M-Path");
        assert_eq!(mpath.n, 1024);
        assert_eq!(mpath.b, 7);
        assert!(mpath.fp_bound.unwrap() <= 0.001);

        let rt = get("RT");
        assert_eq!(rt.n, 1024);
        assert_eq!(rt.b, 15);
        assert_eq!(rt.f, 31);
        assert!(rt.fp_bound.unwrap() <= 1e-4);
    }

    #[test]
    fn boostfpp_row_reports_exact_value_below_paper_bound() {
        let rows = build_scenario(10);
        let boost = rows
            .iter()
            .find(|r| r.system.starts_with("boostFPP"))
            .unwrap();
        // Exact through the survivor-profile composition — no sampling error —
        // and far below the paper's analytic `<= 0.372`.
        assert!(boost.fp.is_exact(), "method {:?}", boost.fp.method);
        assert!(boost.fp.value <= 0.372, "fp={}", boost.fp.value);
        assert!(boost.fp.value < 0.01, "fp={}", boost.fp.value);
        // The side-32 M-Path row is past the DP gate and still samples.
        let mpath = rows
            .iter()
            .find(|r| r.system.starts_with("M-Path"))
            .unwrap();
        assert!(!mpath.fp.is_exact());
    }

    #[test]
    fn loads_are_near_one_quarter() {
        // The scenario fixes the target load at ~1/4; every instantiated system must
        // be close to it.
        for r in build_scenario(10) {
            assert!(
                (r.load - 0.25).abs() < 0.06,
                "{}: load {} too far from 1/4",
                r.system,
                r.load
            );
        }
    }

    #[test]
    fn monte_carlo_consistent_with_bounds() {
        let rows = build_scenario(300);
        for r in &rows {
            if let Some(bound) = r.fp_bound {
                if r.fp_bound_is_upper {
                    assert!(
                        r.fp.value <= bound + r.fp.ci95_half_width() + 0.02,
                        "{}: MC {} exceeds upper bound {}",
                        r.system,
                        r.fp.value,
                        bound
                    );
                } else {
                    assert!(
                        r.fp.value + r.fp.ci95_half_width() + 0.05 >= bound,
                        "{}: MC {} below lower bound {}",
                        r.system,
                        r.fp.value,
                        bound
                    );
                }
            }
        }
        // The ordering the paper emphasises: RT and M-Path are far more available
        // than M-Grid in this regime.
        let get = |prefix: &str| rows.iter().find(|r| r.system.starts_with(prefix)).unwrap();
        assert!(get("RT").fp.value < get("M-Grid").fp.value);
        assert!(get("M-Path").fp.value < get("M-Grid").fp.value);
    }

    #[test]
    fn rendering_smoke() {
        let rows = build_scenario(5);
        let rendered = render_scenario(&rows);
        assert!(rendered.contains("paper claim"));
        assert!(rendered.lines().count() >= 6);
    }
}
