//! Criterion benchmarks for the analytical engines: exact load via the simplex LP,
//! exact transversal search, exact crash-probability enumeration and Monte-Carlo
//! estimation — the costs of the measures defined in Section 3 of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bqs_constructions::prelude::*;
use bqs_core::prelude::*;

fn bench_load_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_load_lp");
    group.sample_size(20);
    let instances: Vec<(&str, ExplicitQuorumSystem)> = vec![
        (
            "threshold_7of9",
            ThresholdSystem::minimal_masking(2)
                .unwrap()
                .to_explicit(100_000)
                .unwrap(),
        ),
        (
            "mgrid_5x5_b2",
            MGridSystem::new(5, 2)
                .unwrap()
                .to_explicit(100_000)
                .unwrap(),
        ),
        (
            "rt43_depth2",
            RtSystem::new(4, 3, 2)
                .unwrap()
                .to_explicit(100_000)
                .unwrap(),
        ),
        ("fpp_q4", FppSystem::new(4).unwrap().to_explicit().unwrap()),
    ];
    for (name, sys) in &instances {
        group.bench_function(BenchmarkId::from_parameter(name), |bencher| {
            bencher.iter(|| optimal_load(sys.quorums(), sys.universe_size()).unwrap())
        });
    }
    group.finish();
}

fn bench_transversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_transversal");
    group.sample_size(20);
    let mgrid = MGridSystem::new(5, 2)
        .unwrap()
        .to_explicit(100_000)
        .unwrap();
    let thresh = ThresholdSystem::new(12, 8)
        .unwrap()
        .to_explicit(100_000)
        .unwrap();
    group.bench_function("mgrid_5x5_b2", |bencher| {
        bencher.iter(|| min_transversal_size(mgrid.quorums(), 25))
    });
    group.bench_function("threshold_8of12", |bencher| {
        bencher.iter(|| min_transversal_size(thresh.quorums(), 12))
    });
    group.finish();
}

fn bench_crash_probability(c: &mut Criterion) {
    let mut group = c.benchmark_group("crash_probability");
    group.sample_size(10);
    let rt_small = RtSystem::new(3, 2, 2).unwrap();
    let rt_big = RtSystem::new(4, 3, 5).unwrap();
    let boost = BoostFppSystem::new(3, 19).unwrap();
    group.bench_function("exact_enumeration_n9", |bencher| {
        bencher.iter(|| exact_crash_probability(&rt_small, 0.125).unwrap())
    });
    group.bench_function("closed_form_rt_n1024", |bencher| {
        bencher.iter(|| rt_big.crash_probability(0.125))
    });
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function(
        BenchmarkId::new("monte_carlo_1000_trials", "boostfpp_n1001"),
        |bencher| bencher.iter(|| monte_carlo_crash_probability(&boost, 0.125, 1000, &mut rng)),
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_load_lp,
    bench_transversal,
    bench_crash_probability
);
criterion_main!(benches);
