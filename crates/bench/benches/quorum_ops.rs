//! Criterion benchmarks for the operational costs a client of the library pays:
//! sampling a quorum under the optimal strategy, finding a live quorum under
//! failures, and checking pairwise masking intersections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bqs_constructions::prelude::*;
use bqs_core::prelude::*;

fn bench_sample_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_quorum");
    let mut rng = StdRng::seed_from_u64(1);

    let threshold = ThresholdSystem::masking(1024, 255).unwrap();
    let mgrid = MGridSystem::new(32, 15).unwrap();
    let rt = RtSystem::new(4, 3, 5).unwrap();
    let boost = BoostFppSystem::new(3, 19).unwrap();
    let mpath = MPathSystem::new(32, 7).unwrap();

    let systems: Vec<(&str, &dyn QuorumSystem)> = vec![
        ("threshold_n1024", &threshold),
        ("mgrid_n1024", &mgrid),
        ("rt43_n1024", &rt),
        ("boostfpp_n1001", &boost),
        ("mpath_n1024", &mpath),
    ];
    for (name, sys) in systems {
        group.bench_function(BenchmarkId::from_parameter(name), |bencher| {
            bencher.iter(|| sys.sample_quorum(&mut rng))
        });
    }
    group.finish();
}

fn bench_find_live_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_live_quorum_with_failures");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);

    let mgrid = MGridSystem::new(32, 15).unwrap();
    let rt = RtSystem::new(4, 3, 5).unwrap();
    let boost = BoostFppSystem::new(3, 19).unwrap();
    let mpath = MPathSystem::new(32, 7).unwrap();

    let systems: Vec<(&str, &dyn QuorumSystem)> = vec![
        ("mgrid_n1024", &mgrid),
        ("rt43_n1024", &rt),
        ("boostfpp_n1001", &boost),
        ("mpath_n1024", &mpath),
    ];
    for (name, sys) in systems {
        // 5% of servers crashed.
        let alive = sample_alive_set(sys.universe_size(), 0.05, &mut rng);
        group.bench_function(BenchmarkId::from_parameter(name), |bencher| {
            bencher.iter(|| sys.find_live_quorum(&alive))
        });
    }
    group.finish();
}

fn bench_masking_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("masking_verification");
    // Explicit masking verification (pairwise intersections + transversal) on small
    // instances — the cost of validating a hand-built quorum system.
    let mgrid = MGridSystem::new(5, 2)
        .unwrap()
        .to_explicit(100_000)
        .unwrap();
    let rt = RtSystem::new(4, 3, 2)
        .unwrap()
        .to_explicit(100_000)
        .unwrap();
    group.bench_function("mgrid_5x5_b2", |bencher| {
        bencher.iter(|| is_b_masking(mgrid.quorums(), 25, 2))
    });
    group.bench_function("rt43_depth2_b1", |bencher| {
        bencher.iter(|| is_b_masking(rt.quorums(), 16, 1))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sample_quorum,
    bench_find_live_quorum,
    bench_masking_check
);
criterion_main!(benches);
