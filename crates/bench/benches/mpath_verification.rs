//! Criterion benchmarks for the M-Path machinery (the ablation called out in
//! DESIGN.md): straight-line quorum discovery versus general max-flow discovery, the
//! max-flow quorum verifier itself, and a single percolation trial — the costs
//! behind Proposition 7.3's experimental reproduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use bqs_constructions::mpath::MPathSystem;
use bqs_core::prelude::*;
use bqs_graph::disjoint_paths::{find_disjoint_paths, find_straight_disjoint_paths};
use bqs_graph::grid::{Axis, TriangulatedGrid};
use bqs_graph::percolation::PercolationEstimator;

fn alive_mask(n: usize, p: f64, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let set = sample_alive_set(n, p, &mut rng);
    (0..n).map(|i| set.contains(i)).collect()
}

fn bench_path_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpath_path_discovery");
    group.sample_size(20);
    for &side in &[16usize, 32] {
        let grid = TriangulatedGrid::new(side);
        let n = grid.num_vertices();
        // Light failures: straight lines usually survive on small grids.
        let light = alive_mask(n, 0.01, 7);
        // Heavier failures: straight lines break, max-flow is needed.
        let heavy = alive_mask(n, 0.15, 8);
        group.bench_function(BenchmarkId::new("straight_lines_p0.01", side), |b| {
            b.iter(|| find_straight_disjoint_paths(&grid, &light, Axis::LeftRight, 4))
        });
        group.bench_function(BenchmarkId::new("maxflow_p0.01", side), |b| {
            b.iter(|| find_disjoint_paths(&grid, &light, Axis::LeftRight, 4))
        });
        group.bench_function(BenchmarkId::new("maxflow_p0.15", side), |b| {
            b.iter(|| find_disjoint_paths(&grid, &heavy, Axis::LeftRight, 4))
        });
    }
    group.finish();
}

fn bench_quorum_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpath_quorum_verification");
    group.sample_size(20);
    let sys = MPathSystem::new(32, 7).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let quorum = sys.sample_quorum(&mut rng);
    group.bench_function("contains_quorum_n1024", |b| {
        b.iter(|| sys.contains_quorum(&quorum))
    });
    let alive = sample_alive_set(1024, 0.125, &mut rng);
    group.bench_function("find_live_quorum_n1024_p0.125", |b| {
        b.iter(|| sys.find_live_quorum(&alive))
    });
    group.finish();
}

fn bench_percolation_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("percolation_trial");
    group.sample_size(20);
    let est = PercolationEstimator::new(32);
    let mut rng = StdRng::seed_from_u64(10);
    group.bench_function("crossing_check_32x32_p0.3", |b| {
        b.iter(|| {
            let alive = est.sample_alive(0.3, &mut rng);
            est.has_open_crossing(&alive, Axis::LeftRight)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_path_discovery,
    bench_quorum_verification,
    bench_percolation_trial
);
criterion_main!(benches);
