//! Shared plumbing for the benchmark binaries (`bench_fp`, `bench_load`):
//! wall-clock timing and the hand-rolled JSON string escaping both emitters
//! use, kept in one place so the two machine-readable outputs cannot drift.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Runs `f`, returning its result and the elapsed wall-clock seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Escapes a construction name for embedding in a JSON string literal
/// (backslashes and quotes; the workspace's names contain nothing else that
/// needs escaping).
#[must_use]
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_backslashes() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("M-Grid(n=49, b=3)"), "M-Grid(n=49, b=3)");
    }

    #[test]
    fn time_reports_result_and_duration() {
        let (v, secs) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
