//! Regenerates Figure 3 of the paper: the multi-path (M-Path) construction on a
//! 9 x 9 triangulated grid with b = 4, with one quorum shaded.
//!
//! Run with: `cargo run -p bqs-bench --bin figure3_mpath [side] [b]`

use bqs_constructions::prelude::*;
use bqs_core::quorum::QuorumSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let sys = match MPathSystem::new(side, b) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid parameters: {e}");
            std::process::exit(1);
        }
    };
    let mut rng = StdRng::seed_from_u64(3);
    let quorum = sys.sample_quorum(&mut rng);

    println!("Figure 3: a multi-path construction on a {side}x{side} triangulated grid, b = {b},");
    println!(
        "with one quorum shaded: {0} disjoint left-right paths and {0} top-bottom paths\n",
        sys.paths_per_direction()
    );
    println!("(vertices are servers; each interior vertex also has anti-diagonal neighbours)\n");
    for r in 0..side {
        let mut line = String::new();
        for c in 0..side {
            let idx = r * side + c;
            line.push(if quorum.contains(idx) { '#' } else { '.' });
            line.push(' ');
        }
        println!("{line}");
    }
    println!();
    println!("quorum size      : {}", quorum.len());
    println!("masks            : b = {}", sys.masking_b());
    println!("resilience       : f = {}", sys.resilience());
    println!(
        "load             : {:.4} <= 2 sqrt((2b+1)/n) = {:.4} (Proposition 7.2, optimal)",
        sys.analytic_load(),
        2.0 * ((2 * b + 1) as f64 / (side * side) as f64).sqrt()
    );
    println!("verification of a candidate quorum uses vertex-disjoint max-flow (Menger);");
    println!("the shaded quorum was produced by the straight-line optimal-load strategy.");
}
