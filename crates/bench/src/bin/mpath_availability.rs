//! Regenerates the M-Path availability analysis of Section 7 / Appendix B: the
//! percolation crossing curve of the triangulated grid (critical probability 1/2),
//! the probability of k disjoint open crossings (Theorem B.3), and the M-Path crash
//! probability for p up to (and beyond) 1/2 — the paper's headline availability
//! result, Proposition 7.3.
//!
//! Run with: `cargo run --release -p bqs-bench --bin mpath_availability [side] [trials]`

use bqs_analysis::percolation_threshold::{
    crossing_curve, estimate_critical_probability, exact_crossing_curve, EXACT_CURVE_MAX_SIDE,
};
use bqs_analysis::TextTable;
use bqs_constructions::mpath::{MPathSystem, EXACT_DP_MAX_SIDE};
use bqs_core::eval::Evaluator;
use bqs_core::quorum::QuorumSystem;
use bqs_graph::grid::Axis;
use bqs_graph::percolation::PercolationEstimator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(500);

    println!("== site percolation on the {side}x{side} triangulated grid ==\n");
    let ps: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();
    let exact_curve = exact_crossing_curve(side, &ps);
    let curve = crossing_curve(side, &ps, trials, 0xA11);
    let mut t1 = TextTable::new([
        "p (closed prob.)",
        "P[open LR crossing]",
        "95% CI",
        "exact (DP)",
    ]);
    for (i, pt) in curve.iter().enumerate() {
        t1.push_row([
            format!("{:.1}", pt.p),
            format!("{:.4}", pt.crossing_probability),
            format!("±{:.4}", pt.ci95),
            exact_curve
                .as_ref()
                .map(|c| format!("{:.6}", c[i].crossing_probability))
                .unwrap_or_else(|| format!("- (side > {EXACT_CURVE_MAX_SIDE})")),
        ]);
    }
    println!("{}\n", t1.render());
    let pc = estimate_critical_probability(side, trials, 0xA12);
    println!("estimated critical probability: {pc:.3} (theory: 1/2 for the triangular lattice [Kes80])\n");

    println!("== disjoint crossings and the M-Path crash probability ==\n");
    let b = MPathSystem::max_b(side).min(7);
    let sys = MPathSystem::new(side, b).expect("valid");
    let k = sys.paths_per_direction();
    println!(
        "system: {} needs {k} disjoint LR and {k} disjoint TB open crossings per quorum\n",
        sys.name()
    );
    let est = PercolationEstimator::new(side);
    let mut rng = StdRng::seed_from_u64(0xA13);
    let mut t2 = TextTable::new([
        "p",
        "P[>= k disjoint LR crossings]",
        "Fp(M-Path) Monte-Carlo",
        "Fp exact (DP)",
        "counting bound (Sec. 8 style)",
    ]);
    let flow_trials = trials.min(300);
    let sweep_ps = [0.05, 0.125, 0.2, 0.3, 0.4, 0.45, 0.55];
    // The exact column runs the transfer-matrix sweep through the batched
    // engine (one persistent pool for all seven points).
    let exact_fps = if side <= EXACT_DP_MAX_SIDE {
        Some(Evaluator::new().sweep(&sys, &sweep_ps))
    } else {
        None
    };
    for (i, &p) in sweep_ps.iter().enumerate() {
        let disjoint = est.estimate_disjoint_crossings_probability(
            p,
            Axis::LeftRight,
            k,
            flow_trials,
            &mut rng,
        );
        let fp = est.estimate_mpath_crash_probability(p, k, flow_trials, &mut rng);
        t2.push_row([
            format!("{p:.3}"),
            format!("{:.4}", disjoint.mean),
            format!("{:.4} ± {:.4}", fp.mean, fp.ci95_half_width()),
            exact_fps
                .as_ref()
                .map(|f| format!("{:.3e} ({})", f[i].value, f[i].method.label()))
                .unwrap_or_else(|| format!("- (side > {EXACT_DP_MAX_SIDE})")),
            sys.crash_probability_counting_bound(p)
                .map(bqs_analysis::report::format_probability)
                .unwrap_or_else(|| "- (needs p < 1/3)".to_string()),
        ]);
    }
    println!("{}", t2.render());
    println!();
    println!("shape to check against the paper (Proposition 7.3): Fp(M-Path) stays near 0 for");
    println!("every p < 1/2 and collapses only past the percolation threshold — the only");
    println!("construction in the paper with this property. The elementary counting bound is");
    println!("meaningful for p < 1/3; the Monte-Carlo column shows the true behaviour");
    println!("continues to p -> 1/2, exactly as the Menshikov-based proof asserts.");
}
