//! Machine-readable chaos sweep: emits `BENCH_chaos.json` (schema
//! `bench_chaos/v1`) — every [`bqs_chaos`] scenario family run at `b` and
//! `b + 1` Byzantine faults over every transport backend (in-process
//! loopback, Unix-domain socket, TCP loopback), with the masking gate
//! asserted and loopback replay-determinism double-checked.
//!
//! The gate is the paper's tightness claim in executable form, per
//! (scenario × backend) cell of the matrix:
//!
//! * at `faults = b`: **zero** safety violations (value authenticity and
//!   read-your-writes both hold) *and* graceful degradation — reads keep
//!   completing under the scenario's chaos, and **zero reads abort** (every
//!   run also reports its read-abort rate, aborts per second, so regressions
//!   in degradation show up as a number before they show up as a failure);
//! * at `faults = b + 1`: at least one **detected** violation — the run
//!   observes masking break, it does not merely fail to answer;
//! * replays: re-running a (seed, scenario) pair reproduces the identical
//!   chaos event trace (equal fingerprints) and the identical safety tallies.
//!
//! A separate **latency-inflation objective** runs the `timeout_inflation`
//! scenario (Byzantine servers answering everything just under the deadline,
//! so timeout/retry counters never move) and feeds the per-server evidence
//! to `bqs-epoch`'s suspicion engine: the gate is that the engine flags
//! exactly the inflating coalition on p99 evidence alone — no healthy server
//! smeared, no attacker missed.
//!
//! Run with: `cargo run --release -p bqs-bench --bin bench_chaos
//! [--quick] [output.json]`
//!
//! `--quick` shrinks the per-run workload; the matrix and the gate are
//! identical in both modes. Any gate failure is listed in the JSON, printed
//! to stderr, and turns into a nonzero exit status (CI runs `--quick` on
//! every push).

use std::sync::Arc;
use std::time::Duration;

use bqs_bench::{json_escape, time};
use bqs_chaos::prelude::*;
use bqs_constructions::prelude::*;
use bqs_core::quorum::QuorumSystem;
use bqs_epoch::{SuspicionConfig, SuspicionEngine};
use bqs_net::prelude::*;
use bqs_service::metrics::ServiceMetrics;

/// The masking level every run assumes (`n = 4b + 1 = 5` threshold system).
const B: usize = 1;

/// The fixed seed matrix: each cell of the sweep runs once per seed, and the
/// gate must hold for every seed independently.
const SEEDS: &[u64] = &[0xC4A0_5EED, 0x00BD_CAFE];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Loopback,
    Uds,
    Tcp,
}

impl Backend {
    const ALL: [Backend; 3] = [Backend::Loopback, Backend::Uds, Backend::Tcp];

    fn name(self) -> &'static str {
        match self {
            Backend::Loopback => "loopback",
            Backend::Uds => "uds",
            Backend::Tcp => "tcp",
        }
    }
}

fn uds_path(tag: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bqs-bench-chaos-{}-{tag}.sock", std::process::id()))
}

/// One measured cell of the matrix.
struct Run {
    backend: &'static str,
    outcome: ScenarioOutcome,
    seed: u64,
    seconds: f64,
}

/// Runs one (scenario, backend, faults, seed) cell. The socket backends wrap
/// the pooled transport in the chaos interposer with `pool = 1`, so the
/// server-side connection id — the origin Byzantine servers key per-client
/// equivocation on — is one-to-one with the client, exactly like loopback.
fn run_cell(
    backend: Backend,
    scenario: ChaosScenario,
    system: &ThresholdSystem,
    faults: usize,
    weights: Option<&[f64]>,
    config: &ScenarioConfig,
    tag: usize,
) -> Run {
    let n = system.universe_size();
    eprintln!(
        "bench_chaos: {} / {} at {faults} fault(s), seed {:#x}...",
        backend.name(),
        scenario.name(),
        config.seed
    );
    let (outcome, seconds) = time(|| match backend {
        Backend::Loopback => run_scenario_loopback(scenario, system, B, faults, weights, config),
        Backend::Uds | Backend::Tcp => {
            let plan = scenario.fault_plan(n, faults, weights);
            let server = match backend {
                Backend::Uds => SocketServer::bind_uds(uds_path(tag), &plan, 2, config.seed),
                _ => SocketServer::bind_tcp_loopback(&plan, 2, config.seed),
            }
            .expect("bind socket server");
            let transport = SocketTransport::connect(
                server.endpoint().clone(),
                n,
                NetConfig {
                    pool: 1,
                    // Far above the client's reply deadline: chaos-induced
                    // silence is the *client's* failure detector to catch,
                    // never the socket sweeper's.
                    request_deadline: Duration::from_secs(5),
                    ..NetConfig::default()
                },
            )
            .expect("connect transport pool");
            let chaos = ChaosTransport::new(
                Arc::new(transport),
                config.seed,
                scenario.id(),
                scenario.chaos_config_for(n, faults),
            );
            run_scenario(
                scenario,
                system,
                B,
                faults,
                server.responsive_set().clone(),
                &chaos,
                config,
            )
        }
    });
    Run {
        backend: backend.name(),
        outcome,
        seed: config.seed,
        seconds,
    }
}

fn main() {
    let mut quick = false;
    let mut output = "BENCH_chaos.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            output = arg;
        }
    }

    let system = ThresholdSystem::minimal_masking(B).expect("n = 4b + 1 threshold system");
    let n = system.universe_size();
    // The published access strategy the targeted adversary reads: per-server
    // induced loads of the LP-optimal strategy (Definition 3.8).
    let explicit = system.to_explicit(1 << 10).expect("explicit quorum list");
    let (_, strategy) = bqs_core::load::optimal_load(explicit.quorums(), n).expect("optimal load");
    let weights = strategy.induced_loads(explicit.quorums(), n);

    let base = if quick {
        ScenarioConfig {
            writes: 8,
            reads: 40,
            reply_deadline: Duration::from_millis(60),
            ..ScenarioConfig::default()
        }
    } else {
        ScenarioConfig {
            reply_deadline: Duration::from_millis(100),
            ..ScenarioConfig::default()
        }
    };

    let mut failures: Vec<String> = Vec::new();
    let mut runs: Vec<Run> = Vec::new();
    let mut tag = 0usize;

    for &seed in SEEDS {
        for backend in Backend::ALL {
            for scenario in ChaosScenario::ALL {
                for faults in [B, B + 1] {
                    tag += 1;
                    let config = ScenarioConfig {
                        seed: seed ^ (faults as u64) << 32,
                        ..base.clone()
                    };
                    let run = run_cell(
                        backend,
                        scenario,
                        &system,
                        faults,
                        Some(&weights),
                        &config,
                        tag,
                    );
                    let o = &run.outcome;
                    if faults <= B {
                        if o.safety_violations() > 0 {
                            failures.push(format!(
                                "{}/{} seed {seed:#x}: {} safety violations at b = {B} (must mask)",
                                run.backend,
                                o.scenario,
                                o.safety_violations()
                            ));
                        }
                        if o.reads_completed == 0 {
                            failures.push(format!(
                                "{}/{} seed {seed:#x}: no read completed at b = {B} (degradation must stay graceful)",
                                run.backend, o.scenario
                            ));
                        }
                        if o.reads_aborted > 0 {
                            failures.push(format!(
                                "{}/{} seed {seed:#x}: {} read(s) aborted at b = {B} (retries must absorb chaos inside the masking envelope)",
                                run.backend, o.scenario, o.reads_aborted
                            ));
                        }
                    } else if !o.detected() {
                        failures.push(format!(
                            "{}/{} seed {seed:#x}: no violation detected at b + 1 = {faults} (tightness must show)",
                            run.backend, o.scenario
                        ));
                    }
                    runs.push(run);
                }
            }
        }
    }

    // Replay determinism, loopback, both fault levels: the same
    // (seed, scenario) pair must reproduce the identical chaos event trace
    // and the identical safety outcome.
    struct Replay {
        scenario: &'static str,
        faults: usize,
        fingerprint_a: u64,
        fingerprint_b: u64,
        outcome_match: bool,
    }
    let mut replays: Vec<Replay> = Vec::new();
    for scenario in ChaosScenario::ALL {
        for faults in [B, B + 1] {
            let config = ScenarioConfig {
                seed: SEEDS[0] ^ (faults as u64) << 32,
                ..base.clone()
            };
            let a = run_scenario_loopback(scenario, &system, B, faults, Some(&weights), &config);
            let b = run_scenario_loopback(scenario, &system, B, faults, Some(&weights), &config);
            let outcome_match = a.trace_events == b.trace_events
                && a.safety_violations() == b.safety_violations()
                && a.reads_completed == b.reads_completed
                && a.writes_completed == b.writes_completed;
            if a.trace_fingerprint != b.trace_fingerprint || !outcome_match {
                failures.push(format!(
                    "replay {}/{faults}: fingerprints {:#x} vs {:#x}, outcome match {outcome_match}",
                    scenario.name(),
                    a.trace_fingerprint,
                    b.trace_fingerprint
                ));
            }
            replays.push(Replay {
                scenario: scenario.name(),
                faults,
                fingerprint_a: a.trace_fingerprint,
                fingerprint_b: b.trace_fingerprint,
                outcome_match,
            });
        }
    }

    // Latency-inflation objective: the timeout-inflation coalition never
    // trips a counter (its replies always arrive, just barely in time), so
    // the only evidence against it is the per-server latency tail. Feed the
    // run's per-server evidence to the suspicion engine and require its p99
    // channel to flag exactly the coalition — nobody healthy smeared, no
    // attacker missed — while timeouts and retries stayed at zero (the
    // stealth that makes this adversary invisible to the ratio channel).
    let suspicion_scenario = ChaosScenario::TimeoutInflation;
    let suspicion_run_config = ScenarioConfig {
        seed: SEEDS[0] ^ 0x1a7e_0bed,
        // Enough operations that every server clears the engine's
        // latency_min_samples floor, regardless of --quick.
        writes: 16,
        reads: 64,
        reply_deadline: Duration::from_millis(100),
        ..ScenarioConfig::default()
    };
    let suspicion_metrics = Arc::new(ServiceMetrics::new(n));
    let suspicion_outcome = run_scenario_loopback_with_metrics(
        suspicion_scenario,
        &system,
        B,
        B,
        Some(&weights),
        &suspicion_run_config,
        &suspicion_metrics,
    );
    let mut engine = SuspicionEngine::new(n, SuspicionConfig::default());
    // The latency channel reads cumulative evidence, so ticking the settled
    // metrics drives the accrual score to the suspect threshold for exactly
    // the servers whose p99 towers over the fleet median.
    for _ in 0..3 {
        engine.tick(&suspicion_metrics);
    }
    let flagged = engine.suspects().to_vec();
    let coalition: Vec<usize> = (0..B).collect();
    let server_p99_ns: Vec<u64> = (0..n)
        .map(|s| {
            suspicion_metrics
                .server_latency_quantile(s, 0.99)
                .unwrap_or(0)
        })
        .collect();
    if flagged != coalition {
        failures.push(format!(
            "suspicion/timeout_inflation: flagged {flagged:?}, expected exactly the coalition {coalition:?} (p99s {server_p99_ns:?} ns)"
        ));
    }
    if suspicion_outcome.timeouts != 0 || suspicion_outcome.retries != 0 {
        failures.push(format!(
            "suspicion/timeout_inflation: {} timeout(s), {} retrie(s) — the adversary must stay invisible to the counters or the objective tests nothing",
            suspicion_outcome.timeouts, suspicion_outcome.retries
        ));
    }
    if suspicion_outcome.safety_violations() > 0 {
        failures.push(format!(
            "suspicion/timeout_inflation: {} safety violations at b = {B}",
            suspicion_outcome.safety_violations()
        ));
    }

    let gate_passed = failures.is_empty();

    // --- Emit JSON. --------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"bench_chaos/v1\",\n  \"quick\": {quick},\n  \"system\": \"{}\",\n  \"n\": {n},\n  \"b\": {B},\n  \"seeds\": [{}],\n  \"gate_passed\": {gate_passed},\n",
        json_escape(&system.name()),
        SEEDS
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let o = &run.outcome;
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"scenario\": \"{}\", \"faults\": {}, \"b\": {}, \"seed\": {}, \"masked\": {}, \"detected\": {}, \"safety_violations\": {}, \"authenticity_violations\": {}, \"ryw_violations\": {}, \"writes_completed\": {}, \"writes_aborted\": {}, \"reads_completed\": {}, \"reads_inconclusive\": {}, \"reads_aborted\": {}, \"read_aborts_per_sec\": {:e}, \"no_live_quorum\": {}, \"timeouts\": {}, \"retries\": {}, \"aborts\": {}, \"chaos_drops\": {}, \"chaos_duplicates\": {}, \"chaos_delayed\": {}, \"trace_events\": {}, \"trace_fingerprint\": {}, \"seconds\": {:e}}}{}\n",
            run.backend,
            o.scenario,
            o.faults,
            o.b,
            run.seed,
            o.safety_violations() == 0,
            o.detected(),
            o.safety_violations(),
            o.authenticity_violations,
            o.ryw_violations,
            o.writes_completed,
            o.writes_aborted,
            o.reads_completed,
            o.reads_inconclusive,
            o.reads_aborted,
            if run.seconds > 0.0 {
                o.reads_aborted as f64 / run.seconds
            } else {
                0.0
            },
            o.no_live_quorum,
            o.timeouts,
            o.retries,
            o.aborts,
            o.drops,
            o.duplicates,
            o.delayed,
            o.trace_events,
            o.trace_fingerprint,
            run.seconds,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"replays\": [\n");
    for (i, r) in replays.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"backend\": \"loopback\", \"faults\": {}, \"fingerprint_a\": {}, \"fingerprint_b\": {}, \"fingerprint_match\": {}, \"outcome_match\": {}}}{}\n",
            r.scenario,
            r.faults,
            r.fingerprint_a,
            r.fingerprint_b,
            r.fingerprint_a == r.fingerprint_b,
            r.outcome_match,
            if i + 1 == replays.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"suspicion\": {{\"scenario\": \"{}\", \"backend\": \"loopback\", \"faults\": {}, \"coalition\": [{}], \"flagged\": [{}], \"coalition_flagged\": {}, \"healthy_flagged\": {}, \"timeouts\": {}, \"retries\": {}, \"server_p99_ns\": [{}], \"scores\": [{}]}},\n",
        suspicion_scenario.name(),
        B,
        coalition
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        flagged
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        coalition.iter().all(|s| flagged.contains(s)),
        flagged.iter().any(|s| !coalition.contains(s)),
        suspicion_outcome.timeouts,
        suspicion_outcome.retries,
        server_p99_ns
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        engine
            .scores()
            .iter()
            .map(|s| format!("{s:e}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\"{}\n",
            json_escape(f),
            if i + 1 == failures.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&output, &json).expect("write benchmark output");

    // --- Human-readable summary. -------------------------------------------
    println!(
        "{:<10} {:<14} {:>6} {:>18} {:>7} {:>7} {:>5} {:>5} {:>6} {:>6}",
        "backend", "scenario", "faults", "seed", "reads", "viols", "tmo", "retry", "drops", "dup"
    );
    for run in &runs {
        let o = &run.outcome;
        println!(
            "{:<10} {:<14} {:>6} {:>#18x} {:>7} {:>7} {:>5} {:>5} {:>6} {:>6}",
            run.backend,
            o.scenario,
            o.faults,
            run.seed,
            o.reads_completed,
            o.safety_violations(),
            o.timeouts,
            o.retries,
            o.drops,
            o.duplicates,
        );
    }
    println!(
        "\nreplay determinism (loopback): {} pairs checked",
        replays.len()
    );
    println!(
        "latency-inflation suspicion: flagged {flagged:?}, coalition {coalition:?} (timeouts {}, retries {})",
        suspicion_outcome.timeouts, suspicion_outcome.retries
    );
    println!("wrote {output}");

    if !gate_passed {
        for f in &failures {
            eprintln!("ERROR: {f}");
        }
        std::process::exit(1);
    }
}
