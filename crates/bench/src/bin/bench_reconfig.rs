//! Machine-readable reconfiguration sweep: emits `BENCH_reconfig.json`
//! (schema `bench_reconfig/v1`) — the full epoch-based reconfiguration drill
//! of `bqs-epoch` run under every [`ReconfigScenario`] family over every
//! transport backend (in-process loopback, Unix-domain socket, TCP
//! loopback).
//!
//! Each cell kills `k` servers of a 5×5 universe under open-loop load and
//! gates the whole story, per (scenario × backend):
//!
//! * **hysteresis** — the manager stays steady on healthy evidence;
//! * **detection** — the suspicion engine flags *exactly* the killed set and
//!   a reconfiguration fires within the detection budget;
//! * **re-certification** — the planner re-certifies over the survivors
//!   (with the construction switch the pools make available: the M-Grid
//!   wins the healthy universe on load, the Grid wins the survivors);
//! * **re-convergence** — after the handoff, the busiest server's empirical
//!   load sits within the max-order-statistic 3σ band of the *new*
//!   certified `L(Q)` ([`empirical_load_check`]);
//! * **safety** — zero fabricated reads in any phase, zero operations
//!   completed at the fenced epoch (a completed stale operation would have
//!   mixed strategies), and the post-finalize probe is fenced in-band;
//! * **replay** — on loopback, re-running a (seed, scenario) pair reproduces
//!   the identical outcome fingerprint and chaos trace.
//!
//! Run with: `cargo run --release -p bqs-bench --bin bench_reconfig
//! [--quick] [output.json]`
//!
//! `--quick` shrinks the per-phase workload; the matrix and the gate are
//! identical in both modes. Any gate failure is listed in the JSON, printed
//! to stderr, and turns into a nonzero exit status (CI runs `--quick` on
//! every push).

use std::sync::Arc;
use std::time::Duration;

use bqs_analysis::empirical_load_check;
use bqs_bench::{json_escape, time};
use bqs_chaos::prelude::*;
use bqs_chaos::ReconfigScenario;
use bqs_constructions::prelude::*;
use bqs_epoch::prelude::*;
use bqs_net::prelude::*;
use bqs_sim::fault::FaultPlan;

/// Masking level of both pools.
const B: usize = 1;

/// Grid side: `n = 25` servers.
const SIDE: usize = 5;

/// Servers the drill crashes (the prefix `{0, 1, 2}` — one corner of the
/// grid: row 0 of the Grid pool, the top of columns 0–2 of both).
const KILL: usize = 3;

/// Base seed of every cell (mixed per scenario and backend below).
const SEED: u64 = 0x2ec0_4f16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Loopback,
    Uds,
    Tcp,
}

impl Backend {
    const ALL: [Backend; 3] = [Backend::Loopback, Backend::Uds, Backend::Tcp];

    fn name(self) -> &'static str {
        match self {
            Backend::Loopback => "loopback",
            Backend::Uds => "uds",
            Backend::Tcp => "tcp",
        }
    }

    /// Stable id mixed into the cell seed, so every (scenario, backend)
    /// cell runs its own deterministic stream.
    fn id(self) -> u64 {
        match self {
            Backend::Loopback => 1,
            Backend::Uds => 2,
            Backend::Tcp => 3,
        }
    }
}

fn uds_path(tag: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "bqs-bench-reconfig-{}-{tag}.sock",
        std::process::id()
    ))
}

/// The candidate pools every drill re-certifies over: the paper's Grid and
/// M-Grid over the same 25 servers. On the healthy universe the M-Grid
/// certifies the lower load; after the corner kill the surviving M-Grid
/// quorums all share their two full columns while the Grid still spreads its
/// column choice — so re-certification switches constructions.
fn planner() -> EpochPlanner {
    let n = SIDE * SIDE;
    let grid = GridSystem::new(SIDE, B)
        .expect("grid construction")
        .to_explicit(1 << 12)
        .expect("grid quorum list");
    let mgrid = MGridSystem::new(SIDE, B)
        .expect("m-grid construction")
        .to_explicit(1 << 12)
        .expect("m-grid quorum list");
    EpochPlanner::new(n, B)
        .with_pool("Grid(5x5, b=1)", grid.quorums().to_vec())
        .with_pool("M-Grid(5x5, b=1)", mgrid.quorums().to_vec())
}

/// Per-cell seed: one deterministic stream per (scenario, backend).
fn cell_seed(scenario: ReconfigScenario, backend: Backend) -> u64 {
    SEED ^ (scenario.id() << 8) ^ (backend.id() << 16)
}

/// One measured cell of the matrix.
struct Run {
    backend: &'static str,
    outcome: ReconfigOutcome,
    check: bqs_analysis::EmpiricalLoadCheck,
    seed: u64,
    seconds: f64,
}

/// Runs one (scenario, backend) drill. The socket backends spawn a healthy
/// sharded server, wrap the pooled transport in the chaos interposer with
/// `pool = 1` (client-side decision stream, same as loopback), and hand the
/// drill the server's own epoch gate and crash hook.
fn run_cell(
    backend: Backend,
    scenario: ReconfigScenario,
    config: &ReconfigConfig,
    tag: usize,
) -> Run {
    let n = SIDE * SIDE;
    eprintln!(
        "bench_reconfig: {} / {} killing {KILL} of {n}, seed {:#x}...",
        backend.name(),
        scenario.name(),
        config.seed
    );
    let (outcome, seconds) = time(|| match backend {
        Backend::Loopback => run_reconfigure_loopback(
            scenario,
            planner(),
            SuspicionConfig::counters_only(),
            2,
            config,
        )
        .expect("loopback drill"),
        Backend::Uds | Backend::Tcp => {
            let plan = FaultPlan::none(n);
            let server = match backend {
                Backend::Uds => SocketServer::bind_uds(uds_path(tag), &plan, 2, config.seed),
                _ => SocketServer::bind_tcp_loopback(&plan, 2, config.seed),
            }
            .expect("bind socket server");
            let transport = SocketTransport::connect(
                server.endpoint().clone(),
                n,
                NetConfig {
                    pool: 1,
                    // Far above the drill's operation deadline: chaos-induced
                    // silence is the open-loop deadline's to catch, never the
                    // socket sweeper's.
                    request_deadline: Duration::from_secs(5),
                    ..NetConfig::default()
                },
            )
            .expect("connect transport pool");
            let chaos = ChaosTransport::new(
                Arc::new(transport),
                config.seed,
                scenario.id(),
                scenario.chaos_config(),
            );
            let gate = Arc::clone(server.epoch_gate());
            run_reconfigure(
                scenario,
                planner(),
                SuspicionConfig::counters_only(),
                &chaos,
                gate,
                &|dead: &[usize]| server.crash_servers(dead),
                config,
            )
            .expect("socket drill")
        }
    });
    let check = empirical_load_check(
        format!("{}/{}", backend.name(), scenario.name()),
        &outcome.access_counts,
        outcome.load_operations.max(1),
        outcome.recertified_load,
    );
    Run {
        backend: backend.name(),
        outcome,
        check,
        seed: config.seed,
        seconds,
    }
}

fn main() {
    let mut quick = false;
    let mut output = "BENCH_reconfig.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            output = arg;
        }
    }

    let n = SIDE * SIDE;
    let base = if quick {
        ReconfigConfig {
            kill: KILL,
            offered_rate: 3_000.0,
            healthy_arrivals: 400,
            detect_arrivals: 250,
            migrate_arrivals: 150,
            measure_arrivals: 900,
            probe_arrivals: 80,
            ..ReconfigConfig::default()
        }
    } else {
        ReconfigConfig {
            kill: KILL,
            ..ReconfigConfig::default()
        }
    };

    let mut failures: Vec<String> = Vec::new();
    let mut runs: Vec<Run> = Vec::new();
    let mut tag = 0usize;

    for backend in Backend::ALL {
        for scenario in ReconfigScenario::ALL {
            tag += 1;
            let config = ReconfigConfig {
                seed: cell_seed(scenario, backend),
                ..base
            };
            let run = run_cell(backend, scenario, &config, tag);
            let o = &run.outcome;
            let cell = format!("{}/{}", run.backend, o.scenario.name());
            if !o.healthy_steady {
                failures.push(format!(
                    "{cell}: the manager reconfigured on healthy evidence (hysteresis must hold)"
                ));
            }
            if !o.reconfigured {
                failures.push(format!(
                    "{cell}: no reconfiguration within {} detection bursts",
                    base.max_detect_ticks
                ));
            }
            if !o.detection_exact {
                failures.push(format!(
                    "{cell}: suspects {:?} != killed {:?} (detection must be exact)",
                    o.suspects, o.killed
                ));
            }
            if o.safety_violations > 0 {
                failures.push(format!(
                    "{cell}: {} fabricated read(s) — masking broke during the handoff",
                    o.safety_violations
                ));
            }
            if o.stale_completed > 0 {
                failures.push(format!(
                    "{cell}: {} operation(s) completed at the fenced epoch (mixed-strategy quorum)",
                    o.stale_completed
                ));
            }
            if o.reconfigured && o.fenced_after_finalize == 0 {
                failures.push(format!(
                    "{cell}: the stale probe was never fenced (the gate must answer in-band)"
                ));
            }
            if o.reconfigured && !run.check.within_tolerance {
                failures.push(format!(
                    "{cell}: busiest-server load {:.4} outside the 3-sigma band of certified {:.4} (tolerance {:.4}, z = {:.2})",
                    run.check.empirical_max_load,
                    run.check.certified_load,
                    run.check.tolerance,
                    run.check.z
                ));
            }
            runs.push(run);
        }
    }

    // Replay determinism, loopback, every scenario: the same (seed, scenario)
    // pair must reproduce the identical outcome fingerprint — epochs, suspect
    // set, detection tick, chaos trace, measure-phase access counts.
    struct Replay {
        scenario: &'static str,
        fingerprint_a: u64,
        fingerprint_b: u64,
        trace_match: bool,
        outcome_match: bool,
    }
    let mut replays: Vec<Replay> = Vec::new();
    for scenario in ReconfigScenario::ALL {
        let config = ReconfigConfig {
            seed: cell_seed(scenario, Backend::Loopback) ^ 0x002e_91a7,
            ..base
        };
        let drill = || {
            run_reconfigure_loopback(
                scenario,
                planner(),
                SuspicionConfig::counters_only(),
                2,
                &config,
            )
            .expect("replay drill")
        };
        let a = drill();
        let b = drill();
        let trace_match = a.trace_fingerprint == b.trace_fingerprint;
        let outcome_match = a.epochs == b.epochs
            && a.suspects == b.suspects
            && a.detect_ticks == b.detect_ticks
            && a.access_counts == b.access_counts
            && a.load_operations == b.load_operations;
        if a.fingerprint != b.fingerprint || !trace_match || !outcome_match {
            failures.push(format!(
                "replay {}: fingerprints {:#x} vs {:#x}, trace match {trace_match}, outcome match {outcome_match}",
                scenario.name(),
                a.fingerprint,
                b.fingerprint
            ));
        }
        replays.push(Replay {
            scenario: scenario.name(),
            fingerprint_a: a.fingerprint,
            fingerprint_b: b.fingerprint,
            trace_match,
            outcome_match,
        });
    }

    let gate_passed = failures.is_empty();

    // --- Emit JSON. --------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"bench_reconfig/v1\",\n  \"quick\": {quick},\n  \"n\": {n},\n  \"b\": {B},\n  \"kill\": {KILL},\n  \"pools\": [\"Grid(5x5, b=1)\", \"M-Grid(5x5, b=1)\"],\n  \"gate_passed\": {gate_passed},\n"
    ));
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let o = &run.outcome;
        let c = &run.check;
        let phases = o
            .phases
            .iter()
            .map(|p| {
                format!(
                    "{{\"name\": \"{}\", \"epoch\": {}, \"scheduled\": {}, \"completed\": {}, \"fenced\": {}, \"timed_out\": {}}}",
                    p.name, p.epoch, p.scheduled, p.completed, p.fenced, p.timed_out
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"scenario\": \"{}\", \"seed\": {}, \"killed\": {:?}, \"healthy_steady\": {}, \"reconfigured\": {}, \"detect_ticks\": {}, \"suspects\": {:?}, \"detection_exact\": {}, \"epochs\": {:?}, \"source\": \"{}\", \"initial_load\": {:e}, \"recertified_load\": {:e}, \"measured_max_load\": {:e}, \"sigma\": {:e}, \"tolerance\": {:e}, \"z\": {:e}, \"within_tolerance\": {}, \"load_operations\": {}, \"safety_violations\": {}, \"fenced_after_finalize\": {}, \"stale_completed\": {}, \"trace_fingerprint\": {}, \"fingerprint\": {}, \"phases\": [{}], \"seconds\": {:e}}}{}\n",
            run.backend,
            o.scenario.name(),
            run.seed,
            o.killed,
            o.healthy_steady,
            o.reconfigured,
            o.detect_ticks,
            o.suspects,
            o.detection_exact,
            o.epochs,
            json_escape(o.source.as_ref().map_or("none", |s| s.label())),
            o.initial_load,
            o.recertified_load,
            c.empirical_max_load,
            c.sigma,
            c.tolerance,
            c.z,
            c.within_tolerance,
            o.load_operations,
            o.safety_violations,
            o.fenced_after_finalize,
            o.stale_completed,
            o.trace_fingerprint,
            o.fingerprint,
            phases,
            run.seconds,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"replays\": [\n");
    for (i, r) in replays.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"backend\": \"loopback\", \"fingerprint_a\": {}, \"fingerprint_b\": {}, \"fingerprint_match\": {}, \"trace_match\": {}, \"outcome_match\": {}}}{}\n",
            r.scenario,
            r.fingerprint_a,
            r.fingerprint_b,
            r.fingerprint_a == r.fingerprint_b,
            r.trace_match,
            r.outcome_match,
            if i + 1 == replays.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\"{}\n",
            json_escape(f),
            if i + 1 == failures.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&output, &json).expect("write benchmark output");

    // --- Human-readable summary. -------------------------------------------
    println!(
        "{:<10} {:<18} {:>6} {:>9} {:>9} {:>9} {:>7} {:>6} {:>20}",
        "backend", "scenario", "ticks", "L(init)", "L(new)", "L(meas)", "fenced", "viols", "source"
    );
    for run in &runs {
        let o = &run.outcome;
        println!(
            "{:<10} {:<18} {:>6} {:>9.4} {:>9.4} {:>9.4} {:>7} {:>6} {:>20}",
            run.backend,
            o.scenario.name(),
            o.detect_ticks,
            o.initial_load,
            o.recertified_load,
            run.check.empirical_max_load,
            o.fenced_after_finalize,
            o.safety_violations,
            o.source.as_ref().map_or("none", |s| s.label()),
        );
    }
    println!(
        "\nreplay determinism (loopback): {} pairs checked",
        replays.len()
    );
    println!("wrote {output}");

    if !gate_passed {
        for f in &failures {
            eprintln!("ERROR: {f}");
        }
        std::process::exit(1);
    }
}
