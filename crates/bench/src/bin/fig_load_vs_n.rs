//! Regenerates the load-versus-n comparison behind Propositions 5.2, 5.5, 6.2 and
//! 7.2: how the load of each construction scales as the universe grows, against the
//! universal lower bound sqrt((2b+1)/n) of Corollary 4.2.
//!
//! Run with: `cargo run --release -p bqs-bench --bin fig_load_vs_n [b]`

use bqs_analysis::load_analysis::load_vs_n;
use bqs_analysis::TextTable;

fn main() {
    let b: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let sides = [8usize, 12, 16, 24, 32, 48, 64];

    println!("load vs universe size at masking level b = {b} (clamped per construction)\n");
    let points = load_vs_n(&sides, b);
    let mut table = TextTable::new(["system", "n", "b", "load", "lower bound", "ratio"]);
    for p in &points {
        table.push_row([
            p.system.clone(),
            p.n.to_string(),
            p.b.to_string(),
            format!("{:.4}", p.load),
            format!("{:.4}", p.lower_bound),
            format!("{:.2}", p.load / p.lower_bound),
        ]);
    }
    println!("{}", table.render());
    println!();
    println!("shape to check against the paper: the ratio column stays bounded (near 1-2) for");
    println!("M-Grid, boostFPP and M-Path (the 'optimal load' constructions), grows like");
    println!("n^0.04.. for RT(4,3) (suboptimal, Proposition 5.5 remark), and grows like");
    println!("sqrt(n) for the Threshold construction (whose load never drops below 1/2).");
}
