//! Regenerates the boostFPP analysis of Section 6: load optimality across the two
//! scaling policies (fix q / grow b, fix b / grow q) and the crash-probability
//! behaviour of Proposition 6.3, including the p < 1/4 requirement.
//!
//! Run with: `cargo run --release -p bqs-bench --bin boostfpp_availability [trials]`

use bqs_analysis::TextTable;
use bqs_constructions::prelude::*;
use bqs_core::bounds::load_lower_bound_universal;
use bqs_core::eval::Evaluator;
use bqs_core::quorum::QuorumSystem;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let evaluator = Evaluator::new().with_trials(trials).with_seed(0xB005);

    println!("== scaling policy 1: fix q = 3, grow b (resilience grows, load stays ~3/(4q)) ==\n");
    let mut t1 = TextTable::new(["b", "n", "f", "load", "load / lower bound"]);
    for b in [1usize, 2, 5, 10, 20, 50] {
        let sys = BoostFppSystem::new(3, b).expect("valid");
        t1.push_row([
            b.to_string(),
            sys.universe_size().to_string(),
            sys.resilience().to_string(),
            format!("{:.4}", sys.analytic_load()),
            format!(
                "{:.2}",
                sys.analytic_load() / load_lower_bound_universal(sys.universe_size(), b)
            ),
        ]);
    }
    println!("{}\n", t1.render());

    println!("== scaling policy 2: fix b = 3, grow q (load falls like 3/(4q)) ==\n");
    let mut t2 = TextTable::new(["q", "n", "f", "load", "3/(4q)"]);
    for q in [2u64, 3, 4, 5, 7, 8, 9, 11] {
        let sys = BoostFppSystem::new(q, 3).expect("valid");
        t2.push_row([
            q.to_string(),
            sys.universe_size().to_string(),
            sys.resilience().to_string(),
            format!("{:.4}", sys.analytic_load()),
            format!("{:.4}", 3.0 / (4.0 * q as f64)),
        ]);
    }
    println!("{}\n", t2.render());

    println!("== Proposition 6.3: crash probability, and why p < 1/4 is essential ==\n");
    let sys = BoostFppSystem::new(3, 10).expect("valid");
    println!(
        "system: {} (n = {}, f = {}), exact survivor-profile closed form vs {trials} Monte-Carlo trials per p\n",
        sys.name(),
        sys.universe_size(),
        sys.resilience()
    );
    let mut t3 = TextTable::new([
        "p",
        "Chernoff bound (Prop 6.3)",
        "numeric bound",
        "Fp exact (closed form)",
        "Fp (Monte-Carlo)",
    ]);
    let sweep_ps = [0.05, 0.1, 0.15, 0.2, 0.24, 0.3, 0.35];
    // Exact values for the whole grid in one batched sweep (microseconds per
    // point after the one-time plane profile).
    let exact = evaluator.sweep(&sys, &sweep_ps);
    for (i, &p) in sweep_ps.iter().enumerate() {
        let mc = evaluator.monte_carlo(&sys, p);
        t3.push_row([
            format!("{p:.2}"),
            sys.crash_probability_prop_6_3_bound(p)
                .map(bqs_analysis::report::format_probability)
                .unwrap_or_else(|| "- (p >= 1/4)".to_string()),
            bqs_analysis::report::format_probability(sys.crash_probability_numeric_bound(p)),
            format!(
                "{} ({})",
                bqs_analysis::report::format_probability(exact[i].value),
                exact[i].method.label()
            ),
            format!(
                "{} ± {}",
                bqs_analysis::report::format_probability(mc.mean),
                bqs_analysis::report::format_probability(mc.ci95_half_width())
            ),
        ]);
    }
    println!("{}", t3.render());
    println!();
    println!("shape to check against the paper: the exact values decay like the bounds'");
    println!("exp(-b(1-4p)^2/2) for p < 1/4 (and expose how loose the union-bound estimates");
    println!("are in the deep tail, where Monte-Carlo reports bare zeros); past p = 1/4 the");
    println!("inner threshold fails more often than not and the crash probability climbs");
    println!("towards 1 (the Fp(FPP) -> 1 behaviour the paper inherits from [RST92, Woo96]).");
}
