//! Regenerates the Section 8 worked example: n = 1024 servers, target load ~ 1/4,
//! per-server crash probability p = 1/8, comparing M-Grid, boostFPP, M-Path and
//! RT(4,3) — including a Monte-Carlo estimate of the true crash probability that the
//! paper could only bound analytically.
//!
//! Run with: `cargo run --release -p bqs-bench --bin section8_scenario [trials]`

use bqs_analysis::scenario::{build_scenario, render_scenario, SCENARIO_P};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    println!("Section 8 scenario: n = 1024, target load ~ 1/4, p = {SCENARIO_P}");
    println!("Monte-Carlo column uses {trials} trials per system (M-Path capped at 400)\n");
    let rows = build_scenario(trials);
    println!("{}", render_scenario(&rows));
    println!();
    println!("paper's conclusion, reproduced: the M-Grid is effectively unavailable in this");
    println!("regime (Fp >= 0.638), boostFPP is better, and RT(4,3) / M-Path are excellent;");
    println!("RT wins at this size while M-Path has the asymptotically superior behaviour");
    println!("(it stays available for every p < 1/2).");
}
