//! Runs the algorithmic ablations called out in DESIGN.md §4: greedy versus exact
//! transversal search, and straight-line versus max-flow M-Path quorum discovery.
//! (The LP-vs-closed-form load and exact-vs-Monte-Carlo availability ablations are
//! part of the `load_lower_bound` and `fig_fp_vs_p` binaries respectively.)
//!
//! Run with: `cargo run --release -p bqs-bench --bin ablations [trials]`

use bqs_analysis::ablation::{mpath_discovery_ablation, transversal_ablation};
use bqs_analysis::TextTable;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    println!("== ablation: greedy transversal vs exact branch-and-bound MT(Q) ==\n");
    let mut t1 = TextTable::new(["system", "greedy |T|", "exact MT", "tight?"]);
    for r in transversal_ablation() {
        t1.push_row([
            r.system.clone(),
            r.greedy.to_string(),
            r.exact.to_string(),
            (r.greedy == r.exact).to_string(),
        ]);
    }
    println!("{}\n", t1.render());

    println!("== ablation: straight-line vs max-flow M-Path quorum discovery ==");
    println!("(M-Path on a 12x12 grid, b = 4, {trials} trials per p)\n");
    let ps = [0.0, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3];
    let rows = mpath_discovery_ablation(12, 4, &ps, trials, 0xAB1);
    let mut t2 = TextTable::new(["p", "straight-line success", "max-flow success"]);
    for r in &rows {
        t2.push_row([
            format!("{:.2}", r.p),
            format!("{:.3}", r.straight_success_rate),
            format!("{:.3}", r.maxflow_success_rate),
        ]);
    }
    println!("{}", t2.render());
    println!();
    println!("interpretation: the straight-line strategy of Proposition 7.2 is enough for the");
    println!("failure-free load argument, but as crashes accumulate only the max-flow (Menger)");
    println!("discovery keeps finding quorums — this is why M-Path availability analysis needs");
    println!("percolation rather than counting fully-alive lines.");
}
