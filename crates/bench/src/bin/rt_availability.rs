//! Regenerates the RT(k, ℓ) availability analysis of Propositions 5.6 and 5.7:
//! the failure polynomial g(p), the critical probability p_c, the sharp threshold of
//! the crash probability around it, and the exponential bound (C(k,ℓ-1) p)^((k-ℓ+1)^h).
//!
//! Run with: `cargo run --release -p bqs-bench --bin rt_availability [k] [l] [depth]`

use bqs_analysis::availability_analysis::rt_fixed_point_sweep;
use bqs_analysis::TextTable;
use bqs_constructions::rt::RtSystem;
use bqs_constructions::AnalyzedConstruction;
use bqs_core::quorum::QuorumSystem;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let l: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let depth: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let rt = RtSystem::new(k, l, depth).expect("valid RT parameters");
    println!(
        "RT({k},{l}) of depth {depth}: n = {}, b = {}, f = {}",
        rt.universe_size(),
        rt.masking_b(),
        AnalyzedConstruction::resilience(&rt),
    );
    println!(
        "critical probability p_c = {:.4} (paper: 0.2324 for RT(4,3))\n",
        rt.critical_probability()
    );

    let ps: Vec<f64> = (1..=19).map(|i| i as f64 * 0.025).collect();
    let sweep = rt_fixed_point_sweep(k, l, depth, &ps);
    let mut table = TextTable::new(["p", "Fp (recurrence)", "Prop 5.7 bound", "below p_c"]);
    for pt in &sweep {
        let rt_bound = rt.crash_probability_prop_5_7_bound(pt.p);
        table.push_row([
            format!("{:.3}", pt.p),
            bqs_analysis::report::format_probability(pt.fp),
            rt_bound
                .map(bqs_analysis::report::format_probability)
                .unwrap_or_else(|| "-".to_string()),
            pt.below_critical.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!();
    println!("shape to check against the paper: Fp is negligible below p_c and jumps to ~1");
    println!(
        "above it (Proposition 5.6); for p < 1/C(k,l-1) = {:.4} the Prop 5.7 bound",
        1.0 / bqs_combinatorics::binomial::binomial_f64(k as u64, (l - 1) as u64)
    );
    println!("(6p)^sqrt(n) dominates the recurrence value, confirming the analysis is tight.");
}
