//! Machine-readable benchmark of the concurrent quorum service runtime:
//! emits `BENCH_service.json` (schema v1) — the empirical companion of
//! `BENCH_load.json` and `BENCH_fp.json`.
//!
//! Three experiment families:
//!
//! * **thread scaling** — closed-loop throughput of one mid-size instance at
//!   several shard-worker counts;
//! * **load validation** — ≥ 32 concurrent clients sampling the
//!   *certified-optimal* strategy (`optimal_load_oracle`) against Grid,
//!   M-Grid, FPP and boostFPP at paper sizes (n up to 1024), under a
//!   within-`b` Byzantine fault plan: the busiest server's empirical access
//!   frequency must land inside the 3σ max-order-statistic band around the
//!   certified `L(Q)` with **zero** safety violations;
//! * **availability validation** — repeated service runs under independently
//!   drawn crash plans: the empirical frequency of no-live-quorum runs must be
//!   Wilson-consistent with the analytic `F_p`.
//!
//! Run with: `cargo run --release -p bqs-bench --bin bench_service
//! [--quick] [output.json]`
//!
//! `--quick` runs small instances only and **asserts the gate**: empirical
//! load within tolerance and zero safety violations — the CI smoke step runs
//! this mode on every push, mirroring `bench_fp --quick` and
//! `bench_load --quick`.

use bqs_analysis::empirical::{
    empirical_availability_check, empirical_load_check, EmpiricalAvailabilityCheck,
    EmpiricalLoadCheck,
};
use bqs_bench::{json_escape, time};
use bqs_constructions::prelude::*;
use bqs_core::eval::Evaluator;
use bqs_core::load::optimal_load_oracle;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::QuorumSystem;
use bqs_core::strategic::StrategicQuorumSystem;
use bqs_service::prelude::*;
use bqs_sim::fault::FaultPlan;
use bqs_sim::server::ByzantineStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct ScalingRow {
    construction: String,
    n: usize,
    shards: usize,
    clients: usize,
    operations: u64,
    round_trips: u64,
    seconds: f64,
    throughput: f64,
    p50_ns: u64,
    p99_ns: u64,
}

struct LoadRow {
    check: EmpiricalLoadCheck,
    b: usize,
    byzantine: usize,
    clients: usize,
    shards: usize,
    safety_violations: u64,
    unavailable: u64,
    throughput: f64,
    seconds: f64,
}

struct AvailabilityRow {
    check: EmpiricalAvailabilityCheck,
    n: usize,
    seconds: f64,
}

/// A within-`b` Byzantine plan: `byz` servers spread across the universe,
/// alternating the three talkative attack strategies (silent servers would
/// merely shrink the responsive set).
fn byzantine_plan(n: usize, byz: usize) -> FaultPlan {
    let mut plan = FaultPlan::none(n);
    for i in 0..byz {
        let server = (i + 1) * n / (byz + 1);
        let strategy = match i % 3 {
            0 => ByzantineStrategy::FabricateHighTimestamp { value: 666 },
            1 => ByzantineStrategy::Equivocate,
            _ => ByzantineStrategy::StaleReplay,
        };
        plan = plan.with_byzantine(server.min(n - 1), strategy);
    }
    plan
}

/// Runs the ≥ 32-client certified-strategy validation on one construction.
fn validate_load<S>(
    sys: S,
    b: usize,
    byz: usize,
    clients: usize,
    shards: usize,
    ops_per_client: usize,
    failures: &mut Vec<String>,
) -> LoadRow
where
    S: MinWeightQuorumOracle,
{
    let name = sys.name();
    let n = sys.universe_size();
    assert!(byz <= b, "fault plan must stay within the masking level");
    let certified = optimal_load_oracle(&sys).expect("construction certifies through its oracle");
    assert!(certified.gap <= 1e-9, "{name}: gap {:e}", certified.gap);
    let strategic =
        StrategicQuorumSystem::from_certified(sys, &certified).expect("certified for this system");
    let plan = byzantine_plan(n, byz);
    // Mix the construction name into the seed: two instances with equal n
    // (both grids sit at 1024) must not replay identical client RNG streams,
    // or their validation rows would be correlated evidence.
    let name_tag = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
        (h ^ u64::from(c)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let config = ServiceConfig {
        clients,
        shards,
        ops_per_client,
        write_fraction: 0.2,
        writers: 1,
        seed: 0x05e2_11ce ^ n as u64 ^ name_tag,
    };
    eprintln!(
        "load validation: {name} (n = {n}), {clients} clients x {ops_per_client} ops, {shards} shards, {byz} Byzantine..."
    );
    let (report, seconds) = time(|| run_service(&strategic, b, &plan, &config));
    let check = empirical_load_check(
        &name,
        &report.access_counts,
        report.load_operations,
        certified.load,
    );
    if !check.within_tolerance {
        failures.push(format!(
            "{name}: empirical load {:.6} outside the band {:.6} +/- {:.6} (z = {:.2})",
            check.empirical_max_load, check.certified_load, check.tolerance, check.z
        ));
    }
    if report.safety_violations > 0 {
        failures.push(format!(
            "{name}: {} safety violations under a within-b plan",
            report.safety_violations
        ));
    }
    if report.unavailable_operations > 0 || report.transport_failures > 0 {
        failures.push(format!(
            "{name}: {} unavailable / {} transport-failed operations in a live service",
            report.unavailable_operations, report.transport_failures
        ));
    }
    LoadRow {
        check,
        b,
        byzantine: byz,
        clients,
        shards,
        safety_violations: report.safety_violations,
        unavailable: report.unavailable_operations,
        throughput: report.throughput_ops_per_sec,
        seconds,
    }
}

/// Throughput of one instance across several shard-worker counts.
fn thread_scaling<S: QuorumSystem>(
    sys: &S,
    b: usize,
    shard_counts: &[usize],
    clients: usize,
    ops_per_client: usize,
) -> Vec<ScalingRow> {
    let n = sys.universe_size();
    let mut rows = Vec::new();
    for &shards in shard_counts {
        eprintln!(
            "thread scaling: {} at {shards} shard(s), {clients} clients...",
            sys.name()
        );
        let config = ServiceConfig {
            clients,
            shards,
            ops_per_client,
            write_fraction: 0.2,
            writers: 1,
            seed: 0x7_5ca1e ^ shards as u64,
        };
        let report = run_service(sys, b, &FaultPlan::none(n), &config);
        assert!(report.is_safe(), "{}: unsafe scaling run", sys.name());
        rows.push(ScalingRow {
            construction: sys.name(),
            n,
            shards,
            clients,
            operations: report.operations,
            round_trips: report.load_operations,
            seconds: report.elapsed_seconds,
            throughput: report.throughput_ops_per_sec,
            p50_ns: report.latency_p50_upper_ns.unwrap_or(0),
            p99_ns: report.latency_p99_upper_ns.unwrap_or(0),
        });
    }
    rows
}

/// Empirical `F_p` through the whole service stack: repeated short runs under
/// independently drawn crash plans at rate `p`, counting the runs in which no
/// operation found a live quorum.
///
/// All trials share **one** shard pool: `reset_plan` swaps the replica set,
/// reseeds the per-shard RNG streams, and zeroes the metrics between trials
/// instead of spawning a fresh service per plan. That removes the per-trial
/// thread spin-up that used to cap this validation at n = 25 — it now runs
/// at n >= 100 in the same wall-clock budget.
fn validate_availability<S: QuorumSystem>(
    sys: &S,
    b: usize,
    p: f64,
    trials: usize,
    failures: &mut Vec<String>,
) -> (EmpiricalAvailabilityCheck, f64) {
    let n = sys.universe_size();
    let analytic = Evaluator::new().crash_probability(sys, p).value;
    eprintln!(
        "availability validation: {} at p = {p} ({trials} trials, one shared pool)...",
        sys.name()
    );
    let mut rng = StdRng::seed_from_u64(0xfa_117 ^ n as u64);
    let mut unavailable = 0usize;
    let mut service = LoopbackService::spawn(&FaultPlan::none(n), 1, 0);
    let ((), seconds) = time(|| {
        for trial in 0..trials {
            let plan = FaultPlan::independent_crashes(n, p, &mut rng);
            service.reset_plan(&plan, 0xdead ^ trial as u64);
            let config = ServiceConfig {
                clients: 2,
                shards: 1,
                ops_per_client: 8,
                write_fraction: 0.5,
                writers: 1,
                seed: 0xdead ^ trial as u64,
            };
            let report = run_service_on(&service, sys, b, &config);
            if report.safety_violations > 0 {
                failures.push(format!(
                    "{}: safety violation under a crash-only plan",
                    sys.name()
                ));
            }
            if report.unavailable_operations == report.operations {
                unavailable += 1;
            } else if report.unavailable_operations > 0 {
                failures.push(format!(
                    "{}: partially unavailable run under a static crash plan",
                    sys.name()
                ));
            }
        }
    });
    let check = empirical_availability_check(sys.name(), p, trials, unavailable, analytic);
    if !check.consistent {
        failures.push(format!(
            "{}: empirical F_p {:.4} (95% CI [{:.4}, {:.4}]) inconsistent with analytic {:.4}",
            check.system, check.empirical_fp, check.ci95.0, check.ci95.1, check.analytic_fp
        ));
    }
    (check, seconds)
}

fn main() {
    let mut quick = false;
    let mut output = "BENCH_service.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            output = arg;
        }
    }
    let mut failures: Vec<String> = Vec::new();

    // --- Thread scaling: one mid-size instance across shard counts. -------
    let scaling = if quick {
        let sys = MGridSystem::new(5, 2).unwrap();
        thread_scaling(&sys, 2, &[1, 2, 4], 8, 150)
    } else {
        let sys = MGridSystem::new(16, 5).unwrap();
        thread_scaling(&sys, 5, &[1, 2, 4, 8], 16, 500)
    };

    // --- Certified-load validation under concurrency. ---------------------
    let mut load_rows: Vec<LoadRow> = Vec::new();
    if quick {
        load_rows.push(validate_load(
            MGridSystem::new(5, 2).unwrap(),
            2,
            2,
            8,
            2,
            400,
            &mut failures,
        ));
        load_rows.push(validate_load(
            GridSystem::new(8, 2).unwrap(),
            2,
            2,
            8,
            2,
            400,
            &mut failures,
        ));
    } else {
        // The paper-size matrix: n up to 1024, >= 32 concurrent clients,
        // certified strategies from the column-generation oracle.
        load_rows.push(validate_load(
            GridSystem::new(32, 10).unwrap(),
            10,
            5,
            32,
            4,
            500,
            &mut failures,
        ));
        load_rows.push(validate_load(
            MGridSystem::new(32, 15).unwrap(),
            15,
            6,
            32,
            4,
            500,
            &mut failures,
        ));
        load_rows.push(validate_load(
            FppSystem::new(31).unwrap(),
            0,
            0,
            32,
            4,
            2_000,
            &mut failures,
        ));
        load_rows.push(validate_load(
            BoostFppSystem::new(3, 15).unwrap(),
            15,
            5,
            32,
            4,
            1_000,
            &mut failures,
        ));
    }

    // --- Availability validation through the service stack. ---------------
    // One shared shard pool per instance (reset_plan between trials), which
    // is what makes the n >= 100 instances affordable: the old per-trial
    // spin-up capped this section at n = 25.
    let availability: Vec<AvailabilityRow> = if quick {
        Vec::new()
    } else {
        let grid = GridSystem::new(5, 1).unwrap();
        let mgrid = MGridSystem::new(5, 2).unwrap();
        let grid_large = GridSystem::new(10, 1).unwrap();
        let mgrid_large = MGridSystem::new(11, 2).unwrap();
        let mut rows = Vec::new();
        for (check, n, seconds) in [
            (
                validate_availability(&grid, 1, 0.20, 500, &mut failures),
                25,
            ),
            (
                validate_availability(&mgrid, 2, 0.15, 500, &mut failures),
                25,
            ),
            (
                validate_availability(&grid_large, 1, 0.15, 500, &mut failures),
                100,
            ),
            (
                validate_availability(&mgrid_large, 2, 0.10, 500, &mut failures),
                121,
            ),
        ]
        .map(|((check, seconds), n)| (check, n, seconds))
        {
            rows.push(AvailabilityRow { check, n, seconds });
        }
        rows
    };

    // --- Emit JSON. --------------------------------------------------------
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::new();
    json.push_str("{\n");
    // Schema v2 is additive over v1: every v1 field is still present with
    // the same name and meaning; rows gain `generator` (closed_loop /
    // open_loop) and `transport` (loopback / uds / tcp) so they can be read
    // side-by-side with `BENCH_net.json`'s open-loop socket rows.
    json.push_str(&format!(
        "  \"schema\": \"bench_service/v2\",\n  \"available_parallelism\": {cores},\n  \"quick\": {quick},\n"
    ));
    json.push_str("  \"thread_scaling\": [\n");
    for (i, r) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"construction\": \"{}\", \"generator\": \"closed_loop\", \"transport\": \"loopback\", \"n\": {}, \"shards\": {}, \"clients\": {}, \"operations\": {}, \"round_trips\": {}, \"seconds\": {:e}, \"throughput_ops_per_sec\": {:.1}, \"latency_p50_upper_ns\": {}, \"latency_p99_upper_ns\": {}}}{}\n",
            json_escape(&r.construction),
            r.n,
            r.shards,
            r.clients,
            r.operations,
            r.round_trips,
            r.seconds,
            r.throughput,
            r.p50_ns,
            r.p99_ns,
            if i + 1 == scaling.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"load_validation\": [\n");
    for (i, r) in load_rows.iter().enumerate() {
        let c = &r.check;
        json.push_str(&format!(
            "    {{\"construction\": \"{}\", \"generator\": \"closed_loop\", \"transport\": \"loopback\", \"n\": {}, \"b\": {}, \"byzantine\": {}, \"clients\": {}, \"shards\": {}, \"load_operations\": {}, \"certified_load\": {:.12}, \"empirical_max_load\": {:.12}, \"sigma\": {:e}, \"tolerance\": {:e}, \"z\": {:.3}, \"within_tolerance\": {}, \"safety_violations\": {}, \"unavailable_operations\": {}, \"throughput_ops_per_sec\": {:.1}, \"seconds\": {:e}}}{}\n",
            json_escape(&c.system),
            c.n,
            r.b,
            r.byzantine,
            r.clients,
            r.shards,
            c.operations,
            c.certified_load,
            c.empirical_max_load,
            c.sigma,
            c.tolerance,
            c.z,
            c.within_tolerance,
            r.safety_violations,
            r.unavailable,
            r.throughput,
            r.seconds,
            if i + 1 == load_rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"availability_validation\": [\n");
    for (i, r) in availability.iter().enumerate() {
        let c = &r.check;
        json.push_str(&format!(
            "    {{\"construction\": \"{}\", \"generator\": \"closed_loop\", \"transport\": \"loopback\", \"pool_reused\": true, \"n\": {}, \"p\": {}, \"trials\": {}, \"unavailable_trials\": {}, \"empirical_fp\": {:.6}, \"analytic_fp\": {:.6}, \"ci95_low\": {:.6}, \"ci95_high\": {:.6}, \"consistent\": {}, \"seconds\": {:e}}}{}\n",
            json_escape(&c.system),
            r.n,
            c.p,
            c.trials,
            c.unavailable_trials,
            c.empirical_fp,
            c.analytic_fp,
            c.ci95.0,
            c.ci95.1,
            c.consistent,
            r.seconds,
            if i + 1 == availability.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&output, &json).expect("write benchmark output");

    // --- Human-readable summary. -------------------------------------------
    println!(
        "{:<22} {:>5} {:>7} {:>8} {:>12} {:>14}",
        "thread scaling", "n", "shards", "clients", "ops", "ops/sec"
    );
    for r in &scaling {
        println!(
            "{:<22} {:>5} {:>7} {:>8} {:>12} {:>14.0}",
            r.construction, r.n, r.shards, r.clients, r.operations, r.throughput
        );
    }
    println!(
        "\n{:<22} {:>5} {:>3} {:>10} {:>12} {:>12} {:>8} {:>7} {:>6}",
        "load validation", "n", "b", "ops", "certified", "empirical", "z", "within", "viol"
    );
    for r in &load_rows {
        let c = &r.check;
        println!(
            "{:<22} {:>5} {:>3} {:>10} {:>12.6} {:>12.6} {:>8.2} {:>7} {:>6}",
            c.system,
            c.n,
            r.b,
            c.operations,
            c.certified_load,
            c.empirical_max_load,
            c.z,
            c.within_tolerance,
            r.safety_violations
        );
    }
    if !availability.is_empty() {
        println!(
            "\n{:<22} {:>5} {:>6} {:>7} {:>12} {:>12} {:>22}",
            "availability", "n", "p", "trials", "empirical", "analytic", "95% CI"
        );
        for r in &availability {
            let c = &r.check;
            println!(
                "{:<22} {:>5} {:>6} {:>7} {:>12.4} {:>12.4} [{:>8.4}, {:>8.4}]",
                c.system, r.n, c.p, c.trials, c.empirical_fp, c.analytic_fp, c.ci95.0, c.ci95.1
            );
        }
    }
    println!("wrote {output}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ERROR: {f}");
        }
        std::process::exit(1);
    }
}
