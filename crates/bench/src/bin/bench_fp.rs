//! Machine-readable crash-probability benchmark: times the evaluation engine
//! across constructions, universe sizes and crash probabilities, and emits
//! `BENCH_fp.json` (schema v3) so future changes have a performance
//! trajectory to compare against.
//!
//! Schema v2 records, beyond the v1 per-point rows:
//!
//! * the dispatch method per row (`closed_form` / `dp` / `exact` /
//!   `monte_carlo`) plus the 95% Wilson upper bound for Monte-Carlo rows (a
//!   zero-hit row is no longer a silent `0e0`);
//! * per-method timings for the two constructions this engine made exact —
//!   boostFPP (survivor-profile closed form) and M-Path (transfer-matrix DP)
//!   — against the Monte-Carlo estimator they replaced;
//! * sweep-mode timing: the same `(system, p)` grid through
//!   [`Evaluator::sweep_systems`]'s persistent worker pool versus one
//!   `crash_probability` call at a time.
//!
//! Schema v3 adds:
//!
//! * `available_parallelism` at the top level, and an honest single-core
//!   annotation of the sweep comparison: on a one-core container batching
//!   cannot beat serial wall-clock, so the serial baseline is skipped there
//!   instead of recording a misleading `1.00` ratio;
//! * `mpath_dp_sweep`: the amortised cost of extra `p`-points under the
//!   batched transfer-matrix sweep (the state enumeration is shared across
//!   the grid), versus the single-point cost it previously paid per point.
//!
//! Run with: `cargo run --release -p bqs-bench --bin bench_fp [--quick] [output.json]`
//!
//! `--quick` runs a reduced matrix **and asserts the dispatch table**: if an
//! exact-method construction (boostFPP at paper scale, M-Path at the DP gate)
//! silently degrades to Monte-Carlo, the process exits non-zero — the CI
//! smoke step runs this mode on every push.

use bqs_bench::{json_escape, time};
use bqs_constructions::prelude::*;
use bqs_core::availability::exact_crash_probability_naive;
use bqs_core::eval::{Evaluator, FpEstimate, FpMethod};
use bqs_core::quorum::QuorumSystem;

struct Row {
    construction: String,
    n: usize,
    p: f64,
    method: &'static str,
    fp: f64,
    fp_upper95: Option<f64>,
    seconds: f64,
}

fn push_row(rows: &mut Vec<Row>, sys: &dyn QuorumSystem, p: f64, fp: FpEstimate, seconds: f64) {
    rows.push(Row {
        construction: sys.name(),
        n: sys.universe_size(),
        p,
        method: fp.method.label(),
        fp: fp.value,
        fp_upper95: (!fp.is_exact()).then(|| fp.ci95_upper_bound()),
        seconds,
    });
}

fn measure(rows: &mut Vec<Row>, evaluator: &Evaluator, sys: &dyn QuorumSystem, p: f64) -> FpMethod {
    let (fp, seconds) = time(|| evaluator.crash_probability(sys, p));
    let method = fp.method;
    push_row(rows, sys, p, fp, seconds);
    method
}

/// Forces enumeration (no closed form) through the engine, for timing.
fn measure_exact(rows: &mut Vec<Row>, evaluator: &Evaluator, sys: &dyn QuorumSystem, p: f64) {
    let (fp, seconds) = time(|| evaluator.exact(sys, p).expect("within exact limit"));
    rows.push(Row {
        construction: sys.name(),
        n: sys.universe_size(),
        p,
        method: "exact",
        fp,
        fp_upper95: None,
        seconds,
    });
}

/// Times the exact dispatch against the Monte-Carlo estimator it replaced.
struct MethodSpeedup {
    construction: String,
    p: f64,
    exact_method: &'static str,
    exact_fp: f64,
    exact_seconds: f64,
    mc_trials: usize,
    mc_fp: f64,
    mc_upper95: f64,
    mc_seconds: f64,
    ratio: f64,
}

fn method_speedup(
    evaluator: &Evaluator,
    sys: &dyn QuorumSystem,
    p: f64,
    mc_trials: usize,
) -> MethodSpeedup {
    let (exact, exact_seconds) = time(|| evaluator.crash_probability(sys, p));
    assert!(
        exact.is_exact(),
        "{} did not dispatch to an exact method",
        sys.name()
    );
    let (mc, mc_seconds) = time(|| evaluator.monte_carlo_with(sys, p, mc_trials));
    let mc_est = FpEstimate {
        value: mc.mean,
        std_error: Some(mc.std_error),
        trials: Some(mc.trials),
        method: FpMethod::MonteCarlo,
    };
    MethodSpeedup {
        construction: sys.name(),
        p,
        exact_method: exact.method.label(),
        exact_fp: exact.value,
        exact_seconds,
        mc_trials,
        mc_fp: mc.mean,
        mc_upper95: mc_est.ci95_upper_bound(),
        mc_seconds,
        ratio: mc_seconds / exact_seconds.max(1e-12),
    }
}

fn main() {
    let mut quick = false;
    let mut output = "BENCH_fp.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            output = arg;
        }
    }
    let evaluator = Evaluator::new().with_trials(20_000).with_seed(0xBE7C);
    let ps: &[f64] = if quick {
        &[0.125]
    } else {
        &[0.05, 0.125, 0.25]
    };
    let mut rows: Vec<Row> = Vec::new();
    let mut dispatch_failures: Vec<String> = Vec::new();
    let mut expect = |name: &str, got: FpMethod, want: FpMethod| {
        if got != want {
            dispatch_failures.push(format!(
                "{name}: expected {} dispatch, got {}",
                want.label(),
                got.label()
            ));
        }
    };

    // The paper-scale instances (Section 8): every construction, including
    // the two this engine made exact, answers without sampling.
    let boost = BoostFppSystem::new(3, 19).unwrap();
    let mpath_dp = MPathSystem::new(6, 3).unwrap();
    eprintln!("timing the dispatch matrix ({} p values)...", ps.len());
    for &p in ps {
        let m = measure(
            &mut rows,
            &evaluator,
            &ThresholdSystem::masking(1024, 255).unwrap(),
            p,
        );
        expect("Threshold(1024)", m, FpMethod::ClosedForm);
        let m = measure(&mut rows, &evaluator, &GridSystem::new(32, 10).unwrap(), p);
        expect("Grid(1024)", m, FpMethod::ClosedForm);
        let m = measure(&mut rows, &evaluator, &MGridSystem::new(32, 15).unwrap(), p);
        expect("M-Grid(1024)", m, FpMethod::ClosedForm);
        let m = measure(&mut rows, &evaluator, &RtSystem::new(4, 3, 5).unwrap(), p);
        expect("RT(1024)", m, FpMethod::ClosedForm);
        // boostFPP at n = 1001: previously the slowest, least accurate row
        // (Monte-Carlo, literally 0e0 at p = 0.05); now an exact closed form.
        let m = measure(&mut rows, &evaluator, &boost, p);
        expect("boostFPP(q=3, b=19)", m, FpMethod::ClosedForm);
        // M-Path at the DP gate (n = 36 — beyond the 2^25 enumeration limit).
        let m = measure(&mut rows, &evaluator, &mpath_dp, p);
        expect("M-Path(side=6)", m, FpMethod::Dp);
    }

    if !quick {
        // Paper-scale M-Path (side 32): exact crossing probabilities at this
        // width are beyond every known transfer-matrix state space, so the
        // engine samples — now with a Wilson upper bound instead of a bare 0.
        let mpath32 = MPathSystem::new(32, 7).unwrap();
        let mc_eval = evaluator.clone().with_trials(500).with_exact_limit(0);
        for &p in ps {
            measure(&mut rows, &mc_eval, &mpath32, p);
        }
        // Exact enumeration at n = 16 and n = 25 (the engine's parallel path).
        for &p in ps {
            measure_exact(&mut rows, &evaluator, &GridSystem::new(4, 1).unwrap(), p);
            measure_exact(&mut rows, &evaluator, &GridSystem::new(5, 1).unwrap(), p);
            measure_exact(&mut rows, &evaluator, &MGridSystem::new(4, 1).unwrap(), p);
            measure_exact(&mut rows, &evaluator, &MGridSystem::new(5, 2).unwrap(), p);
            measure_exact(
                &mut rows,
                &evaluator,
                &ThresholdSystem::masking(25, 5).unwrap(),
                p,
            );
        }
    }

    // Per-method timings for the constructions this engine made exact, vs the
    // Monte-Carlo estimator they replaced (same effort as the v1 benchmark).
    eprintln!("timing exact methods vs the Monte-Carlo they replaced...");
    let mc_trials = if quick { 2_000 } else { 20_000 };
    let boost_speedup = method_speedup(&evaluator, &boost, 0.125, mc_trials);
    let mpath_speedup = method_speedup(
        &evaluator,
        &mpath_dp,
        0.125,
        if quick { 500 } else { 5_000 },
    );

    // The amortised M-Path DP sweep: the batched transfer-matrix sweep
    // shares one interface-state enumeration across the whole p-grid, so
    // each extra point costs a few multiply-adds per transition instead of a
    // fresh enumeration.
    eprintln!("timing the batched M-Path DP p-grid against per-point sweeps...");
    let dp_ps: Vec<f64> = (1..=4).map(|i| f64::from(i) * 0.06).collect();
    let dp_eval = evaluator.clone();
    let (single_fp, dp_single_seconds) = time(|| dp_eval.crash_probability(&mpath_dp, dp_ps[0]));
    let (dp_batch, dp_batch_seconds) = time(|| dp_eval.sweep(&mpath_dp, &dp_ps));
    assert_eq!(
        dp_batch[0].value.to_bits(),
        single_fp.value.to_bits(),
        "batched DP sweep diverged from single-point evaluation"
    );
    let dp_extra_points = dp_ps.len() - 1;
    let dp_per_extra_point =
        (dp_batch_seconds - dp_single_seconds).max(1e-12) / dp_extra_points as f64;
    let dp_sweep_speedup = dp_single_seconds / dp_per_extra_point;

    // Sweep-mode timing: the same grid of points through the persistent pool
    // versus one call at a time. The serial pass always runs — it is the
    // bit-identity parity check for the batched engine — but on a
    // single-core runner the pool cannot overlap points, so the wall-clock
    // *comparison* is skipped there (recording a ~1.00 ratio would read as
    // a regression).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let sweep_ps: Vec<f64> = if quick {
        (1..=4).map(|i| f64::from(i) * 0.06).collect()
    } else {
        (1..=8).map(|i| f64::from(i) * 0.05).collect()
    };
    let thresh_sweep = ThresholdSystem::masking(1024, 255).unwrap();
    let sweep_systems: Vec<&dyn QuorumSystem> = vec![&boost, &thresh_sweep, &mpath_dp];
    let sweep_eval = evaluator.clone().with_trials(2_000);
    eprintln!(
        "timing batched sweep{}...",
        if cores > 1 {
            " vs one-call-at-a-time"
        } else {
            " (single core: parity checked, wall-clock comparison skipped)"
        }
    );
    let (batched, batched_seconds) = time(|| sweep_eval.sweep_systems(&sweep_systems, &sweep_ps));
    // The honest baseline: one `crash_probability` call per point with the
    // *default* (fully parallel) evaluator — what a caller without the sweep
    // API would write. Every method in this grid (closed form, DP,
    // Monte-Carlo) is bit-identical at any thread count, so the timing run
    // doubles as the parity check.
    let (serial, serial_seconds) = time(|| {
        sweep_systems
            .iter()
            .map(|sys| {
                sweep_ps
                    .iter()
                    .map(|&p| sweep_eval.crash_probability(*sys, p))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    for (b_row, s_row) in batched.iter().zip(&serial) {
        for (b, s) in b_row.iter().zip(s_row) {
            assert_eq!(
                b.value.to_bits(),
                s.value.to_bits(),
                "sweep result diverged from single-point evaluation"
            );
        }
    }
    let serial_timing =
        (cores > 1).then(|| (serial_seconds, serial_seconds / batched_seconds.max(1e-12)));
    let sweep_points = sweep_systems.len() * sweep_ps.len();

    // The v1 acceptance measurement, kept for trajectory continuity: n = 25
    // Grid, engine versus the historical allocating scalar loop.
    let grid25 = GridSystem::new(5, 1).unwrap();
    let p25 = 0.125;
    let (grid25_speedup, engine_fp, naive_secs, engine_secs) = if quick {
        (None, 0.0, 0.0, 0.0)
    } else {
        eprintln!("measuring the n = 25 Grid speedup (this runs the old scalar loop once)...");
        let (engine_fp, engine_secs) = time(|| evaluator.exact(&grid25, p25).unwrap());
        let (naive_fp, naive_secs) = time(|| exact_crash_probability_naive(&grid25, p25).unwrap());
        assert!(
            (engine_fp - naive_fp).abs() < 1e-9,
            "engine {engine_fp} disagrees with naive {naive_fp}"
        );
        (
            Some(naive_secs / engine_secs.max(1e-12)),
            engine_fp,
            naive_secs,
            engine_secs,
        )
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"bench_fp/v3\",\n  \"threads\": {},\n  \"available_parallelism\": {cores},\n  \"quick\": {},\n  \"results\": [\n",
        evaluator.threads(),
        quick
    ));
    for (i, r) in rows.iter().enumerate() {
        let upper = r
            .fp_upper95
            .map(|u| format!(", \"fp_upper95\": {u:e}"))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"construction\": \"{}\", \"n\": {}, \"p\": {}, \"method\": \"{}\", \"fp\": {:e}{}, \"seconds\": {:e}}}{}\n",
            json_escape(&r.construction),
            r.n,
            r.p,
            r.method,
            r.fp,
            upper,
            r.seconds,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"exact_method_speedups\": {\n");
    for (key, s, last) in [
        ("boostfpp", &boost_speedup, false),
        ("mpath", &mpath_speedup, true),
    ] {
        json.push_str(&format!(
            "    \"{key}\": {{\"construction\": \"{}\", \"p\": {}, \"method\": \"{}\", \"exact_fp\": {:e}, \"exact_seconds\": {:e}, \"mc_trials\": {}, \"mc_fp\": {:e}, \"mc_upper95\": {:e}, \"mc_seconds\": {:e}, \"ratio\": {:.2}}}{}\n",
            json_escape(&s.construction),
            s.p,
            s.exact_method,
            s.exact_fp,
            s.exact_seconds,
            s.mc_trials,
            s.mc_fp,
            s.mc_upper95,
            s.mc_seconds,
            s.ratio,
            if last { "" } else { "," }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"mpath_dp_sweep\": {{\"construction\": \"{}\", \"points\": {}, \"single_point_seconds\": {dp_single_seconds:e}, \"batched_seconds\": {dp_batch_seconds:e}, \"per_extra_point_seconds\": {dp_per_extra_point:e}, \"speedup_per_extra_point\": {dp_sweep_speedup:.2}}},\n",
        json_escape(&mpath_dp.name()),
        dp_ps.len()
    ));
    match serial_timing {
        Some((serial_seconds, sweep_ratio)) => json.push_str(&format!(
            "  \"sweep\": {{\"points\": {sweep_points}, \"batched_seconds\": {batched_seconds:e}, \"one_at_a_time_seconds\": {serial_seconds:e}, \"ratio\": {sweep_ratio:.2}}}"
        )),
        None => json.push_str(&format!(
            "  \"sweep\": {{\"points\": {sweep_points}, \"batched_seconds\": {batched_seconds:e}, \"comparison_skipped\": \"single-core container: parity vs per-point evaluation verified, wall-clock comparison meaningless without cross-point overlap\"}}"
        )),
    }
    if let Some(ratio) = grid25_speedup {
        json.push_str(&format!(
            ",\n  \"grid25_speedup\": {{\"construction\": \"{}\", \"p\": {}, \"fp\": {:e}, \"naive_seconds\": {:e}, \"engine_seconds\": {:e}, \"ratio\": {:.2}}}\n",
            json_escape(&grid25.name()),
            p25,
            engine_fp,
            naive_secs,
            engine_secs,
            ratio
        ));
    } else {
        json.push('\n');
    }
    json.push_str("}\n");
    std::fs::write(&output, &json).expect("write benchmark output");

    println!(
        "{:<24} {:>4} {:>7} {:>12} {:>14} {:>14} {:>12}",
        "construction", "n", "p", "method", "Fp", "Fp upper95", "seconds"
    );
    for r in &rows {
        println!(
            "{:<24} {:>4} {:>7} {:>12} {:>14.6e} {:>14} {:>12.6}",
            r.construction,
            r.n,
            r.p,
            r.method,
            r.fp,
            r.fp_upper95
                .map(|u| format!("{u:.3e}"))
                .unwrap_or_else(|| "-".into()),
            r.seconds
        );
    }
    println!();
    for s in [&boost_speedup, &mpath_speedup] {
        println!(
            "{} at p = {}: {} {:.6}s (exact fp {:.6e}) vs {}-trial Monte-Carlo {:.6}s -> {:.2}x",
            s.construction,
            s.p,
            s.exact_method,
            s.exact_seconds,
            s.exact_fp,
            s.mc_trials,
            s.mc_seconds,
            s.ratio
        );
    }
    println!(
        "M-Path DP p-grid of {} points: single point {dp_single_seconds:.3}s, batched {dp_batch_seconds:.3}s -> {dp_per_extra_point:.4}s per extra point ({dp_sweep_speedup:.1}x)",
        dp_ps.len()
    );
    match serial_timing {
        Some((serial_seconds, sweep_ratio)) => println!(
            "sweep of {sweep_points} points: batched {batched_seconds:.4}s vs one-at-a-time {serial_seconds:.4}s -> {sweep_ratio:.2}x"
        ),
        None => println!(
            "sweep of {sweep_points} points: batched {batched_seconds:.4}s, parity vs per-point verified (single core: wall-clock comparison skipped)"
        ),
    }
    if let Some(ratio) = grid25_speedup {
        println!(
            "n = 25 Grid exact F_p at p = {p25}: engine {engine_secs:.3}s vs naive {naive_secs:.3}s -> {ratio:.1}x speedup"
        );
    }
    println!("wrote {output}");

    // Fail the process (after writing the JSON) so the CI smoke step goes red
    // when dispatch or the engine regresses.
    let mut failed = false;
    if !dispatch_failures.is_empty() {
        for f in &dispatch_failures {
            eprintln!("ERROR: dispatch regression: {f}");
        }
        failed = true;
    }
    if dp_sweep_speedup < 5.0 {
        eprintln!(
            "ERROR: batched M-Path DP sweep only {dp_sweep_speedup:.1}x cheaper per extra point (need >= 5x)"
        );
        failed = true;
    }
    if boost_speedup.ratio < 20.0 {
        eprintln!(
            "ERROR: boostFPP exact path is only {:.1}x faster than Monte-Carlo (need >= 20x)",
            boost_speedup.ratio
        );
        failed = true;
    }
    if let Some(ratio) = grid25_speedup {
        if ratio < 5.0 {
            eprintln!("ERROR: grid25 speedup {ratio:.1}x is below the 5x acceptance threshold");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
