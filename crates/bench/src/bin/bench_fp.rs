//! Machine-readable crash-probability benchmark: times the evaluation engine
//! across constructions, universe sizes and crash probabilities, and emits
//! `BENCH_fp.json` (schema v4) so future changes have a performance
//! trajectory to compare against.
//!
//! Schema v2 records, beyond the v1 per-point rows:
//!
//! * the dispatch method per row (`closed_form` / `dp` / `exact` /
//!   `monte_carlo`) plus the 95% Wilson upper bound for Monte-Carlo rows (a
//!   zero-hit row is no longer a silent `0e0`);
//! * per-method timings for the two constructions this engine made exact —
//!   boostFPP (survivor-profile closed form) and M-Path (transfer-matrix DP)
//!   — against the Monte-Carlo estimator they replaced;
//! * sweep-mode timing: the same `(system, p)` grid through
//!   [`Evaluator::sweep_systems`]'s persistent worker pool versus one
//!   `crash_probability` call at a time.
//!
//! Schema v3 adds:
//!
//! * `available_parallelism` at the top level, and an honest single-core
//!   annotation of the sweep comparison: on a one-core container batching
//!   cannot beat serial wall-clock, so the serial baseline is skipped there
//!   instead of recording a misleading `1.00` ratio;
//! * `mpath_dp_sweep`: the amortised cost of extra `p`-points under the
//!   batched transfer-matrix sweep (the state enumeration is shared across
//!   the grid), versus the single-point cost it previously paid per point.
//!
//! Schema v4 adds a `fronts` section for the three raw-speed fronts of the
//! lane-widening PR, each with its own timings and acceptance gates:
//!
//! * `a_lane_enumeration`: the batched (`u64x4`) enumeration loop plus the
//!   structure-specialised range kernel for the line-quorum grids —
//!   bit-parity asserted against the historical scalar loop, the n = 25 Grid
//!   timed against both that loop and the committed v3 engine time
//!   (gate: ≥ 2× over v3);
//! * `b_pruned_dp`: the ε-pruned M-Path transfer-matrix sweep past the
//!   exact-DP wall — certified `[lower, upper]` widths recorded at side 7
//!   (every mode) and side 8 (full mode), gate: width ≤ 1e-9 at paper `p`;
//! * `c_boostfpp_counting`: the counting-profile closed form at plane order
//!   q = 5 (n = 31, past the `2^n` wall), gate: exact dispatch; and the
//!   measured-infeasible q = 7 declining instantly rather than hanging.
//!
//! The top level also records `availability_lanes` (the enumeration lane
//! width) next to the thread counts, so trajectory comparisons know both
//! axes of parallelism.
//!
//! Run with: `cargo run --release -p bqs-bench --bin bench_fp [--quick] [output.json]`
//!
//! `--quick` runs a reduced matrix **and asserts the dispatch table**: if an
//! exact-method construction (boostFPP at paper scale and at q = 5, M-Path at
//! the DP gate and in the pruned-DP band) silently degrades to Monte-Carlo,
//! or a front gate above fails, the process exits non-zero — the CI smoke
//! step runs this mode on every push.

use bqs_bench::{json_escape, time};
use bqs_constructions::prelude::*;
use bqs_core::availability::exact_crash_probability_naive;
use bqs_core::eval::{Evaluator, FpEstimate, FpMethod};
use bqs_core::quorum::{QuorumSystem, AVAILABILITY_LANES};

/// The committed v3 engine time for exact `F_p` on the n = 25 Grid at
/// `p = 0.125` (BENCH_fp.json, one core) — the baseline the lane-widened
/// enumeration front must beat by ≥ 2×.
const V3_GRID25_ENGINE_SECONDS: f64 = 0.2703;

struct Row {
    construction: String,
    n: usize,
    p: f64,
    method: &'static str,
    fp: f64,
    fp_upper95: Option<f64>,
    seconds: f64,
}

fn push_row(rows: &mut Vec<Row>, sys: &dyn QuorumSystem, p: f64, fp: FpEstimate, seconds: f64) {
    rows.push(Row {
        construction: sys.name(),
        n: sys.universe_size(),
        p,
        method: fp.method.label(),
        fp: fp.value,
        fp_upper95: (!fp.is_exact()).then(|| fp.ci95_upper_bound()),
        seconds,
    });
}

fn measure(rows: &mut Vec<Row>, evaluator: &Evaluator, sys: &dyn QuorumSystem, p: f64) -> FpMethod {
    let (fp, seconds) = time(|| evaluator.crash_probability(sys, p));
    let method = fp.method;
    push_row(rows, sys, p, fp, seconds);
    method
}

/// Forces enumeration (no closed form) through the engine, for timing.
fn measure_exact(rows: &mut Vec<Row>, evaluator: &Evaluator, sys: &dyn QuorumSystem, p: f64) {
    let (fp, seconds) = time(|| evaluator.exact(sys, p).expect("within exact limit"));
    rows.push(Row {
        construction: sys.name(),
        n: sys.universe_size(),
        p,
        method: "exact",
        fp,
        fp_upper95: None,
        seconds,
    });
}

/// Times the exact dispatch against the Monte-Carlo estimator it replaced.
struct MethodSpeedup {
    construction: String,
    p: f64,
    exact_method: &'static str,
    exact_fp: f64,
    exact_seconds: f64,
    mc_trials: usize,
    mc_fp: f64,
    mc_upper95: f64,
    mc_seconds: f64,
    ratio: f64,
}

fn method_speedup(
    evaluator: &Evaluator,
    sys: &dyn QuorumSystem,
    p: f64,
    mc_trials: usize,
) -> MethodSpeedup {
    let (exact, exact_seconds) = time(|| evaluator.crash_probability(sys, p));
    assert!(
        exact.is_exact(),
        "{} did not dispatch to an exact method",
        sys.name()
    );
    let (mc, mc_seconds) = time(|| evaluator.monte_carlo_with(sys, p, mc_trials));
    let mc_est = FpEstimate {
        value: mc.mean,
        std_error: Some(mc.std_error),
        trials: Some(mc.trials),
        method: FpMethod::MonteCarlo,
        interval: None,
    };
    MethodSpeedup {
        construction: sys.name(),
        p,
        exact_method: exact.method.label(),
        exact_fp: exact.value,
        exact_seconds,
        mc_trials,
        mc_fp: mc.mean,
        mc_upper95: mc_est.ci95_upper_bound(),
        mc_seconds,
        ratio: mc_seconds / exact_seconds.max(1e-12),
    }
}

fn main() {
    let mut quick = false;
    let mut output = "BENCH_fp.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            output = arg;
        }
    }
    let evaluator = Evaluator::new().with_trials(20_000).with_seed(0xBE7C);
    let ps: &[f64] = if quick {
        &[0.125]
    } else {
        &[0.05, 0.125, 0.25]
    };
    let mut rows: Vec<Row> = Vec::new();
    let mut dispatch_failures: Vec<String> = Vec::new();
    let mut expect = |name: &str, got: FpMethod, want: FpMethod| {
        if got != want {
            dispatch_failures.push(format!(
                "{name}: expected {} dispatch, got {}",
                want.label(),
                got.label()
            ));
        }
    };

    // The paper-scale instances (Section 8): every construction, including
    // the two this engine made exact, answers without sampling.
    let boost = BoostFppSystem::new(3, 19).unwrap();
    let boost5 = BoostFppSystem::new(5, 2).unwrap();
    let mpath_dp = MPathSystem::new(6, 3).unwrap();
    eprintln!("timing the dispatch matrix ({} p values)...", ps.len());
    for &p in ps {
        let m = measure(
            &mut rows,
            &evaluator,
            &ThresholdSystem::masking(1024, 255).unwrap(),
            p,
        );
        expect("Threshold(1024)", m, FpMethod::ClosedForm);
        let m = measure(&mut rows, &evaluator, &GridSystem::new(32, 10).unwrap(), p);
        expect("Grid(1024)", m, FpMethod::ClosedForm);
        let m = measure(&mut rows, &evaluator, &MGridSystem::new(32, 15).unwrap(), p);
        expect("M-Grid(1024)", m, FpMethod::ClosedForm);
        let m = measure(&mut rows, &evaluator, &RtSystem::new(4, 3, 5).unwrap(), p);
        expect("RT(1024)", m, FpMethod::ClosedForm);
        // boostFPP at n = 1001: previously the slowest, least accurate row
        // (Monte-Carlo, literally 0e0 at p = 0.05); now an exact closed form.
        let m = measure(&mut rows, &evaluator, &boost, p);
        expect("boostFPP(q=3, b=19)", m, FpMethod::ClosedForm);
        // boostFPP at plane order q = 5 (n = 31, past the 2^n wall): the
        // counting profile keeps the Theorem 4.7 composition exact.
        let m = measure(&mut rows, &evaluator, &boost5, p);
        expect("boostFPP(q=5, b=2)", m, FpMethod::ClosedForm);
        // M-Path at the DP gate (n = 36 — beyond the 2^25 enumeration limit).
        let m = measure(&mut rows, &evaluator, &mpath_dp, p);
        expect("M-Path(side=6)", m, FpMethod::Dp);
    }

    if !quick {
        // Paper-scale M-Path (side 32): exact crossing probabilities at this
        // width are beyond every known transfer-matrix state space, so the
        // engine samples — now with a Wilson upper bound instead of a bare 0.
        let mpath32 = MPathSystem::new(32, 7).unwrap();
        let mc_eval = evaluator.clone().with_trials(500).with_exact_limit(0);
        for &p in ps {
            measure(&mut rows, &mc_eval, &mpath32, p);
        }
        // Exact enumeration at n = 16 and n = 25 (the engine's parallel path).
        for &p in ps {
            measure_exact(&mut rows, &evaluator, &GridSystem::new(4, 1).unwrap(), p);
            measure_exact(&mut rows, &evaluator, &GridSystem::new(5, 1).unwrap(), p);
            measure_exact(&mut rows, &evaluator, &MGridSystem::new(4, 1).unwrap(), p);
            measure_exact(&mut rows, &evaluator, &MGridSystem::new(5, 2).unwrap(), p);
            measure_exact(
                &mut rows,
                &evaluator,
                &ThresholdSystem::masking(25, 5).unwrap(),
                p,
            );
        }
    }

    // Per-method timings for the constructions this engine made exact, vs the
    // Monte-Carlo estimator they replaced (same effort as the v1 benchmark).
    eprintln!("timing exact methods vs the Monte-Carlo they replaced...");
    let mc_trials = if quick { 2_000 } else { 20_000 };
    let boost_speedup = method_speedup(&evaluator, &boost, 0.125, mc_trials);
    let mpath_speedup = method_speedup(
        &evaluator,
        &mpath_dp,
        0.125,
        if quick { 500 } else { 5_000 },
    );

    // The amortised M-Path DP sweep: the batched transfer-matrix sweep
    // shares one interface-state enumeration across the whole p-grid, so
    // each extra point costs a few multiply-adds per transition instead of a
    // fresh enumeration.
    eprintln!("timing the batched M-Path DP p-grid against per-point sweeps...");
    let dp_ps: Vec<f64> = (1..=4).map(|i| f64::from(i) * 0.06).collect();
    let dp_eval = evaluator.clone();
    let (single_fp, dp_single_seconds) = time(|| dp_eval.crash_probability(&mpath_dp, dp_ps[0]));
    let (dp_batch, dp_batch_seconds) = time(|| dp_eval.sweep(&mpath_dp, &dp_ps));
    assert_eq!(
        dp_batch[0].value.to_bits(),
        single_fp.value.to_bits(),
        "batched DP sweep diverged from single-point evaluation"
    );
    let dp_extra_points = dp_ps.len() - 1;
    let dp_per_extra_point =
        (dp_batch_seconds - dp_single_seconds).max(1e-12) / dp_extra_points as f64;
    let dp_sweep_speedup = dp_single_seconds / dp_per_extra_point;

    // Sweep-mode timing: the same grid of points through the persistent pool
    // versus one call at a time. The serial pass always runs — it is the
    // bit-identity parity check for the batched engine — but on a
    // single-core runner the pool cannot overlap points, so the wall-clock
    // *comparison* is skipped there (recording a ~1.00 ratio would read as
    // a regression).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let sweep_ps: Vec<f64> = if quick {
        (1..=4).map(|i| f64::from(i) * 0.06).collect()
    } else {
        (1..=8).map(|i| f64::from(i) * 0.05).collect()
    };
    let thresh_sweep = ThresholdSystem::masking(1024, 255).unwrap();
    let sweep_systems: Vec<&dyn QuorumSystem> = vec![&boost, &thresh_sweep, &mpath_dp];
    let sweep_eval = evaluator.clone().with_trials(2_000);
    eprintln!(
        "timing batched sweep{}...",
        if cores > 1 {
            " vs one-call-at-a-time"
        } else {
            " (single core: parity checked, wall-clock comparison skipped)"
        }
    );
    let (batched, batched_seconds) = time(|| sweep_eval.sweep_systems(&sweep_systems, &sweep_ps));
    // The honest baseline: one `crash_probability` call per point with the
    // *default* (fully parallel) evaluator — what a caller without the sweep
    // API would write. Every method in this grid (closed form, DP,
    // Monte-Carlo) is bit-identical at any thread count, so the timing run
    // doubles as the parity check.
    let (serial, serial_seconds) = time(|| {
        sweep_systems
            .iter()
            .map(|sys| {
                sweep_ps
                    .iter()
                    .map(|&p| sweep_eval.crash_probability(*sys, p))
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    for (b_row, s_row) in batched.iter().zip(&serial) {
        for (b, s) in b_row.iter().zip(s_row) {
            assert_eq!(
                b.value.to_bits(),
                s.value.to_bits(),
                "sweep result diverged from single-point evaluation"
            );
        }
    }
    let serial_timing =
        (cores > 1).then(|| (serial_seconds, serial_seconds / batched_seconds.max(1e-12)));
    let sweep_points = sweep_systems.len() * sweep_ps.len();

    // ---- Front (a): lane-widened enumeration + grid range kernels. ----
    // The parity gate runs in every mode: the engine's enumeration — the
    // structure-specialised range kernel for the line-quorum grids, the
    // 4-lane batched loop for everything else — must be *bit-identical* to
    // the historical scalar loop.
    let mut front_failures: Vec<String> = Vec::new();
    assert_eq!(
        AVAILABILITY_LANES, 4,
        "enumeration lane width changed; re-baseline the front (a) gates"
    );
    eprintln!("front (a): enumeration parity gates (range kernel and lane loop)...");
    let lane_parity_seconds = {
        let t = std::time::Instant::now();
        let g16 = GridSystem::new(4, 1).unwrap();
        let th16 = ThresholdSystem::masking(16, 3).unwrap();
        for (name, sys) in [
            ("Grid(n=16)", &g16 as &dyn QuorumSystem),
            ("Threshold(n=16)", &th16),
        ] {
            for &p in &[0.05, 0.125, 0.3] {
                let engine = evaluator.exact(sys, p).expect("n = 16 is enumerable");
                let naive = exact_crash_probability_naive(sys, p).expect("n = 16 is enumerable");
                if engine.to_bits() != naive.to_bits() {
                    front_failures.push(format!(
                        "front (a): {name} at p = {p}: engine {engine:e} is not bit-identical to the scalar loop's {naive:e}"
                    ));
                }
            }
        }
        t.elapsed().as_secs_f64()
    };

    // The n = 25 Grid acceptance measurement (kept from v1 for trajectory
    // continuity), now also judged against the committed v3 engine time.
    let grid25 = GridSystem::new(5, 1).unwrap();
    let p25 = 0.125;
    let (grid25_speedup, engine_fp, naive_secs, engine_secs) = if quick {
        (None, 0.0, 0.0, 0.0)
    } else {
        eprintln!("front (a): n = 25 Grid vs the old scalar loop and the v3 baseline...");
        let (engine_fp, engine_secs) = time(|| evaluator.exact(&grid25, p25).unwrap());
        let (naive_fp, naive_secs) = time(|| exact_crash_probability_naive(&grid25, p25).unwrap());
        assert!(
            (engine_fp - naive_fp).abs() < 1e-9,
            "engine {engine_fp} disagrees with naive {naive_fp}"
        );
        (
            Some(naive_secs / engine_secs.max(1e-12)),
            engine_fp,
            naive_secs,
            engine_secs,
        )
    };
    let grid25_v3_speedup =
        grid25_speedup.map(|_| V3_GRID25_ENGINE_SECONDS / engine_secs.max(1e-12));

    // ---- Front (b): ε-pruned transfer-matrix DP past the exact wall. ----
    // Side 7 runs in every mode (the CI smoke gate for the certified-interval
    // path); side 8 — minutes on one core — only in the full run.
    eprintln!("front (b): pruned-DP certified interval at M-Path side 7 (~25 s on one core)...");
    let mpath7 = MPathSystem::new(7, 1).unwrap();
    let (est7, side7_seconds) = time(|| evaluator.crash_probability(&mpath7, p25));
    expect("M-Path(side=7)", est7.method, FpMethod::DpPruned);
    let (lower7, upper7) = est7.interval.unwrap_or((est7.value, est7.value));
    let width7 = upper7 - lower7;
    if !est7.is_certified() || width7 > 1e-9 {
        front_failures.push(format!(
            "front (b): side-7 pruned DP width {width7:e} exceeds the 1e-9 gate (certified: {})",
            est7.is_certified()
        ));
    }
    let fp7 = est7.value;
    push_row(&mut rows, &mpath7, p25, est7, side7_seconds);
    let side8 = if quick {
        None
    } else {
        eprintln!("front (b): side 8 (a few minutes on one core)...");
        let mpath8 = MPathSystem::new(8, 1).unwrap();
        let (est8, side8_seconds) = time(|| evaluator.crash_probability(&mpath8, p25));
        expect("M-Path(side=8)", est8.method, FpMethod::DpPruned);
        let (lower8, upper8) = est8.interval.unwrap_or((est8.value, est8.value));
        if !est8.is_certified() || upper8 - lower8 > 1e-9 {
            front_failures.push(format!(
                "front (b): side-8 pruned DP width {:e} exceeds the 1e-9 gate (certified: {})",
                upper8 - lower8,
                est8.is_certified()
            ));
        }
        let fp8 = est8.value;
        push_row(&mut rows, &mpath8, p25, est8, side8_seconds);
        Some((fp8, lower8, upper8, side8_seconds))
    };

    // ---- Front (c): boostFPP counting profile at q = 5, q = 7 declines. ----
    eprintln!("front (c): q = 5 counting closed form and the q = 7 decline...");
    let (est_b5, boost5_seconds) = time(|| evaluator.crash_probability(&boost5, p25));
    if est_b5.method != FpMethod::ClosedForm {
        front_failures.push(format!(
            "front (c): boostFPP q = 5 dispatched to {} instead of the counting closed form",
            est_b5.method.label()
        ));
    }
    let boost7 = BoostFppSystem::new(7, 2).unwrap();
    let (q7_declined, q7_decline_seconds) = time(|| boost7.crash_probability_exact(p25).is_none());
    if !q7_declined {
        front_failures.push(
            "front (c): boostFPP q = 7 produced a closed form past the measured interface wall"
                .to_string(),
        );
    }
    if q7_decline_seconds > 1.0 {
        front_failures.push(format!(
            "front (c): boostFPP q = 7 took {q7_decline_seconds:.2} s to decline (must be instant)"
        ));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"bench_fp/v4\",\n  \"threads\": {},\n  \"available_parallelism\": {cores},\n  \"availability_lanes\": {AVAILABILITY_LANES},\n  \"quick\": {},\n  \"results\": [\n",
        evaluator.threads(),
        quick
    ));
    for (i, r) in rows.iter().enumerate() {
        let upper = r
            .fp_upper95
            .map(|u| format!(", \"fp_upper95\": {u:e}"))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"construction\": \"{}\", \"n\": {}, \"p\": {}, \"method\": \"{}\", \"fp\": {:e}{}, \"seconds\": {:e}}}{}\n",
            json_escape(&r.construction),
            r.n,
            r.p,
            r.method,
            r.fp,
            upper,
            r.seconds,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"fronts\": {\n");
    json.push_str(&format!(
        "    \"a_lane_enumeration\": {{\"availability_lanes\": {AVAILABILITY_LANES}, \"parity\": \"bit-identical to the scalar loop (asserted)\", \"parity_gate_seconds\": {lane_parity_seconds:e}"
    ));
    if let (Some(vs_naive), Some(vs_v3)) = (grid25_speedup, grid25_v3_speedup) {
        json.push_str(&format!(
            ", \"grid25\": {{\"construction\": \"{}\", \"p\": {p25}, \"fp\": {engine_fp:e}, \"naive_seconds\": {naive_secs:e}, \"engine_seconds\": {engine_secs:e}, \"speedup_vs_naive\": {vs_naive:.2}, \"v3_engine_seconds\": {V3_GRID25_ENGINE_SECONDS}, \"speedup_vs_v3\": {vs_v3:.2}}}",
            json_escape(&grid25.name())
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "    \"b_pruned_dp\": {{\"width_gate\": 1e-9, \"epsilon\": {:e}, \"state_budget\": {}, \"side7\": {{\"p\": {p25}, \"fp\": {fp7:e}, \"lower\": {lower7:e}, \"upper\": {upper7:e}, \"width\": {width7:e}, \"seconds\": {side7_seconds:e}}}",
        bqs_constructions::mpath::PRUNED_DP_EPSILON,
        bqs_constructions::mpath::PRUNED_DP_STATE_BUDGET
    ));
    if let Some((fp8, lower8, upper8, side8_seconds)) = side8 {
        json.push_str(&format!(
            ", \"side8\": {{\"p\": {p25}, \"fp\": {fp8:e}, \"lower\": {lower8:e}, \"upper\": {upper8:e}, \"width\": {:e}, \"seconds\": {side8_seconds:e}}}",
            upper8 - lower8
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "    \"c_boostfpp_counting\": {{\"q5\": {{\"construction\": \"{}\", \"n\": {}, \"p\": {p25}, \"method\": \"{}\", \"fp\": {:e}, \"seconds\": {boost5_seconds:e}}}, \"q7_declines_instantly\": {q7_declined}, \"q7_decline_seconds\": {q7_decline_seconds:e}}}\n",
        json_escape(&boost5.name()),
        boost5.universe_size(),
        est_b5.method.label(),
        est_b5.value
    ));
    json.push_str("  },\n");
    json.push_str("  \"exact_method_speedups\": {\n");
    for (key, s, last) in [
        ("boostfpp", &boost_speedup, false),
        ("mpath", &mpath_speedup, true),
    ] {
        json.push_str(&format!(
            "    \"{key}\": {{\"construction\": \"{}\", \"p\": {}, \"method\": \"{}\", \"exact_fp\": {:e}, \"exact_seconds\": {:e}, \"mc_trials\": {}, \"mc_fp\": {:e}, \"mc_upper95\": {:e}, \"mc_seconds\": {:e}, \"ratio\": {:.2}}}{}\n",
            json_escape(&s.construction),
            s.p,
            s.exact_method,
            s.exact_fp,
            s.exact_seconds,
            s.mc_trials,
            s.mc_fp,
            s.mc_upper95,
            s.mc_seconds,
            s.ratio,
            if last { "" } else { "," }
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"mpath_dp_sweep\": {{\"construction\": \"{}\", \"points\": {}, \"single_point_seconds\": {dp_single_seconds:e}, \"batched_seconds\": {dp_batch_seconds:e}, \"per_extra_point_seconds\": {dp_per_extra_point:e}, \"speedup_per_extra_point\": {dp_sweep_speedup:.2}}},\n",
        json_escape(&mpath_dp.name()),
        dp_ps.len()
    ));
    match serial_timing {
        Some((serial_seconds, sweep_ratio)) => json.push_str(&format!(
            "  \"sweep\": {{\"points\": {sweep_points}, \"batched_seconds\": {batched_seconds:e}, \"one_at_a_time_seconds\": {serial_seconds:e}, \"ratio\": {sweep_ratio:.2}}}"
        )),
        None => json.push_str(&format!(
            "  \"sweep\": {{\"points\": {sweep_points}, \"batched_seconds\": {batched_seconds:e}, \"comparison_skipped\": \"single-core container: parity vs per-point evaluation verified, wall-clock comparison meaningless without cross-point overlap\"}}"
        )),
    }
    if let Some(ratio) = grid25_speedup {
        json.push_str(&format!(
            ",\n  \"grid25_speedup\": {{\"construction\": \"{}\", \"p\": {}, \"fp\": {:e}, \"naive_seconds\": {:e}, \"engine_seconds\": {:e}, \"ratio\": {:.2}}}\n",
            json_escape(&grid25.name()),
            p25,
            engine_fp,
            naive_secs,
            engine_secs,
            ratio
        ));
    } else {
        json.push('\n');
    }
    json.push_str("}\n");
    std::fs::write(&output, &json).expect("write benchmark output");

    println!(
        "{:<24} {:>4} {:>7} {:>12} {:>14} {:>14} {:>12}",
        "construction", "n", "p", "method", "Fp", "Fp upper95", "seconds"
    );
    for r in &rows {
        println!(
            "{:<24} {:>4} {:>7} {:>12} {:>14.6e} {:>14} {:>12.6}",
            r.construction,
            r.n,
            r.p,
            r.method,
            r.fp,
            r.fp_upper95
                .map(|u| format!("{u:.3e}"))
                .unwrap_or_else(|| "-".into()),
            r.seconds
        );
    }
    println!();
    for s in [&boost_speedup, &mpath_speedup] {
        println!(
            "{} at p = {}: {} {:.6}s (exact fp {:.6e}) vs {}-trial Monte-Carlo {:.6}s -> {:.2}x",
            s.construction,
            s.p,
            s.exact_method,
            s.exact_seconds,
            s.exact_fp,
            s.mc_trials,
            s.mc_seconds,
            s.ratio
        );
    }
    println!(
        "M-Path DP p-grid of {} points: single point {dp_single_seconds:.3}s, batched {dp_batch_seconds:.3}s -> {dp_per_extra_point:.4}s per extra point ({dp_sweep_speedup:.1}x)",
        dp_ps.len()
    );
    match serial_timing {
        Some((serial_seconds, sweep_ratio)) => println!(
            "sweep of {sweep_points} points: batched {batched_seconds:.4}s vs one-at-a-time {serial_seconds:.4}s -> {sweep_ratio:.2}x"
        ),
        None => println!(
            "sweep of {sweep_points} points: batched {batched_seconds:.4}s, parity vs per-point verified (single core: wall-clock comparison skipped)"
        ),
    }
    if let (Some(ratio), Some(vs_v3)) = (grid25_speedup, grid25_v3_speedup) {
        println!(
            "n = 25 Grid exact F_p at p = {p25}: engine {engine_secs:.3}s vs naive {naive_secs:.3}s -> {ratio:.1}x ({vs_v3:.1}x vs the committed v3 engine time {V3_GRID25_ENGINE_SECONDS}s)"
        );
    }
    println!(
        "M-Path side-7 pruned DP at p = {p25}: certified width {width7:.3e} in {side7_seconds:.1}s"
    );
    if let Some((_, lower8, upper8, side8_seconds)) = side8 {
        println!(
            "M-Path side-8 pruned DP at p = {p25}: certified width {:.3e} in {side8_seconds:.1}s",
            upper8 - lower8
        );
    }
    println!(
        "boostFPP q = 5 counting closed form: {boost5_seconds:.4}s; q = 7 declines in {q7_decline_seconds:.4}s"
    );
    println!("wrote {output}");

    // Fail the process (after writing the JSON) so the CI smoke step goes red
    // when dispatch or the engine regresses.
    let mut failed = false;
    if !dispatch_failures.is_empty() {
        for f in &dispatch_failures {
            eprintln!("ERROR: dispatch regression: {f}");
        }
        failed = true;
    }
    if dp_sweep_speedup < 5.0 {
        eprintln!(
            "ERROR: batched M-Path DP sweep only {dp_sweep_speedup:.1}x cheaper per extra point (need >= 5x)"
        );
        failed = true;
    }
    if boost_speedup.ratio < 20.0 {
        eprintln!(
            "ERROR: boostFPP exact path is only {:.1}x faster than Monte-Carlo (need >= 20x)",
            boost_speedup.ratio
        );
        failed = true;
    }
    if let Some(ratio) = grid25_speedup {
        if ratio < 5.0 {
            eprintln!("ERROR: grid25 speedup {ratio:.1}x is below the 5x acceptance threshold");
            failed = true;
        }
    }
    if let Some(vs_v3) = grid25_v3_speedup {
        if vs_v3 < 2.0 {
            eprintln!(
                "ERROR: grid25 engine time is only {vs_v3:.2}x faster than the committed v3 baseline (need >= 2x)"
            );
            failed = true;
        }
    }
    if !front_failures.is_empty() {
        for f in &front_failures {
            eprintln!("ERROR: {f}");
        }
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
