//! Machine-readable crash-probability benchmark: times the evaluation engine
//! across constructions, universe sizes and crash probabilities, and emits
//! `BENCH_fp.json` so future changes have a performance trajectory to compare
//! against.
//!
//! Also measures the headline speedup of the engine refactor: exact `F_p` on
//! the `n = 25` Grid, new allocation-free parallel engine versus the old
//! scalar loop that heap-allocated a `ServerSet` per crash configuration
//! (`exact_crash_probability_naive`).
//!
//! Run with: `cargo run --release -p bqs-bench --bin bench_fp [output.json]`

use std::time::Instant;

use bqs_constructions::prelude::*;
use bqs_core::availability::exact_crash_probability_naive;
use bqs_core::eval::{Evaluator, FpMethod};
use bqs_core::quorum::QuorumSystem;

struct Row {
    construction: String,
    n: usize,
    p: f64,
    method: &'static str,
    fp: f64,
    seconds: f64,
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn method_name(m: FpMethod) -> &'static str {
    match m {
        FpMethod::ClosedForm => "closed_form",
        FpMethod::Exact => "exact",
        FpMethod::MonteCarlo => "monte_carlo",
    }
}

fn measure(rows: &mut Vec<Row>, evaluator: &Evaluator, sys: &dyn QuorumSystem, p: f64) {
    let (fp, seconds) = time(|| evaluator.crash_probability(sys, p));
    rows.push(Row {
        construction: sys.name(),
        n: sys.universe_size(),
        p,
        method: method_name(fp.method),
        fp: fp.value,
        seconds,
    });
}

/// Forces enumeration (no closed form) through the engine, for timing.
fn measure_exact(rows: &mut Vec<Row>, evaluator: &Evaluator, sys: &dyn QuorumSystem, p: f64) {
    let (fp, seconds) = time(|| evaluator.exact(sys, p).expect("within exact limit"));
    rows.push(Row {
        construction: sys.name(),
        n: sys.universe_size(),
        p,
        method: "exact",
        fp,
        seconds,
    });
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let output = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fp.json".to_string());
    let evaluator = Evaluator::new().with_trials(20_000).with_seed(0xBE7C);
    let ps = [0.05, 0.125, 0.25];
    let mut rows: Vec<Row> = Vec::new();

    eprintln!("timing closed forms and exact enumeration across the matrix...");
    for &p in &ps {
        // Closed forms at paper scale (n ~ 1024): exact at any size, microseconds.
        measure(
            &mut rows,
            &evaluator,
            &ThresholdSystem::masking(1024, 255).unwrap(),
            p,
        );
        measure(&mut rows, &evaluator, &GridSystem::new(32, 10).unwrap(), p);
        measure(&mut rows, &evaluator, &MGridSystem::new(32, 15).unwrap(), p);
        measure(&mut rows, &evaluator, &RtSystem::new(4, 3, 5).unwrap(), p);
        // Monte-Carlo fallback for the constructions without closed forms.
        measure(
            &mut rows,
            &evaluator,
            &BoostFppSystem::new(3, 19).unwrap(),
            p,
        );
        // Exact enumeration at n = 16 and n = 25 (the engine's parallel path).
        measure_exact(&mut rows, &evaluator, &GridSystem::new(4, 1).unwrap(), p);
        measure_exact(&mut rows, &evaluator, &GridSystem::new(5, 1).unwrap(), p);
        measure_exact(&mut rows, &evaluator, &MGridSystem::new(4, 1).unwrap(), p);
        measure_exact(&mut rows, &evaluator, &MGridSystem::new(5, 2).unwrap(), p);
        measure_exact(
            &mut rows,
            &evaluator,
            &ThresholdSystem::masking(25, 5).unwrap(),
            p,
        );
    }

    // The acceptance measurement: n = 25 Grid, engine versus the historical
    // allocating scalar loop, at the Section 8 crash probability.
    let grid25 = GridSystem::new(5, 1).unwrap();
    let p = 0.125;
    eprintln!("measuring the n = 25 Grid speedup (this runs the old scalar loop once)...");
    let (engine_fp, engine_secs) = time(|| evaluator.exact(&grid25, p).unwrap());
    let (naive_fp, naive_secs) = time(|| exact_crash_probability_naive(&grid25, p).unwrap());
    let ratio = naive_secs / engine_secs.max(1e-12);
    assert!(
        (engine_fp - naive_fp).abs() < 1e-9,
        "engine {engine_fp} disagrees with naive {naive_fp}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"bench_fp/v1\",\n  \"threads\": {},\n  \"results\": [\n",
        evaluator.threads()
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"construction\": \"{}\", \"n\": {}, \"p\": {}, \"method\": \"{}\", \"fp\": {:e}, \"seconds\": {:e}}}{}\n",
            json_escape(&r.construction),
            r.n,
            r.p,
            r.method,
            r.fp,
            r.seconds,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"grid25_speedup\": {{\"construction\": \"{}\", \"p\": {}, \"fp\": {:e}, \"naive_seconds\": {:e}, \"engine_seconds\": {:e}, \"ratio\": {:.2}}}\n",
        json_escape(&grid25.name()),
        p,
        engine_fp,
        naive_secs,
        engine_secs,
        ratio
    ));
    json.push_str("}\n");
    std::fs::write(&output, &json).expect("write benchmark output");

    println!(
        "{:<28} {:>4} {:>7} {:>12} {:>14} {:>12}",
        "construction", "n", "p", "method", "Fp", "seconds"
    );
    for r in &rows {
        println!(
            "{:<28} {:>4} {:>7} {:>12} {:>14.6e} {:>12.6}",
            r.construction, r.n, r.p, r.method, r.fp, r.seconds
        );
    }
    println!();
    println!(
        "n = 25 Grid exact F_p at p = {p}: engine {engine_secs:.3}s vs naive {naive_secs:.3}s -> {ratio:.1}x speedup"
    );
    println!("wrote {output}");
    if ratio < 5.0 {
        // Fail the process (after writing the JSON) so the CI perf-smoke step
        // goes red when the engine regresses below the acceptance threshold.
        eprintln!("ERROR: speedup {ratio:.1}x is below the 5x acceptance threshold");
        std::process::exit(1);
    }
}
