//! Regenerates the Condorcet comparison: crash probability versus universe size at a
//! fixed per-server crash probability. Reproduces the claims that Fp(M-Grid) -> 1
//! (as for the Grid of [MR98a]) while Fp(RT) -> 0 below its critical probability and
//! Fp(M-Path) -> 0 for every p < 1/2 (Propositions 5.6 and 7.3).
//!
//! Run with: `cargo run --release -p bqs-bench --bin fig_fp_vs_n [p] [trials]`

use bqs_analysis::availability_analysis::fp_vs_n;
use bqs_analysis::report::format_optional_probability;
use bqs_analysis::TextTable;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.125);
    let trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let sides = [8usize, 16, 24, 32];

    println!("crash probability vs universe size at p = {p} ({trials} Monte-Carlo trials)\n");
    let points = fp_vs_n(&sides, 3, p, trials, 0xF1);
    let mut table = TextTable::new([
        "system",
        "n",
        "Fp (engine)",
        "95% CI",
        "upper bound",
        "lower bound",
    ]);
    for pt in &points {
        table.push_row([
            pt.system.clone(),
            pt.n.to_string(),
            format!("{:.4}", pt.fp.value),
            if pt.fp.is_exact() {
                format!("exact ({})", pt.fp.method.label())
            } else {
                let (lower, upper) = pt.fp.ci95_bounds();
                format!("[{lower:.4}, {upper:.4}]")
            },
            format_optional_probability(pt.fp_upper_bound),
            format_optional_probability(pt.fp_lower_bound),
        ]);
    }
    println!("{}", table.render());
    println!();
    println!("shape to check against the paper: the M-Grid column rises towards 1 as n grows");
    println!("(its Fp lower bound (1-(1-p)^sqrt(n))^sqrt(n) -> 1), while RT(4,3) and M-Path");
    println!("fall towards 0 — the Condorcet behaviour that makes them preferable whenever");
    println!("availability matters.");
}
