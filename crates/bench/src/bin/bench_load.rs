//! Machine-readable load benchmark: times the certified column-generation
//! load engine across the paper's constructions and universe sizes, and
//! emits `BENCH_load.json` (schema v1) — the `L(Q)` companion of
//! `BENCH_fp.json`.
//!
//! Recorded per instance: the certified LP load, the closed-form
//! `analytic_load` it confirms, the certified optimality gap, the
//! working-set size, and the wall-clock cost, at `n ≈ 256 / 576 / 1024`
//! (the Section 8 scale the explicit LP could never reach — its variable
//! count is the quorum count, which is astronomic there). One instance both
//! paths can still solve (a 18-of-24 threshold with 134 596 explicit
//! quorums) is timed through **both** solvers for the speedup trajectory.
//!
//! Run with: `cargo run --release -p bqs-bench --bin bench_load [--quick] [output.json]`
//!
//! `--quick` runs the `n ≈ 1024` matrix only and **asserts the dispatch
//! table**: every construction must certify through its pricing oracle
//! (method `column_generation`, never the explicit-LP fallback), with gap
//! `≤ 1e-9`, within its time budget — the CI smoke step runs this mode on
//! every push, mirroring `bench_fp --quick`.

use bqs_analysis::load_analysis::{certified_constructions, CertifiableConstruction};
use bqs_bench::{json_escape, time};
use bqs_constructions::prelude::*;
use bqs_core::load::{optimal_load, optimal_load_oracle, CertifiedLoad};
use bqs_core::quorum::QuorumSystem;

/// Gap every certified result must beat (the engine's own default target).
const GAP_TOLERANCE: f64 = 1e-9;

/// Wall-clock budget per instance at the `n ≈ 1024` scale.
const SECONDS_BUDGET: f64 = 1.0;

struct Row {
    construction: String,
    n: usize,
    b: usize,
    method: &'static str,
    load: f64,
    analytic_load: f64,
    gap: f64,
    columns: usize,
    rounds: usize,
    seconds: f64,
}

fn certify(sys: &dyn CertifiableConstruction, failures: &mut Vec<String>) -> Option<Row> {
    let (result, seconds) = time(|| optimal_load_oracle(sys));
    match result {
        Ok(CertifiedLoad {
            load,
            gap,
            columns,
            rounds,
            ..
        }) => {
            let analytic = sys.analytic_load();
            if gap > GAP_TOLERANCE {
                failures.push(format!("{}: certified gap {gap:e} above 1e-9", sys.name()));
            }
            if (load - analytic).abs() > 1e-9 {
                failures.push(format!(
                    "{}: certified load {load} disagrees with analytic {analytic}",
                    sys.name()
                ));
            }
            if sys.universe_size() >= 793 && seconds > SECONDS_BUDGET {
                failures.push(format!(
                    "{}: certification took {seconds:.2}s (budget {SECONDS_BUDGET}s)",
                    sys.name()
                ));
            }
            Some(Row {
                construction: sys.name(),
                n: sys.universe_size(),
                b: sys.masking_b(),
                method: "column_generation",
                load,
                analytic_load: analytic,
                gap,
                columns,
                rounds,
                seconds,
            })
        }
        Err(e) => {
            failures.push(format!(
                "{}: oracle dispatch failed ({e:?}) — explicit-LP fallback would be required",
                sys.name()
            ));
            None
        }
    }
}

fn main() {
    let mut quick = false;
    let mut output = "BENCH_load.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            output = arg;
        }
    }
    let sides: &[usize] = if quick { &[32] } else { &[16, 24, 32] };
    let b = 15usize;
    let mut rows: Vec<Row> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    eprintln!("certifying L(Q) by column generation at sides {sides:?}...");
    // Exactly the roster `lp_load_vs_n` sweeps, so this gate certifies the
    // same instances the certified sweep reports.
    for &side in sides {
        for sys in certified_constructions(side, b) {
            if let Some(row) = certify(sys.as_ref(), &mut failures) {
                rows.push(row);
            }
        }
    }

    // Explicit-LP versus column generation at the largest size the explicit
    // path can still solve: an 18-of-24 masking threshold with C(24, 18) =
    // 134 596 explicit quorum variables.
    let comparison = if quick {
        None
    } else {
        eprintln!("timing the explicit LP against column generation (134596 quorums)...");
        let t = ThresholdSystem::masking(24, 5).unwrap();
        let explicit = t.to_explicit(200_000).expect("within cap");
        let n = t.universe_size();
        let ((explicit_load, _), explicit_seconds) =
            time(|| optimal_load(explicit.quorums(), n).expect("explicit LP solves"));
        let (cg, cg_seconds) = time(|| optimal_load_oracle(&t).expect("oracle certifies"));
        assert!(
            (explicit_load - cg.load).abs() <= 1e-6,
            "explicit {explicit_load} vs certified {}",
            cg.load
        );
        let ratio = explicit_seconds / cg_seconds.max(1e-12);
        if ratio < 100.0 {
            failures.push(format!(
                "explicit-vs-CG speedup {ratio:.1}x is below the 100x acceptance threshold"
            ));
        }
        Some((
            t.name(),
            explicit.num_quorums(),
            explicit_load,
            explicit_seconds,
            cg.load,
            cg_seconds,
            ratio,
        ))
    };

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"bench_load/v1\",\n  \"available_parallelism\": {cores},\n  \"quick\": {quick},\n  \"gap_tolerance\": {GAP_TOLERANCE:e},\n  \"results\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"construction\": \"{}\", \"n\": {}, \"b\": {}, \"method\": \"{}\", \"load\": {:.12}, \"analytic_load\": {:.12}, \"gap\": {:e}, \"columns\": {}, \"rounds\": {}, \"seconds\": {:e}}}{}\n",
            json_escape(&r.construction),
            r.n,
            r.b,
            r.method,
            r.load,
            r.analytic_load,
            r.gap,
            r.columns,
            r.rounds,
            r.seconds,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]");
    if let Some((name, quorums, el, es, cl, cs, ratio)) = &comparison {
        json.push_str(&format!(
            ",\n  \"explicit_vs_cg\": {{\"construction\": \"{}\", \"explicit_quorums\": {quorums}, \"explicit_load\": {el:.12}, \"explicit_seconds\": {es:e}, \"cg_load\": {cl:.12}, \"cg_seconds\": {cs:e}, \"ratio\": {ratio:.1}}}\n",
            json_escape(name)
        ));
    } else {
        json.push('\n');
    }
    json.push_str("}\n");
    std::fs::write(&output, &json).expect("write benchmark output");

    println!(
        "{:<26} {:>5} {:>3} {:>20} {:>14} {:>14} {:>10} {:>8} {:>10}",
        "construction", "n", "b", "method", "load", "analytic", "gap", "columns", "seconds"
    );
    for r in &rows {
        println!(
            "{:<26} {:>5} {:>3} {:>20} {:>14.9} {:>14.9} {:>10.1e} {:>8} {:>10.4}",
            r.construction,
            r.n,
            r.b,
            r.method,
            r.load,
            r.analytic_load,
            r.gap,
            r.columns,
            r.seconds
        );
    }
    if let Some((name, quorums, _, es, _, cs, ratio)) = &comparison {
        println!(
            "\n{name} ({quorums} explicit quorums): explicit LP {es:.3}s vs column generation {cs:.5}s -> {ratio:.0}x"
        );
    }
    println!("wrote {output}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ERROR: {f}");
        }
        std::process::exit(1);
    }
}
