//! Regenerates Table 2 of the paper: the construction-by-construction comparison of
//! masking level, resilience, load and crash probability, with the paper's
//! asymptotic claims printed alongside the measured values.
//!
//! Run with: `cargo run --release -p bqs-bench --bin table2 [side] [b]`

use bqs_analysis::comparison::{build_table2, render_table2, REFERENCE_CRASH_P};

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    println!(
        "Table 2 reproduction: constructions over an (approximately) {0}x{0} universe",
        side
    );
    println!("numeric Fp columns evaluated at p = {REFERENCE_CRASH_P}\n");
    let rows = build_table2(side, b);
    println!("{}", render_table2(&rows));
    println!();
    println!("notes:");
    println!(" * 'L / lower-bound' is the ratio of the achieved load to sqrt((2b+1)/n)");
    println!("   (Corollary 4.2); values near 1 are optimal, as the paper claims for");
    println!("   M-Grid, boostFPP and M-Path ('+' rows of Table 2).");
    println!(" * '-> 1' rows (Grid, M-Grid) have no useful Fp upper bound: their crash");
    println!("   probability tends to 1 as n grows, which is why only a lower bound is shown.");
    println!(" * '*' rows are Fp-optimal for their resilience (Proposition 4.3).");
}
