//! Regenerates the crash-probability-versus-p comparison across all constructions at
//! a fixed universe size: where each construction's availability collapses (M-Grid
//! immediately, boostFPP at p = 1/4, RT at its critical probability ~0.23, M-Path
//! only near 1/2), with the analytic bounds printed alongside the Monte-Carlo truth.
//!
//! Run with: `cargo run --release -p bqs-bench --bin fig_fp_vs_p [side] [b] [trials]`

use bqs_analysis::availability_analysis::fp_vs_p;
use bqs_analysis::report::format_optional_probability;
use bqs_analysis::TextTable;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let trials: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(600);

    println!(
        "crash probability vs p over an (approximately) {0}x{0} universe, b = {1}, {2} trials\n",
        side, b, trials
    );
    let ps = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4];
    let points = fp_vs_p(side, b, &ps, trials, 0xFEED);
    let mut table = TextTable::new([
        "system",
        "p",
        "Fp (engine)",
        "95% CI",
        "upper bound",
        "lower bound",
    ]);
    for pt in &points {
        table.push_row([
            pt.system.clone(),
            format!("{:.2}", pt.p),
            format!("{:.4}", pt.fp.value),
            if pt.fp.is_exact() {
                format!("exact ({})", pt.fp.method.label())
            } else {
                let (lower, upper) = pt.fp.ci95_bounds();
                format!("[{lower:.4}, {upper:.4}]")
            },
            format_optional_probability(pt.fp_upper_bound),
            format_optional_probability(pt.fp_lower_bound),
        ]);
    }
    println!("{}", table.render());
    println!();
    println!("shape to check against the paper: reading each system's column top to bottom,");
    println!("the M-Grid fails first, then boostFPP (p >= 1/4), then RT (p >= p_c = 0.2324);");
    println!("the Threshold and M-Path remain available the longest, M-Path up to p -> 1/2.");
}
