//! Regenerates Figure 2 of the paper: an RT(4, 3) recursive threshold system of
//! depth 2, with one quorum shaded.
//!
//! Run with: `cargo run -p bqs-bench --bin figure2_rt [k] [l] [depth]`

use bqs_constructions::prelude::*;
use bqs_core::quorum::QuorumSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let l: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let depth: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let sys = match RtSystem::new(k, l, depth) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid parameters: {e}");
            std::process::exit(1);
        }
    };
    let mut rng = StdRng::seed_from_u64(2);
    let quorum = sys.sample_quorum(&mut rng);
    let n = sys.universe_size();

    println!(
        "Figure 2: an RT({k}, {l}) system of depth h = {depth} ({l}-of-{k} at every internal node),"
    );
    println!("with one quorum shaded (leaves marked #)\n");

    // Render the tree level by level: each internal node shows "l of k".
    for level in 0..depth {
        let nodes = k.pow(level);
        let span = n / nodes;
        let mut line = String::new();
        for _node in 0..nodes {
            let label = format!("[{l} of {k}]");
            let width = span * 2;
            let pad = width.saturating_sub(label.len());
            line.push_str(&" ".repeat(pad / 2));
            line.push_str(&label);
            line.push_str(&" ".repeat(pad - pad / 2));
        }
        println!("{line}");
    }
    let mut leaves = String::new();
    for i in 0..n {
        leaves.push(if quorum.contains(i) { '#' } else { '.' });
        leaves.push(' ');
    }
    println!("{leaves}\n");

    println!("universe size    : {n}");
    println!("quorum size      : c = l^h = {}", sys.min_quorum_size());
    println!(
        "intersections    : IS = (2l-k)^h = {}",
        sys.min_intersection()
    );
    println!(
        "transversals     : MT = (k-l+1)^h = {}",
        sys.min_transversal()
    );
    println!("masks            : b = {}", sys.masking_b());
    println!("resilience       : f = {}", sys.resilience());
    println!(
        "load             : {:.4} = n^-(1-log_k l) (Proposition 5.5)",
        sys.analytic_load()
    );
    println!(
        "critical crash probability p_c = {:.4} (Proposition 5.6; 0.2324 for RT(4,3))",
        sys.critical_probability()
    );
}
