//! Machine-readable benchmark of the socket transport subsystem: emits
//! `BENCH_net.json` (schema v2) — latency vs *offered* load across transport
//! backends, with the saturation knee identified per backend and compared
//! against the committed pre-batching (schema v1) baseline knees.
//!
//! For each backend (in-process loopback, Unix-domain socket, TCP loopback)
//! and each paper construction in the matrix, the open-loop generator
//! ([`bqs_service::openloop`]) offers Poisson arrivals at a sweep of rates.
//! Below the knee, achieved throughput tracks offered load and the busiest
//! server's empirical access frequency must sit inside the 3σ
//! max-order-statistic band around the certified `L(Q)` (the strategies are
//! the column-generation-certified optima, so the knee sweep doubles as a
//! load-theorem validation through a real network stack). Past the knee,
//! achieved throughput pins at capacity and tail latency explodes — the
//! behaviour closed-loop generation structurally cannot show.
//!
//! Run with: `cargo run --release -p bqs-bench --bin bench_net
//! [--quick] [output.json]`
//!
//! `--quick` sweeps small rates on loopback + UDS only and **asserts the
//! gate**: zero safety violations in every row, exact arrival accounting,
//! knee sanity (the lowest offered rate must not saturate), and batching
//! parity (an unbatched UDS point at a below-knee rate must complete like
//! its batched twin — coalescing must never be load-bearing for
//! correctness). CI runs this mode on every push, next to
//! `bench_fp`/`bench_load`/`bench_service --quick`.
//!
//! The full run additionally gates the tentpole: each socket backend's knee
//! must sit at `>= KNEE_GATE_RATIO` times the committed v1 baseline knee
//! (measured before wire batching, drain-whole-batch mailboxes, and
//! slot-table completions landed).

use std::time::Duration;

use bqs_analysis::empirical::{empirical_load_check, EmpiricalLoadCheck};
use bqs_bench::{json_escape, time};
use bqs_constructions::prelude::*;
use bqs_core::load::optimal_load_oracle;
use bqs_core::oracle::MinWeightQuorumOracle;
use bqs_core::quorum::QuorumSystem;
use bqs_core::strategic::StrategicQuorumSystem;
use bqs_net::prelude::*;
use bqs_service::prelude::*;
use bqs_sim::fault::FaultPlan;

/// Achieved below this fraction of the *realised* arrival rate counts as
/// saturated (the realised rate, not the configured one: short Poisson
/// schedules fluctuate by `~1/sqrt(arrivals)`, and that noise must not read
/// as capacity).
const KNEE_FRACTION: f64 = 0.9;

/// More than this fraction of arrivals lost (shed at the in-flight cap or
/// expired at the operation deadline) also counts as saturated — queue
/// growth is the open-loop signature of offered load above capacity.
const LOSS_FRACTION: f64 = 0.01;

/// A realised arrival rate below this fraction of the configured one also
/// counts as saturated: the injector itself was backpressured (blocking
/// socket writes, starved worker loops), which only happens past pipeline
/// capacity. Looser than [`KNEE_FRACTION`] to keep Poisson schedule noise
/// (`~1/sqrt(arrivals)`) from tripping it on short sweeps.
const INJECTION_FRACTION: f64 = 0.85;

/// Required improvement of each socket backend's knee over the committed v1
/// baseline (full mode only).
const KNEE_GATE_RATIO: f64 = 1.5;

/// The committed `BENCH_net.json` schema-v1 knees (PR 6, 1-core runner,
/// pre-batching): `(backend, construction, knee_offered_rate)`. The v2 gate
/// measures this PR's knees against them.
const BASELINE_KNEES: &[(&str, &str, Option<f64>)] = &[
    ("loopback", "Grid(n=25, b=1) [strategic]", Some(192_000.0)),
    ("loopback", "M-Grid(n=25, b=2) [strategic]", None),
    ("uds", "Grid(n=25, b=1) [strategic]", Some(32_000.0)),
    ("uds", "M-Grid(n=25, b=2) [strategic]", Some(32_000.0)),
    ("tcp", "Grid(n=25, b=1) [strategic]", Some(16_000.0)),
    ("tcp", "M-Grid(n=25, b=2) [strategic]", Some(32_000.0)),
];

fn baseline_knee(backend: &str, construction: &str) -> Option<f64> {
    BASELINE_KNEES
        .iter()
        .find(|(b, c, _)| *b == backend && *c == construction)
        .and_then(|(_, _, knee)| *knee)
}

/// One transport backend under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    Loopback,
    Uds,
    Tcp,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Loopback => "loopback",
            Backend::Uds => "uds",
            Backend::Tcp => "tcp",
        }
    }
}

/// One measured point of a sweep.
struct SweepPoint {
    backend: &'static str,
    construction: String,
    n: usize,
    b: usize,
    offered_rate: f64,
    /// Whether the socket transport coalesced fan-outs into `WireBatch`
    /// frames (always `true` on loopback, whose batching has no switch).
    batching: bool,
    saturated: bool,
    report: OpenLoopReport,
    /// Load validation against the certified `L(Q)`; only meaningful below
    /// the knee (saturated rows carry `None`).
    load_check: Option<EmpiricalLoadCheck>,
    seconds: f64,
}

/// One backend × construction sweep summary.
struct KneeRow {
    backend: &'static str,
    construction: String,
    n: usize,
    /// Offered rate of the first saturated point, if the sweep saturated.
    knee_offered_rate: Option<f64>,
    /// Highest offered rate the sweep tried — the lower bound on the knee
    /// when the sweep never saturated.
    max_offered_rate: f64,
    /// Highest achieved throughput anywhere in the sweep.
    capacity_ops_per_sec: f64,
    /// All below-knee rows passed the 3σ load band.
    below_knee_load_ok: bool,
}

impl KneeRow {
    /// The knee for gating purposes: where the sweep saturated, or (as a
    /// conservative lower bound) the top rate swept when it never did.
    fn effective_knee(&self) -> f64 {
        self.knee_offered_rate.unwrap_or(self.max_offered_rate)
    }

    /// Improvement over the committed v1 baseline knee, when one exists.
    fn knee_ratio(&self) -> Option<f64> {
        baseline_knee(self.backend, &self.construction).map(|b| self.effective_knee() / b)
    }
}

fn uds_path(tag: usize) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bqs-bench-net-{}-{tag}.sock", std::process::id()))
}

/// Measures one (backend, construction, rate) point on a freshly spawned
/// service, and validates the below-knee load against the certified value.
#[allow(clippy::too_many_arguments)]
fn run_point<S>(
    backend: Backend,
    strategic: &StrategicQuorumSystem<S>,
    b: usize,
    certified_load: f64,
    rate: f64,
    config: &OpenLoopConfig,
    point_tag: usize,
    batching: bool,
    failures: &mut Vec<String>,
) -> SweepPoint
where
    S: MinWeightQuorumOracle,
{
    let name = strategic.name();
    let n = strategic.universe_size();
    let plan = FaultPlan::none(n);
    let shards = 2;
    let seed = 0xbe7_0001 ^ point_tag as u64;
    let config = OpenLoopConfig {
        offered_rate: rate,
        seed: config.seed ^ point_tag as u64,
        ..*config
    };
    eprintln!(
        "bench_net: {} / {name} at {rate:.0} offered ops/s ({} arrivals{})...",
        backend.name(),
        config.total_arrivals,
        if batching { "" } else { ", batching off" }
    );
    let ((report, access_counts), seconds) = time(|| match backend {
        Backend::Loopback => {
            let service = LoopbackService::spawn(&plan, shards, seed);
            let report = run_open_loop(strategic, b, &service, service.responsive_set(), &config);
            let counts = service.metrics().access_counts();
            (report, counts)
        }
        Backend::Uds | Backend::Tcp => {
            let server = match backend {
                Backend::Uds => SocketServer::bind_uds(uds_path(point_tag), &plan, shards, seed),
                _ => SocketServer::bind_tcp_loopback(&plan, shards, seed),
            }
            .expect("bind socket server");
            let transport = SocketTransport::connect(
                server.endpoint().clone(),
                n,
                NetConfig {
                    pool: 2,
                    request_deadline: Duration::from_secs(3),
                    batching,
                    ..NetConfig::default()
                },
            )
            .expect("connect transport pool");
            let report = run_open_loop(strategic, b, &transport, server.responsive_set(), &config);
            let counts = server.metrics().access_counts();
            (report, counts)
        }
    });

    // Gates that hold at every rate, saturated or not.
    if report.safety_violations > 0 {
        failures.push(format!(
            "{}/{name} at {rate:.0} ops/s: {} safety violations",
            backend.name(),
            report.safety_violations
        ));
    }
    let accounted = report.completed()
        + report.shed
        + report.timed_out
        + report.no_live_quorum
        + report.rejected_sends;
    if accounted != report.scheduled {
        failures.push(format!(
            "{}/{name} at {rate:.0} ops/s: {accounted} of {} arrivals accounted",
            backend.name(),
            report.scheduled
        ));
    }

    let lost = report.shed + report.timed_out + report.rejected_sends;
    let saturated = lost as f64 > LOSS_FRACTION * report.scheduled as f64
        || report.achieved_ops_per_sec
            < KNEE_FRACTION * report.realized_offered_ops_per_sec.min(rate)
        || report.realized_offered_ops_per_sec < INJECTION_FRACTION * rate;
    // Below the knee the empirical load must sit in the certified band. The
    // denominator counts every operation that contacted a full quorum: the
    // completed ones, the client-side-expired ones (delivered server-side all
    // the same), and the priming write.
    let quorum_contacts = report.load_operations + report.timed_out + 1;
    let load_check = (!saturated && report.load_operations > 0)
        .then(|| empirical_load_check(&name, &access_counts, quorum_contacts, certified_load));
    SweepPoint {
        backend: backend.name(),
        construction: name,
        n,
        b,
        offered_rate: rate,
        batching,
        saturated,
        report,
        load_check,
        seconds,
    }
}

/// Sweeps offered rate for one backend × construction and summarises the
/// knee.
#[allow(clippy::too_many_arguments)]
fn sweep<S>(
    backend: Backend,
    strategic: &StrategicQuorumSystem<S>,
    b: usize,
    certified_load: f64,
    rates: &[f64],
    base_config: &OpenLoopConfig,
    arrivals_for: impl Fn(f64) -> usize,
    tag_base: usize,
    points: &mut Vec<SweepPoint>,
    failures: &mut Vec<String>,
) -> KneeRow
where
    S: MinWeightQuorumOracle,
{
    let first = points.len();
    for (i, &rate) in rates.iter().enumerate() {
        let config = OpenLoopConfig {
            total_arrivals: arrivals_for(rate),
            ..*base_config
        };
        points.push(run_point(
            backend,
            strategic,
            b,
            certified_load,
            rate,
            &config,
            tag_base + i,
            true,
            failures,
        ));
    }
    let sweep_points = &points[first..];
    let knee_offered_rate = sweep_points
        .iter()
        .find(|p| p.saturated)
        .map(|p| p.offered_rate);
    let capacity = sweep_points
        .iter()
        .map(|p| p.report.achieved_ops_per_sec)
        .fold(0.0f64, f64::max);
    let below_knee_load_ok = sweep_points
        .iter()
        .filter_map(|p| p.load_check.as_ref())
        .all(|c| c.within_tolerance);
    KneeRow {
        backend: backend.name(),
        construction: strategic.name(),
        n: strategic.universe_size(),
        knee_offered_rate,
        max_offered_rate: rates.last().copied().unwrap_or(0.0),
        capacity_ops_per_sec: capacity,
        below_knee_load_ok,
    }
}

fn main() {
    let mut quick = false;
    let mut output = "BENCH_net.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            output = arg;
        }
    }
    let mut failures: Vec<String> = Vec::new();
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut knees: Vec<KneeRow> = Vec::new();

    let base_config = if quick {
        OpenLoopConfig {
            workers: 2,
            virtual_clients: 200,
            write_fraction: 0.2,
            max_in_flight_per_worker: 2_048,
            op_deadline: Duration::from_secs(2),
            tail_deadline: Duration::from_secs(2),
            seed: 0x6e7_11e7,
            ..OpenLoopConfig::default()
        }
    } else {
        OpenLoopConfig {
            workers: 2,
            virtual_clients: 1_000,
            write_fraction: 0.2,
            max_in_flight_per_worker: 2_048,
            op_deadline: Duration::from_secs(2),
            tail_deadline: Duration::from_secs(4),
            seed: 0x6e7_11e7,
            ..OpenLoopConfig::default()
        }
    };

    // The certified-optimal strategies: the sweep validates the load theorem
    // through the transport, not just an ad-hoc access rule.
    let grid = GridSystem::new(5, 1).unwrap();
    let grid_cert = optimal_load_oracle(&grid).expect("grid certifies");
    assert!(grid_cert.gap <= 1e-9);
    let grid_load = grid_cert.load;
    let grid = StrategicQuorumSystem::from_certified(grid, &grid_cert).unwrap();

    if quick {
        let rates = [200.0, 500.0, 1_000.0, 2_000.0, 4_000.0];
        let arrivals = |rate: f64| ((rate / 2.0) as usize).clamp(300, 600);
        for (i, backend) in [Backend::Loopback, Backend::Uds].into_iter().enumerate() {
            knees.push(sweep(
                backend,
                &grid,
                1,
                grid_load,
                &rates,
                &base_config,
                arrivals,
                100 * (i + 1),
                &mut points,
                &mut failures,
            ));
        }
        // Knee sanity: the lowest offered rate must not be saturated — a
        // transport that cannot sustain 200 ops/s on a 25-server grid is
        // broken, not slow.
        for knee in &knees {
            if knee.knee_offered_rate == Some(rates[0]) {
                failures.push(format!(
                    "{}/{}: saturated at the lowest offered rate",
                    knee.backend, knee.construction
                ));
            }
            if knee.capacity_ops_per_sec <= 0.0 {
                failures.push(format!(
                    "{}/{}: no throughput at all",
                    knee.backend, knee.construction
                ));
            }
        }
        // Batching parity: the same below-knee rate with coalescing disabled
        // must behave like its batched twin — safe, fully accounted (both
        // asserted inside `run_point`) and unsaturated. Batching is a
        // throughput optimisation and must never be load-bearing for
        // correctness.
        let parity_rate = rates[2];
        let parity = run_point(
            Backend::Uds,
            &grid,
            1,
            grid_load,
            parity_rate,
            &OpenLoopConfig {
                total_arrivals: arrivals(parity_rate),
                ..base_config
            },
            900,
            false,
            &mut failures,
        );
        if parity.saturated {
            failures.push(format!(
                "uds/unbatched parity point saturated at {parity_rate:.0} ops/s"
            ));
        }
        if parity.report.completed() * 10 < parity.report.scheduled * 9 {
            failures.push(format!(
                "uds/unbatched parity point lost arrivals below the knee: {:?}",
                parity.report
            ));
        }
        points.push(parity);
    } else {
        let mgrid = MGridSystem::new(5, 2).unwrap();
        let mgrid_cert = optimal_load_oracle(&mgrid).expect("m-grid certifies");
        assert!(mgrid_cert.gap <= 1e-9);
        let mgrid_load = mgrid_cert.load;
        let mgrid = StrategicQuorumSystem::from_certified(mgrid, &mgrid_cert).unwrap();

        let rates = [
            500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0, 96_000.0,
            192_000.0,
        ];
        let arrivals = |rate: f64| (rate as usize).clamp(1_000, 24_000);
        let backends = [Backend::Loopback, Backend::Uds, Backend::Tcp];
        let mut tag = 0usize;
        for backend in backends {
            tag += 1;
            knees.push(sweep(
                backend,
                &grid,
                1,
                grid_load,
                &rates,
                &base_config,
                arrivals,
                1_000 * tag,
                &mut points,
                &mut failures,
            ));
            tag += 1;
            knees.push(sweep(
                backend,
                &mgrid,
                2,
                mgrid_load,
                &rates,
                &base_config,
                arrivals,
                1_000 * tag,
                &mut points,
                &mut failures,
            ));
        }
        for knee in &knees {
            if !knee.below_knee_load_ok {
                failures.push(format!(
                    "{}/{}: below-knee empirical load outside the certified 3-sigma band",
                    knee.backend, knee.construction
                ));
            }
            // The tentpole gate: socket knees must have moved by
            // KNEE_GATE_RATIO over the committed pre-batching baseline.
            if knee.backend != "loopback" {
                if let Some(ratio) = knee.knee_ratio() {
                    if ratio < KNEE_GATE_RATIO {
                        failures.push(format!(
                            "{}/{}: knee {:.0} is only {ratio:.2}x the v1 baseline (gate {KNEE_GATE_RATIO}x)",
                            knee.backend,
                            knee.construction,
                            knee.effective_knee()
                        ));
                    }
                }
            }
        }
    }

    // --- Emit JSON. --------------------------------------------------------
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"bench_net/v2\",\n  \"available_parallelism\": {cores},\n  \"quick\": {quick},\n  \"knee_fraction\": {KNEE_FRACTION},\n  \"knee_gate_ratio\": {KNEE_GATE_RATIO},\n"
    ));
    json.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let r = &p.report;
        let load_fields = match &p.load_check {
            Some(c) => format!(
                "\"certified_load\": {:.12}, \"empirical_max_load\": {:.12}, \"sigma\": {:e}, \"tolerance\": {:e}, \"z\": {:.3}, \"within_tolerance\": {}",
                c.certified_load, c.empirical_max_load, c.sigma, c.tolerance, c.z, c.within_tolerance
            ),
            None => "\"certified_load\": null, \"empirical_max_load\": null, \"sigma\": null, \"tolerance\": null, \"z\": null, \"within_tolerance\": null".to_string(),
        };
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"construction\": \"{}\", \"n\": {}, \"b\": {}, \"generator\": \"open_loop\", \"batching\": {}, \"offered_ops_per_sec\": {:.1}, \"realized_offered_ops_per_sec\": {:.1}, \"achieved_ops_per_sec\": {:.1}, \"saturated\": {}, \"scheduled\": {}, \"completed_writes\": {}, \"completed_reads\": {}, \"inconclusive_reads\": {}, \"shed\": {}, \"timed_out\": {}, \"no_live_quorum\": {}, \"rejected_sends\": {}, \"safety_violations\": {}, \"peak_in_flight\": {}, \"latency_mean_ns\": {}, \"latency_p50_ns\": {}, \"latency_p90_ns\": {}, \"latency_p99_ns\": {}, \"latency_max_ns\": {}, \"latency_hist_p50_ns\": {}, \"latency_hist_p99_ns\": {}, \"latency_hist_p999_ns\": {}, \"elapsed_seconds\": {:e}, \"seconds\": {:e}, {}}}{}\n",
            p.backend,
            json_escape(&p.construction),
            p.n,
            p.b,
            p.batching,
            p.offered_rate,
            r.realized_offered_ops_per_sec,
            r.achieved_ops_per_sec,
            p.saturated,
            r.scheduled,
            r.completed_writes,
            r.completed_reads,
            r.inconclusive_reads,
            r.shed,
            r.timed_out,
            r.no_live_quorum,
            r.rejected_sends,
            r.safety_violations,
            r.peak_in_flight,
            r.latency_mean_ns,
            r.latency_p50_ns,
            r.latency_p90_ns,
            r.latency_p99_ns,
            r.latency_max_ns,
            r.latency_hist_p50_ns,
            r.latency_hist_p99_ns,
            r.latency_hist_p999_ns,
            r.elapsed_seconds,
            p.seconds,
            load_fields,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n  \"knees\": [\n");
    for (i, k) in knees.iter().enumerate() {
        let knee = k
            .knee_offered_rate
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        let baseline = baseline_knee(k.backend, &k.construction)
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        let ratio = k
            .knee_ratio()
            .map_or("null".to_string(), |v| format!("{v:.3}"));
        json.push_str(&format!(
            "    {{\"backend\": \"{}\", \"construction\": \"{}\", \"n\": {}, \"knee_offered_rate\": {}, \"max_offered_rate\": {:.1}, \"baseline_knee_offered_rate\": {}, \"knee_ratio\": {}, \"capacity_ops_per_sec\": {:.1}, \"below_knee_load_ok\": {}}}{}\n",
            k.backend,
            json_escape(&k.construction),
            k.n,
            knee,
            k.max_offered_rate,
            baseline,
            ratio,
            k.capacity_ops_per_sec,
            k.below_knee_load_ok,
            if i + 1 == knees.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&output, &json).expect("write benchmark output");

    // --- Human-readable summary. -------------------------------------------
    println!(
        "{:<10} {:<22} {:>9} {:>9} {:>5} {:>10} {:>10} {:>10} {:>7}",
        "backend",
        "construction",
        "offered",
        "achieved",
        "sat",
        "p50 us",
        "p99 us",
        "max us",
        "within"
    );
    for p in &points {
        let r = &p.report;
        println!(
            "{:<10} {:<22} {:>9.0} {:>9.0} {:>5} {:>10.1} {:>10.1} {:>10.1} {:>7}",
            p.backend,
            p.construction,
            p.offered_rate,
            r.achieved_ops_per_sec,
            p.saturated,
            r.latency_p50_ns as f64 / 1e3,
            r.latency_p99_ns as f64 / 1e3,
            r.latency_max_ns as f64 / 1e3,
            p.load_check
                .as_ref()
                .map_or("-".to_string(), |c| c.within_tolerance.to_string()),
        );
    }
    println!(
        "\n{:<10} {:<22} {:>12} {:>12} {:>8} {:>14}",
        "backend", "construction", "knee", "capacity", "ratio", "load ok"
    );
    for k in &knees {
        println!(
            "{:<10} {:<22} {:>12} {:>12.0} {:>8} {:>14}",
            k.backend,
            k.construction,
            k.knee_offered_rate
                .map_or("none".to_string(), |v| format!("{v:.0}")),
            k.capacity_ops_per_sec,
            k.knee_ratio()
                .map_or("-".to_string(), |v| format!("{v:.2}x")),
            k.below_knee_load_ok
        );
    }
    println!("wrote {output}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ERROR: {f}");
        }
        std::process::exit(1);
    }
}
