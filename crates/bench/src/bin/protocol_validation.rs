//! Protocol-level validation: runs the [MR98a] replicated register over every
//! construction with its full Byzantine budget plus crashes, confirming zero safety
//! violations and comparing the empirical per-server load with the analytic L(Q) —
//! the operational counterpart of the paper's load definition.
//!
//! Run with: `cargo run --release -p bqs-bench --bin protocol_validation [operations]`

use bqs_analysis::TextTable;
use bqs_constructions::prelude::*;
use bqs_core::quorum::QuorumSystem;
use bqs_sim::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let operations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);

    let mut table = TextTable::new([
        "system",
        "n",
        "b (byz injected)",
        "crashes",
        "reads",
        "violations",
        "unavailable",
        "empirical load (no failures)",
        "analytic load",
    ]);

    struct Wrapper(Box<dyn AnalyzedConstruction>);
    impl QuorumSystem for Wrapper {
        fn universe_size(&self) -> usize {
            self.0.universe_size()
        }
        fn name(&self) -> String {
            self.0.name()
        }
        fn sample_quorum(&self, rng: &mut dyn rand::RngCore) -> bqs_core::ServerSet {
            self.0.sample_quorum(rng)
        }
        fn find_live_quorum(&self, alive: &bqs_core::ServerSet) -> Option<bqs_core::ServerSet> {
            self.0.find_live_quorum(alive)
        }
        fn min_quorum_size(&self) -> usize {
            self.0.min_quorum_size()
        }
    }

    let mut run = |make: &dyn Fn() -> Box<dyn AnalyzedConstruction>, crashes: usize, seed: u64| {
        let sys = make();
        let n = sys.universe_size();
        let b = sys.masking_b();
        let analytic = sys.analytic_load();
        let name = sys.name();
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = FaultPlan::random(
            n,
            b,
            crashes,
            ByzantineStrategy::FabricateHighTimestamp {
                value: u64::MAX / 3,
            },
            &mut rng,
        );
        // Run 1 (attacked): checks safety and availability under b Byzantine + crashes.
        let report = run_workload(
            Wrapper(sys),
            b,
            plan,
            WorkloadConfig {
                operations,
                write_fraction: 0.3,
            },
            &mut rng,
        );
        // Run 2 (failure-free): measures the empirical load of the access strategy,
        // which is only meaningful when the sampled fast path is always taken
        // (the load of Definition 3.8 is a failure-free, best-strategy measure).
        let clean = run_workload(
            Wrapper(make()),
            b,
            FaultPlan::none(n),
            WorkloadConfig {
                operations,
                write_fraction: 0.3,
            },
            &mut rng,
        );
        table.push_row([
            name,
            n.to_string(),
            b.to_string(),
            crashes.to_string(),
            report.reads_completed.to_string(),
            report.safety_violations.to_string(),
            report.unavailable_operations.to_string(),
            format!("{:.4}", clean.max_empirical_load()),
            format!("{analytic:.4}"),
        ]);
    };

    run(
        &|| Box::new(ThresholdSystem::minimal_masking(3).unwrap()),
        1,
        1,
    );
    run(&|| Box::new(GridSystem::new(10, 3).unwrap()), 3, 2);
    run(&|| Box::new(MGridSystem::new(10, 4).unwrap()), 4, 3);
    run(&|| Box::new(RtSystem::new(4, 3, 3).unwrap()), 4, 4);
    run(&|| Box::new(BoostFppSystem::new(3, 4).unwrap()), 8, 5);
    run(&|| Box::new(MPathSystem::new(10, 4).unwrap()), 4, 6);

    println!("replicated register, {operations} operations per system, b fabricating Byzantine");
    println!("servers plus random crashes injected into every run:\n");
    println!("{}", table.render());
    println!();
    println!("expected outcome (and what the paper's consistency requirement guarantees):");
    println!("zero violations everywhere, and an empirical load close to the analytic L(Q)");
    println!("whenever failures are rare enough that the sampled-strategy fast path is used.");
}
