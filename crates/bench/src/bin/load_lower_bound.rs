//! Regenerates the Theorem 4.1 / Corollary 4.2 load lower-bound analysis: the bound
//! as a function of quorum size (showing the sqrt((2b+1)n) sweet spot) and the
//! loads every construction achieves against the universal bound.
//!
//! Run with: `cargo run --release -p bqs-bench --bin load_lower_bound [n] [b]`

use bqs_analysis::load_analysis::{lower_bound_envelope, lp_vs_fair_load};
use bqs_analysis::TextTable;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1024);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    println!("Theorem 4.1: L(Q) >= max{{(2b+1)/c, c/n}} for any b-masking system");
    println!("n = {n}, b = {b}; the minimum over c is the Corollary 4.2 bound sqrt((2b+1)/n)\n");

    let env = lower_bound_envelope(n, b);
    let universal = ((2 * b + 1) as f64 / n as f64).sqrt();
    let mut table = TextTable::new(["quorum size c", "lower bound on L", "vs universal"]);
    // Print a logarithmic selection of quorum sizes around the optimum.
    let c_star = ((2 * b + 1) as f64 * n as f64).sqrt() as usize;
    let picks: Vec<usize> = vec![
        1,
        c_star / 8,
        c_star / 4,
        c_star / 2,
        (c_star as f64 / 1.4) as usize,
        c_star,
        (c_star as f64 * 1.4) as usize,
        c_star * 2,
        c_star * 4,
        n / 2,
        n,
    ];
    for c in picks.into_iter().filter(|&c| c >= 1 && c <= n) {
        let bound = env[c - 1].bound;
        table.push_row([
            c.to_string(),
            format!("{bound:.4}"),
            format!("{:.2}x", bound / universal),
        ]);
    }
    println!("{}", table.render());
    println!(
        "\noptimal quorum size c* = sqrt((2b+1) n) = {c_star}; universal bound = {universal:.4}\n"
    );

    println!("ablation: exact LP load vs the closed-form fair load (Proposition 3.9) on");
    println!("small explicit instances of each construction:\n");
    let mut ab = TextTable::new(["system", "LP load", "analytic load", "difference"]);
    for row in lp_vs_fair_load() {
        ab.push_row([
            row.system.clone(),
            format!("{:.5}", row.lp_load),
            format!("{:.5}", row.analytic_load),
            format!("{:.1e}", (row.lp_load - row.analytic_load).abs()),
        ]);
    }
    println!("{}", ab.render());
}
