//! Regenerates Figure 1 of the paper: the multi-grid (M-Grid) construction on a
//! 7 x 7 universe with b = 3, with one quorum shaded.
//!
//! Run with: `cargo run -p bqs-bench --bin figure1_mgrid [side] [b]`

use bqs_constructions::prelude::*;
use bqs_core::quorum::QuorumSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let b: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let sys = match MGridSystem::new(side, b) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid parameters: {e}");
            std::process::exit(1);
        }
    };
    let mut rng = StdRng::seed_from_u64(1);
    let quorum = sys.sample_quorum(&mut rng);

    println!(
        "Figure 1: M-Grid construction, n = {}x{}, b = {}, with one quorum shaded (#)",
        side, side, b
    );
    println!(
        "a quorum is the union of {0} rows and {0} columns (sqrt(b+1) of each)\n",
        sys.lines_per_quorum()
    );
    for r in 0..side {
        let mut line = String::new();
        for c in 0..side {
            let idx = r * side + c;
            line.push(if quorum.contains(idx) { '#' } else { '.' });
            line.push(' ');
        }
        println!("{line}");
    }
    println!();
    println!("quorum size      : {}", quorum.len());
    println!(
        "system load      : {:.4}  (Proposition 5.2: ~ 2 sqrt((b+1)/n))",
        sys.analytic_load()
    );
    println!("masks            : b = {}", sys.masking_b());
    println!("resilience       : f = {}", sys.resilience());
    println!(
        "any two quorums intersect in >= 2b+1 = {} servers (Proposition 5.1)",
        2 * b + 1
    );
}
