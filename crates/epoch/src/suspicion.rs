//! Accrual failure suspicion over service evidence.
//!
//! The service layer records two kinds of per-server evidence while load is
//! flowing ([`ServiceMetrics`]): **answers** (a reply carrying an entry, or a
//! write acknowledgement, with its round-trip latency) and **no-answers** (a
//! read served an in-band `None`, or a quorum member silent past the
//! rendezvous deadline). The engine here turns that stream into a *stable*
//! suspect set:
//!
//! * **Ratio evidence** — per tick, the engine looks at the evidence *delta*
//!   since the previous tick; a server whose no-answer fraction over the
//!   delta reaches [`SuspicionConfig::accuse_ratio`] (with at least
//!   [`SuspicionConfig::min_samples`] samples) is accused for that tick.
//!   Crashed replicas acknowledge writes in-band but serve reads `None`, so
//!   under any read-leaning mix their accusal fraction sits near the read
//!   fraction — far above a healthy server's (whose only `None`s come from
//!   still-empty registers early on).
//! * **Latency evidence** — a timeout-inflation adversary answers *every*
//!   request just under the deadline, so the ratio counters never move. Its
//!   cumulative p99 round-trip does move: a server whose p99 reaches
//!   [`SuspicionConfig::latency_factor`] times the fleet median p99 is
//!   accused on this channel instead. Wall-clock evidence is inherently
//!   non-deterministic, so replay-exact harnesses run with
//!   [`SuspicionConfig::counters_only`], which disables this channel.
//! * **Accrual with hysteresis** — accusals accumulate into a per-server
//!   score (+1 per accusing tick, −[`SuspicionConfig::decay`] per clean
//!   tick, floored at zero). A server becomes suspected only when its score
//!   reaches [`SuspicionConfig::suspect_score`] and is cleared only when it
//!   decays back to [`SuspicionConfig::clear_score`] — a one-tick burst of
//!   jitter or loss never flips anybody, and a flapping server cannot make
//!   the configuration flap with it.

use bqs_core::bitset::ServerSet;
use bqs_service::metrics::ServiceMetrics;

/// Tuning of the accrual detector. The defaults are deliberately slow to
/// accuse and slower to forgive: three consecutive accusing ticks to suspect,
/// two clean ticks to clear.
#[derive(Debug, Clone, Copy)]
pub struct SuspicionConfig {
    /// Minimum evidence samples (answers + no-answers) in a tick's delta
    /// before the ratio channel may accuse: starves rumors of single lost
    /// packets.
    pub min_samples: u64,
    /// No-answer fraction of the tick's delta at which the ratio channel
    /// accuses. Must sit above the background accusal fraction of a healthy
    /// fleet (empty-register reads, occasional drops) and below a dead
    /// server's (its read fraction).
    pub accuse_ratio: f64,
    /// Score at which a server becomes suspected.
    pub suspect_score: f64,
    /// Score at which an already-suspected server is cleared. Strictly below
    /// [`SuspicionConfig::suspect_score`] — the hysteresis band.
    pub clear_score: f64,
    /// Score subtracted per non-accusing tick (floored at zero).
    pub decay: f64,
    /// Latency channel: accuse a server whose cumulative p99 round-trip is
    /// at least this factor times the fleet median p99. `f64::INFINITY`
    /// disables the channel (see [`SuspicionConfig::counters_only`]).
    pub latency_factor: f64,
    /// Minimum cumulative answers from a server before its p99 is trusted as
    /// latency evidence.
    pub latency_min_samples: u64,
}

impl Default for SuspicionConfig {
    fn default() -> Self {
        SuspicionConfig {
            min_samples: 8,
            accuse_ratio: 0.5,
            suspect_score: 3.0,
            clear_score: 1.0,
            decay: 1.0,
            latency_factor: 8.0,
            latency_min_samples: 32,
        }
    }
}

impl SuspicionConfig {
    /// The default configuration with the latency channel disabled: every
    /// accusal derives from deterministic counters, so a drill replayed from
    /// the same `(seed, scenario)` pair reproduces the identical suspect set
    /// and detection tick. This is what the reconfiguration runner uses.
    #[must_use]
    pub fn counters_only() -> Self {
        SuspicionConfig {
            latency_factor: f64::INFINITY,
            ..SuspicionConfig::default()
        }
    }
}

/// The accrual detector: feed it [`ServiceMetrics`] snapshots via
/// [`SuspicionEngine::tick`], read the suspect set.
#[derive(Debug)]
pub struct SuspicionEngine {
    config: SuspicionConfig,
    /// Cumulative answer counts at the previous tick.
    last_answers: Vec<u64>,
    /// Cumulative no-answer counts at the previous tick.
    last_no_answers: Vec<u64>,
    scores: Vec<f64>,
    suspected: Vec<bool>,
    ticks: u64,
}

impl SuspicionEngine {
    /// A fresh engine over `n` servers.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration: `accuse_ratio` outside `(0, 1]`,
    /// a non-positive `decay`, or a hysteresis band that is not a band
    /// (`clear_score >= suspect_score`).
    #[must_use]
    pub fn new(n: usize, config: SuspicionConfig) -> Self {
        assert!(
            config.accuse_ratio > 0.0 && config.accuse_ratio <= 1.0,
            "accuse_ratio is a fraction of a tick's evidence"
        );
        assert!(config.decay > 0.0, "scores must be able to decay");
        assert!(
            config.clear_score < config.suspect_score,
            "hysteresis needs clear_score < suspect_score"
        );
        SuspicionEngine {
            config,
            last_answers: vec![0; n],
            last_no_answers: vec![0; n],
            scores: vec![0.0; n],
            suspected: vec![false; n],
            ticks: 0,
        }
    }

    /// Number of servers under observation.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.suspected.len()
    }

    /// Ticks processed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Current per-server accrual scores.
    #[must_use]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Whether server `i` is currently suspected.
    #[must_use]
    pub fn is_suspected(&self, i: usize) -> bool {
        self.suspected[i]
    }

    /// The suspect set as a mask over the universe.
    #[must_use]
    pub fn suspects(&self) -> ServerSet {
        ServerSet::from_indices(
            self.suspected.len(),
            self.suspected
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| s.then_some(i)),
        )
    }

    /// The complement of the suspect set: the universe the planner should
    /// re-certify over.
    #[must_use]
    pub fn survivors(&self) -> ServerSet {
        ServerSet::from_indices(
            self.suspected.len(),
            self.suspected
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| (!s).then_some(i)),
        )
    }

    /// Consumes the evidence accumulated since the previous tick and updates
    /// scores and suspect states. Returns `true` when the suspect set
    /// changed — the signal the epoch manager re-certifies on.
    ///
    /// # Panics
    ///
    /// Panics when `metrics` covers a different universe.
    pub fn tick(&mut self, metrics: &ServiceMetrics) -> bool {
        assert_eq!(
            metrics.universe_size(),
            self.suspected.len(),
            "evidence and engine must cover the same universe"
        );
        self.ticks += 1;
        let answers = metrics.server_answer_counts();
        let no_answers = metrics.server_no_answer_counts();

        // Latency channel baseline: the fleet median of cumulative p99s.
        // Computed over every server with timed replies — the median is
        // robust to the (minority) coalition it is meant to expose.
        let median_p99 = if self.config.latency_factor.is_finite() {
            let mut p99s: Vec<u64> = (0..self.suspected.len())
                .filter_map(|i| metrics.server_latency_quantile(i, 0.99))
                .collect();
            p99s.sort_unstable();
            if p99s.is_empty() {
                None
            } else {
                Some(p99s[p99s.len() / 2])
            }
        } else {
            None
        };

        let mut changed = false;
        for i in 0..self.suspected.len() {
            let d_answers = answers[i].saturating_sub(self.last_answers[i]);
            let d_accusals = no_answers[i].saturating_sub(self.last_no_answers[i]);
            self.last_answers[i] = answers[i];
            self.last_no_answers[i] = no_answers[i];

            let samples = d_answers + d_accusals;
            let ratio_accuses = samples >= self.config.min_samples
                && d_accusals as f64 >= self.config.accuse_ratio * samples as f64;

            let latency_accuses = match median_p99 {
                Some(median) if median > 0 => {
                    answers[i] >= self.config.latency_min_samples
                        && metrics.server_latency_quantile(i, 0.99).is_some_and(|p99| {
                            p99 as f64 >= self.config.latency_factor * median as f64
                        })
                }
                _ => false,
            };

            if ratio_accuses || latency_accuses {
                self.scores[i] += 1.0;
            } else {
                self.scores[i] = (self.scores[i] - self.config.decay).max(0.0);
            }

            if !self.suspected[i] && self.scores[i] >= self.config.suspect_score {
                self.suspected[i] = true;
                changed = true;
            } else if self.suspected[i] && self.scores[i] <= self.config.clear_score {
                self.suspected[i] = false;
                changed = true;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds `accusals` no-answers and `answers` answers to one server.
    fn feed(metrics: &ServiceMetrics, server: usize, answers: u64, accusals: u64) {
        for _ in 0..answers {
            metrics.record_server_answer(server, 1_000);
        }
        for _ in 0..accusals {
            metrics.record_server_no_answer(server);
        }
    }

    fn healthy_tick(metrics: &ServiceMetrics, n: usize, skip: &[usize]) {
        for s in 0..n {
            if !skip.contains(&s) {
                feed(metrics, s, 20, 1);
            }
        }
    }

    #[test]
    fn persistent_non_responder_is_suspected_after_the_accrual_threshold() {
        let n = 5;
        let metrics = ServiceMetrics::new(n);
        let mut engine = SuspicionEngine::new(n, SuspicionConfig::counters_only());
        for round in 1..=3 {
            healthy_tick(&metrics, n, &[2]);
            feed(&metrics, 2, 4, 16); // 80 % no-answers: a dead replica's reads
            let changed = engine.tick(&metrics);
            if round < 3 {
                assert!(!changed, "accrual must not fire before the threshold");
                assert!(!engine.is_suspected(2));
            } else {
                assert!(changed, "third accusing tick crosses suspect_score = 3");
                assert!(engine.is_suspected(2));
            }
        }
        assert_eq!(engine.suspects().to_vec(), vec![2]);
        assert_eq!(engine.survivors().to_vec(), vec![0, 1, 3, 4]);
        // Healthy servers never accrued.
        for s in [0usize, 1, 3, 4] {
            assert!(
                engine.scores()[s] < 1.0,
                "server {s}: {:?}",
                engine.scores()
            );
        }
    }

    #[test]
    fn transient_accusations_decay_without_churn() {
        let n = 4;
        let metrics = ServiceMetrics::new(n);
        let mut engine = SuspicionEngine::new(n, SuspicionConfig::counters_only());
        // Two accusing ticks (a burst of loss), then clean ticks: the score
        // reaches 2 < suspect_score and decays back to zero.
        for _ in 0..2 {
            healthy_tick(&metrics, n, &[1]);
            feed(&metrics, 1, 2, 18);
            assert!(!engine.tick(&metrics));
        }
        assert!(engine.scores()[1] >= 2.0);
        for _ in 0..3 {
            healthy_tick(&metrics, n, &[]);
            assert!(!engine.tick(&metrics));
        }
        assert!(!engine.is_suspected(1));
        assert_eq!(engine.scores()[1], 0.0);
    }

    #[test]
    fn hysteresis_holds_a_suspect_through_a_single_clean_tick() {
        let n = 3;
        let metrics = ServiceMetrics::new(n);
        let mut engine = SuspicionEngine::new(n, SuspicionConfig::counters_only());
        for _ in 0..3 {
            healthy_tick(&metrics, n, &[0]);
            feed(&metrics, 0, 0, 12);
            engine.tick(&metrics);
        }
        assert!(engine.is_suspected(0));
        // One clean tick: score 3 → 2, still above clear_score = 1.
        healthy_tick(&metrics, n, &[]);
        assert!(!engine.tick(&metrics), "one clean tick must not clear");
        assert!(engine.is_suspected(0));
        // A second clean tick decays to 1 = clear_score: cleared.
        healthy_tick(&metrics, n, &[]);
        assert!(engine.tick(&metrics));
        assert!(!engine.is_suspected(0));
    }

    #[test]
    fn timeout_inflation_is_flagged_on_the_latency_channel() {
        let n = 6;
        let metrics = ServiceMetrics::new(n);
        let mut engine = SuspicionEngine::new(n, SuspicionConfig::default());
        // Server 5 answers *everything* — the counters are spotless — but
        // every answer takes 18 ms against a 100 µs fleet.
        for _ in 0..3 {
            for s in 0..5 {
                feed(&metrics, s, 40, 0);
            }
            for _ in 0..40 {
                metrics.record_server_answer(5, 18_000_000);
            }
            engine.tick(&metrics);
        }
        assert!(engine.is_suspected(5), "scores: {:?}", engine.scores());
        for s in 0..5 {
            assert!(!engine.is_suspected(s));
        }
        // The same evidence under counters-only never accuses: the replay-
        // deterministic profile trades this adversary for exactness.
        let deterministic = {
            let mut e = SuspicionEngine::new(n, SuspicionConfig::counters_only());
            e.tick(&metrics);
            e.suspects()
        };
        assert!(deterministic.is_empty());
    }

    #[test]
    fn sparse_evidence_stays_below_the_sample_floor() {
        let n = 2;
        let metrics = ServiceMetrics::new(n);
        let mut engine = SuspicionEngine::new(n, SuspicionConfig::counters_only());
        // 100 % accusing but only 3 samples < min_samples = 8: no accusal.
        for _ in 0..5 {
            feed(&metrics, 1, 0, 3);
            assert!(!engine.tick(&metrics));
        }
        assert_eq!(engine.scores()[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_hysteresis_band_is_rejected() {
        let _ = SuspicionEngine::new(
            3,
            SuspicionConfig {
                suspect_score: 1.0,
                clear_score: 2.0,
                ..SuspicionConfig::default()
            },
        );
    }
}
