//! Epoch-based reconfiguration for masking quorum systems.
//!
//! The paper certifies a load-optimal access strategy for a *fixed* universe;
//! this crate keeps that certificate true when the universe stops being
//! fixed. It closes the loop from **evidence** to **strategy**:
//!
//! * [`suspicion`] — an accrual failure detector over the per-server
//!   evidence the service layer already records ([`bqs_service::metrics::ServiceMetrics`]):
//!   answer/no-answer ratios catch crashed and silent replicas, per-server
//!   tail latency catches a timeout-inflation adversary that answers just
//!   under every deadline, and a score-with-hysteresis update rule keeps
//!   transient chaos (jitter, lossy links) from churning the configuration;
//! * [`config`] — re-certification: given the survivor mask, an
//!   [`config::EpochPlanner`] re-runs the column-generation load oracle over
//!   each registered quorum pool ([`bqs_core::load::optimal_load_oracle_for_survivors`]),
//!   picks the best surviving construction, and falls back to a rotation
//!   system built directly on the survivors when every pool is dead —
//!   producing an [`config::EpochConfig`] whose strategy carries the same
//!   `load − lower_bound ≤ tolerance` certificate as the initial one;
//! * [`manager`] — the two-phase handoff driving the server-side
//!   [`bqs_sim::epoch::EpochGate`]: *open* the `{e, e + 1}` acceptance
//!   window before any client sees the new strategy, let epoch-`e` accesses
//!   drain, then *finalize* so stragglers are fenced in-band. No read ever
//!   gathers `b + 1` support across two strategies, because no single
//!   fan-out ever carries two epoch stamps and the gate never serves an
//!   epoch outside its window;
//! * [`runner`] — an end-to-end drill: open-loop load against a live
//!   service, crash `k` servers mid-run under a named
//!   [`bqs_chaos::ReconfigScenario`] environment, watch the detector flag
//!   exactly the dead set, re-certify, migrate, and measure the busiest
//!   server re-converging to the *new* certified `L(Q)` — deterministically
//!   replayable from its `(seed, scenario)` pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod manager;
pub mod runner;
pub mod suspicion;

pub use config::{EpochConfig, EpochPlanner, StrategySource};
pub use manager::{EpochManager, EpochTransition, TickOutcome};
pub use runner::{
    run_reconfigure, run_reconfigure_loopback, PhaseSummary, ReconfigConfig, ReconfigOutcome,
};
pub use suspicion::{SuspicionConfig, SuspicionEngine};

/// Convenient glob import for benches and tests.
pub mod prelude {
    pub use crate::config::{EpochConfig, EpochPlanner, StrategySource};
    pub use crate::manager::{EpochManager, EpochTransition, TickOutcome};
    pub use crate::runner::{
        run_reconfigure, run_reconfigure_loopback, PhaseSummary, ReconfigConfig, ReconfigOutcome,
    };
    pub use crate::suspicion::{SuspicionConfig, SuspicionEngine};
}
