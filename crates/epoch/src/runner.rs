//! The end-to-end reconfiguration drill.
//!
//! [`run_reconfigure`] plays the whole story against a live service through
//! a chaos-wrapped transport, in strictly ordered phases (each phase is one
//! open-loop burst; bursts join their workers, so every phase boundary is an
//! operation-stream boundary — exactly where [`EpochManager::tick`] is
//! allowed to run):
//!
//! 1. **healthy** — open-loop load at epoch 0; one manager tick must stay
//!    steady (hysteresis under whatever chaos the scenario runs).
//! 2. **crash** — `k` servers die mid-run ([`ReconfigScenario::kill_set`]).
//! 3. **detect** — bursts keep flowing at epoch 0 through the *old*
//!    strategy; the evidence accrues until a tick reconfigures: the planner
//!    re-certifies over the survivors and the gate window opens to `{0, 1}`.
//! 4. **migrate** — a burst at epoch 1 under the new strategy, while the
//!    window still accepts both epochs (the two-phase handoff's first half).
//! 5. **finalize** — the next tick collapses the gate to `[1, 1]`.
//! 6. **stale probe** — a burst deliberately stamped with the dead epoch 0:
//!    every operation must come back fenced in-band, none may complete.
//! 7. **measure** — a fresh-metrics burst at epoch 1: the busiest server's
//!    empirical load is compared (by the caller) against the *new* certified
//!    `L(Q)`.
//!
//! **Replay determinism.** The drill runs every burst on a single worker
//! (one rng stream, one send order), shares one [`TimestampOracle`] across
//! phases, and is meant to be driven with
//! [`SuspicionConfig::counters_only`]: every accusal then derives from
//! deterministic counters, every chaos decision from the id-keyed splitmix
//! stream, so the outcome [`ReconfigOutcome::fingerprint`] — epochs, suspect
//! set, detection ticks, chaos trace, measure-phase access counts — is a
//! pure function of `(seed, scenario)`.

use std::sync::Arc;
use std::time::Duration;

use bqs_chaos::transport::ChaosTransport;
use bqs_chaos::ReconfigScenario;
use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::quorum::ExplicitQuorumSystem;
use bqs_core::strategic::StrategicQuorumSystem;
use bqs_service::metrics::ServiceMetrics;
use bqs_service::openloop::{
    run_open_loop_session, OpenLoopConfig, OpenLoopReport, OpenLoopSession,
};
use bqs_service::shard::{LoopbackService, TimestampOracle};
use bqs_service::transport::Transport;
use bqs_sim::epoch::EpochGate;
use bqs_sim::fault::FaultPlan;

use crate::config::{EpochPlanner, StrategySource};
use crate::manager::{EpochManager, TickOutcome};
use crate::suspicion::SuspicionConfig;

/// Shape of one reconfiguration drill.
#[derive(Debug, Clone, Copy)]
pub struct ReconfigConfig {
    /// Base seed: service shards, chaos stream, and every burst's rng.
    pub seed: u64,
    /// How many servers the drill crashes (the first `kill` indices).
    pub kill: usize,
    /// Offered rate of every burst, operations per second.
    pub offered_rate: f64,
    /// Arrivals in the healthy phase.
    pub healthy_arrivals: usize,
    /// Arrivals per detection burst.
    pub detect_arrivals: usize,
    /// Arrivals in the migration burst (epoch `e + 1`, window still open).
    pub migrate_arrivals: usize,
    /// Arrivals in the post-finalize measurement phase.
    pub measure_arrivals: usize,
    /// Arrivals in the stale-epoch probe.
    pub probe_arrivals: usize,
    /// Detection bursts to attempt before giving up.
    pub max_detect_ticks: usize,
    /// Write fraction of every burst.
    pub write_fraction: f64,
    /// Per-operation deadline (also bounds the per-phase priming wait); must
    /// comfortably exceed the scenario's chaos delays so healthy servers are
    /// never accused of timing out.
    pub op_deadline: Duration,
    /// Post-arrival drain window per burst.
    pub tail_deadline: Duration,
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig {
            seed: 0xec0c_5eed,
            kill: 3,
            offered_rate: 4_000.0,
            healthy_arrivals: 800,
            detect_arrivals: 400,
            migrate_arrivals: 300,
            measure_arrivals: 3_000,
            probe_arrivals: 120,
            max_detect_ticks: 12,
            write_fraction: 0.2,
            op_deadline: Duration::from_millis(250),
            tail_deadline: Duration::from_secs(2),
        }
    }
}

/// Accounting for one phase of the drill.
#[derive(Debug, Clone)]
pub struct PhaseSummary {
    /// Phase name (`healthy`, `detect`, `migrate`, `stale_probe`, `measure`).
    pub name: &'static str,
    /// Epoch stamped on the phase's requests.
    pub epoch: u64,
    /// Arrivals scheduled.
    pub scheduled: u64,
    /// Operations that completed a full rendezvous.
    pub completed: u64,
    /// Operations fenced by the epoch gate.
    pub fenced: u64,
    /// Operations abandoned at their deadline.
    pub timed_out: u64,
    /// Reads that returned a fabricated pair (must stay zero).
    pub safety_violations: u64,
}

/// Everything a drill observed; the benchmark gates read off this.
#[derive(Debug, Clone)]
pub struct ReconfigOutcome {
    /// The scenario environment the drill ran under.
    pub scenario: ReconfigScenario,
    /// Universe size.
    pub n: usize,
    /// Masking level.
    pub b: usize,
    /// The crashed servers.
    pub killed: Vec<usize>,
    /// Whether the manager stayed steady on healthy evidence (hysteresis).
    pub healthy_steady: bool,
    /// Whether a reconfiguration fired within the detection budget.
    pub reconfigured: bool,
    /// Detection bursts consumed before the reconfiguration fired (equals
    /// `max_detect_ticks` when it never did).
    pub detect_ticks: usize,
    /// The final suspect set.
    pub suspects: Vec<usize>,
    /// Whether the suspect set is exactly the killed set.
    pub detection_exact: bool,
    /// Epoch history, starting at 0.
    pub epochs: Vec<u64>,
    /// Provenance of the final strategy (`None` when never reconfigured).
    pub source: Option<StrategySource>,
    /// Certified `L(Q)` of the initial configuration.
    pub initial_load: f64,
    /// Certified `L(Q)` of the final configuration.
    pub recertified_load: f64,
    /// Per-server access counts of the measure phase (client side).
    pub access_counts: Vec<u64>,
    /// Quorum-contacting operations of the measure phase.
    pub load_operations: u64,
    /// Busiest-server empirical load of the measure phase.
    pub measured_max_load: f64,
    /// Fabricated reads summed over every phase (must stay zero).
    pub safety_violations: u64,
    /// Operations of the stale probe fenced in-band.
    pub fenced_after_finalize: u64,
    /// Operations of the stale probe that completed (must stay zero: a
    /// completed stale operation would have mixed strategies).
    pub stale_completed: u64,
    /// The chaos transport's decision-stream fold.
    pub trace_fingerprint: u64,
    /// Fold of everything replay-relevant: transitions, suspects, epochs,
    /// chaos trace, measure-phase access counts.
    pub fingerprint: u64,
    /// Per-phase accounting, in execution order.
    pub phases: Vec<PhaseSummary>,
}

/// Runs the drill against an existing chaos-wrapped transport. `gate` must
/// be the transport's server-side gate and `crash` must crash servers of
/// that same service; the loopback convenience
/// [`run_reconfigure_loopback`] wires all three.
///
/// # Errors
///
/// Certification failures from the planner (including a drill that kills so
/// many servers that no masking system survives).
///
/// # Panics
///
/// Panics when `config.kill >= n` or on degenerate open-loop parameters.
#[allow(clippy::too_many_lines)]
pub fn run_reconfigure<T: Transport + 'static>(
    scenario: ReconfigScenario,
    planner: EpochPlanner,
    suspicion: SuspicionConfig,
    transport: &ChaosTransport<T>,
    gate: Arc<EpochGate>,
    crash: &dyn Fn(&[usize]),
    config: &ReconfigConfig,
) -> Result<ReconfigOutcome, QuorumError> {
    let n = planner.universe_size();
    let b = planner.masking_b();
    let killed = scenario.kill_set(n, config.kill);
    let mut manager = EpochManager::new(planner, suspicion, gate)?;
    let initial_load = manager.current().load();

    // Shared across every phase: the writer clock (freshness checks span
    // phases), the failure-detector evidence, and the chaos stream.
    let clock = TimestampOracle::new();
    let responsive = ServerSet::full(n);
    let evidence = ServiceMetrics::new(n);
    let mut phases: Vec<PhaseSummary> = Vec::new();
    let mut safety_violations = 0u64;

    let mut run_phase = |name: &'static str,
                         epoch: u64,
                         system: &StrategicQuorumSystem<ExplicitQuorumSystem>,
                         arrivals: usize,
                         salt: u64,
                         metrics: Option<&ServiceMetrics>,
                         phases: &mut Vec<PhaseSummary>|
     -> OpenLoopReport {
        let burst = OpenLoopConfig {
            offered_rate: config.offered_rate,
            total_arrivals: arrivals,
            // One worker: one rng stream and one send order, so the chaos
            // decision fold is replayed in a deterministic order.
            workers: 1,
            virtual_clients: 64,
            write_fraction: config.write_fraction,
            max_in_flight_per_worker: 1 << 14,
            op_deadline: config.op_deadline,
            tail_deadline: config.tail_deadline,
            seed: config.seed ^ mix(salt),
        };
        let report = run_open_loop_session(
            system,
            b,
            transport,
            &responsive,
            &burst,
            &OpenLoopSession {
                epoch,
                metrics,
                clock: Some(&clock),
            },
        );
        safety_violations += report.safety_violations;
        phases.push(PhaseSummary {
            name,
            epoch,
            scheduled: report.scheduled,
            completed: report.completed(),
            fenced: report.fenced,
            timed_out: report.timed_out,
            safety_violations: report.safety_violations,
        });
        report
    };

    // Phase 1: healthy load, then one steady tick (the hysteresis check).
    let sys0 = manager.active().strategic_system()?;
    let _ = run_phase(
        "healthy",
        0,
        &sys0,
        config.healthy_arrivals,
        1,
        Some(&evidence),
        &mut phases,
    );
    let healthy_steady = manager.tick(&evidence)? == TickOutcome::Steady;

    // Phase 2: the crash.
    crash(&killed);

    // Phase 3: keep serving at epoch 0 until the evidence reconfigures.
    let mut detect_ticks = 0usize;
    let mut reconfigured = false;
    while detect_ticks < config.max_detect_ticks {
        let _ = run_phase(
            "detect",
            0,
            &sys0,
            config.detect_arrivals,
            0x10 + detect_ticks as u64,
            Some(&evidence),
            &mut phases,
        );
        detect_ticks += 1;
        if let TickOutcome::Reconfigured { .. } = manager.tick(&evidence)? {
            reconfigured = true;
            break;
        }
    }

    let mut epochs = vec![0u64];
    let mut source = None;
    let mut recertified_load = initial_load;
    let mut access_counts: Vec<u64> = Vec::new();
    let mut load_operations = 0u64;
    let mut measured_max_load = 0.0f64;
    let mut fenced_after_finalize = 0u64;
    let mut stale_completed = 0u64;

    if reconfigured {
        let active = manager.active().clone();
        epochs.push(active.epoch);
        source = Some(active.source.clone());
        recertified_load = active.load();
        let sys1 = active.strategic_system()?;

        // Phase 4: migrate — epoch e + 1 while the window still holds {e, e+1}.
        let migrate = run_phase(
            "migrate",
            active.epoch,
            &sys1,
            config.migrate_arrivals,
            0x40,
            Some(&evidence),
            &mut phases,
        );
        debug_assert_eq!(migrate.fenced, 0, "the open window must serve e + 1");

        // Phase 5: finalize (clients of epoch e have drained: bursts join).
        let finalized = manager.tick(&evidence)?;
        debug_assert!(matches!(finalized, TickOutcome::Finalized { .. }));

        // Phase 6: the stale probe — epoch 0 must now be fenced in-band.
        let probe = run_phase(
            "stale_probe",
            0,
            &sys0,
            config.probe_arrivals,
            0x50,
            None,
            &mut phases,
        );
        fenced_after_finalize = probe.fenced;
        stale_completed = probe.completed();

        // Phase 7: measure the re-converged load with fresh metrics.
        let measure_metrics = ServiceMetrics::new(n);
        let measure = run_phase(
            "measure",
            active.epoch,
            &sys1,
            config.measure_arrivals,
            0x60,
            Some(&measure_metrics),
            &mut phases,
        );
        access_counts = measure_metrics.access_counts();
        load_operations = measure.load_operations;
        if load_operations > 0 {
            measured_max_load =
                access_counts.iter().copied().max().unwrap_or(0) as f64 / load_operations as f64;
        }
    }

    let suspects = manager.engine().suspects();
    let detection_exact = suspects.to_vec() == killed;
    let trace_fingerprint = transport.trace_fingerprint();
    let mut fingerprint = mix(manager.fingerprint() ^ trace_fingerprint);
    for &e in &epochs {
        fingerprint = mix(fingerprint ^ e);
    }
    for s in suspects.iter() {
        fingerprint = mix(fingerprint ^ (s as u64 + 1));
    }
    fingerprint = mix(fingerprint ^ load_operations);
    fingerprint = mix(fingerprint ^ stale_completed);
    for &c in &access_counts {
        fingerprint = mix(fingerprint ^ c);
    }

    Ok(ReconfigOutcome {
        scenario,
        n,
        b,
        killed,
        healthy_steady,
        reconfigured,
        detect_ticks,
        suspects: suspects.to_vec(),
        detection_exact,
        epochs,
        source,
        initial_load,
        recertified_load,
        access_counts,
        load_operations,
        measured_max_load,
        safety_violations,
        fenced_after_finalize,
        stale_completed,
        trace_fingerprint,
        fingerprint,
        phases,
    })
}

/// Runs the drill on an in-process loopback service: spawns the service
/// (healthy — the crash comes from the drill itself), wraps it in the
/// scenario's [`ChaosTransport`], and wires gate and crash hooks.
///
/// # Errors
///
/// As [`run_reconfigure`].
pub fn run_reconfigure_loopback(
    scenario: ReconfigScenario,
    planner: EpochPlanner,
    suspicion: SuspicionConfig,
    shards: usize,
    config: &ReconfigConfig,
) -> Result<ReconfigOutcome, QuorumError> {
    let n = planner.universe_size();
    let service = Arc::new(LoopbackService::spawn(
        &FaultPlan::none(n),
        shards,
        config.seed,
    ));
    let gate = Arc::clone(service.epoch_gate());
    let chaos = ChaosTransport::new(
        Arc::clone(&service),
        config.seed,
        scenario.id(),
        scenario.chaos_config(),
    );
    let svc = Arc::clone(&service);
    run_reconfigure(
        scenario,
        planner,
        suspicion,
        &chaos,
        gate,
        &move |dead: &[usize]| svc.crash_servers(dead),
        config,
    )
}

/// The splitmix64 finalizer (the same fold the chaos trace uses).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All 5-subsets of 7 servers: 1-masking (any two share >= 3).
    fn five_of_seven() -> Vec<ServerSet> {
        let mut out = Vec::new();
        for a in 0..7 {
            for bb in a + 1..7 {
                out.push(ServerSet::from_indices(
                    7,
                    (0..7).filter(|&i| i != a && i != bb),
                ));
            }
        }
        out
    }

    fn quick() -> ReconfigConfig {
        ReconfigConfig {
            kill: 1,
            offered_rate: 3_000.0,
            healthy_arrivals: 300,
            detect_arrivals: 200,
            migrate_arrivals: 150,
            measure_arrivals: 600,
            probe_arrivals: 80,
            ..ReconfigConfig::default()
        }
    }

    fn drill(seed: u64) -> ReconfigOutcome {
        let planner = EpochPlanner::new(7, 1).with_pool("5of7", five_of_seven());
        run_reconfigure_loopback(
            ReconfigScenario::CleanCrash,
            planner,
            SuspicionConfig::counters_only(),
            2,
            &ReconfigConfig { seed, ..quick() },
        )
        .unwrap()
    }

    #[test]
    fn clean_crash_detects_recertifies_migrates_and_fences() {
        let out = drill(0xd011);
        assert!(out.healthy_steady, "{out:?}");
        assert!(out.reconfigured, "{out:?}");
        assert_eq!(out.suspects, vec![0]);
        assert!(out.detection_exact);
        assert_eq!(out.epochs, vec![0, 1]);
        assert!(out.detect_ticks >= 3, "accrual needs 3 accusing ticks");
        // 5-of-7 over the full universe certifies at 5/7; over 6 survivors
        // the six surviving quorums certify at 5/6.
        assert!(
            (out.initial_load - 5.0 / 7.0).abs() < 1e-6,
            "{}",
            out.initial_load
        );
        assert!(
            (out.recertified_load - 5.0 / 6.0).abs() < 1e-6,
            "{}",
            out.recertified_load
        );
        assert!(matches!(out.source, Some(StrategySource::Pool { .. })));
        // Safety: nothing fabricated, nothing completed at the dead epoch,
        // and the stale probe was fenced in-band.
        assert_eq!(out.safety_violations, 0);
        assert_eq!(out.stale_completed, 0);
        assert!(out.fenced_after_finalize > 0);
        // The dead server carries zero load in the measure phase; the
        // busiest survivor sits near the new certified load (loose band —
        // the bench applies the real 3-sigma check).
        assert_eq!(out.access_counts[0], 0);
        assert!(out.load_operations > 0);
        assert!(
            (out.measured_max_load - out.recertified_load).abs() < 0.1,
            "measured {} vs certified {}",
            out.measured_max_load,
            out.recertified_load
        );
    }

    #[test]
    fn the_drill_replays_byte_identically_from_its_seed() {
        let a = drill(0xfeed);
        let b = drill(0xfeed);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.trace_fingerprint, b.trace_fingerprint);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.suspects, b.suspects);
        assert_eq!(a.detect_ticks, b.detect_ticks);
        assert_eq!(a.access_counts, b.access_counts);
        let c = drill(0xbeef);
        assert_ne!(
            a.trace_fingerprint, c.trace_fingerprint,
            "a different seed must drive a different chaos stream"
        );
    }
}
