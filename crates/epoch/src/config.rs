//! Re-certification: from a survivor mask to a certified epoch configuration.
//!
//! An [`EpochPlanner`] owns the candidate **quorum pools** — explicit quorum
//! lists of the constructions the deployment is willing to serve from (Grid,
//! M-Grid, a threshold system, …), all over one universe. When the suspicion
//! engine shrinks the universe, [`EpochPlanner::recertify`] re-runs the
//! column-generation load oracle over each pool restricted to the survivors
//! ([`optimal_load_oracle_for_survivors`]) and keeps the best certified load
//! — which is how a deployment *switches constructions* mid-life: if every
//! Grid quorum has a dead member but M-Grid quorums survive, the M-Grid pool
//! simply wins (the Grid pool returns [`QuorumError::EmptySystem`] and drops
//! out).
//!
//! When **every** pool is dead the planner falls back to a rotation system
//! built directly on the survivors: with `m` survivors and masking level
//! `b`, each quorum is a cyclic window of `q = ⌈(m + 2b + 1) / 2⌉`
//! survivors, so any two windows intersect in at least `2q − m ≥ 2b + 1`
//! servers — Definition 3.5's masking intersection holds by construction,
//! at load `q / m` (certified through the same oracle). Resilience is
//! traded for liveness; the certificate stays honest about the price.
//!
//! Quorums are always certified **over the original universe**: surviving
//! quorum columns keep full-universe server indices, dead servers simply
//! carry zero load, and the resulting strategy drops into the existing
//! transport and metrics layout with no index translation.

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_core::load::{
    optimal_load_oracle_for_quorums, optimal_load_oracle_for_survivors, CertifiedLoad,
};
use bqs_core::quorum::ExplicitQuorumSystem;
use bqs_core::strategic::StrategicQuorumSystem;

/// Where an epoch's strategy came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategySource {
    /// Re-certified from a registered quorum pool.
    Pool {
        /// Index into the planner's pool list.
        index: usize,
        /// The pool's registered name.
        name: String,
    },
    /// Every pool was dead: the rotation fallback built on the survivors.
    Rotation,
}

impl StrategySource {
    /// Stable machine name for logs and benchmark JSON.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            StrategySource::Pool { name, .. } => name,
            StrategySource::Rotation => "rotation_fallback",
        }
    }
}

/// One epoch's complete serving configuration: the surviving universe, the
/// masking level, and the certified strategy to serve it with.
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// The epoch this configuration serves.
    pub epoch: u64,
    /// The surviving universe (a mask over the *original* universe — dead
    /// servers are absent, capacity is unchanged).
    pub universe: ServerSet,
    /// The masking level the strategy guarantees.
    pub b: usize,
    /// The certified strategy: quorum columns, access weights, load, and the
    /// duality-gap certificate.
    pub certified: CertifiedLoad,
    /// Which pool (or fallback) produced it.
    pub source: StrategySource,
}

impl EpochConfig {
    /// The certified system load `L(Q)` of this epoch's strategy.
    #[must_use]
    pub fn load(&self) -> f64 {
        self.certified.load
    }

    /// Size of the original universe (dead servers included).
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.universe.capacity()
    }

    /// Materialises the configuration as a strategy-driven quorum system the
    /// service clients and the open-loop generator sample from.
    ///
    /// # Errors
    ///
    /// Propagates [`QuorumError`] from system construction — impossible for
    /// a configuration built by a planner (its quorums already validated).
    pub fn strategic_system(
        &self,
    ) -> Result<StrategicQuorumSystem<ExplicitQuorumSystem>, QuorumError> {
        let inner =
            ExplicitQuorumSystem::new(self.universe.capacity(), self.certified.quorums.clone())?;
        StrategicQuorumSystem::from_certified(inner, &self.certified)
    }
}

/// One named candidate pool of quorums.
#[derive(Debug, Clone)]
struct QuorumPool {
    name: String,
    quorums: Vec<ServerSet>,
}

/// The re-certification planner: candidate pools plus the rotation fallback.
#[derive(Debug, Clone)]
pub struct EpochPlanner {
    universe_size: usize,
    b: usize,
    pools: Vec<QuorumPool>,
}

impl EpochPlanner {
    /// A planner over `universe_size` servers at masking level `b`, with no
    /// pools yet (recertification would go straight to the rotation
    /// fallback).
    ///
    /// # Panics
    ///
    /// Panics on an empty universe.
    #[must_use]
    pub fn new(universe_size: usize, b: usize) -> Self {
        assert!(universe_size > 0, "a planner needs a universe");
        EpochPlanner {
            universe_size,
            b,
            pools: Vec::new(),
        }
    }

    /// Registers a named candidate pool. Order is preference order only for
    /// tie-breaking: recertification keeps the pool with the lowest
    /// certified load, first-registered winning exact ties.
    ///
    /// # Panics
    ///
    /// Panics when a quorum's capacity does not match the universe.
    #[must_use]
    pub fn with_pool(mut self, name: impl Into<String>, quorums: Vec<ServerSet>) -> Self {
        assert!(
            quorums.iter().all(|q| q.capacity() == self.universe_size),
            "pool quorums must live in the planner's universe"
        );
        self.pools.push(QuorumPool {
            name: name.into(),
            quorums,
        });
        self
    }

    /// Size of the (original) universe.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The masking level every certified epoch guarantees.
    #[must_use]
    pub fn masking_b(&self) -> usize {
        self.b
    }

    /// Number of registered pools.
    #[must_use]
    pub fn pools(&self) -> usize {
        self.pools.len()
    }

    /// The epoch-0 configuration: recertification over the full universe.
    ///
    /// # Errors
    ///
    /// As [`EpochPlanner::recertify`].
    pub fn initial_config(&self) -> Result<EpochConfig, QuorumError> {
        self.recertify(&ServerSet::full(self.universe_size), 0)
    }

    /// Produces the certified configuration for `epoch` over `survivors`:
    /// the best-load surviving pool, or the rotation fallback when no pool
    /// survives.
    ///
    /// # Errors
    ///
    /// * [`QuorumError::InvalidParameters`] when fewer than `2b + 1`
    ///   survivors remain — no quorum system over them can mask `b` faults,
    ///   so there is nothing safe to reconfigure *to*.
    /// * Certification failures from the load oracle.
    ///
    /// # Panics
    ///
    /// Panics when `survivors` lives in a different universe.
    pub fn recertify(&self, survivors: &ServerSet, epoch: u64) -> Result<EpochConfig, QuorumError> {
        assert_eq!(
            survivors.capacity(),
            self.universe_size,
            "survivor mask must cover the planner's universe"
        );
        let mut best: Option<(usize, &str, CertifiedLoad)> = None;
        for (index, pool) in self.pools.iter().enumerate() {
            let certified = match optimal_load_oracle_for_survivors(
                self.universe_size,
                &pool.quorums,
                survivors,
            ) {
                Ok(certified) => certified,
                Err(QuorumError::EmptySystem) => continue, // pool is dead
                Err(err) => return Err(err),
            };
            let better = best
                .as_ref()
                .is_none_or(|(_, _, incumbent)| certified.load < incumbent.load);
            if better {
                best = Some((index, &pool.name, certified));
            }
        }
        if let Some((index, name, certified)) = best {
            return Ok(EpochConfig {
                epoch,
                universe: survivors.clone(),
                b: self.b,
                certified,
                source: StrategySource::Pool {
                    index,
                    name: name.to_owned(),
                },
            });
        }
        let certified = optimal_load_oracle_for_quorums(
            self.universe_size,
            rotation_quorums(survivors, self.b)?,
        )?;
        Ok(EpochConfig {
            epoch,
            universe: survivors.clone(),
            b: self.b,
            certified,
            source: StrategySource::Rotation,
        })
    }
}

/// The rotation fallback: `m` cyclic windows of `q = ⌈(m + 2b + 1) / 2⌉`
/// over the sorted survivors. Any two windows of size `q` over `m` elements
/// intersect in at least `2q − m ≥ 2b + 1` servers, so the system is
/// `b`-masking by construction; its uniform load is `q / m`.
///
/// # Errors
///
/// [`QuorumError::InvalidParameters`] when `q > m` (fewer than `2b + 1`
/// survivors): no masking system over the survivors exists.
fn rotation_quorums(survivors: &ServerSet, b: usize) -> Result<Vec<ServerSet>, QuorumError> {
    let ordered: Vec<usize> = survivors.iter().collect();
    let m = ordered.len();
    let q = (m + 2 * b + 1).div_ceil(2);
    if q > m {
        return Err(QuorumError::InvalidParameters(format!(
            "rotation fallback needs at least 2b + 1 = {} survivors, got {m}",
            2 * b + 1
        )));
    }
    if q == m {
        // Every window is the whole survivor set.
        return Ok(vec![survivors.clone()]);
    }
    Ok((0..m)
        .map(|start| {
            ServerSet::from_indices(
                survivors.capacity(),
                (0..q).map(|offset| ordered[(start + offset) % m]),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_core::load::CERTIFIED_GAP_TOLERANCE;

    /// All `k`-subsets of `0..n` as quorums (the `k`-of-`n` threshold pool).
    fn k_of_n(n: usize, k: usize) -> Vec<ServerSet> {
        fn rec(n: usize, k: usize, start: usize, acc: &mut Vec<usize>, out: &mut Vec<ServerSet>) {
            if acc.len() == k {
                out.push(ServerSet::from_indices(n, acc.iter().copied()));
                return;
            }
            for i in start..n {
                acc.push(i);
                rec(n, k, i + 1, acc, out);
                acc.pop();
            }
        }
        let mut out = Vec::new();
        rec(n, k, 0, &mut Vec::new(), &mut out);
        out
    }

    #[test]
    fn initial_config_certifies_the_best_pool_over_the_full_universe() {
        // Pool "wide" (4-of-5, load 4/5) vs pool "tight" (a single quorum of
        // all 5, load 1): the planner must keep the lower load.
        let planner = EpochPlanner::new(5, 1)
            .with_pool("all", vec![ServerSet::full(5)])
            .with_pool("wide", k_of_n(5, 4));
        let config = planner.initial_config().unwrap();
        assert_eq!(config.epoch, 0);
        assert_eq!(config.universe.len(), 5);
        assert!((config.load() - 0.8).abs() < 1e-6, "load {}", config.load());
        assert_eq!(
            config.source,
            StrategySource::Pool {
                index: 1,
                name: "wide".into()
            }
        );
        assert!(config.certified.gap <= CERTIFIED_GAP_TOLERANCE);
        let system = config.strategic_system().unwrap();
        assert!((system.strategy_load() - config.load()).abs() < 1e-9);
    }

    #[test]
    fn recertification_switches_pools_when_the_preferred_one_dies() {
        // Pool 0 contains server 4 in every quorum; pool 1 avoids it.
        let needs_4: Vec<ServerSet> = k_of_n(5, 4).into_iter().filter(|q| q.contains(4)).collect();
        let avoids_4 = vec![ServerSet::from_indices(5, [0, 1, 2, 3])];
        let planner = EpochPlanner::new(5, 1)
            .with_pool("needs-4", needs_4)
            .with_pool("avoids-4", avoids_4);
        let survivors = ServerSet::from_indices(5, [0, 1, 2, 3]);
        let config = planner.recertify(&survivors, 1).unwrap();
        assert_eq!(config.epoch, 1);
        assert_eq!(
            config.source,
            StrategySource::Pool {
                index: 1,
                name: "avoids-4".into()
            }
        );
        // One quorum of 4 over 4 survivors: load 1 on each survivor, zero on
        // the dead server.
        assert!((config.load() - 1.0).abs() < 1e-9);
        assert!(config
            .certified
            .quorums
            .iter()
            .all(|q| q.is_subset_of(&survivors) && q.capacity() == 5));
    }

    #[test]
    fn rotation_fallback_kicks_in_when_every_pool_is_dead_and_is_masking() {
        // The only pool needs server 0; survivors exclude it.
        let planner = EpochPlanner::new(7, 1).with_pool("dead", vec![ServerSet::full(7)]);
        let survivors = ServerSet::from_indices(7, [1, 2, 3, 4, 5, 6]);
        let config = planner.recertify(&survivors, 2).unwrap();
        assert_eq!(config.source, StrategySource::Rotation);
        // m = 6 survivors, q = ceil((6 + 3) / 2) = 5: load 5/6, and any two
        // windows intersect in >= 2q - m = 4 >= 2b + 1 = 3 servers.
        assert!(
            (config.load() - 5.0 / 6.0).abs() < 1e-6,
            "{}",
            config.load()
        );
        let quorums = &config.certified.quorums;
        assert_eq!(quorums.len(), 6);
        for (i, a) in quorums.iter().enumerate() {
            assert_eq!(a.len(), 5);
            assert!(a.is_subset_of(&survivors));
            for b_q in &quorums[i + 1..] {
                assert!(a.intersection_size(b_q) >= 3);
            }
        }
    }

    #[test]
    fn too_few_survivors_is_a_refusal_not_a_panic() {
        let planner = EpochPlanner::new(5, 1).with_pool("all", vec![ServerSet::full(5)]);
        let survivors = ServerSet::from_indices(5, [0, 1]);
        let err = planner.recertify(&survivors, 1).unwrap_err();
        assert!(
            matches!(err, QuorumError::InvalidParameters(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn rotation_with_exactly_2b_plus_1_survivors_is_the_single_full_window() {
        let planner = EpochPlanner::new(6, 1);
        let survivors = ServerSet::from_indices(6, [1, 3, 5]);
        let config = planner.recertify(&survivors, 4).unwrap();
        assert_eq!(config.source, StrategySource::Rotation);
        assert_eq!(config.certified.quorums.len(), 1);
        assert_eq!(config.certified.quorums[0].to_vec(), vec![1, 3, 5]);
        assert!((config.load() - 1.0).abs() < 1e-9);
    }
}
