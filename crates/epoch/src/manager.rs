//! The epoch manager: suspicion → re-certification → two-phase handoff.
//!
//! [`EpochManager::tick`] is the whole control loop, called from the harness
//! at **operation-stream boundaries** (between open-loop bursts, between a
//! client's operations — never inside a fan-out):
//!
//! 1. With a handoff pending, the tick **finalizes** it: the previous tick
//!    opened the `{e, e + 1}` gate window and published the epoch-`e + 1`
//!    configuration, and since ticks sit at stream boundaries every
//!    epoch-`e` access issued before that has drained by now. The gate
//!    collapses to `[e + 1, e + 1]` and stragglers get fenced in-band.
//! 2. Otherwise the suspicion engine consumes the evidence delta. If the
//!    suspect set is unchanged, the tick is a no-op ([`TickOutcome::Steady`]).
//! 3. On a change, the planner re-certifies over the survivors, the gate
//!    window **opens** to `{e, e + 1}` *before* the new configuration is
//!    returned to anyone, and the handoff is left pending for the next tick
//!    to finalize.
//!
//! Ordering is the safety argument: open-before-publish means no epoch-`e+1`
//! request can reach a gate that would fence it while epoch-`e` requests are
//! still legal; finalize-after-drain means no epoch-`e` request is in flight
//! when `e` stops being served. Each fan-out carries one epoch stamp, each
//! epoch maps to one strategy, so no quorum ever mixes strategies — the
//! `2b + 1` intersection backing every read is always between quorums of a
//! single certified system.

use std::sync::Arc;

use bqs_core::bitset::ServerSet;
use bqs_core::error::QuorumError;
use bqs_service::metrics::ServiceMetrics;
use bqs_sim::epoch::EpochGate;

use crate::config::{EpochConfig, EpochPlanner};
use crate::suspicion::{SuspicionConfig, SuspicionEngine};

/// What one manager tick did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// No suspicion change, no pending handoff.
    Steady,
    /// A pending handoff was finalized: the gate now serves only `epoch`.
    Finalized {
        /// The epoch the gate collapsed to.
        epoch: u64,
    },
    /// The suspect set changed: a re-certified configuration was installed
    /// as pending and the gate window opened to `{from, to}`.
    Reconfigured {
        /// The epoch being drained.
        from: u64,
        /// The freshly certified epoch.
        to: u64,
    },
}

/// A record of one reconfiguration, kept for reporting and fingerprinting.
#[derive(Debug, Clone)]
pub struct EpochTransition {
    /// Epoch before the handoff.
    pub from: u64,
    /// Epoch after the handoff.
    pub to: u64,
    /// The suspect set that triggered it.
    pub suspects: ServerSet,
    /// The surviving universe certified for `to`.
    pub survivors: ServerSet,
    /// The new certified load `L(Q)`.
    pub certified_load: f64,
    /// The engine tick count when the transition fired.
    pub tick: u64,
}

/// The reconfiguration control loop for one service instance.
#[derive(Debug)]
pub struct EpochManager {
    planner: EpochPlanner,
    engine: SuspicionEngine,
    gate: Arc<EpochGate>,
    current: EpochConfig,
    pending: Option<EpochConfig>,
    transitions: Vec<EpochTransition>,
}

impl EpochManager {
    /// Builds the manager, certifying the epoch-0 configuration over the
    /// full universe. The gate is the service's (already at epoch 0).
    ///
    /// # Errors
    ///
    /// Certification failures from [`EpochPlanner::initial_config`].
    pub fn new(
        planner: EpochPlanner,
        suspicion: SuspicionConfig,
        gate: Arc<EpochGate>,
    ) -> Result<Self, QuorumError> {
        let current = planner.initial_config()?;
        let engine = SuspicionEngine::new(planner.universe_size(), suspicion);
        Ok(EpochManager {
            planner,
            engine,
            gate,
            current,
            pending: None,
            transitions: Vec::new(),
        })
    }

    /// The configuration new accesses should be issued under: the pending
    /// one during a handoff (its epoch is already accepted — the window
    /// opened before it was published), the current one otherwise.
    #[must_use]
    pub fn active(&self) -> &EpochConfig {
        self.pending.as_ref().unwrap_or(&self.current)
    }

    /// The finalized configuration (excludes a pending handoff).
    #[must_use]
    pub fn current(&self) -> &EpochConfig {
        &self.current
    }

    /// Whether a handoff is waiting for its finalizing tick.
    #[must_use]
    pub fn handoff_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The suspicion engine (read-only).
    #[must_use]
    pub fn engine(&self) -> &SuspicionEngine {
        &self.engine
    }

    /// Every reconfiguration so far, in order.
    #[must_use]
    pub fn transitions(&self) -> &[EpochTransition] {
        &self.transitions
    }

    /// One control-loop step; see the module docs for the phase ordering.
    ///
    /// # Errors
    ///
    /// Re-certification failures ([`EpochPlanner::recertify`]) — e.g. fewer
    /// than `2b + 1` survivors. The manager stays on the current
    /// configuration; serving a depleted universe beats serving nothing.
    pub fn tick(&mut self, metrics: &ServiceMetrics) -> Result<TickOutcome, QuorumError> {
        if let Some(next) = self.pending.take() {
            // Finalize: ticks sit at operation-stream boundaries, so every
            // access of the draining epoch has completed or been abandoned.
            self.gate.finalize(next.epoch);
            let epoch = next.epoch;
            self.current = next;
            return Ok(TickOutcome::Finalized { epoch });
        }
        if !self.engine.tick(metrics) {
            return Ok(TickOutcome::Steady);
        }
        let survivors = self.engine.survivors();
        if survivors == self.current.universe {
            // The flip flipped back within one tick (possible when several
            // servers change state at once); nothing to re-certify.
            return Ok(TickOutcome::Steady);
        }
        let next = self.planner.recertify(&survivors, self.current.epoch + 1)?;
        // Open the window *before* the configuration escapes this method:
        // the first epoch-`to` fan-out must find every gate already willing.
        self.gate.open_window(next.epoch);
        let outcome = TickOutcome::Reconfigured {
            from: self.current.epoch,
            to: next.epoch,
        };
        self.transitions.push(EpochTransition {
            from: self.current.epoch,
            to: next.epoch,
            suspects: self.engine.suspects(),
            survivors,
            certified_load: next.load(),
            tick: self.engine.ticks(),
        });
        self.pending = Some(next);
        Ok(outcome)
    }

    /// A splitmix64 fold of the transition history — epochs, suspect masks,
    /// survivor masks, certified-load bits. Two runs with identical
    /// reconfiguration behaviour produce identical fingerprints; the replay
    /// gate folds this with the chaos trace fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0x0e9c_0c0d_5eed_u64;
        for t in &self.transitions {
            h = mix(h ^ t.from);
            h = mix(h ^ t.to);
            h = mix(h ^ t.tick);
            for s in t.suspects.iter() {
                h = mix(h ^ (s as u64 + 1));
            }
            for s in t.survivors.iter() {
                h = mix(h ^ ((s as u64) << 32));
            }
            h = mix(h ^ t.certified_load.to_bits());
        }
        h
    }
}

/// The splitmix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-of-5 threshold pool (1-masking: any two quorums share 3 servers).
    fn four_of_five() -> Vec<ServerSet> {
        (0..5)
            .map(|out| ServerSet::from_indices(5, (0..5).filter(|&i| i != out)))
            .collect()
    }

    fn manager() -> EpochManager {
        let planner = EpochPlanner::new(5, 1).with_pool("4of5", four_of_five());
        EpochManager::new(
            planner,
            SuspicionConfig::counters_only(),
            Arc::new(EpochGate::new()),
        )
        .unwrap()
    }

    /// Evidence making `dead` look crashed and everyone else healthy.
    fn evidence_round(metrics: &ServiceMetrics, dead: &[usize]) {
        for s in 0..metrics.universe_size() {
            if dead.contains(&s) {
                for _ in 0..16 {
                    metrics.record_server_no_answer(s);
                }
                for _ in 0..4 {
                    metrics.record_server_answer(s, 1_000);
                }
            } else {
                for _ in 0..20 {
                    metrics.record_server_answer(s, 1_000);
                }
                metrics.record_server_no_answer(s);
            }
        }
    }

    #[test]
    fn detect_open_finalize_in_exactly_that_order() {
        let mut m = manager();
        let gate = Arc::clone(&m.gate);
        let metrics = ServiceMetrics::new(5);
        assert_eq!(m.active().epoch, 0);
        assert_eq!(gate.window(), (0, 0));

        // Healthy ticks: steady, gate untouched.
        evidence_round(&metrics, &[]);
        assert_eq!(m.tick(&metrics).unwrap(), TickOutcome::Steady);
        assert_eq!(gate.window(), (0, 0));

        // Three accusing ticks cross the accrual threshold.
        for round in 0..3 {
            evidence_round(&metrics, &[4]);
            let outcome = m.tick(&metrics).unwrap();
            if round < 2 {
                assert_eq!(outcome, TickOutcome::Steady);
            } else {
                assert_eq!(outcome, TickOutcome::Reconfigured { from: 0, to: 1 });
            }
        }
        // The handoff is pending: window open, active config is epoch 1,
        // current still epoch 0.
        assert!(m.handoff_pending());
        assert_eq!(gate.window(), (0, 1));
        assert_eq!(m.active().epoch, 1);
        assert_eq!(m.current().epoch, 0);
        assert_eq!(m.active().universe.to_vec(), vec![0, 1, 2, 3]);
        // 4-of-5 has exactly one quorum avoiding server 4.
        assert!((m.active().load() - 1.0).abs() < 1e-9);

        // Next tick finalizes regardless of evidence.
        assert_eq!(
            m.tick(&metrics).unwrap(),
            TickOutcome::Finalized { epoch: 1 }
        );
        assert_eq!(gate.window(), (1, 1));
        assert_eq!(m.current().epoch, 1);
        assert!(!m.handoff_pending());
        assert_eq!(m.transitions().len(), 1);
        assert_eq!(m.transitions()[0].suspects.to_vec(), vec![4]);

        // Steady afterwards: the suspect set is stable.
        evidence_round(&metrics, &[4]);
        assert_eq!(m.tick(&metrics).unwrap(), TickOutcome::Steady);
    }

    #[test]
    fn transient_noise_never_moves_the_gate() {
        let mut m = manager();
        let gate = Arc::clone(&m.gate);
        let metrics = ServiceMetrics::new(5);
        // One bad tick, then clean ones: hysteresis absorbs it.
        evidence_round(&metrics, &[2]);
        assert_eq!(m.tick(&metrics).unwrap(), TickOutcome::Steady);
        for _ in 0..4 {
            evidence_round(&metrics, &[]);
            assert_eq!(m.tick(&metrics).unwrap(), TickOutcome::Steady);
        }
        assert_eq!(gate.window(), (0, 0));
        assert!(m.transitions().is_empty());
        assert_eq!(m.active().epoch, 0);
    }

    #[test]
    fn depleted_universe_is_an_error_and_keeps_serving_the_old_epoch() {
        let mut m = manager();
        let metrics = ServiceMetrics::new(5);
        // Kill 3 of 5: 2 survivors < 2b + 1 = 3.
        for _ in 0..3 {
            evidence_round(&metrics, &[0, 1, 2]);
            let last = m.tick(&metrics);
            if m.engine().suspects().len() == 3 {
                assert!(last.is_err(), "3 suspects leave too few survivors");
            }
        }
        assert_eq!(m.current().epoch, 0, "no unsafe reconfiguration happened");
        assert_eq!(m.gate.window(), (0, 0));
    }

    #[test]
    fn fingerprint_tracks_the_transition_history() {
        let mut a = manager();
        let b = manager();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let metrics = ServiceMetrics::new(5);
        for _ in 0..3 {
            evidence_round(&metrics, &[4]);
            let _ = a.tick(&metrics);
        }
        assert_ne!(
            a.fingerprint(),
            b.fingerprint(),
            "a reconfiguration must change the fold"
        );
    }
}
