//! End-to-end reconfiguration tests at the client-protocol level.
//!
//! The runner's unit tests exercise the drill through the open-loop
//! generator; these tests pin the per-client contract of the two-phase
//! handoff instead:
//!
//! * an in-flight client of epoch `e` keeps completing — in its origin
//!   epoch, under its origin strategy — for as long as the `{e, e + 1}`
//!   window is open;
//! * after finalize, the same client is fenced in-band, terminally (no
//!   retry burn, no abort accounting), told the current epoch, and recovers
//!   by adopting the re-certified strategy at `e + 1`;
//! * the register's contents survive the handoff: a value written at epoch
//!   `e` is read back at epoch `e + 1` through the *new* quorums (the
//!   surviving `2b + 1` intersection carries it across);
//! * no operation ever mixes epochs: every completed quorum was sampled
//!   from exactly one epoch's strategy, which the fencing outcome makes
//!   observable (a mixed fan-out would have completed instead of fencing).

use std::sync::Arc;

use bqs_chaos::ReconfigScenario;
use bqs_core::bitset::ServerSet;
use bqs_epoch::prelude::*;
use bqs_service::prelude::*;
use bqs_sim::epoch::EpochGate;
use bqs_sim::fault::FaultPlan;
use bqs_sim::server::Entry;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All 5-subsets of 7 servers: a 1-masking pool (any two share >= 3).
fn five_of_seven() -> Vec<ServerSet> {
    let mut out = Vec::new();
    for a in 0..7 {
        for b in a + 1..7 {
            out.push(ServerSet::from_indices(
                7,
                (0..7).filter(|&i| i != a && i != b),
            ));
        }
    }
    out
}

/// Evidence snapshots that make `dead` look crashed (heavy no-answer ratio)
/// and everyone else healthy.
fn evidence_round(metrics: &ServiceMetrics, dead: &[usize]) {
    for s in 0..metrics.universe_size() {
        if dead.contains(&s) {
            for _ in 0..16 {
                metrics.record_server_no_answer(s);
            }
            for _ in 0..4 {
                metrics.record_server_answer(s, 1_000);
            }
        } else {
            for _ in 0..20 {
                metrics.record_server_answer(s, 1_000);
            }
            metrics.record_server_no_answer(s);
        }
    }
}

#[test]
fn in_flight_clients_drain_at_their_epoch_then_fence_and_recover() {
    let n = 7;
    let service = LoopbackService::spawn(&FaultPlan::none(n), 2, 0xe2e);
    let gate: Arc<EpochGate> = Arc::clone(service.epoch_gate());
    let planner = EpochPlanner::new(n, 1).with_pool("5of7", five_of_seven());
    let mut manager =
        EpochManager::new(planner, SuspicionConfig::counters_only(), Arc::clone(&gate)).unwrap();
    let responsive = ServerSet::full(n);
    let mut rng = StdRng::seed_from_u64(7);

    // An epoch-0 client under the epoch-0 strategy.
    let sys0 = manager.current().strategic_system().unwrap();
    let metrics0 = Arc::new(ServiceMetrics::new(n));
    let mut old_client = ServiceClient::new(&sys0, &service, responsive.clone(), 1)
        .with_origin(1)
        .with_metrics(Arc::clone(&metrics0));
    let marker = Entry {
        timestamp: 41,
        value: authentic_value(41),
    };
    old_client.write(marker, &mut rng).unwrap();
    assert_eq!(old_client.read(&mut rng).unwrap().entry, marker);

    // Server 6 goes bad; three accusing ticks reconfigure to epoch 1 and
    // open the {0, 1} window.
    let evidence = ServiceMetrics::new(n);
    let outcome = loop {
        evidence_round(&evidence, &[6]);
        match manager.tick(&evidence).unwrap() {
            TickOutcome::Steady => {}
            other => break other,
        }
    };
    assert_eq!(outcome, TickOutcome::Reconfigured { from: 0, to: 1 });
    assert_eq!(gate.window(), (0, 1));

    // The draining epoch-0 client still completes — origin epoch, origin
    // strategy — while an epoch-1 client is already being served.
    let in_flight = Entry {
        timestamp: 43,
        value: authentic_value(43),
    };
    let drained_quorum = old_client.write(in_flight, &mut rng).unwrap();
    assert_eq!(old_client.read(&mut rng).unwrap().entry, in_flight);

    let active = manager.active().clone();
    assert_eq!(active.epoch, 1);
    assert!(
        !active.universe.contains(6),
        "survivors exclude the suspect"
    );
    let sys1 = active.strategic_system().unwrap();
    let mut new_client = ServiceClient::new(&sys1, &service, responsive.clone(), 1)
        .with_origin(2)
        .with_epoch(active.epoch);
    let migrated = new_client.read(&mut rng).unwrap();
    // Epoch-1 quorums avoid the suspect entirely — and the epoch-0 write is
    // visible through them (the surviving intersection carries it across).
    assert!(!migrated.quorum.contains(6));
    assert_eq!(migrated.entry, in_flight);
    // Meanwhile the epoch-0 quorum was sampled from the old strategy: the
    // two clients never shared a fan-out, only the register.
    assert_eq!(drained_quorum.len(), 5);

    // Finalize: the drained epoch collapses out of the window.
    assert_eq!(
        manager.tick(&evidence).unwrap(),
        TickOutcome::Finalized { epoch: 1 }
    );
    assert_eq!(gate.window(), (1, 1));

    // The straggler is fenced in-band: terminal, no retries, no aborts, and
    // it learns the current epoch.
    let fenced = old_client.read(&mut rng).unwrap_err();
    assert_eq!(fenced, ServiceError::EpochFenced { current: 1 });
    assert_eq!(
        old_client.write(
            Entry {
                timestamp: 99,
                value: authentic_value(99),
            },
            &mut rng,
        ),
        Err(ServiceError::EpochFenced { current: 1 })
    );
    assert_eq!(metrics0.retries(), 0, "fencing must bypass the retry loop");
    assert_eq!(metrics0.aborts(), 0, "fencing is a signal, not a failure");

    // Recovery: adopt the reported epoch and the re-certified strategy.
    let mut recovered = ServiceClient::new(&sys1, &service, responsive, 1)
        .with_origin(1)
        .with_epoch(1);
    assert_eq!(recovered.read(&mut rng).unwrap().entry, in_flight);
    let fresh = Entry {
        timestamp: 47,
        value: authentic_value(47),
    };
    recovered.write(fresh, &mut rng).unwrap();
    assert_eq!(new_client.read(&mut rng).unwrap().entry, fresh);
}

#[test]
fn full_reconfigure_loop_replays_identically_under_chaos_drops() {
    // The lossiest scenario family: silent drops while the crash happens.
    // Drops, detection ticks, suspect set, epoch history, and the measure
    // phase's access counts must all be pure functions of (seed, scenario).
    let drill = || {
        let planner = EpochPlanner::new(7, 1).with_pool("5of7", five_of_seven());
        run_reconfigure_loopback(
            ReconfigScenario::CrashWithDrops,
            planner,
            SuspicionConfig::counters_only(),
            2,
            &ReconfigConfig {
                seed: 0xd20b_5eed,
                kill: 1,
                offered_rate: 3_000.0,
                healthy_arrivals: 300,
                detect_arrivals: 200,
                migrate_arrivals: 150,
                measure_arrivals: 600,
                probe_arrivals: 80,
                ..ReconfigConfig::default()
            },
        )
        .unwrap()
    };
    let a = drill();
    let b = drill();
    assert!(a.reconfigured, "{a:?}");
    assert!(a.detection_exact, "{a:?}");
    assert_eq!(a.safety_violations, 0);
    assert_eq!(a.stale_completed, 0);
    assert!(a.fenced_after_finalize > 0);
    assert_eq!(a.fingerprint, b.fingerprint);
    assert_eq!(a.trace_fingerprint, b.trace_fingerprint);
    assert_eq!(a.detect_ticks, b.detect_ticks);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.suspects, b.suspects);
    assert_eq!(a.access_counts, b.access_counts);
    assert_eq!(a.load_operations, b.load_operations);
}
