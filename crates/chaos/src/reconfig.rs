//! Named crash-then-reconfigure scenario families.
//!
//! A [`ReconfigScenario`] names the *environment* a reconfiguration drill
//! runs under: which transport perturbation is active while `k` servers are
//! crashed mid-run and the epoch machinery (suspicion engine →
//! re-certification → two-phase client migration, all in `bqs-epoch`) detects
//! and routes around them. The definitions live here — not in `bqs-epoch` —
//! so the chaos crate stays dependency-free of the epoch manager while the
//! manager's end-to-end runner and the `bench_reconfig` harness can share
//! one vocabulary of named, seeded, replayable environments.
//!
//! Each family keeps its perturbation *deterministic in the chaos stream*
//! (drops and delays are keyed by request id, never by wall clock), so a
//! whole reconfiguration run — detection tick count, suspect set, epoch
//! history — replays identically from its `(seed, scenario)` pair.

use std::time::Duration;

use crate::transport::ChaosConfig;

/// The crash-then-reconfigure scenario families: what the network is doing
/// while the epoch machinery detects and survives a `k`-server crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigScenario {
    /// A quiet network: the crash is the only perturbation. The baseline —
    /// detection latency here is the suspicion engine's floor.
    CleanCrash,
    /// Base delay plus jitter on every request while the crash happens:
    /// reordered evidence must not confuse the detector, and the transient
    /// slowness of *healthy* servers must not trigger churn (the hysteresis
    /// half of the accrual detector).
    CrashUnderJitter,
    /// Silent drops alongside the crash: the detector must separate lossy
    /// links (occasional no-answers from everyone) from dead servers
    /// (persistent no-answers from the crashed set).
    CrashWithDrops,
}

impl ReconfigScenario {
    /// Every family, in sweep order.
    pub const ALL: [ReconfigScenario; 3] = [
        ReconfigScenario::CleanCrash,
        ReconfigScenario::CrashUnderJitter,
        ReconfigScenario::CrashWithDrops,
    ];

    /// Stable machine name (used in benchmark JSON and logs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ReconfigScenario::CleanCrash => "clean_crash",
            ReconfigScenario::CrashUnderJitter => "crash_under_jitter",
            ReconfigScenario::CrashWithDrops => "crash_with_drops",
        }
    }

    /// Stable numeric id mixed into the chaos decision stream (disjoint from
    /// the [`crate::ChaosScenario`] id space).
    #[must_use]
    pub fn id(self) -> u64 {
        match self {
            ReconfigScenario::CleanCrash => 9,
            ReconfigScenario::CrashUnderJitter => 10,
            ReconfigScenario::CrashWithDrops => 11,
        }
    }

    /// The transport perturbation active throughout the drill. Delays stay
    /// far under any reasonable operation deadline: chaos must slow evidence
    /// down, not fabricate no-answer evidence against healthy servers.
    #[must_use]
    pub fn chaos_config(self) -> ChaosConfig {
        match self {
            ReconfigScenario::CleanCrash => ChaosConfig::default(),
            ReconfigScenario::CrashUnderJitter => ChaosConfig {
                delay_base: Duration::from_micros(100),
                delay_jitter: Duration::from_micros(400),
                ..ChaosConfig::default()
            },
            ReconfigScenario::CrashWithDrops => ChaosConfig {
                drop_per_mille: 12,
                detected_drops: false, // true silence: deadlines catch it
                ..ChaosConfig::default()
            },
        }
    }

    /// The deterministic kill set for a drill crashing `k` of `n` servers:
    /// the first `k` indices. Crashing a fixed prefix keeps the survivor
    /// mask — and therefore the re-certified strategy — a pure function of
    /// `(n, k)`, which the replay-determinism gate relies on.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n` (a drill must leave survivors).
    #[must_use]
    pub fn kill_set(self, n: usize, k: usize) -> Vec<usize> {
        assert!(k < n, "a reconfiguration drill must leave survivors");
        (0..k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_distinct_names_and_ids() {
        let mut names: Vec<_> = ReconfigScenario::ALL.iter().map(|s| s.name()).collect();
        let mut ids: Vec<_> = ReconfigScenario::ALL.iter().map(|s| s.id()).collect();
        names.sort_unstable();
        names.dedup();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(names.len(), ReconfigScenario::ALL.len());
        assert_eq!(ids.len(), ReconfigScenario::ALL.len());
        // And the id space stays disjoint from the masking families'.
        for family in crate::ChaosScenario::ALL {
            assert!(!ids.contains(&family.id()));
        }
    }

    #[test]
    fn kill_sets_are_deterministic_prefixes() {
        let kill = ReconfigScenario::CleanCrash.kill_set(25, 3);
        assert_eq!(kill, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "must leave survivors")]
    fn killing_the_whole_universe_is_rejected() {
        let _ = ReconfigScenario::CleanCrash.kill_set(4, 4);
    }
}
