//! Named chaos scenario families and the invariant-checking runner.
//!
//! A [`ChaosScenario`] bundles a [`ChaosConfig`] (the transport perturbation)
//! with a matching [`FaultPlan`] (the Byzantine server behaviour), sized for a
//! given fault count. Running a family at `faults = b` must preserve both
//! masking invariants (value authenticity + read-your-writes); re-running the
//! *same* family at `faults = b + 1` must break at least one of them
//! *detectably* — the safety tally in [`ScenarioOutcome`] goes non-zero. That
//! contrast, swept across every family and every transport backend, is the
//! empirical form of the paper's claim that the `2b + 1` intersection bound
//! is exactly tight.
//!
//! The runner is deliberately a *single-writer* closed loop: the paper's
//! register is single-writer, which makes read-your-writes a sharp invariant
//! (any completed read older than the last completed write is a violation,
//! no concurrency excuses), and a sequential client makes the chaos decision
//! stream — and therefore the whole run — a pure function of the seed.

use std::sync::Arc;
use std::time::Duration;

use bqs_core::bitset::ServerSet;
use bqs_core::quorum::QuorumSystem;
use bqs_service::client::{ServiceClient, ServiceError};
use bqs_service::metrics::ServiceMetrics;
use bqs_service::runner::authentic_value;
use bqs_service::shard::{LoopbackService, TimestampOracle};
use bqs_service::transport::Transport;
use bqs_sim::client::ProtocolError;
use bqs_sim::fault::FaultPlan;
use bqs_sim::server::{ByzantineStrategy, Entry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::transport::{ChaosConfig, ChaosTransport};

/// The chaos scenario families. Each pairs a transport perturbation with the
/// Byzantine strategy it stresses; see [`ChaosScenario::chaos_config`] and
/// [`ChaosScenario::fault_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// Base delay plus jitter on every request, against value fabrication:
    /// masking must be latency-oblivious.
    DelayJitter,
    /// Silent (undetected) drops against fabrication: the client's reply
    /// deadline and bounded jittered retry are the recovery path.
    DropRetry,
    /// Message duplication against *per-client* equivocation: a duplicated
    /// reply must never lend a Byzantine server `b + 1` support by echo.
    Duplicate,
    /// Heavy jitter (aggressive reordering) against fabrication: replica
    /// timestamp guards make delivery order irrelevant.
    Reorder,
    /// An asymmetric partition (one server unreachable on the request
    /// direction, unbeknownst to the failure detector) *plus* fabrication on
    /// other servers: writes retry around the cut, reads absorb it in-band.
    Partition,
    /// Slow paths on the Byzantine servers combined with stale-epoch replay:
    /// the adversary serves old-but-authentic values late.
    SlowServers,
    /// The strategy-aware attack: fabrication concentrated on the
    /// highest-weight servers of the published access strategy
    /// ([`FaultPlan::targeted_by_weight`]).
    Targeted,
    /// The timeout-inflation adversary: the Byzantine servers delay every
    /// reply to just under the client's deadline, so the timeout/no-answer
    /// counters never move — the only evidence against them is their
    /// towering per-server latency tail (the suspicion engine's p99 branch).
    TimeoutInflation,
}

impl ChaosScenario {
    /// Every family, in sweep order.
    pub const ALL: [ChaosScenario; 8] = [
        ChaosScenario::DelayJitter,
        ChaosScenario::DropRetry,
        ChaosScenario::Duplicate,
        ChaosScenario::Reorder,
        ChaosScenario::Partition,
        ChaosScenario::SlowServers,
        ChaosScenario::Targeted,
        ChaosScenario::TimeoutInflation,
    ];

    /// Stable machine name (used in benchmark JSON and logs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::DelayJitter => "delay_jitter",
            ChaosScenario::DropRetry => "drop_retry",
            ChaosScenario::Duplicate => "duplicate",
            ChaosScenario::Reorder => "reorder",
            ChaosScenario::Partition => "partition",
            ChaosScenario::SlowServers => "slow_servers",
            ChaosScenario::Targeted => "targeted",
            ChaosScenario::TimeoutInflation => "timeout_inflation",
        }
    }

    /// Stable numeric id mixed into the chaos decision stream, so two
    /// families sharing a seed still perturb differently.
    #[must_use]
    pub fn id(self) -> u64 {
        match self {
            ChaosScenario::DelayJitter => 1,
            ChaosScenario::DropRetry => 2,
            ChaosScenario::Duplicate => 3,
            ChaosScenario::Reorder => 4,
            ChaosScenario::Partition => 5,
            ChaosScenario::SlowServers => 6,
            ChaosScenario::Targeted => 7,
            ChaosScenario::TimeoutInflation => 8,
        }
    }

    /// The transport perturbation for a universe of `n` servers.
    ///
    /// Delays are kept well under the runner's reply deadline so that *when*
    /// a reply arrives never decides *whether* it arrives — timing noise must
    /// not flip a deterministic outcome.
    #[must_use]
    pub fn chaos_config(self, n: usize) -> ChaosConfig {
        match self {
            ChaosScenario::DelayJitter => ChaosConfig {
                delay_base: Duration::from_micros(100),
                delay_jitter: Duration::from_micros(300),
                ..ChaosConfig::default()
            },
            ChaosScenario::DropRetry => ChaosConfig {
                drop_per_mille: 30,
                detected_drops: false, // true silence: deadlines + retries
                ..ChaosConfig::default()
            },
            ChaosScenario::Duplicate => ChaosConfig {
                duplicate_per_mille: 300,
                ..ChaosConfig::default()
            },
            ChaosScenario::Reorder => ChaosConfig {
                delay_jitter: Duration::from_micros(600),
                ..ChaosConfig::default()
            },
            ChaosScenario::Partition => ChaosConfig {
                partitioned: vec![n - 1],
                ..ChaosConfig::default()
            },
            ChaosScenario::SlowServers => ChaosConfig {
                slow_servers: Vec::new(), // filled per fault count below
                slow_extra: Duration::from_micros(400),
                ..ChaosConfig::default()
            },
            ChaosScenario::Targeted => ChaosConfig::default(),
            ChaosScenario::TimeoutInflation => ChaosConfig {
                slow_servers: Vec::new(), // filled per fault count below
                // Far above any honest round trip, comfortably below every
                // runner's reply deadline (the tightest is 25 ms in this
                // crate's own tests): the inflated replies always *arrive*,
                // so timeouts and retries stay at zero and only the latency
                // histogram betrays the attacker.
                slow_extra: Duration::from_millis(18),
                ..ChaosConfig::default()
            },
        }
    }

    /// As [`ChaosScenario::chaos_config`], with the parts that depend on the
    /// fault placement (the slow-server set) filled in.
    #[must_use]
    pub fn chaos_config_for(self, n: usize, faults: usize) -> ChaosConfig {
        let mut config = self.chaos_config(n);
        if matches!(
            self,
            ChaosScenario::SlowServers | ChaosScenario::TimeoutInflation
        ) {
            config.slow_servers = (0..faults).collect();
        }
        config
    }

    /// The Byzantine fault plan at `faults` Byzantine servers. `weights` is
    /// the published access strategy (required by
    /// [`ChaosScenario::Targeted`], ignored elsewhere); without weights the
    /// targeted family falls back to the first `faults` servers.
    ///
    /// The partition family keeps its partitioned server (`n - 1`) disjoint
    /// from the Byzantine coalition so the b / b+1 contrast is carried by the
    /// coalition alone.
    ///
    /// # Panics
    ///
    /// Panics if `faults` exceeds what the placement can accommodate
    /// (`faults > n`, or `faults >= n` for the partition family).
    #[must_use]
    pub fn fault_plan(self, n: usize, faults: usize, weights: Option<&[f64]>) -> FaultPlan {
        match self {
            ChaosScenario::DelayJitter | ChaosScenario::DropRetry | ChaosScenario::Reorder => {
                byzantine_prefix(
                    n,
                    faults,
                    ByzantineStrategy::FabricateHighTimestamp { value: 0xDEAD },
                )
            }
            ChaosScenario::Duplicate => byzantine_prefix(
                n,
                faults,
                ByzantineStrategy::EquivocatePerClient { salt: 0xC0A1 },
            ),
            ChaosScenario::Partition => {
                assert!(faults < n, "partitioned server must stay correct");
                byzantine_prefix(
                    n,
                    faults,
                    ByzantineStrategy::FabricateHighTimestamp { value: 0xDEAD },
                )
            }
            ChaosScenario::SlowServers => byzantine_prefix(
                n,
                faults,
                ByzantineStrategy::StaleEpochReplay { epoch_len: 4 },
            ),
            ChaosScenario::Targeted => match weights {
                Some(weights) => FaultPlan::targeted_by_weight(
                    n,
                    faults,
                    ByzantineStrategy::FabricateHighTimestamp { value: 0xBEEF },
                    weights,
                ),
                None => byzantine_prefix(
                    n,
                    faults,
                    ByzantineStrategy::FabricateHighTimestamp { value: 0xBEEF },
                ),
            },
            // The inflating servers are also the Byzantine coalition: at `b`
            // their slowness must be absorbed without safety or liveness
            // loss, at `b + 1` their fabrication must still break through
            // the masking despite arriving late.
            ChaosScenario::TimeoutInflation => byzantine_prefix(
                n,
                faults,
                ByzantineStrategy::FabricateHighTimestamp { value: 0x51_0D },
            ),
        }
    }
}

fn byzantine_prefix(n: usize, faults: usize, strategy: ByzantineStrategy) -> FaultPlan {
    let mut plan = FaultPlan::none(n);
    for server in 0..faults {
        plan = plan.with_byzantine(server, strategy);
    }
    plan
}

/// Workload knobs for [`run_scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Seed for the chaos decision stream *and* the client's quorum sampling.
    pub seed: u64,
    /// Writes issued before the read phase (builds the epoch history the
    /// stale-replay families need).
    pub writes: usize,
    /// Reads issued in the read phase.
    pub reads: usize,
    /// A fresh write is interleaved every `write_every` reads (0 disables).
    pub write_every: usize,
    /// The client's per-rendezvous reply deadline (the failure detector for
    /// silent losses). Must comfortably exceed every chaos delay.
    pub reply_deadline: Duration,
    /// The client's retry budget per operation.
    pub retries: u32,
    /// The client's base retry backoff (doubled per attempt, jittered).
    pub backoff: Duration,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 0xC4A0_5EED,
            writes: 12,
            reads: 48,
            write_every: 8,
            reply_deadline: Duration::from_millis(40),
            retries: 3,
            backoff: Duration::from_micros(200),
        }
    }
}

/// What one scenario run observed.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The family's stable name.
    pub scenario: &'static str,
    /// Byzantine servers in the plan.
    pub faults: usize,
    /// The masking level the client assumed.
    pub b: usize,
    /// Writes that completed (full-quorum acks).
    pub writes_completed: u64,
    /// Writes abandoned after the retry budget (or failing terminally).
    pub writes_aborted: u64,
    /// Reads that completed with a safe value.
    pub reads_completed: u64,
    /// Reads that completed without any `b + 1`-supported value
    /// (inconclusive, not unsafe).
    pub reads_inconclusive: u64,
    /// Reads abandoned after the retry budget.
    pub reads_aborted: u64,
    /// Operations that found no live quorum at all.
    pub no_live_quorum: u64,
    /// Completed reads returning a fabricated entry (value not produced by
    /// the writer, or timestamp never allocated).
    pub authenticity_violations: u64,
    /// Completed reads older than the writer's last completed write.
    pub ryw_violations: u64,
    /// Client-side degradation tallies (from [`ServiceMetrics`]).
    pub timeouts: u64,
    /// Retried attempts.
    pub retries: u64,
    /// Abandoned operations.
    pub aborts: u64,
    /// Requests the interposer dropped or partitioned away.
    pub drops: u64,
    /// Requests the interposer duplicated.
    pub duplicates: u64,
    /// Requests the interposer delayed.
    pub delayed: u64,
    /// Total chaos decisions made.
    pub trace_events: u64,
    /// The deterministic fold of every chaos decision — equal across replays
    /// of the same `(seed, scenario)` pair.
    pub trace_fingerprint: u64,
}

impl ScenarioOutcome {
    /// Total safety violations (authenticity + read-your-writes).
    #[must_use]
    pub fn safety_violations(&self) -> u64 {
        self.authenticity_violations + self.ryw_violations
    }

    /// Whether the run *detected* a masking break (what must be true at
    /// `b + 1` faults and false at `b`).
    #[must_use]
    pub fn detected(&self) -> bool {
        self.safety_violations() > 0
    }
}

/// Drives the single-writer invariant-checking workload through `chaos`
/// (which wraps any backend transport) and reports what it observed.
///
/// The caller builds the backend from [`ChaosScenario::fault_plan`] and wraps
/// it in a [`ChaosTransport`] keyed by the same scenario; `responsive` is the
/// failure detector's view (partitioned servers deliberately stay *in* the
/// view — the detector does not know about the cut).
pub fn run_scenario<Q, T>(
    scenario: ChaosScenario,
    system: &Q,
    b: usize,
    faults: usize,
    responsive: ServerSet,
    chaos: &ChaosTransport<T>,
    config: &ScenarioConfig,
) -> ScenarioOutcome
where
    Q: QuorumSystem + ?Sized,
    T: Transport + 'static,
{
    let metrics = Arc::new(ServiceMetrics::new(system.universe_size()));
    run_scenario_with_metrics(
        scenario, system, b, faults, responsive, chaos, config, &metrics,
    )
}

/// [`run_scenario`] recording into caller-supplied [`ServiceMetrics`] — the
/// entry point for harnesses that inspect the per-server failure-detector
/// evidence afterwards (notably the latency-inflation objective, which feeds
/// the metrics to `bqs-epoch`'s suspicion engine and asserts the
/// [`ChaosScenario::TimeoutInflation`] coalition is flagged on p99 evidence
/// alone).
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_with_metrics<Q, T>(
    scenario: ChaosScenario,
    system: &Q,
    b: usize,
    faults: usize,
    responsive: ServerSet,
    chaos: &ChaosTransport<T>,
    config: &ScenarioConfig,
    metrics: &Arc<ServiceMetrics>,
) -> ScenarioOutcome
where
    Q: QuorumSystem + ?Sized,
    T: Transport + 'static,
{
    let metrics = Arc::clone(metrics);
    let clock = TimestampOracle::new();
    let mut client = ServiceClient::new(system, chaos, responsive, b)
        .with_origin(1)
        .with_reply_deadline(config.reply_deadline)
        .with_retries(config.retries, config.backoff)
        .with_metrics(Arc::clone(&metrics));
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5ce0_a210);

    let mut outcome = ScenarioOutcome {
        scenario: scenario.name(),
        faults,
        b,
        writes_completed: 0,
        writes_aborted: 0,
        reads_completed: 0,
        reads_inconclusive: 0,
        reads_aborted: 0,
        no_live_quorum: 0,
        authenticity_violations: 0,
        ryw_violations: 0,
        timeouts: 0,
        retries: 0,
        aborts: 0,
        drops: 0,
        duplicates: 0,
        delayed: 0,
        trace_events: 0,
        trace_fingerprint: 0,
    };
    // The single writer's read-your-writes frontier: completed writes only
    // (an aborted write promises nothing).
    let mut last_completed_write = 0u64;

    let do_write = |client: &mut ServiceClient<'_, Q, ChaosTransport<T>>,
                    rng: &mut StdRng,
                    outcome: &mut ScenarioOutcome,
                    last_completed_write: &mut u64| {
        let ts = clock.allocate();
        let entry = Entry {
            timestamp: ts,
            value: authentic_value(ts),
        };
        match client.write(entry, rng) {
            Ok(_) => {
                outcome.writes_completed += 1;
                *last_completed_write = ts;
            }
            Err(ServiceError::TransportFailure) => outcome.writes_aborted += 1,
            Err(ServiceError::Protocol(_)) => outcome.no_live_quorum += 1,
            Err(ServiceError::EpochFenced { .. }) => {
                unreachable!("the chaos workload never reconfigures")
            }
        }
    };

    for _ in 0..config.writes {
        do_write(
            &mut client,
            &mut rng,
            &mut outcome,
            &mut last_completed_write,
        );
    }
    for read_index in 0..config.reads {
        if config.write_every > 0 && read_index > 0 && read_index % config.write_every == 0 {
            do_write(
                &mut client,
                &mut rng,
                &mut outcome,
                &mut last_completed_write,
            );
        }
        match client.read(&mut rng) {
            Ok(read) => {
                outcome.reads_completed += 1;
                let entry = read.entry;
                if entry.timestamp > clock.latest()
                    || entry.value != authentic_value(entry.timestamp)
                {
                    outcome.authenticity_violations += 1;
                }
                if entry.timestamp < last_completed_write {
                    outcome.ryw_violations += 1;
                }
            }
            Err(ServiceError::Protocol(ProtocolError::NoSafeValue)) => {
                outcome.reads_inconclusive += 1;
            }
            Err(ServiceError::Protocol(ProtocolError::NoLiveQuorum)) => {
                outcome.no_live_quorum += 1;
            }
            Err(ServiceError::TransportFailure) => outcome.reads_aborted += 1,
            Err(ServiceError::EpochFenced { .. }) => {
                unreachable!("the chaos workload never reconfigures")
            }
        }
    }

    outcome.timeouts = metrics.timeouts();
    outcome.retries = metrics.retries();
    outcome.aborts = metrics.aborts();
    let stats = chaos.stats();
    outcome.drops = stats.dropped + stats.partitioned;
    outcome.duplicates = stats.duplicated;
    outcome.delayed = stats.delayed;
    outcome.trace_events = chaos.trace_len();
    outcome.trace_fingerprint = chaos.trace_fingerprint();
    outcome
}

/// Convenience wrapper for the in-process backend: builds the family's fault
/// plan, spawns a sharded [`LoopbackService`] over it, wraps it in a
/// [`ChaosTransport`], and runs the workload. Socket backends compose the
/// same pieces around a `bqs-net` server/transport pair instead (see
/// `bench_chaos`).
pub fn run_scenario_loopback<Q>(
    scenario: ChaosScenario,
    system: &Q,
    b: usize,
    faults: usize,
    weights: Option<&[f64]>,
    config: &ScenarioConfig,
) -> ScenarioOutcome
where
    Q: QuorumSystem + ?Sized,
{
    let metrics = Arc::new(ServiceMetrics::new(system.universe_size()));
    run_scenario_loopback_with_metrics(scenario, system, b, faults, weights, config, &metrics)
}

/// [`run_scenario_loopback`] recording into caller-supplied metrics (see
/// [`run_scenario_with_metrics`]).
pub fn run_scenario_loopback_with_metrics<Q>(
    scenario: ChaosScenario,
    system: &Q,
    b: usize,
    faults: usize,
    weights: Option<&[f64]>,
    config: &ScenarioConfig,
    metrics: &Arc<ServiceMetrics>,
) -> ScenarioOutcome
where
    Q: QuorumSystem + ?Sized,
{
    let n = system.universe_size();
    let plan = scenario.fault_plan(n, faults, weights);
    let service = Arc::new(LoopbackService::spawn(&plan, 2, config.seed));
    let responsive = service.responsive_set().clone();
    let chaos = ChaosTransport::new(
        Arc::clone(&service),
        config.seed,
        scenario.id(),
        scenario.chaos_config_for(n, faults),
    );
    run_scenario_with_metrics(
        scenario, system, b, faults, responsive, &chaos, config, metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_constructions::threshold::ThresholdSystem;

    fn quick() -> ScenarioConfig {
        ScenarioConfig {
            reply_deadline: Duration::from_millis(25),
            ..ScenarioConfig::default()
        }
    }

    #[test]
    fn every_family_masks_at_b_and_detects_at_b_plus_1_on_loopback() {
        let system = ThresholdSystem::minimal_masking(1).unwrap(); // n = 5, b = 1
        for scenario in ChaosScenario::ALL {
            let at_b = run_scenario_loopback(scenario, &system, 1, 1, None, &quick());
            assert_eq!(
                at_b.safety_violations(),
                0,
                "{}: the masking invariants must hold at b faults ({at_b:?})",
                scenario.name()
            );
            assert!(
                at_b.reads_completed > 0,
                "{}: degradation must stay graceful at b ({at_b:?})",
                scenario.name()
            );
            let over_b = run_scenario_loopback(scenario, &system, 1, 2, None, &quick());
            assert!(
                over_b.detected(),
                "{}: b + 1 faults must break masking detectably ({over_b:?})",
                scenario.name()
            );
        }
    }

    #[test]
    fn replaying_a_scenario_reproduces_trace_and_outcome() {
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        for scenario in [
            ChaosScenario::DropRetry,
            ChaosScenario::Duplicate,
            ChaosScenario::SlowServers,
        ] {
            let first = run_scenario_loopback(scenario, &system, 1, 2, None, &quick());
            let second = run_scenario_loopback(scenario, &system, 1, 2, None, &quick());
            assert_eq!(
                first.trace_fingerprint,
                second.trace_fingerprint,
                "{}: identical (seed, scenario) must replay the identical event trace",
                scenario.name()
            );
            assert_eq!(first.trace_events, second.trace_events);
            assert_eq!(
                first.safety_violations(),
                second.safety_violations(),
                "{}: replay must reproduce the safety outcome",
                scenario.name()
            );
            assert_eq!(first.reads_completed, second.reads_completed);
            assert_eq!(first.writes_completed, second.writes_completed);
            // And a different seed genuinely perturbs differently.
            let reseeded = run_scenario_loopback(
                scenario,
                &system,
                1,
                2,
                None,
                &ScenarioConfig {
                    seed: 0x0DD_5EED,
                    ..quick()
                },
            );
            assert_ne!(first.trace_fingerprint, reseeded.trace_fingerprint);
        }
    }

    #[test]
    fn per_client_equivocation_shows_different_lies_to_different_clients() {
        // Two clients with distinct origins read through the same chaos-free
        // interposer against an equivocating coalition of size b + 1: each
        // client sees a *consistent* fabricated pair (and detects it as a
        // fabrication), but the pairs differ across the clients.
        let system = ThresholdSystem::minimal_masking(1).unwrap();
        let plan = ChaosScenario::Duplicate.fault_plan(5, 2, None);
        let service = Arc::new(LoopbackService::spawn(&plan, 2, 7));
        let responsive = service.responsive_set().clone();
        let chaos = ChaosTransport::new(Arc::clone(&service), 7, 0, ChaosConfig::default());
        let clock = TimestampOracle::new();

        let mut observed = Vec::new();
        for origin in [1u64, 2] {
            let mut client = ServiceClient::new(&system, &chaos, responsive.clone(), 1)
                .with_origin(origin)
                .with_reply_deadline(Duration::from_millis(200));
            let mut rng = StdRng::seed_from_u64(origin);
            let ts = clock.allocate();
            client
                .write(
                    Entry {
                        timestamp: ts,
                        value: authentic_value(ts),
                    },
                    &mut rng,
                )
                .unwrap();
            // Read until a quorum containing both equivocators comes up and
            // their common lie wins as the freshest "safe" entry.
            let lie = (0..64).find_map(|_| {
                let entry = client.read(&mut rng).ok()?.entry;
                (entry.value != authentic_value(entry.timestamp)).then_some(entry)
            });
            observed.push(lie.expect("b + 1 equivocators must break through"));
        }
        assert_eq!(
            observed[0].timestamp, observed[1].timestamp,
            "equivocation is about one timestamp"
        );
        assert_ne!(
            observed[0].value, observed[1].value,
            "different clients must be shown different values"
        );
    }
}
