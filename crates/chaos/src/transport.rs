//! The chaos interposer: a fault-injecting [`Transport`] wrapper.
//!
//! # Determinism keying
//!
//! Every perturbation decision for a request is derived from
//!
//! ```text
//! key  = mix64(seed ^ mix64(scenario) ^ rotl(mix64(origin), 17) ^ request_id)
//! roll = mix64(key ^ salt)        // independent sub-draw per decision kind
//! ```
//!
//! where `mix64` is the splitmix64 finaliser ([`bqs_sim::server::mix64`]).
//! The key depends on nothing but the run's `(seed, scenario)` pair and the
//! request's own identity — never on wall-clock time, thread interleaving, or
//! allocation addresses — so re-running a scenario with the same seed makes
//! *the same* requests meet *the same* fate: the recorded [`TraceEvent`] log
//! is identical and [`ChaosTransport::trace_fingerprint`] pins that. `origin`
//! participates because independent clients restart their request-id
//! sequences; mixing the identity in keeps their chaos streams decorrelated
//! while staying reproducible.
//!
//! # What is perturbed, and how it stays deterministic
//!
//! Requests are perturbed *before* they reach the wrapped transport:
//!
//! * **drop** — the request vanishes. For reads the loss can be *detected*
//!   ([`ChaosConfig::detected_drops`]): the interposer synthesises the same
//!   in-band `entry = None` frame a crashed server produces, so the client's
//!   `b + 1`-support rule absorbs the loss without waiting. Undetected drops
//!   are true silence: the client's reply deadline is the failure detector,
//!   and its bounded retry (with jittered backoff) is the recovery path.
//!   Write requests are always dropped silently — a fake write ack would
//!   *cause* the very read-your-writes violation the invariant checker hunts,
//!   and real networks cannot forge acks either.
//! * **delay / jitter / slow servers** — the request is parked on a virtual
//!   scheduler (a min-heap ordered by due time, drained by one background
//!   thread) and forwarded when due. Jitter across requests *reorders* them.
//!   The delay amounts come from the decision stream, so the delivery order
//!   of any two delayed requests is a pure function of the seed; delays are
//!   kept well below reply deadlines so scheduling noise never flips an
//!   outcome.
//! * **duplication** — the request is forwarded twice; the copies race. The
//!   client-side dedup (one counted reply per server per rendezvous) must
//!   hold or a single Byzantine server's echo would reach `b + 1` support.
//! * **asymmetric partition** — a server set unreachable on the request
//!   direction only, and only through *this* interposer (other clients are
//!   unaffected): reads are answered with the detected-loss frame, writes
//!   are silently swallowed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bqs_service::metrics::ServiceMetrics;
use bqs_service::transport::{Operation, Reply, Request, Transport};
use bqs_sim::server::mix64;

/// How traffic through a [`ChaosTransport`] is perturbed. All rates are per
/// mille (‰) so configs stay integral and exactly reproducible.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Fixed extra delay applied to every forwarded request.
    pub delay_base: Duration,
    /// Additional uniform delay in `[0, delay_jitter)` per request — the
    /// reordering knob.
    pub delay_jitter: Duration,
    /// Chance (‰) that a request is dropped in transit.
    pub drop_per_mille: u32,
    /// When `true`, dropped *read* requests are answered with the in-band
    /// "no answer" frame (loss detected by the failure detector); when
    /// `false` they vanish and the client's reply deadline fires. Dropped
    /// writes are always silent (acks cannot be forged).
    pub detected_drops: bool,
    /// Chance (‰) that a request is delivered twice.
    pub duplicate_per_mille: u32,
    /// Servers unreachable on the request direction (asymmetric partition):
    /// reads get the detected-loss frame, writes are swallowed.
    pub partitioned: Vec<usize>,
    /// Servers whose requests incur [`ChaosConfig::slow_extra`] on top of the
    /// base delay (slow-reply / timeout-inflation).
    pub slow_servers: Vec<usize>,
    /// The extra delay for [`ChaosConfig::slow_servers`].
    pub slow_extra: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            delay_base: Duration::ZERO,
            delay_jitter: Duration::ZERO,
            drop_per_mille: 0,
            detected_drops: true,
            duplicate_per_mille: 0,
            partitioned: Vec::new(),
            slow_servers: Vec::new(),
            slow_extra: Duration::ZERO,
        }
    }
}

/// What the interposer decided for one request (recorded in the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Forwarded unperturbed.
    Deliver,
    /// Forwarded after the recorded delay.
    Delay,
    /// Forwarded twice (both copies after the recorded delay).
    Duplicate,
    /// Dropped silently; the client's deadline is the only witness.
    DropSilent,
    /// Dropped with the in-band no-answer frame synthesised (detected loss).
    DropDetected,
    /// Swallowed by the partition (write direction: silent).
    PartitionSilent,
    /// Cut by the partition with the in-band frame synthesised (read).
    PartitionDetected,
}

/// One entry of the deterministic event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The request's [`Request::origin`].
    pub origin: u64,
    /// The request's correlation id.
    pub request_id: u64,
    /// The addressed server.
    pub server: usize,
    /// True for write requests.
    pub write: bool,
    /// The interposer's decision.
    pub decision: Decision,
    /// The applied delay in nanoseconds (zero for immediate outcomes).
    pub delay_ns: u64,
}

impl TraceEvent {
    fn fold(&self, acc: u64) -> u64 {
        let d = match self.decision {
            Decision::Deliver => 1u64,
            Decision::Delay => 2,
            Decision::Duplicate => 3,
            Decision::DropSilent => 4,
            Decision::DropDetected => 5,
            Decision::PartitionSilent => 6,
            Decision::PartitionDetected => 7,
        };
        let mut h = mix64(acc ^ self.origin);
        h = mix64(h ^ self.request_id);
        h = mix64(h ^ self.server as u64);
        h = mix64(h ^ u64::from(self.write));
        h = mix64(h ^ d);
        mix64(h ^ self.delay_ns)
    }
}

/// Monotone tallies of what the interposer did (relaxed atomics; totals are
/// read after the run).
#[derive(Debug, Default)]
pub struct ChaosStats {
    delivered: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    dropped: AtomicU64,
    partitioned: AtomicU64,
}

/// A point-in-time copy of [`ChaosStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStatsSnapshot {
    /// Requests forwarded (immediately or after a delay), duplicates counted
    /// once.
    pub delivered: u64,
    /// Requests that incurred a non-zero delay.
    pub delayed: u64,
    /// Requests forwarded twice.
    pub duplicated: u64,
    /// Requests dropped (silently or detected), partitions not included.
    pub dropped: u64,
    /// Requests cut by the partition.
    pub partitioned: u64,
}

/// How many trace events are stored verbatim; the fingerprint keeps folding
/// past the cap, so replay checking stays exact for arbitrarily long runs.
const TRACE_CAP: usize = 1 << 16;

#[derive(Debug)]
struct Trace {
    events: Vec<TraceEvent>,
    fingerprint: u64,
    total: u64,
}

/// One parked request on the virtual scheduler.
#[derive(Debug)]
struct Delayed {
    due: Instant,
    seq: u64,
    request: Request,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.due.cmp(&other.due).then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug)]
struct SchedulerState {
    heap: BinaryHeap<Reverse<Delayed>>,
    seq: u64,
    closed: bool,
}

#[derive(Debug)]
struct Scheduler {
    state: Mutex<SchedulerState>,
    due: Condvar,
}

impl Scheduler {
    fn new() -> Self {
        Scheduler {
            state: Mutex::new(SchedulerState {
                heap: BinaryHeap::new(),
                seq: 0,
                closed: false,
            }),
            due: Condvar::new(),
        }
    }

    fn park(&self, due: Instant, request: Request) {
        let mut state = self.state.lock().expect("chaos scheduler lock");
        if state.closed {
            // Teardown raced us: deliver nothing; the client's deadline is
            // the backstop, exactly as for a dying real transport.
            return;
        }
        let seq = state.seq;
        state.seq += 1;
        state.heap.push(Reverse(Delayed { due, seq, request }));
        drop(state);
        self.due.notify_one();
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("chaos scheduler lock");
        state.closed = true;
        drop(state);
        self.due.notify_all();
    }
}

/// Drains the delay heap: forwards each parked request to the wrapped
/// transport when its due time arrives. On close, the backlog is flushed
/// immediately so no accepted request is lost to teardown.
fn scheduler_loop<T: Transport + ?Sized>(scheduler: &Scheduler, inner: &T) {
    let mut state = scheduler.state.lock().expect("chaos scheduler lock");
    loop {
        let closed = state.closed;
        match state.heap.peek() {
            None if closed => return,
            None => {
                state = scheduler.due.wait(state).expect("chaos scheduler lock");
            }
            Some(Reverse(next)) => {
                let now = Instant::now();
                if closed || next.due <= now {
                    let item = state.heap.pop().expect("peeked").0;
                    drop(state);
                    let _ = inner.send(item.request);
                    state = scheduler.state.lock().expect("chaos scheduler lock");
                } else {
                    let wait = next.due - now;
                    state = scheduler
                        .due
                        .wait_timeout(state, wait)
                        .expect("chaos scheduler lock")
                        .0;
                }
            }
        }
    }
}

/// A fault-injecting interposer around any [`Transport`].
///
/// See the [module docs](self) for the determinism keying and the perturbation
/// semantics. Dropping the interposer closes its virtual scheduler, flushes
/// any still-parked requests to the wrapped transport, and joins the
/// scheduler thread — the wrapped transport outlives every in-flight request.
#[derive(Debug)]
pub struct ChaosTransport<T: Transport + 'static> {
    inner: Arc<T>,
    seed: u64,
    scenario: u64,
    config: ChaosConfig,
    scheduler: Arc<Scheduler>,
    worker: Option<JoinHandle<()>>,
    stats: ChaosStats,
    trace: Mutex<Trace>,
    metrics: Option<Arc<ServiceMetrics>>,
}

impl<T: Transport + 'static> ChaosTransport<T> {
    /// Wraps `inner`, perturbing per `config` under the decision stream keyed
    /// by `(seed, scenario)`.
    #[must_use]
    pub fn new(inner: Arc<T>, seed: u64, scenario: u64, config: ChaosConfig) -> Self {
        let scheduler = Arc::new(Scheduler::new());
        let worker = {
            let scheduler = Arc::clone(&scheduler);
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || scheduler_loop(&scheduler, inner.as_ref()))
        };
        ChaosTransport {
            inner,
            seed,
            scenario,
            config,
            scheduler,
            worker: Some(worker),
            stats: ChaosStats::default(),
            trace: Mutex::new(Trace {
                events: Vec::new(),
                fingerprint: 0,
                total: 0,
            }),
            metrics: None,
        }
    }

    /// Records drops and partition cuts into `metrics`
    /// ([`ServiceMetrics::record_drop`]) in addition to the internal stats.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<ServiceMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &Arc<T> {
        &self.inner
    }

    /// A snapshot of the perturbation tallies.
    #[must_use]
    pub fn stats(&self) -> ChaosStatsSnapshot {
        ChaosStatsSnapshot {
            delivered: self.stats.delivered.load(Ordering::Relaxed),
            delayed: self.stats.delayed.load(Ordering::Relaxed),
            duplicated: self.stats.duplicated.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            partitioned: self.stats.partitioned.load(Ordering::Relaxed),
        }
    }

    /// The recorded event trace (first [`TRACE_CAP`] events verbatim).
    #[must_use]
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.trace.lock().expect("chaos trace lock").events.clone()
    }

    /// Total events decided (may exceed the stored trace length).
    #[must_use]
    pub fn trace_len(&self) -> u64 {
        self.trace.lock().expect("chaos trace lock").total
    }

    /// The splitmix64 fold of *every* decision made so far, in decision
    /// order. Equal fingerprints across two runs of the same `(seed,
    /// scenario)` pair certify byte-identical perturbation streams — the
    /// replay guarantee the determinism test pins.
    #[must_use]
    pub fn trace_fingerprint(&self) -> u64 {
        self.trace.lock().expect("chaos trace lock").fingerprint
    }

    fn record(&self, event: TraceEvent) {
        let mut trace = self.trace.lock().expect("chaos trace lock");
        trace.fingerprint = event.fold(trace.fingerprint);
        trace.total += 1;
        if trace.events.len() < TRACE_CAP {
            trace.events.push(event);
        }
    }

    fn record_loss(&self) {
        if let Some(metrics) = &self.metrics {
            metrics.record_drop();
        }
    }

    /// Synthesises the in-band "no answer" frame for a detected loss —
    /// byte-identical to what a crashed server's shard would produce.
    fn synthesize_no_answer(request: &Request) {
        request.reply.complete(Reply {
            server: request.server,
            request_id: request.request_id,
            entry: None,
            epoch: request.epoch,
            stale: false,
        });
    }

    /// Decides and applies this request's fate. Returns `false` only when the
    /// wrapped transport refused an immediate forward.
    fn perturb(&self, request: Request, immediate: &mut Vec<Request>) -> bool {
        let is_write = matches!(request.op, Operation::Write(_));
        let key = mix64(
            self.seed
                ^ mix64(self.scenario)
                ^ mix64(request.origin).rotate_left(17)
                ^ request.request_id,
        );
        let roll = |salt: u64| mix64(key ^ salt);

        let mut event = TraceEvent {
            origin: request.origin,
            request_id: request.request_id,
            server: request.server,
            write: is_write,
            decision: Decision::Deliver,
            delay_ns: 0,
        };

        if self.config.partitioned.contains(&request.server) {
            self.stats.partitioned.fetch_add(1, Ordering::Relaxed);
            self.record_loss();
            if is_write {
                event.decision = Decision::PartitionSilent;
            } else {
                event.decision = Decision::PartitionDetected;
                Self::synthesize_no_answer(&request);
            }
            self.record(event);
            return true;
        }

        if self.config.drop_per_mille > 0 && roll(1) % 1000 < u64::from(self.config.drop_per_mille)
        {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            self.record_loss();
            if !is_write && self.config.detected_drops {
                event.decision = Decision::DropDetected;
                Self::synthesize_no_answer(&request);
            } else {
                event.decision = Decision::DropSilent;
            }
            self.record(event);
            return true;
        }

        let duplicate = self.config.duplicate_per_mille > 0
            && roll(2) % 1000 < u64::from(self.config.duplicate_per_mille);

        let mut delay = self.config.delay_base;
        if !self.config.delay_jitter.is_zero() {
            let jitter_ns = self.config.delay_jitter.as_nanos() as u64;
            delay += Duration::from_nanos(roll(3) % jitter_ns.max(1));
        }
        if self.config.slow_servers.contains(&request.server) {
            delay += self.config.slow_extra;
        }

        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
        if duplicate {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            event.decision = Decision::Duplicate;
        } else if !delay.is_zero() {
            event.decision = Decision::Delay;
        }
        event.delay_ns = delay.as_nanos() as u64;
        self.record(event);

        let copy = duplicate.then(|| Request {
            server: request.server,
            op: request.op,
            request_id: request.request_id,
            origin: request.origin,
            epoch: request.epoch,
            reply: Arc::clone(&request.reply),
        });
        if delay.is_zero() {
            immediate.push(request);
            if let Some(copy) = copy {
                immediate.push(copy);
            }
            true
        } else {
            let due = Instant::now() + delay;
            self.scheduler.park(due, request);
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
            if let Some(copy) = copy {
                self.scheduler.park(due, copy);
            }
            true
        }
    }
}

impl<T: Transport + 'static> Transport for ChaosTransport<T> {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn send(&self, request: Request) -> bool {
        let mut immediate = Vec::with_capacity(2);
        let ok = self.perturb(request, &mut immediate);
        if immediate.is_empty() {
            ok
        } else {
            ok & self.inner.send_batch(&mut immediate)
        }
    }

    fn send_batch(&self, requests: &mut Vec<Request>) -> bool {
        // Decisions are made in batch order (deterministic: the client builds
        // its fan-out in quorum order); unperturbed requests stay coalesced
        // into one inner batch so chaos off ≈ transparent.
        let mut immediate = Vec::with_capacity(requests.len());
        let mut ok = true;
        for request in requests.drain(..) {
            ok &= self.perturb(request, &mut immediate);
        }
        if !immediate.is_empty() {
            ok &= self.inner.send_batch(&mut immediate);
        }
        ok
    }
}

impl<T: Transport + 'static> Drop for ChaosTransport<T> {
    fn drop(&mut self) {
        self.scheduler.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bqs_service::mailbox::{ReplyHandle, ReplyMailbox};

    /// Echoes every request with an in-band ack, counting deliveries.
    #[derive(Debug, Default)]
    struct EchoTransport {
        deliveries: AtomicU64,
    }

    impl Transport for EchoTransport {
        fn universe_size(&self) -> usize {
            8
        }

        fn send(&self, request: Request) -> bool {
            self.deliveries.fetch_add(1, Ordering::Relaxed);
            request.reply.complete(Reply {
                server: request.server,
                request_id: request.request_id,
                entry: None,
                epoch: request.epoch,
                stale: false,
            });
            true
        }
    }

    fn request(server: usize, id: u64, mailbox: &Arc<ReplyMailbox>) -> Request {
        Request {
            server,
            op: Operation::Read,
            request_id: id,
            origin: 1,
            epoch: 0,
            reply: Arc::clone(mailbox) as ReplyHandle,
        }
    }

    fn drain_all(mailbox: &ReplyMailbox, expected: usize) -> Vec<Reply> {
        let mut replies = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while replies.len() < expected && Instant::now() < deadline {
            let mut batch = Vec::new();
            let _ = mailbox.drain_timeout(Duration::from_millis(50), &mut batch);
            replies.append(&mut batch);
        }
        replies
    }

    #[test]
    fn transparent_when_config_is_default() {
        let chaos = ChaosTransport::new(
            Arc::new(EchoTransport::default()),
            1,
            1,
            ChaosConfig::default(),
        );
        let mailbox = Arc::new(ReplyMailbox::new());
        let mut batch: Vec<Request> = (0..8).map(|s| request(s, s as u64, &mailbox)).collect();
        assert!(chaos.send_batch(&mut batch));
        assert_eq!(drain_all(&mailbox, 8).len(), 8);
        let stats = chaos.stats();
        assert_eq!(stats.delivered, 8);
        assert_eq!(stats.dropped + stats.partitioned + stats.duplicated, 0);
        assert_eq!(chaos.trace_len(), 8);
    }

    #[test]
    fn same_seed_same_trace_different_seed_different_trace() {
        let run = |seed: u64| {
            let chaos = ChaosTransport::new(
                Arc::new(EchoTransport::default()),
                seed,
                3,
                ChaosConfig {
                    drop_per_mille: 300,
                    delay_jitter: Duration::from_micros(200),
                    duplicate_per_mille: 200,
                    ..ChaosConfig::default()
                },
            );
            let mailbox = Arc::new(ReplyMailbox::new());
            for id in 0..64u64 {
                let _ = chaos.send(request((id % 8) as usize, id, &mailbox));
            }
            (chaos.trace(), chaos.trace_fingerprint())
        };
        let (trace_a, fp_a) = run(42);
        let (trace_b, fp_b) = run(42);
        assert_eq!(trace_a, trace_b, "same (seed, scenario) → same trace");
        assert_eq!(fp_a, fp_b);
        let (_, fp_c) = run(43);
        assert_ne!(fp_a, fp_c, "a different seed must perturb differently");
    }

    #[test]
    fn detected_drops_synthesize_the_no_answer_frame() {
        let inner = Arc::new(EchoTransport::default());
        let metrics = Arc::new(ServiceMetrics::new(8));
        let chaos = ChaosTransport::new(
            Arc::clone(&inner),
            7,
            2,
            ChaosConfig {
                drop_per_mille: 1000, // everything drops
                detected_drops: true,
                ..ChaosConfig::default()
            },
        )
        .with_metrics(Arc::clone(&metrics));
        let mailbox = Arc::new(ReplyMailbox::new());
        let mut batch: Vec<Request> = (0..4).map(|s| request(s, s as u64, &mailbox)).collect();
        assert!(chaos.send_batch(&mut batch));
        // Nothing reached the inner transport, yet every read got its frame.
        assert_eq!(inner.deliveries.load(Ordering::Relaxed), 0);
        let replies = drain_all(&mailbox, 4);
        assert_eq!(replies.len(), 4);
        assert!(replies.iter().all(|r| r.entry.is_none()));
        assert_eq!(chaos.stats().dropped, 4);
        assert_eq!(metrics.drops(), 4, "drops land in ServiceMetrics too");
    }

    #[test]
    fn dropped_writes_are_always_silent() {
        let inner = Arc::new(EchoTransport::default());
        let chaos = ChaosTransport::new(
            Arc::clone(&inner),
            7,
            2,
            ChaosConfig {
                drop_per_mille: 1000,
                detected_drops: true, // still silent for writes
                ..ChaosConfig::default()
            },
        );
        let mailbox = Arc::new(ReplyMailbox::new());
        assert!(chaos.send(Request {
            server: 0,
            op: Operation::Write(bqs_sim::server::Entry {
                timestamp: 1,
                value: 1,
            }),
            request_id: 9,
            origin: 1,
            epoch: 0,
            reply: Arc::clone(&mailbox) as ReplyHandle,
        }));
        assert_eq!(inner.deliveries.load(Ordering::Relaxed), 0);
        let mut batch = Vec::new();
        assert_eq!(
            mailbox.drain_timeout(Duration::from_millis(50), &mut batch),
            bqs_service::mailbox::DrainStatus::TimedOut,
            "a forged write ack would fabricate read-your-writes"
        );
        assert_eq!(chaos.trace()[0].decision, Decision::DropSilent);
    }

    #[test]
    fn partition_cuts_requests_asymmetrically() {
        let inner = Arc::new(EchoTransport::default());
        let chaos = ChaosTransport::new(
            Arc::clone(&inner),
            5,
            4,
            ChaosConfig {
                partitioned: vec![2, 5],
                ..ChaosConfig::default()
            },
        );
        let mailbox = Arc::new(ReplyMailbox::new());
        let mut batch: Vec<Request> = (0..8).map(|s| request(s, s as u64, &mailbox)).collect();
        assert!(chaos.send_batch(&mut batch));
        // 6 reach the inner transport; the 2 partitioned reads get synthetic
        // frames, so all 8 replies still arrive (loss is detected).
        assert_eq!(inner.deliveries.load(Ordering::Relaxed), 6);
        assert_eq!(drain_all(&mailbox, 8).len(), 8);
        assert_eq!(chaos.stats().partitioned, 2);
    }

    #[test]
    fn delayed_and_duplicated_requests_all_arrive() {
        let inner = Arc::new(EchoTransport::default());
        let chaos = ChaosTransport::new(
            Arc::clone(&inner),
            11,
            6,
            ChaosConfig {
                delay_base: Duration::from_micros(200),
                delay_jitter: Duration::from_micros(500),
                duplicate_per_mille: 1000, // everything duplicates
                ..ChaosConfig::default()
            },
        );
        let mailbox = Arc::new(ReplyMailbox::new());
        let mut batch: Vec<Request> = (0..8).map(|s| request(s, s as u64, &mailbox)).collect();
        assert!(chaos.send_batch(&mut batch));
        let replies = drain_all(&mailbox, 16);
        assert_eq!(replies.len(), 16, "each request delivered exactly twice");
        let stats = chaos.stats();
        assert_eq!(stats.duplicated, 8);
        assert_eq!(stats.delayed, 8);
    }

    #[test]
    fn drop_flushes_parked_requests() {
        let inner = Arc::new(EchoTransport::default());
        let mailbox = Arc::new(ReplyMailbox::new());
        {
            let chaos = ChaosTransport::new(
                Arc::clone(&inner),
                13,
                6,
                ChaosConfig {
                    delay_base: Duration::from_secs(60), // far future
                    ..ChaosConfig::default()
                },
            );
            let mut batch: Vec<Request> = (0..4).map(|s| request(s, s as u64, &mailbox)).collect();
            assert!(chaos.send_batch(&mut batch));
            // Dropping the interposer flushes the heap instead of losing it.
        }
        assert_eq!(inner.deliveries.load(Ordering::Relaxed), 4);
        assert_eq!(drain_all(&mailbox, 4).len(), 4);
    }
}
