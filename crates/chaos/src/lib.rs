//! Deterministic adversarial scenario engine: replayable chaos at the
//! `Transport` seam.
//!
//! The paper's masking guarantees are stated against an adversary; this crate
//! supplies one you can *replay*. [`ChaosTransport`] wraps any
//! [`bqs_service::transport::Transport`] — the in-process sharded loopback,
//! `bqs-net`'s Unix-domain or TCP socket transport — and perturbs the request
//! stream flowing through it: delay and jitter (which reorders), drops,
//! duplication, asymmetric partitions, and per-server slow paths. Every
//! decision is drawn from a splitmix64 stream keyed by
//! `(seed, scenario, origin, request id)`, so a failing run is reproduced
//! *byte-identically* from its `(seed, scenario)` pair — the recorded
//! [`TraceEvent`] log and its fingerprint are equal across runs, and so is
//! every safety-check outcome built on top.
//!
//! [`scenario`] packages the perturbations with the matching Byzantine server
//! behaviours from `bqs-sim` into named [`ChaosScenario`] families, and
//! [`scenario::run_scenario`] drives a single-writer workload against them,
//! checking the two masking invariants the paper promises at `b` faults:
//!
//! * **value authenticity** — a completed read never returns a fabricated
//!   entry (one whose value was not produced by the writer, or whose
//!   timestamp was never allocated);
//! * **read-your-writes** — a completed read never returns an entry older
//!   than the writer's last completed write.
//!
//! Each family is designed so both invariants hold at `b` faults and break
//! *detectably* at `b + 1` — the `2b + 1` intersection of Definition 3.5 is
//! exactly tight, and the scenario sweep observes that tightness through real
//! transports rather than by algebra.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reconfig;
pub mod scenario;
pub mod transport;

pub use reconfig::ReconfigScenario;
pub use scenario::{
    run_scenario, run_scenario_loopback, run_scenario_loopback_with_metrics,
    run_scenario_with_metrics, ChaosScenario, ScenarioConfig, ScenarioOutcome,
};
pub use transport::{ChaosConfig, ChaosStats, ChaosTransport, Decision, TraceEvent};

/// Convenient glob import for benches and tests.
pub mod prelude {
    pub use crate::reconfig::ReconfigScenario;
    pub use crate::scenario::{
        run_scenario, run_scenario_loopback, run_scenario_loopback_with_metrics,
        run_scenario_with_metrics, ChaosScenario, ScenarioConfig, ScenarioOutcome,
    };
    pub use crate::transport::{ChaosConfig, ChaosStats, ChaosTransport, Decision, TraceEvent};
}
