//! Dense two-phase simplex.
//!
//! The implementation is a textbook tableau simplex with Bland's anti-cycling rule:
//! phase 1 drives artificial variables to zero to find a basic feasible solution,
//! phase 2 optimises the user objective. Problem sizes in this workspace are modest
//! (the load LP for an explicit quorum system has one variable per quorum and one
//! constraint per server), so clarity and numerical robustness are preferred over
//! sparse-matrix performance.

/// The sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `coeffs · x <= rhs`
    Le,
    /// `coeffs · x >= rhs`
    Ge,
    /// `coeffs · x == rhs`
    Eq,
}

/// A single linear constraint over the decision variables.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficients, one per decision variable (missing trailing entries are zero).
    pub coeffs: Vec<f64>,
    /// Constraint sense.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    #[must_use]
    pub fn new(coeffs: Vec<f64>, relation: Relation, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation,
            rhs,
        }
    }
}

/// A linear program over non-negative decision variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Number of decision variables (all constrained to be `>= 0`).
    pub num_vars: usize,
    /// Objective coefficients, one per decision variable.
    pub objective: Vec<f64>,
    /// `true` to maximize the objective, `false` to minimize it.
    pub maximize: bool,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

/// An optimal solution to a linear program.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The optimal objective value (in the user's sense: maximized or minimized).
    pub objective_value: f64,
    /// Optimal values of the decision variables.
    pub values: Vec<f64>,
}

/// The outcome of solving a linear program.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(Solution),
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

const EPS: f64 = 1e-9;

impl LinearProgram {
    /// Solves the program with a two-phase simplex method.
    ///
    /// # Panics
    ///
    /// Panics if `objective.len() != num_vars` or any constraint has more
    /// coefficients than `num_vars`.
    #[must_use]
    pub fn solve(&self) -> LpOutcome {
        assert_eq!(
            self.objective.len(),
            self.num_vars,
            "objective length must equal num_vars"
        );
        for c in &self.constraints {
            assert!(
                c.coeffs.len() <= self.num_vars,
                "constraint has more coefficients than variables"
            );
        }
        Tableau::build(self).solve()
    }
}

/// Internal simplex tableau.
struct Tableau {
    /// rows x cols coefficient matrix (constraint rows only).
    a: Vec<Vec<f64>>,
    /// Right-hand sides, one per row.
    b: Vec<f64>,
    /// Index of the basic variable for each row.
    basis: Vec<usize>,
    /// Total number of columns (structural + slack/surplus + artificial).
    cols: usize,
    /// Number of structural (user) variables.
    n_user: usize,
    /// Columns that are artificial variables.
    artificial: Vec<usize>,
    /// User objective (maximization form) padded to `cols`.
    objective: Vec<f64>,
    /// Whether the user asked to maximize.
    user_maximize: bool,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Self {
        let m = lp.constraints.len();
        let n = lp.num_vars;

        // Count extra columns.
        let mut n_slack = 0usize;
        let mut n_art = 0usize;
        for c in &lp.constraints {
            // Normalise rhs >= 0 first to decide what we need.
            let (rel, rhs) = normalised(c);
            match rel {
                Relation::Le => {
                    n_slack += 1;
                    if rhs < -EPS {
                        unreachable!("normalised rhs is non-negative");
                    }
                }
                Relation::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Relation::Eq => {
                    n_art += 1;
                }
            }
        }
        let cols = n + n_slack + n_art;

        let mut a = vec![vec![0.0; cols]; m];
        let mut b = vec![0.0; m];
        let mut basis = vec![0usize; m];
        let mut artificial = Vec::new();

        let mut slack_col = n;
        let mut art_col = n + n_slack;

        for (i, c) in lp.constraints.iter().enumerate() {
            let (rel, rhs, coeffs) = normalised_full(c);
            for (j, &v) in coeffs.iter().enumerate() {
                a[i][j] = v;
            }
            b[i] = rhs;
            match rel {
                Relation::Le => {
                    a[i][slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                Relation::Ge => {
                    a[i][slack_col] = -1.0;
                    slack_col += 1;
                    a[i][art_col] = 1.0;
                    basis[i] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
                Relation::Eq => {
                    a[i][art_col] = 1.0;
                    basis[i] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
            }
        }

        // Objective in maximization form, padded.
        let mut objective = vec![0.0; cols];
        for (obj, &coeff) in objective.iter_mut().zip(&lp.objective) {
            *obj = if lp.maximize { coeff } else { -coeff };
        }

        Tableau {
            a,
            b,
            basis,
            cols,
            n_user: n,
            artificial,
            objective,
            user_maximize: lp.maximize,
        }
    }

    fn solve(mut self) -> LpOutcome {
        // Phase 1: maximize -(sum of artificials).
        if !self.artificial.is_empty() {
            let mut phase1 = vec![0.0; self.cols];
            for &j in &self.artificial {
                phase1[j] = -1.0;
            }
            match self.optimize(&phase1) {
                SimplexResult::Unbounded => return LpOutcome::Infeasible,
                SimplexResult::Optimal(value) => {
                    if value < -1e-7 {
                        return LpOutcome::Infeasible;
                    }
                }
            }
            // Pivot remaining artificial variables out of the basis where possible.
            self.evict_artificials();
        }

        // Phase 2 with the user's objective. Artificial columns are forbidden from
        // entering by zeroing their objective coefficients and never selecting them.
        let obj = self.objective.clone();
        match self.optimize(&obj) {
            SimplexResult::Unbounded => LpOutcome::Unbounded,
            SimplexResult::Optimal(value) => {
                let mut values = vec![0.0; self.n_user];
                for (row, &bv) in self.basis.iter().enumerate() {
                    if bv < self.n_user {
                        values[bv] = self.b[row];
                    }
                }
                let objective_value = if self.user_maximize { value } else { -value };
                LpOutcome::Optimal(Solution {
                    objective_value,
                    values,
                })
            }
        }
    }

    /// Runs primal simplex on the current basis, maximizing `obj`. Returns the
    /// optimal value of `obj` or detects unboundedness.
    fn optimize(&mut self, obj: &[f64]) -> SimplexResult {
        // Safety cap on iterations; Bland's rule guarantees termination but the cap
        // protects against numerical stalls.
        let max_iter = 50_000usize;
        // Dantzig pricing (most positive reduced cost) is fast in practice; after a
        // generous number of iterations fall back to Bland's rule, which cannot cycle.
        let bland_after = 2_000usize;
        for iteration in 0..max_iter {
            // Compute reduced costs: c_j - c_B^T B^{-1} A_j. With an explicit
            // tableau (A already transformed), c_B^T A_j uses current rows.
            let use_bland = iteration >= bland_after;
            let mut entering = None;
            let mut best_reduced = EPS;
            for j in 0..self.cols {
                if self.is_artificial(j) && obj[j] == 0.0 {
                    // During phase 2 never bring artificials back in.
                    continue;
                }
                if self.basis.contains(&j) {
                    continue;
                }
                let mut reduced = obj[j];
                for (row, &bv) in self.basis.iter().enumerate() {
                    reduced -= obj[bv] * self.a[row][j];
                }
                if reduced > EPS {
                    if use_bland {
                        entering = Some(j); // Bland: smallest index with positive reduced cost
                        break;
                    }
                    if reduced > best_reduced {
                        best_reduced = reduced;
                        entering = Some(j);
                    }
                }
            }
            let Some(enter) = entering else {
                // Optimal: compute objective value.
                let mut value = 0.0;
                for (row, &bv) in self.basis.iter().enumerate() {
                    value += obj[bv] * self.b[row];
                }
                return SimplexResult::Optimal(value);
            };

            // Ratio test (Bland: smallest basis index among ties).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for row in 0..self.a.len() {
                let coeff = self.a[row][enter];
                if coeff > EPS {
                    let ratio = self.b[row] / coeff;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[row] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(row);
                    }
                }
            }
            let Some(leave_row) = leave else {
                return SimplexResult::Unbounded;
            };
            self.pivot(leave_row, enter);
        }
        // Return whatever we have; treat as optimal at the cap (should not happen in
        // practice for the problem sizes in this workspace).
        let mut value = 0.0;
        for (row, &bv) in self.basis.iter().enumerate() {
            value += obj[bv] * self.b[row];
        }
        SimplexResult::Optimal(value)
    }

    fn is_artificial(&self, col: usize) -> bool {
        self.artificial.contains(&col)
    }

    /// After phase 1, replace basic artificial variables by structural/slack columns
    /// where a nonzero pivot exists; rows where no such pivot exists are redundant
    /// constraints and are left with the (zero-valued) artificial basic variable.
    fn evict_artificials(&mut self) {
        for row in 0..self.a.len() {
            if !self.is_artificial(self.basis[row]) {
                continue;
            }
            let pivot_col =
                (0..self.cols).find(|&j| !self.is_artificial(j) && self.a[row][j].abs() > 1e-7);
            if let Some(j) = pivot_col {
                self.pivot(row, j);
            }
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.a[row][col];
        debug_assert!(pivot.abs() > 1e-12, "pivot element too small");
        let inv = 1.0 / pivot;
        for j in 0..self.cols {
            self.a[row][j] *= inv;
        }
        self.b[row] *= inv;
        for r in 0..self.a.len() {
            if r == row {
                continue;
            }
            let factor = self.a[r][col];
            if factor.abs() < 1e-14 {
                continue;
            }
            for j in 0..self.cols {
                self.a[r][j] -= factor * self.a[row][j];
            }
            self.b[r] -= factor * self.b[row];
            if self.b[r].abs() < 1e-12 {
                self.b[r] = 0.0;
            }
        }
        self.basis[row] = col;
    }
}

enum SimplexResult {
    Optimal(f64),
    Unbounded,
}

/// Returns the constraint's relation and rhs after flipping the row so the rhs is
/// non-negative.
fn normalised(c: &Constraint) -> (Relation, f64) {
    if c.rhs < 0.0 {
        let rel = match c.relation {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        };
        (rel, -c.rhs)
    } else {
        (c.relation, c.rhs)
    }
}

fn normalised_full(c: &Constraint) -> (Relation, f64, Vec<f64>) {
    if c.rhs < 0.0 {
        let rel = match c.relation {
            Relation::Le => Relation::Ge,
            Relation::Ge => Relation::Le,
            Relation::Eq => Relation::Eq,
        };
        (rel, -c.rhs, c.coeffs.iter().map(|v| -v).collect())
    } else {
        (c.relation, c.rhs, c.coeffs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(lp: &LinearProgram) -> Solution {
        match lp.solve() {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn simple_max_le() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12
        let lp = LinearProgram {
            num_vars: 2,
            maximize: true,
            objective: vec![3.0, 2.0],
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Le, 4.0),
                Constraint::new(vec![1.0, 3.0], Relation::Le, 6.0),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective_value - 12.0).abs() < 1e-8);
        assert!((s.values[0] - 4.0).abs() < 1e-8);
        assert!(s.values[1].abs() < 1e-8);
    }

    #[test]
    fn classic_two_var() {
        // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21
        let lp = LinearProgram {
            num_vars: 2,
            maximize: true,
            objective: vec![5.0, 4.0],
            constraints: vec![
                Constraint::new(vec![6.0, 4.0], Relation::Le, 24.0),
                Constraint::new(vec![1.0, 2.0], Relation::Le, 6.0),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective_value - 21.0).abs() < 1e-8);
        assert!((s.values[0] - 3.0).abs() < 1e-8);
        assert!((s.values[1] - 1.5).abs() < 1e-8);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1 -> x=4, y=0? check: obj = 8 at (4,0);
        // (1,3) gives 11, so optimum is x=4,y=0 -> 8.
        let lp = LinearProgram {
            num_vars: 2,
            maximize: false,
            objective: vec![2.0, 3.0],
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Ge, 4.0),
                Constraint::new(vec![1.0, 0.0], Relation::Ge, 1.0),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective_value - 8.0).abs() < 1e-8, "{s:?}");
    }

    #[test]
    fn equality_constraint() {
        // max x + y s.t. x + y = 1, x <= 0.3 -> obj = 1
        let lp = LinearProgram {
            num_vars: 2,
            maximize: true,
            objective: vec![1.0, 1.0],
            constraints: vec![
                Constraint::new(vec![1.0, 1.0], Relation::Eq, 1.0),
                Constraint::new(vec![1.0, 0.0], Relation::Le, 0.3),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective_value - 1.0).abs() < 1e-8);
        assert!((s.values[0] + s.values[1] - 1.0).abs() < 1e-8);
        assert!(s.values[0] <= 0.3 + 1e-8);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2 cannot both hold.
        let lp = LinearProgram {
            num_vars: 1,
            maximize: true,
            objective: vec![1.0],
            constraints: vec![
                Constraint::new(vec![1.0], Relation::Le, 1.0),
                Constraint::new(vec![1.0], Relation::Ge, 2.0),
            ],
        };
        assert!(matches!(lp.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // max x with only x >= 1.
        let lp = LinearProgram {
            num_vars: 1,
            maximize: true,
            objective: vec![1.0],
            constraints: vec![Constraint::new(vec![1.0], Relation::Ge, 1.0)],
        };
        assert!(matches!(lp.solve(), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_rhs_normalisation() {
        // -x <= -2  is  x >= 2; min x -> 2.
        let lp = LinearProgram {
            num_vars: 1,
            maximize: false,
            objective: vec![1.0],
            constraints: vec![Constraint::new(vec![-1.0], Relation::Le, -2.0)],
        };
        let s = optimal(&lp);
        assert!((s.objective_value - 2.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Degenerate vertices (multiple constraints meeting); Bland's rule must not cycle.
        let lp = LinearProgram {
            num_vars: 3,
            maximize: true,
            objective: vec![10.0, -57.0, -9.0],
            constraints: vec![
                Constraint::new(vec![0.5, -5.5, -2.5], Relation::Le, 0.0),
                Constraint::new(vec![0.5, -1.5, -0.5], Relation::Le, 0.0),
                Constraint::new(vec![1.0, 0.0, 0.0], Relation::Le, 1.0),
            ],
        };
        let s = optimal(&lp);
        assert!(s.objective_value >= -1e-9);
        assert!(s.objective_value <= 10.0 + 1e-9);
    }

    #[test]
    fn load_style_lp() {
        // The load LP of a 3-server majority quorum system {12, 13, 23}:
        // variables w1,w2,w3 and z; minimize z s.t. for each server the sum of the
        // weights of quorums containing it is <= z, and the weights sum to 1.
        // Symmetry gives w_i = 1/3 and L = 2/3.
        let lp = LinearProgram {
            num_vars: 4, // w1, w2, w3, z
            maximize: false,
            objective: vec![0.0, 0.0, 0.0, 1.0],
            constraints: vec![
                // server 1 is in quorums {1,2} and {1,3} -> w1 + w2 - z <= 0
                Constraint::new(vec![1.0, 1.0, 0.0, -1.0], Relation::Le, 0.0),
                // server 2 in {1,2},{2,3}
                Constraint::new(vec![1.0, 0.0, 1.0, -1.0], Relation::Le, 0.0),
                // server 3 in {1,3},{2,3}
                Constraint::new(vec![0.0, 1.0, 1.0, -1.0], Relation::Le, 0.0),
                Constraint::new(vec![1.0, 1.0, 1.0, 0.0], Relation::Eq, 1.0),
            ],
        };
        let s = optimal(&lp);
        assert!((s.objective_value - 2.0 / 3.0).abs() < 1e-8, "{s:?}");
    }

    #[test]
    fn many_variables_smoke() {
        // max sum x_i s.t. each x_i <= 1 and sum x_i <= 10 with 25 vars -> 10.
        let n = 25;
        let mut constraints: Vec<Constraint> = (0..n)
            .map(|i| {
                let mut c = vec![0.0; n];
                c[i] = 1.0;
                Constraint::new(c, Relation::Le, 1.0)
            })
            .collect();
        constraints.push(Constraint::new(vec![1.0; n], Relation::Le, 10.0));
        let lp = LinearProgram {
            num_vars: n,
            maximize: true,
            objective: vec![1.0; n],
            constraints,
        };
        let s = optimal(&lp);
        assert!((s.objective_value - 10.0).abs() < 1e-7);
    }
}
