//! Incremental packing LP for column generation.
//!
//! The load `L(Q)` of a quorum system is the optimum of a *packing* program:
//! with one variable per quorum,
//!
//! ```text
//! W* = max Σ_Q w_Q   s.t.   Σ_{Q ∋ u} w_Q <= 1 for every server u,  w >= 0,
//! ```
//!
//! and `L(Q) = 1 / W*` (scale the optimal `w` down by its total to get a
//! probability distribution whose busiest server carries load `1/W*`). The
//! dual is a fractional covering program — `min Σ_u y_u` subject to
//! `y(Q) >= 1` for every quorum — whose separation problem is exactly the
//! *pricing oracle* of column generation: find the quorum of minimum total
//! price `y(Q)`.
//!
//! [`PackingLp`] is the restricted master for that scheme. It differs from
//! the general-purpose [`crate::simplex`] solver in three ways that matter
//! for column generation:
//!
//! * **Sparse columns.** A quorum column is described by the indices of the
//!   rows (servers) it touches; the dense tableau representation is built
//!   internally by a `B⁻¹`-transform against the slack block, never by the
//!   caller.
//! * **Incremental growth.** [`PackingLp::add_column`] appends a column to a
//!   *solved* tableau in `O(rows · nnz)` without invalidating the basis.
//! * **Warm restart.** [`PackingLp::solve`] resumes primal simplex from the
//!   current basis, so a column-generation round typically costs a handful
//!   of pivots instead of a from-scratch solve. (All constraints are
//!   `<= 1` with slack variables, so the all-slack basis is feasible and no
//!   phase-1 is ever needed.)
//!
//! The master also exposes the dual prices ([`PackingLp::duals`]) that the
//! pricing oracle consumes; by weak duality *any* non-negative price vector
//! `y` certifies `L(Q) >= min_Q y(Q) / Σ_u y_u`, which is what makes the
//! column-generation result of `bqs_core::load::optimal_load_oracle`
//! certified rather than heuristic.

/// Tolerance for reduced costs and ratio tests.
const EPS: f64 = 1e-9;

/// Minimum magnitude of an acceptable pivot element. Pivoting on a value
/// barely above `EPS` multiplies the tableau by up to `1/EPS` and wrecks
/// feasibility; anything below this threshold is treated as zero in the
/// ratio test.
const PIVOT_TOL: f64 = 1e-7;

/// Worst negative right-hand side tolerated before the tableau is declared
/// corrupted and rebuilt from the original columns.
const FEASIBILITY_TOL: f64 = 1e-7;

/// Per-row right-hand-side perturbation step: the simplex works against
/// `b_i = 1 + (i+1)·PERTURB_STEP` instead of the all-ones vector. The packing
/// polytope of heavily-overlapping 0/1 columns is massively degenerate — with
/// exact ties the ratio test stalls through tens of thousands of
/// zero-progress pivots — and distinct right-hand sides break every tie (the
/// step sits above the `EPS` comparisons). The perturbation never leaks into
/// results: [`PackingLp::primal`] and [`PackingLp::objective`] recompute the
/// basic solution of the *unperturbed* program from the slack block (which is
/// exactly `B⁻¹`), and the duals are independent of `b` altogether.
const PERTURB_STEP: f64 = 1e-8;

/// Number of Dantzig-rule pivots before falling back to Bland's rule
/// (anti-cycling; the packing master is highly degenerate — every right-hand
/// side is 1).
const BLAND_AFTER: usize = 2_000;

/// Outcome of [`PackingLp::solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackingOutcome {
    /// The current column set is solved to optimality.
    Optimal,
    /// The iteration cap was reached before optimality (numerical stall);
    /// the tableau is still a valid feasible point, just possibly not the
    /// optimum over the current columns.
    IterationLimit,
}

/// An incrementally grown packing LP `max Σ x  s.t.  A x <= 1, x >= 0` with
/// 0/1 sparse columns, solved by warm-started primal simplex.
#[derive(Debug, Clone)]
pub struct PackingLp {
    rows: usize,
    /// Tableau columns, column-major. Columns `0..rows` are the slacks
    /// (initially the identity, i.e. after pivoting they hold `B⁻¹`);
    /// structural columns follow in insertion order.
    cols: Vec<Vec<f64>>,
    /// Original sparse row-index lists of the structural columns.
    entries: Vec<Vec<usize>>,
    /// Current right-hand side `B⁻¹ b`.
    b: Vec<f64>,
    /// Basic column index per row.
    basis: Vec<usize>,
    /// Whether each column is currently basic.
    in_basis: Vec<bool>,
    /// Reduced costs, one per column (maintained through pivots).
    z: Vec<f64>,
    /// Pivots performed by the most recent [`PackingLp::solve`] call.
    last_pivots: usize,
}

impl PackingLp {
    /// An empty master over `rows` packing constraints (`<= 1` each).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn new(rows: usize) -> Self {
        assert!(rows > 0, "packing LP needs at least one row");
        let mut cols = Vec::with_capacity(rows);
        for i in 0..rows {
            let mut c = vec![0.0; rows];
            c[i] = 1.0;
            cols.push(c);
        }
        PackingLp {
            rows,
            cols,
            entries: Vec::new(),
            b: (0..rows)
                .map(|i| 1.0 + (i + 1) as f64 * PERTURB_STEP)
                .collect(),
            basis: (0..rows).collect(),
            in_basis: vec![true; rows],
            z: vec![0.0; rows],
            last_pivots: 0,
        }
    }

    /// The basic solution of the **unperturbed** program (`b = 1`) under the
    /// current basis: `B⁻¹·1` read off the slack block, clamped against
    /// last-ulp noise. Shared by [`PackingLp::primal`] and
    /// [`PackingLp::objective`].
    fn exact_basic_values(&self) -> Vec<f64> {
        let mut b = vec![0.0; self.rows];
        for slack in &self.cols[..self.rows] {
            for (acc, &v) in b.iter_mut().zip(slack) {
                *acc += v;
            }
        }
        b
    }

    /// Pivots performed by the most recent [`PackingLp::solve`] call — a
    /// cheap signal for tuning warm-start behaviour.
    #[must_use]
    pub fn last_pivots(&self) -> usize {
        self.last_pivots
    }

    /// Number of packing constraints.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of structural columns added so far.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.entries.len()
    }

    /// Appends a structural column touching the given rows (objective
    /// coefficient 1), without disturbing the current basis. Returns the
    /// column's structural index.
    ///
    /// # Panics
    ///
    /// Panics if the entry list is empty (the objective would be unbounded)
    /// or any row index is out of range.
    pub fn add_column(&mut self, rows_touched: &[usize]) -> usize {
        assert!(
            !rows_touched.is_empty(),
            "a packing column must touch at least one row"
        );
        // Transformed column B⁻¹ a: the slack block of the tableau *is* B⁻¹,
        // so for a 0/1 column this is a sum of slack columns.
        let mut t = vec![0.0; self.rows];
        let mut zc = 1.0; // reduced cost: 1 - y(a) = 1 + Σ z[slack_i]
        for &i in rows_touched {
            assert!(i < self.rows, "row index {i} out of range");
            for (tr, sr) in t.iter_mut().zip(&self.cols[i]) {
                *tr += sr;
            }
            zc += self.z[i];
        }
        self.cols.push(t);
        self.z.push(zc);
        self.in_basis.push(false);
        self.entries.push(rows_touched.to_vec());
        self.entries.len() - 1
    }

    /// Runs primal simplex from the current basis until optimality over the
    /// current columns (or an iteration cap, to bound numerical stalls).
    pub fn solve(&mut self) -> PackingOutcome {
        let max_iters = 50_000usize;
        self.last_pivots = 0;
        let mut rebuilt = false;
        let mut iter = 0usize;
        while iter < max_iters {
            self.last_pivots = iter;
            iter += 1;
            let use_bland = iter > BLAND_AFTER;
            let mut entering = None;
            let mut best = EPS;
            for (j, &zj) in self.z.iter().enumerate() {
                if self.in_basis[j] || zj <= EPS {
                    continue;
                }
                if use_bland {
                    entering = Some(j);
                    break;
                }
                if zj > best {
                    best = zj;
                    entering = Some(j);
                }
            }
            let Some(enter) = entering else {
                // Claimed optimality must come with a feasible basis; losses
                // below -FEASIBILITY_TOL mean accumulated pivot error, which a
                // rebuild from the original sparse columns repairs exactly.
                if !rebuilt && self.b.iter().any(|&v| v < -FEASIBILITY_TOL) {
                    self.rebuild();
                    rebuilt = true;
                    continue;
                }
                return PackingOutcome::Optimal;
            };
            // Ratio test. Only coefficients comfortably above PIVOT_TOL are
            // eligible pivots: a pivot barely above machine noise scales the
            // tableau by its reciprocal and destroys feasibility. Among
            // (near-)tied ratios, Dantzig mode prefers the largest pivot
            // element (numerical stability); Bland mode keeps the smallest
            // basic-variable index (anti-cycling).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let coeff = self.cols[enter][r];
                if coeff > PIVOT_TOL {
                    let ratio = (self.b[r] / coeff).max(0.0);
                    if ratio < best_ratio - EPS {
                        best_ratio = ratio;
                        leave = Some(r);
                    } else if ratio < best_ratio + EPS {
                        let better = leave.is_none_or(|l| {
                            if use_bland {
                                self.basis[r] < self.basis[l]
                            } else {
                                coeff > self.cols[enter][l]
                            }
                        });
                        if better {
                            best_ratio = best_ratio.min(ratio);
                            leave = Some(r);
                        }
                    }
                }
            }
            let Some(leave_row) = leave else {
                // A positive reduced cost with no eligible pivot cannot
                // happen for non-empty 0/1 columns under Ax <= 1 except
                // through numerical corruption: rebuild once and retry.
                if rebuilt {
                    return PackingOutcome::IterationLimit;
                }
                self.rebuild();
                rebuilt = true;
                continue;
            };
            self.pivot(leave_row, enter);
        }
        PackingOutcome::IterationLimit
    }

    /// Rebuilds the tableau from the original sparse columns with a fresh
    /// all-slack basis, discarding accumulated floating-point error (and the
    /// warm start). Called only when a solve detects numerical corruption.
    fn rebuild(&mut self) {
        let entries = std::mem::take(&mut self.entries);
        let mut fresh = PackingLp::new(self.rows);
        for e in &entries {
            fresh.add_column(e);
        }
        fresh.last_pivots = self.last_pivots;
        *self = fresh;
    }

    fn pivot(&mut self, row: usize, enter: usize) {
        let pv = self.cols[enter][row];
        debug_assert!(pv > EPS, "pivot element too small");
        // Snapshot the entering column before it is transformed.
        let pcv: Vec<f64> = self.cols[enter].clone();
        let inv = 1.0 / pv;
        let zf = self.z[enter];
        for col in &mut self.cols {
            let a = col[row] * inv;
            if a == 0.0 {
                continue;
            }
            col[row] = a;
            for (r, &factor) in pcv.iter().enumerate() {
                if r != row && factor != 0.0 {
                    col[r] -= factor * a;
                    if col[r].abs() < 1e-14 {
                        col[r] = 0.0;
                    }
                }
            }
        }
        let br = self.b[row] * inv;
        self.b[row] = br;
        for (r, &factor) in pcv.iter().enumerate() {
            if r != row && factor != 0.0 {
                self.b[r] -= factor * br;
                if self.b[r].abs() < 1e-12 {
                    self.b[r] = 0.0;
                }
            }
        }
        if zf != 0.0 {
            for (j, zj) in self.z.iter_mut().enumerate() {
                *zj -= zf * self.cols[j][row];
                if zj.abs() < 1e-14 {
                    *zj = 0.0;
                }
            }
        }
        self.in_basis[self.basis[row]] = false;
        self.in_basis[enter] = true;
        self.basis[row] = enter;
        // The entering column's reduced cost is exactly zero by construction.
        self.z[enter] = 0.0;
    }

    /// The current primal values of the structural columns (insertion order),
    /// for the unperturbed (`b = 1`) program.
    #[must_use]
    pub fn primal(&self) -> Vec<f64> {
        let exact = self.exact_basic_values();
        let mut x = vec![0.0; self.entries.len()];
        for (r, &j) in self.basis.iter().enumerate() {
            if j >= self.rows {
                x[j - self.rows] = exact[r].max(0.0);
            }
        }
        x
    }

    /// The current objective value `Σ x` of the unperturbed program.
    #[must_use]
    pub fn objective(&self) -> f64 {
        self.basis
            .iter()
            .zip(self.exact_basic_values())
            .filter(|&(&j, _)| j >= self.rows)
            .map(|(_, v)| v.max(0.0))
            .sum()
    }

    /// The current dual prices `y`, one per row, clamped to be non-negative
    /// (the clamp only absorbs last-ulp simplex noise; any `y >= 0` yields a
    /// valid covering bound, so the certificate downstream stays sound).
    #[must_use]
    pub fn duals(&self) -> Vec<f64> {
        // Reduced cost of slack i is 0 - y_i, so y_i = -z[i].
        self.z[..self.rows].iter().map(|&z| (-z).max(0.0)).collect()
    }

    /// The original sparse entries of structural column `j`.
    #[must_use]
    pub fn column_entries(&self, j: usize) -> &[usize] {
        &self.entries[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve_fresh(rows: usize, columns: &[&[usize]]) -> PackingLp {
        let mut lp = PackingLp::new(rows);
        for c in columns {
            lp.add_column(c);
        }
        assert_eq!(lp.solve(), PackingOutcome::Optimal);
        lp
    }

    #[test]
    fn single_column_saturates_its_rows() {
        let lp = solve_fresh(3, &[&[0, 1]]);
        assert!((lp.objective() - 1.0).abs() < 1e-12);
        assert_eq!(lp.primal(), vec![1.0]);
    }

    #[test]
    fn majority_packing_value_is_three_halves() {
        // Majority-of-3 quorums {01, 02, 12}: W* = 3/2 (each w = 1/2), so
        // the load is 1/W* = 2/3.
        let lp = solve_fresh(3, &[&[0, 1], &[0, 2], &[1, 2]]);
        assert!((lp.objective() - 1.5).abs() < 1e-9);
        let x = lp.primal();
        let loads: Vec<f64> = (0..3)
            .map(|u| {
                (0..3)
                    .filter(|&j| lp.column_entries(j).contains(&u))
                    .map(|j| x[j])
                    .sum()
            })
            .collect();
        for l in loads {
            assert!(l <= 1.0 + 1e-9);
        }
        // Duals: y = (1/2, 1/2, 1/2) is the unique covering optimum.
        for y in lp.duals() {
            assert!((y - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn disjoint_columns_pack_independently() {
        let lp = solve_fresh(4, &[&[0, 1], &[2, 3]]);
        assert!((lp.objective() - 2.0).abs() < 1e-12);
        assert_eq!(lp.primal(), vec![1.0, 1.0]);
    }

    #[test]
    fn warm_restart_after_add_column_reaches_new_optimum() {
        // Star system {0,1}, {0,2}: objective 1 (row 0 saturates).
        let mut lp = PackingLp::new(3);
        lp.add_column(&[0, 1]);
        lp.add_column(&[0, 2]);
        assert_eq!(lp.solve(), PackingOutcome::Optimal);
        assert!((lp.objective() - 1.0).abs() < 1e-9);
        // Adding {1,2} turns it into the majority system: W* jumps to 3/2,
        // and the warm-started solve must find it.
        lp.add_column(&[1, 2]);
        assert_eq!(lp.solve(), PackingOutcome::Optimal);
        assert!((lp.objective() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn duals_price_out_all_columns_at_optimality() {
        // At optimality every column must satisfy y(column) >= 1 - eps
        // (non-negative reduced cost is exactly dual feasibility here).
        let columns: &[&[usize]] = &[&[0, 1, 2], &[2, 3], &[0, 3], &[1, 3]];
        let lp = solve_fresh(4, columns);
        let y = lp.duals();
        for c in columns {
            let price: f64 = c.iter().map(|&u| y[u]).sum();
            assert!(price >= 1.0 - 1e-9, "column {c:?} priced at {price}");
        }
        // Strong duality: Σ y == objective.
        let sum_y: f64 = y.iter().sum();
        assert!((sum_y - lp.objective()).abs() < 1e-9);
    }

    #[test]
    fn threshold_cyclic_family_reaches_n_over_k() {
        // 3-of-5 threshold, cyclic shifts: W* = 5/3.
        let cols: Vec<Vec<usize>> = (0..5)
            .map(|s| (0..3).map(|i| (s + i) % 5).collect())
            .collect();
        let mut lp = PackingLp::new(5);
        for c in &cols {
            lp.add_column(c);
        }
        assert_eq!(lp.solve(), PackingOutcome::Optimal);
        assert!((lp.objective() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn untouched_rows_keep_zero_duals() {
        let lp = solve_fresh(5, &[&[0, 1], &[1, 2]]);
        let y = lp.duals();
        assert_eq!(y[3], 0.0);
        assert_eq!(y[4], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_column_rejected() {
        let mut lp = PackingLp::new(2);
        lp.add_column(&[]);
    }

    #[test]
    fn incremental_matches_fresh_solve_on_random_family() {
        // Grow a master one column at a time (solving between additions) and
        // compare the final objective against a fresh solve over the same
        // columns: warm restarts must not change the optimum.
        let columns: Vec<Vec<usize>> = vec![
            vec![0, 1, 2],
            vec![2, 3, 4],
            vec![0, 4],
            vec![1, 3],
            vec![0, 2, 4],
            vec![1, 2, 3],
        ];
        let mut warm = PackingLp::new(5);
        for c in &columns {
            warm.add_column(c);
            assert_eq!(warm.solve(), PackingOutcome::Optimal);
        }
        let mut fresh = PackingLp::new(5);
        for c in &columns {
            fresh.add_column(c);
        }
        assert_eq!(fresh.solve(), PackingOutcome::Optimal);
        assert!((warm.objective() - fresh.objective()).abs() < 1e-9);
    }
}
