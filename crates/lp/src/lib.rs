//! A small, dependency-free linear-programming solver.
//!
//! The *load* of a quorum system (Definition 3.8 of Malkhi, Reiter & Wool) is the
//! value of a linear program: choose an access strategy `w` (a probability
//! distribution over quorums) minimising the maximum induced load over servers.
//! For fair systems Proposition 3.9 gives a closed form, but for arbitrary explicit
//! quorum systems an LP solver is required to compute `L(Q)` exactly. This crate
//! provides two dependency-free solvers:
//!
//! * [`simplex`] — a dense two-phase tableau simplex for general small LPs
//!   (hundreds of variables/constraints), used by the explicit-quorum load path;
//! * [`packing`] — an incremental packing LP (`max Σx, Ax ≤ 1`) with sparse
//!   columns and warm-started re-solves, the restricted master behind the
//!   column-generation load engine that scales `L(Q)` to constructions whose
//!   quorum lists are astronomically large.
//!
//! # Example
//!
//! ```
//! use bqs_lp::{Constraint, LinearProgram, LpOutcome, Relation};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4,  x + 3y <= 6,  x, y >= 0
//! let lp = LinearProgram {
//!     num_vars: 2,
//!     maximize: true,
//!     objective: vec![3.0, 2.0],
//!     constraints: vec![
//!         Constraint::new(vec![1.0, 1.0], Relation::Le, 4.0),
//!         Constraint::new(vec![1.0, 3.0], Relation::Le, 6.0),
//!     ],
//! };
//! match lp.solve() {
//!     LpOutcome::Optimal(sol) => assert!((sol.objective_value - 12.0).abs() < 1e-9),
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packing;
pub mod simplex;

pub use packing::{PackingLp, PackingOutcome};
pub use simplex::{Constraint, LinearProgram, LpOutcome, Relation, Solution};
