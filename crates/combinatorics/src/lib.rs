//! Combinatorial substrates for Byzantine quorum systems.
//!
//! This crate provides the from-scratch combinatorial machinery that the quorum
//! constructions and analyses of Malkhi, Reiter & Wool require:
//!
//! * [`binomial`] — exact and floating-point binomial coefficients, binomial tail
//!   probabilities, the Chernoff bound used in Proposition 6.3, and the tail
//!   inequalities of Lemmas A.1 and A.2 of the paper.
//! * [`primes`] — primality and prime-power testing, needed to pick valid finite
//!   projective plane orders.
//! * [`gf`] — finite-field arithmetic GF(p^r), built on an irreducible polynomial
//!   found by exhaustive search; required to construct projective planes of
//!   prime-power order.
//! * [`projective`] — finite projective planes PG(2, q) represented as point/line
//!   incidence structures; the lines form the FPP quorum system of Section 6.
//! * [`subsets`] — k-subset and power-set iteration used by exact measure
//!   computations on explicit quorum systems.
//!
//! # Example
//!
//! ```
//! use bqs_combinatorics::{binomial::binomial, projective::ProjectivePlane};
//!
//! assert_eq!(binomial(5, 2), 10);
//! let plane = ProjectivePlane::new(3).unwrap();
//! assert_eq!(plane.num_points(), 13); // q^2 + q + 1
//! assert_eq!(plane.line(0).len(), 4); // q + 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod gf;
pub mod primes;
pub mod projective;
pub mod subsets;

pub use binomial::{binomial, binomial_f64, binomial_tail, chernoff_upper_tail, ln_binomial};
pub use gf::GfElem;
pub use gf::GfField;
pub use primes::{is_prime, prime_power};
pub use projective::ProjectivePlane;
pub use subsets::{KSubsets, PowerSet};
