//! Finite projective planes PG(2, q).
//!
//! A finite projective plane of order `q` has `q² + q + 1` points and the same number
//! of lines; every line contains `q + 1` points, every point lies on `q + 1` lines,
//! and any two distinct lines meet in exactly one point. The lines therefore form a
//! *regular* quorum system with quorums of size `q + 1` and pairwise intersections of
//! size exactly 1 — the FPP component of the boostFPP construction (Section 6 of the
//! paper), whose load `(q+1)/n ≈ 1/√n` is optimal for regular quorum systems [NW98].
//!
//! We build the classical construction over GF(q): points are the 1-dimensional
//! subspaces of GF(q)³ and lines the 2-dimensional subspaces, with incidence given by
//! orthogonality of homogeneous coordinates.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::gf::{GfElem, GfField};

/// Largest point count for which
/// [`ProjectivePlane::line_free_profile_enumerated`] runs its one-time `2^n`
/// subset enumeration (`q² + q + 1 ≤ 22` admits `q ∈ {2, 3, 4}`; the next
/// plane order, `q = 5`, already has 31 points). The counting path
/// ([`ProjectivePlane::line_free_profile`]) pushes past this to `q = 5`; its
/// own (measured) wall is [`LINE_FREE_COUNTING_MAX_POINTS`].
pub const LINE_FREE_PROFILE_MAX_POINTS: usize = 22;

/// The counting profile keeps its DP state as one `u64` bitmask over lines, so
/// planes with more than 64 lines (`q ≥ 8`, where `q² + q + 1 = 73`) decline.
pub const LINE_FREE_COUNTING_MAX_LINES: usize = 64;

/// Fast-decline point cap for the counting profile. The boundary interface of
/// PG(2, 7) (57 points) was *measured* to exceed the 2²⁶-state budget — after
/// ~27 minutes of sweep — because a projective plane is a near-expander:
/// mid-sweep, almost every line has both decided and undecided points, so the
/// completable-mask support approaches all `q² + q + 1` lines regardless of
/// the point order. Declining on the point count up front turns that 27-minute
/// failure into an immediate one. `31` admits exactly the planes the budget is
/// known to afford (`q ≤ 5`).
pub const LINE_FREE_COUNTING_MAX_POINTS: usize = 31;

/// Hard cap on live interface states in the counting DP. The boundary
/// interface grows with the plane order (`q = 5` peaks in the tens of
/// thousands; `q = 7` in the tens of millions); past this budget the sweep
/// declines rather than exhausting memory.
pub const LINE_FREE_COUNTING_STATE_BUDGET: usize = 1 << 26;

/// Deterministically seeded hasher for the DP state maps (no per-process
/// `RandomState`, so state counts and timings are reproducible run to run).
type StateHasher = BuildHasherDefault<std::collections::hash_map::DefaultHasher>;

/// A finite projective plane of order `q`, stored as an explicit point/line incidence
/// structure.
#[derive(Debug, Clone)]
pub struct ProjectivePlane {
    q: u64,
    /// Normalised homogeneous coordinates of each point.
    points: Vec<[GfElem; 3]>,
    /// Each line is the sorted list of indices of the points incident to it.
    lines: Vec<Vec<usize>>,
}

/// Errors from projective-plane construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneError {
    /// The order is not a prime power, so the classical construction does not apply.
    InvalidOrder(u64),
}

impl std::fmt::Display for PlaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaneError::InvalidOrder(q) => {
                write!(f, "projective plane order {q} is not a prime power")
            }
        }
    }
}

impl std::error::Error for PlaneError {}

impl ProjectivePlane {
    /// Constructs PG(2, q) for a prime power `q ≥ 2`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaneError::InvalidOrder`] when `q` is not a prime power.
    ///
    /// # Examples
    ///
    /// ```
    /// use bqs_combinatorics::projective::ProjectivePlane;
    /// let fano = ProjectivePlane::new(2).unwrap();
    /// assert_eq!(fano.num_points(), 7);
    /// assert_eq!(fano.num_lines(), 7);
    /// ```
    pub fn new(q: u64) -> Result<Self, PlaneError> {
        let field = GfField::new(q).map_err(|_| PlaneError::InvalidOrder(q))?;
        let points = enumerate_projective_points(&field);
        let lines = enumerate_lines(&field, &points);
        Ok(ProjectivePlane { q, points, lines })
    }

    /// The order `q` of the plane.
    #[must_use]
    pub fn order(&self) -> u64 {
        self.q
    }

    /// Number of points, `q² + q + 1`.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of lines, `q² + q + 1`.
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// The point indices on line `i` (sorted).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_lines()`.
    #[must_use]
    pub fn line(&self, i: usize) -> &[usize] {
        &self.lines[i]
    }

    /// Iterates over all lines as slices of point indices.
    pub fn lines(&self) -> impl Iterator<Item = &[usize]> {
        self.lines.iter().map(Vec::as_slice)
    }

    /// The normalised homogeneous coordinates of point `i`.
    #[must_use]
    pub fn point_coordinates(&self, i: usize) -> [GfElem; 3] {
        self.points[i]
    }

    /// Counts, for every subset size `m`, how many `m`-subsets of the points
    /// contain **no complete line** — the *line-free profile* `N_0, ..., N_n`.
    ///
    /// This is the combinatorial heart of the exact FPP crash probability: if
    /// each point survives independently with probability `1 − r`, then
    ///
    /// `F_r(FPP) = Σ_m N_m (1 − r)^m r^{n − m}`
    ///
    /// because the system is unavailable exactly when the surviving point set
    /// contains no line. The profile depends only on the plane, so one
    /// enumeration of the `2^n` point subsets (feasible for
    /// `n = q² + q + 1 ≤` [`LINE_FREE_PROFILE_MAX_POINTS`], i.e. `q ≤ 4`)
    /// yields a closed form evaluable in `O(n)` for every `r` thereafter.
    ///
    /// The profile is computed by [`ProjectivePlane::line_free_profile_counting`],
    /// an interface DP over points that never materialises the `2^n` subsets;
    /// it reaches `q = 5` (31 points) and is pinned bit-for-bit against
    /// [`ProjectivePlane::line_free_profile_enumerated`] on the small planes
    /// where both run. Returns `None` when the counting sweep declines —
    /// more than [`LINE_FREE_COUNTING_MAX_POINTS`] points (the measured
    /// `q = 7` interface wall), more than [`LINE_FREE_COUNTING_MAX_LINES`]
    /// lines, or a boundary interface past
    /// [`LINE_FREE_COUNTING_STATE_BUDGET`] states.
    #[must_use]
    pub fn line_free_profile(&self) -> Option<Vec<u64>> {
        self.line_free_profile_counting()
    }

    /// The historical reference implementation of the line-free profile: a
    /// direct enumeration of all `2^n` point subsets. Exponentially slower
    /// than the counting sweep but independent of it, which makes it the
    /// cross-check oracle on planes small enough to afford it (`q ≤ 4`).
    ///
    /// Returns `None` when the plane has more than
    /// [`LINE_FREE_PROFILE_MAX_POINTS`] points, where the one-time `2^n`
    /// enumeration is no longer worth it.
    #[must_use]
    pub fn line_free_profile_enumerated(&self) -> Option<Vec<u64>> {
        let n = self.num_points();
        if n > LINE_FREE_PROFILE_MAX_POINTS {
            return None;
        }
        let line_masks: Vec<u64> = self
            .lines
            .iter()
            .map(|l| l.iter().fold(0u64, |m, &p| m | (1u64 << p)))
            .collect();
        let min_line = self.q as u32 + 1;
        let mut profile = vec![0u64; n + 1];
        for mask in 0u64..(1u64 << n) {
            // A subset smaller than a line trivially contains none.
            let contains_line =
                mask.count_ones() >= min_line && line_masks.iter().any(|&l| l & !mask == 0);
            if !contains_line {
                profile[mask.count_ones() as usize] += 1;
            }
        }
        Some(profile)
    }

    /// Counts the line-free profile without enumerating subsets: an
    /// inclusion-style interface DP that decides the points one at a time (in
    /// the plane's row-major coordinate order) and keeps, per branch, only the
    /// bitmask of lines that are still *completable* — every decided point on
    /// them chosen. Deciding a point against membership kills all `q + 1`
    /// lines through it; deciding the last point of a still-completable line
    /// in favour would complete that line, so the branch is dropped from the
    /// line-free count. Branches with equal completable-masks are merged by
    /// summing their per-size count vectors, which is what collapses the
    /// `2^n` tree to a boundary interface: every line is dead or decided
    /// shortly after its last row, so the mask only carries the lines
    /// crossing the current row boundary.
    ///
    /// Exact in `u64` (every profile entry is at most `C(n, m) ≤ C(31, 15)
    /// < 2^29` at the largest admitted plane). Returns `None` when the plane
    /// has more than [`LINE_FREE_COUNTING_MAX_POINTS`] points (the measured
    /// `q = 7` wall — see that constant's docs), more than
    /// [`LINE_FREE_COUNTING_MAX_LINES`] lines, or the interface exceeds
    /// [`LINE_FREE_COUNTING_STATE_BUDGET`] states.
    #[must_use]
    pub fn line_free_profile_counting(&self) -> Option<Vec<u64>> {
        let n = self.num_points();
        let num_lines = self.num_lines();
        if n > LINE_FREE_COUNTING_MAX_POINTS || num_lines > LINE_FREE_COUNTING_MAX_LINES {
            return None;
        }
        // Incidence masks over *lines*: through[p] = lines containing point p,
        // closing[p] = lines whose final point (in decision order) is p.
        let mut through = vec![0u64; n];
        let mut closing = vec![0u64; n];
        for (li, line) in self.lines.iter().enumerate() {
            for &p in line {
                through[p] |= 1u64 << li;
            }
            closing[*line.iter().max().expect("lines are nonempty")] |= 1u64 << li;
        }
        let all_lines: u64 = if num_lines == 64 {
            u64::MAX
        } else {
            (1u64 << num_lines) - 1
        };
        let mut states: HashMap<u64, Vec<u64>, StateHasher> = HashMap::default();
        let mut initial = vec![0u64; n + 1];
        initial[0] = 1;
        states.insert(all_lines, initial);
        let mut next: HashMap<u64, Vec<u64>, StateHasher> = HashMap::default();
        for p in 0..n {
            next.reserve(states.len() * 2);
            for (mask, counts) in states.drain() {
                // Exclude point p: every line through it loses a point for good.
                merge_counts(&mut next, mask & !through[p], &counts, 0, n);
                // Include point p: legal only when no still-completable line
                // closes here (that would put a full line inside the subset).
                if mask & closing[p] == 0 {
                    merge_counts(&mut next, mask, &counts, 1, n);
                }
            }
            std::mem::swap(&mut states, &mut next);
            if states.len() > LINE_FREE_COUNTING_STATE_BUDGET {
                return None;
            }
        }
        // Every line is decided, so all surviving branches sit on the empty mask.
        let mut profile = vec![0u64; n + 1];
        for counts in states.values() {
            for (slot, c) in profile.iter_mut().zip(counts) {
                *slot += c;
            }
        }
        Some(profile)
    }

    /// Checks the defining axioms of a projective plane on this incidence structure:
    /// every line has `q+1` points, every point is on `q+1` lines, and any two
    /// distinct lines meet in exactly one point. Used by tests and examples; the
    /// constructor always produces a valid plane.
    #[must_use]
    pub fn verify_axioms(&self) -> bool {
        let q = self.q as usize;
        let expected = q * q + q + 1;
        if self.points.len() != expected || self.lines.len() != expected {
            return false;
        }
        if self.lines.iter().any(|l| l.len() != q + 1) {
            return false;
        }
        let mut degree = vec![0usize; self.points.len()];
        for line in &self.lines {
            for &p in line {
                degree[p] += 1;
            }
        }
        if degree.iter().any(|&d| d != q + 1) {
            return false;
        }
        for i in 0..self.lines.len() {
            for j in (i + 1)..self.lines.len() {
                let inter = intersection_size(&self.lines[i], &self.lines[j]);
                if inter != 1 {
                    return false;
                }
            }
        }
        true
    }
}

/// Folds a branch's per-size counts into the interface map, shifting by
/// `shift` chosen points (0 = point excluded, 1 = point included).
fn merge_counts(
    map: &mut HashMap<u64, Vec<u64>, StateHasher>,
    key: u64,
    counts: &[u64],
    shift: usize,
    n: usize,
) {
    let entry = map.entry(key).or_insert_with(|| vec![0u64; n + 1]);
    for (m, &c) in counts.iter().enumerate().take(n + 1 - shift) {
        if c != 0 {
            entry[m + shift] += c;
        }
    }
}

fn intersection_size(a: &[usize], b: &[usize]) -> usize {
    // Both sorted.
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Enumerates canonical representatives of the projective points of PG(2, q):
/// `(1, y, z)`, `(0, 1, z)`, `(0, 0, 1)`.
fn enumerate_projective_points(field: &GfField) -> Vec<[GfElem; 3]> {
    let mut pts = Vec::new();
    let one = field.one();
    let zero = field.zero();
    for y in field.elements() {
        for z in field.elements() {
            pts.push([one, y, z]);
        }
    }
    for z in field.elements() {
        pts.push([zero, one, z]);
    }
    pts.push([zero, zero, one]);
    pts
}

/// Lines of PG(2, q) are also indexed by projective triples `[a, b, c]`; point
/// `[x, y, z]` is on line `[a, b, c]` iff `ax + by + cz = 0`.
fn enumerate_lines(field: &GfField, points: &[[GfElem; 3]]) -> Vec<Vec<usize>> {
    let line_coords = enumerate_projective_points(field);
    let mut lines = Vec::with_capacity(line_coords.len());
    for lc in &line_coords {
        let mut line = Vec::new();
        for (idx, pt) in points.iter().enumerate() {
            let dot = field.add(
                field.add(field.mul(lc[0], pt[0]), field.mul(lc[1], pt[1])),
                field.mul(lc[2], pt[2]),
            );
            if dot == field.zero() {
                line.push(idx);
            }
        }
        line.sort_unstable();
        lines.push(line);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fano_plane() {
        let plane = ProjectivePlane::new(2).unwrap();
        assert_eq!(plane.num_points(), 7);
        assert_eq!(plane.num_lines(), 7);
        assert!(plane.lines().all(|l| l.len() == 3));
        assert!(plane.verify_axioms());
    }

    #[test]
    fn order_three_plane() {
        let plane = ProjectivePlane::new(3).unwrap();
        assert_eq!(plane.num_points(), 13);
        assert_eq!(plane.num_lines(), 13);
        assert!(plane.verify_axioms());
    }

    #[test]
    fn prime_power_order_plane() {
        // q = 4 = 2^2 exercises the extension-field path.
        let plane = ProjectivePlane::new(4).unwrap();
        assert_eq!(plane.num_points(), 21);
        assert!(plane.verify_axioms());
    }

    #[test]
    fn order_five_plane() {
        let plane = ProjectivePlane::new(5).unwrap();
        assert_eq!(plane.num_points(), 31);
        assert!(plane.verify_axioms());
    }

    #[test]
    fn order_eight_and_nine_planes() {
        for q in [8u64, 9] {
            let plane = ProjectivePlane::new(q).unwrap();
            assert_eq!(plane.num_points() as u64, q * q + q + 1);
            assert!(plane.verify_axioms(), "q={q}");
        }
    }

    #[test]
    fn invalid_orders_rejected() {
        assert!(ProjectivePlane::new(6).is_err());
        assert!(ProjectivePlane::new(10).is_err());
        assert!(ProjectivePlane::new(0).is_err());
        assert!(ProjectivePlane::new(1).is_err());
    }

    #[test]
    fn fano_line_free_profile_matches_hand_count() {
        let plane = ProjectivePlane::new(2).unwrap();
        // m <= 2: every subset is line-free. m = 3: C(7,3) - 7 lines = 28.
        // m = 4: a 4-set contains a line iff it is a line plus one point
        // (7 * 4 = 28 sets, no double counting since two lines span 5 points),
        // leaving 35 - 28 = 7. m >= 5: the 2-point complement never meets all
        // 7 lines (two points cover at most 5), so every 5-set contains a line.
        assert_eq!(
            plane.line_free_profile().unwrap(),
            vec![1, 7, 21, 28, 7, 0, 0, 0]
        );
    }

    #[test]
    fn line_free_profile_counting_matches_enumeration_bit_for_bit() {
        // On every plane small enough for the 2^n oracle, the counting DP must
        // reproduce the enumerated profile entry for entry.
        for q in [2u64, 3, 4] {
            let plane = ProjectivePlane::new(q).unwrap();
            let enumerated = plane.line_free_profile_enumerated().unwrap();
            let counted = plane.line_free_profile_counting().unwrap();
            assert_eq!(enumerated, counted, "q={q}");
        }
    }

    #[test]
    fn line_free_profile_reaches_order_five() {
        // q = 5 (31 points) is past the enumeration wall but within reach of
        // the counting DP.
        let plane = ProjectivePlane::new(5).unwrap();
        assert!(plane.line_free_profile_enumerated().is_none());
        let profile = plane.line_free_profile().unwrap();
        assert_eq!(profile.len(), 32);
        // Subsets smaller than a line (q + 1 = 6 points) are trivially
        // line-free: the low entries are full binomials.
        let mut binom = 1u64;
        for (m, &entry) in profile.iter().enumerate().take(6) {
            assert_eq!(entry, binom, "m={m}");
            binom = binom * (31 - m as u64) / (m as u64 + 1);
        }
        // A subset is line-free iff its complement is a blocking set, and the
        // smallest blocking sets of PG(2, 5) are exactly its 31 lines: the
        // profile vanishes above m = n - (q + 1) = 25, where it counts the
        // line complements themselves.
        assert_eq!(profile[25], 31);
        assert!(profile[26..].iter().all(|&e| e == 0));
    }

    #[test]
    fn line_free_profile_gated_by_line_count() {
        // q = 8 has 73 lines, past the u64 interface mask of the counting DP.
        assert!(ProjectivePlane::new(8)
            .unwrap()
            .line_free_profile()
            .is_none());
    }

    #[test]
    fn line_free_profile_declines_order_seven_immediately() {
        // q = 7 fits the 64-line mask but its interface was measured to blow
        // the 2^26-state budget ~27 minutes into the sweep; the point cap
        // must turn that into an instant decline.
        let plane = ProjectivePlane::new(7).unwrap();
        let t = std::time::Instant::now();
        assert!(plane.line_free_profile().is_none());
        assert!(t.elapsed().as_secs_f64() < 1.0, "decline was not fast");
    }

    #[test]
    fn any_two_points_on_exactly_one_line() {
        // The dual axiom; check it directly for q = 3.
        let plane = ProjectivePlane::new(3).unwrap();
        let n = plane.num_points();
        for a in 0..n {
            for b in (a + 1)..n {
                let count = plane
                    .lines()
                    .filter(|l| l.contains(&a) && l.contains(&b))
                    .count();
                assert_eq!(count, 1, "points {a},{b}");
            }
        }
    }
}
