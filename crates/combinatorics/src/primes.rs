//! Primality and prime-power testing.
//!
//! Finite projective planes of order `q` (Section 6 of the paper) are known to exist
//! whenever `q = p^r` for a prime `p`. This module provides the deterministic tests
//! used to validate user-supplied plane orders before construction.

/// Returns `true` iff `n` is prime.
///
/// Deterministic trial division; the plane orders used in practice are tiny
/// (`q ≤ a few hundred`), so this is more than fast enough and trivially correct.
///
/// # Examples
///
/// ```
/// use bqs_combinatorics::primes::is_prime;
/// assert!(is_prime(2));
/// assert!(is_prime(97));
/// assert!(!is_prime(1));
/// assert!(!is_prime(91)); // 7 * 13
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n < 4 {
        return true;
    }
    if n.is_multiple_of(2) {
        return false;
    }
    let mut d = 3u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// If `n = p^r` for a prime `p` and `r >= 1`, returns `Some((p, r))`; otherwise `None`.
///
/// # Examples
///
/// ```
/// use bqs_combinatorics::primes::prime_power;
/// assert_eq!(prime_power(7), Some((7, 1)));
/// assert_eq!(prime_power(8), Some((2, 3)));
/// assert_eq!(prime_power(9), Some((3, 2)));
/// assert_eq!(prime_power(12), None);
/// assert_eq!(prime_power(1), None);
/// ```
#[must_use]
pub fn prime_power(n: u64) -> Option<(u64, u32)> {
    if n < 2 {
        return None;
    }
    // Find the smallest prime factor, then check n is a pure power of it.
    let mut p = 0u64;
    if n.is_multiple_of(2) {
        p = 2;
    } else {
        let mut d = 3u64;
        while d * d <= n {
            if n.is_multiple_of(d) {
                p = d;
                break;
            }
            d += 2;
        }
        if p == 0 {
            // n itself is prime.
            return Some((n, 1));
        }
    }
    let mut m = n;
    let mut r = 0u32;
    while m.is_multiple_of(p) {
        m /= p;
        r += 1;
    }
    if m == 1 {
        Some((p, r))
    } else {
        None
    }
}

/// Returns the largest prime power `q <= n`, if any (`n >= 2`).
///
/// Useful for picking a feasible projective-plane order near a desired size.
#[must_use]
pub fn largest_prime_power_at_most(n: u64) -> Option<u64> {
    (2..=n).rev().find(|&q| prime_power(q).is_some())
}

/// Returns the smallest prime power `q >= n` (`n >= 2`), searching upward.
#[must_use]
pub fn smallest_prime_power_at_least(n: u64) -> u64 {
    let mut q = n.max(2);
    loop {
        if prime_power(q).is_some() {
            return q;
        }
        q += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }

    #[test]
    fn prime_powers_up_to_32() {
        let pps: Vec<u64> = (0..=32).filter(|&n| prime_power(n).is_some()).collect();
        assert_eq!(
            pps,
            vec![2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25, 27, 29, 31, 32]
        );
    }

    #[test]
    fn prime_power_decomposition() {
        assert_eq!(prime_power(1024), Some((2, 10)));
        assert_eq!(prime_power(3u64.pow(7)), Some((3, 7)));
        assert_eq!(prime_power(5 * 7), None);
        assert_eq!(prime_power(2 * 3 * 5), None);
        assert_eq!(prime_power(121), Some((11, 2)));
    }

    #[test]
    fn nearest_prime_powers() {
        assert_eq!(largest_prime_power_at_most(10), Some(9));
        assert_eq!(largest_prime_power_at_most(2), Some(2));
        assert_eq!(largest_prime_power_at_most(1), None);
        assert_eq!(smallest_prime_power_at_least(10), 11);
        assert_eq!(smallest_prime_power_at_least(24), 25);
        assert_eq!(smallest_prime_power_at_least(2), 2);
    }

    #[test]
    fn prime_power_consistent_with_is_prime() {
        for n in 2..500u64 {
            if is_prime(n) {
                assert_eq!(prime_power(n), Some((n, 1)), "n={n}");
            }
            if let Some((p, r)) = prime_power(n) {
                assert!(is_prime(p));
                assert_eq!(p.pow(r), n);
            }
        }
    }
}
