//! Finite-field arithmetic GF(p^r).
//!
//! The boostFPP construction (Section 6 of the paper) composes a finite projective
//! plane of order `q` over a threshold system. Projective planes of order `q` are
//! known to exist for every prime power `q = p^r`; the classical construction
//! PG(2, q) works over the field GF(q). This module implements GF(p^r) from scratch:
//! prime fields directly, extension fields as polynomials over GF(p) modulo an
//! irreducible polynomial found by exhaustive search (plane orders are small, so the
//! search is instantaneous).

use std::fmt;

/// A finite field GF(p^r), holding the modulus polynomial and precomputed tables.
///
/// Elements are represented by [`GfElem`], which is an index into the field
/// (`0..q`), encoding the polynomial `c_0 + c_1 x + ... + c_{r-1} x^{r-1}` as the
/// base-`p` integer `c_0 + c_1 p + ... + c_{r-1} p^{r-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfField {
    p: u64,
    r: u32,
    q: u64,
    /// Coefficients (length r+1, degree r, monic) of the irreducible modulus.
    /// Empty for prime fields (r == 1), where arithmetic is plain mod-p.
    modulus: Vec<u64>,
}

/// An element of a finite field, as an index in `0..q`.
///
/// Elements carry no reference to their field; all arithmetic goes through
/// [`GfField`] methods so that mixing fields is impossible to express accidentally
/// within this crate's APIs (constructions create one field and thread it through).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GfElem(pub u64);

impl fmt::Display for GfElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors produced when constructing a finite field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GfError {
    /// The requested order is not a prime power.
    NotPrimePower(u64),
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::NotPrimePower(q) => write!(f, "{q} is not a prime power"),
        }
    }
}

impl std::error::Error for GfError {}

impl GfField {
    /// Constructs GF(q) for a prime power `q`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::NotPrimePower`] if `q` is not of the form `p^r`.
    ///
    /// # Examples
    ///
    /// ```
    /// use bqs_combinatorics::gf::GfField;
    /// let f9 = GfField::new(9).unwrap();
    /// assert_eq!(f9.order(), 9);
    /// assert!(GfField::new(6).is_err());
    /// ```
    pub fn new(q: u64) -> Result<Self, GfError> {
        let (p, r) = crate::primes::prime_power(q).ok_or(GfError::NotPrimePower(q))?;
        let modulus = if r == 1 {
            Vec::new()
        } else {
            find_irreducible(p, r)
        };
        Ok(GfField { p, r, q, modulus })
    }

    /// The order `q = p^r` of the field.
    #[must_use]
    pub fn order(&self) -> u64 {
        self.q
    }

    /// The characteristic `p`.
    #[must_use]
    pub fn characteristic(&self) -> u64 {
        self.p
    }

    /// The extension degree `r`.
    #[must_use]
    pub fn degree(&self) -> u32 {
        self.r
    }

    /// The additive identity.
    #[must_use]
    pub fn zero(&self) -> GfElem {
        GfElem(0)
    }

    /// The multiplicative identity.
    #[must_use]
    pub fn one(&self) -> GfElem {
        GfElem(1)
    }

    /// Converts an integer to a field element by reduction (mod q for the index
    /// space; for prime fields this is ordinary mod p).
    #[must_use]
    pub fn elem(&self, v: u64) -> GfElem {
        GfElem(v % self.q)
    }

    /// Iterates over all field elements in index order.
    pub fn elements(&self) -> impl Iterator<Item = GfElem> {
        (0..self.q).map(GfElem)
    }

    fn to_poly(&self, a: GfElem) -> Vec<u64> {
        let mut v = a.0;
        let mut coeffs = vec![0u64; self.r as usize];
        for c in coeffs.iter_mut() {
            *c = v % self.p;
            v /= self.p;
        }
        coeffs
    }

    fn elem_from_poly(&self, coeffs: &[u64]) -> GfElem {
        let mut acc = 0u64;
        for &c in coeffs.iter().rev() {
            acc = acc * self.p + (c % self.p);
        }
        GfElem(acc)
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, a: GfElem, b: GfElem) -> GfElem {
        if self.r == 1 {
            return GfElem((a.0 + b.0) % self.p);
        }
        let pa = self.to_poly(a);
        let pb = self.to_poly(b);
        let sum: Vec<u64> = pa.iter().zip(&pb).map(|(x, y)| (x + y) % self.p).collect();
        self.elem_from_poly(&sum)
    }

    /// Field negation.
    #[must_use]
    pub fn neg(&self, a: GfElem) -> GfElem {
        if self.r == 1 {
            return GfElem((self.p - a.0 % self.p) % self.p);
        }
        let pa = self.to_poly(a);
        let neg: Vec<u64> = pa.iter().map(|&x| (self.p - x) % self.p).collect();
        self.elem_from_poly(&neg)
    }

    /// Field subtraction.
    #[must_use]
    pub fn sub(&self, a: GfElem, b: GfElem) -> GfElem {
        self.add(a, self.neg(b))
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, a: GfElem, b: GfElem) -> GfElem {
        if self.r == 1 {
            return GfElem((a.0 * b.0) % self.p);
        }
        let pa = self.to_poly(a);
        let pb = self.to_poly(b);
        let prod = poly_mul_mod(&pa, &pb, &self.modulus, self.p);
        self.elem_from_poly(&prod)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a` is zero.
    #[must_use]
    pub fn inv(&self, a: GfElem) -> GfElem {
        assert!(a.0 != 0, "attempted to invert zero in GF({})", self.q);
        // a^(q-2) = a^{-1} in GF(q)*.
        self.pow(a, self.q - 2)
    }

    /// Exponentiation by squaring.
    #[must_use]
    pub fn pow(&self, a: GfElem, mut e: u64) -> GfElem {
        let mut base = a;
        let mut acc = self.one();
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Field division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is zero.
    #[must_use]
    pub fn div(&self, a: GfElem, b: GfElem) -> GfElem {
        self.mul(a, self.inv(b))
    }
}

/// Multiplies two polynomials over GF(p) and reduces modulo the monic `modulus`.
fn poly_mul_mod(a: &[u64], b: &[u64], modulus: &[u64], p: u64) -> Vec<u64> {
    let r = modulus.len() - 1;
    let mut prod = vec![0u64; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            prod[i + j] = (prod[i + j] + ai * bj) % p;
        }
    }
    // Reduce: modulus is monic of degree r, so x^r ≡ -(lower terms).
    for deg in (r..prod.len()).rev() {
        let coef = prod[deg];
        if coef == 0 {
            continue;
        }
        prod[deg] = 0;
        for (k, &m) in modulus.iter().enumerate().take(r) {
            let sub = (coef * m) % p;
            let idx = deg - r + k;
            prod[idx] = (prod[idx] + p - sub) % p;
        }
    }
    prod.truncate(r);
    prod.resize(r, 0);
    prod
}

/// Evaluates a polynomial (coefficients low-to-high) over GF(p) at `x`.
fn poly_eval(coeffs: &[u64], x: u64, p: u64) -> u64 {
    let mut acc = 0u64;
    for &c in coeffs.iter().rev() {
        acc = (acc * x + c) % p;
    }
    acc
}

/// Finds a monic irreducible polynomial of degree `r` over GF(p) by exhaustive search.
///
/// Irreducibility is checked by verifying the polynomial has no roots (sufficient for
/// degrees 2 and 3) and, for higher degrees, by trial division by all monic
/// polynomials of degree up to r/2. Plane orders are small so this is instantaneous.
fn find_irreducible(p: u64, r: u32) -> Vec<u64> {
    let r = r as usize;
    // Enumerate candidate lower coefficients c_0..c_{r-1}; leading coefficient is 1.
    let total = p.pow(r as u32);
    for idx in 0..total {
        let mut coeffs = vec![0u64; r + 1];
        let mut v = idx;
        for c in coeffs.iter_mut().take(r) {
            *c = v % p;
            v /= p;
        }
        coeffs[r] = 1;
        if is_irreducible(&coeffs, p) {
            return coeffs;
        }
    }
    unreachable!("an irreducible polynomial of every degree exists over GF(p)")
}

fn is_irreducible(coeffs: &[u64], p: u64) -> bool {
    let deg = coeffs.len() - 1;
    if coeffs[0] == 0 {
        return false; // divisible by x
    }
    // No roots in GF(p) rules out linear factors.
    for x in 0..p {
        if poly_eval(coeffs, x, p) == 0 {
            return false;
        }
    }
    if deg <= 3 {
        return true;
    }
    // Trial division by monic polynomials of degree 2..=deg/2.
    for d in 2..=deg / 2 {
        let total = p.pow(d as u32);
        for idx in 0..total {
            let mut div = vec![0u64; d + 1];
            let mut v = idx;
            for c in div.iter_mut().take(d) {
                *c = v % p;
                v /= p;
            }
            div[d] = 1;
            if poly_divides(&div, coeffs, p) {
                return false;
            }
        }
    }
    true
}

/// Returns true if monic polynomial `d` divides `a` over GF(p).
fn poly_divides(d: &[u64], a: &[u64], p: u64) -> bool {
    let mut rem: Vec<u64> = a.to_vec();
    let dd = d.len() - 1;
    while rem.len() > dd {
        let lead = *rem.last().unwrap() % p;
        let shift = rem.len() - 1 - dd;
        if lead != 0 {
            for k in 0..=dd {
                let sub = (lead * d[k]) % p;
                rem[shift + k] = (rem[shift + k] + p - sub) % p;
            }
        }
        rem.pop();
    }
    rem.iter().all(|&c| c % p == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_field_axioms(q: u64) {
        let f = GfField::new(q).unwrap();
        let elems: Vec<GfElem> = f.elements().collect();
        assert_eq!(elems.len() as u64, q);
        // Additive identity / inverse.
        for &a in &elems {
            assert_eq!(f.add(a, f.zero()), a);
            assert_eq!(f.add(a, f.neg(a)), f.zero());
            assert_eq!(f.mul(a, f.one()), a);
        }
        // Multiplicative inverse for nonzero elements.
        for &a in &elems {
            if a != f.zero() {
                assert_eq!(f.mul(a, f.inv(a)), f.one(), "q={q} a={a}");
            }
        }
        // Commutativity + associativity + distributivity on a sample (full for small q).
        for &a in &elems {
            for &b in &elems {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                for &c in &elems {
                    if q <= 9 {
                        assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                        assert_eq!(f.add(a, f.add(b, c)), f.add(f.add(a, b), c));
                        assert_eq!(f.mul(a, f.mul(b, c)), f.mul(f.mul(a, b), c));
                    }
                }
            }
        }
        // The nonzero elements form a group of order q-1: Lagrange => a^(q-1) = 1.
        for &a in &elems {
            if a != f.zero() {
                assert_eq!(f.pow(a, q - 1), f.one());
            }
        }
    }

    #[test]
    fn prime_fields() {
        for q in [2, 3, 5, 7, 11, 13] {
            check_field_axioms(q);
        }
    }

    #[test]
    fn extension_fields() {
        for q in [4, 8, 9, 16, 25, 27] {
            check_field_axioms(q);
        }
    }

    #[test]
    fn non_prime_power_rejected() {
        assert!(GfField::new(6).is_err());
        assert!(GfField::new(12).is_err());
        assert!(GfField::new(1).is_err());
        assert!(GfField::new(0).is_err());
    }

    #[test]
    fn division_round_trips() {
        let f = GfField::new(16).unwrap();
        for a in f.elements() {
            for b in f.elements() {
                if b != f.zero() {
                    let c = f.div(a, b);
                    assert_eq!(f.mul(c, b), a);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn inverting_zero_panics() {
        let f = GfField::new(7).unwrap();
        let _ = f.inv(f.zero());
    }

    #[test]
    fn field_metadata() {
        let f = GfField::new(27).unwrap();
        assert_eq!(f.order(), 27);
        assert_eq!(f.characteristic(), 3);
        assert_eq!(f.degree(), 3);
        let err = GfField::new(10).unwrap_err();
        assert_eq!(err.to_string(), "10 is not a prime power");
    }
}
