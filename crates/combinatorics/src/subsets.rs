//! Subset iteration utilities.
//!
//! Exact computations on explicit quorum systems — minimal transversals, exact crash
//! probability, exhaustive masking checks — enumerate k-subsets or all subsets of a
//! small universe. These iterators are allocation-light and deterministic.

/// Iterator over all `k`-element subsets of `{0, 1, ..., n-1}`, in lexicographic
/// order, yielded as sorted index vectors.
///
/// # Examples
///
/// ```
/// use bqs_combinatorics::subsets::KSubsets;
/// let subsets: Vec<Vec<usize>> = KSubsets::new(4, 2).collect();
/// assert_eq!(subsets.len(), 6);
/// assert_eq!(subsets[0], vec![0, 1]);
/// assert_eq!(subsets[5], vec![2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct KSubsets {
    n: usize,
    k: usize,
    current: Option<Vec<usize>>,
}

impl KSubsets {
    /// Creates the iterator. If `k > n` the iterator is empty; if `k == 0` it yields
    /// exactly the empty set.
    #[must_use]
    pub fn new(n: usize, k: usize) -> Self {
        let current = if k > n { None } else { Some((0..k).collect()) };
        KSubsets { n, k, current }
    }
}

impl Iterator for KSubsets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.current.clone()?;
        // Advance to the next combination in lexicographic order.
        let mut next = current.clone();
        let mut i = self.k;
        loop {
            if i == 0 {
                self.current = None;
                break;
            }
            i -= 1;
            if next[i] < self.n - (self.k - i) {
                next[i] += 1;
                for j in (i + 1)..self.k {
                    next[j] = next[j - 1] + 1;
                }
                self.current = Some(next);
                break;
            }
        }
        Some(current)
    }
}

/// Iterator over all subsets of `{0, ..., n-1}` as bitmasks (`u64`), in increasing
/// mask order. Requires `n <= 63`.
///
/// # Examples
///
/// ```
/// use bqs_combinatorics::subsets::PowerSet;
/// let masks: Vec<u64> = PowerSet::new(2).collect();
/// assert_eq!(masks, vec![0b00, 0b01, 0b10, 0b11]);
/// ```
#[derive(Debug, Clone)]
pub struct PowerSet {
    next: u64,
    limit: u64,
    done: bool,
}

impl PowerSet {
    /// Creates a power-set iterator over an `n`-element ground set.
    ///
    /// # Panics
    ///
    /// Panics if `n > 63`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n <= 63, "PowerSet supports at most 63 elements, got {n}");
        PowerSet {
            next: 0,
            limit: (1u64 << n) - 1,
            done: false,
        }
    }
}

impl Iterator for PowerSet {
    type Item = u64;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let v = self.next;
        if v == self.limit {
            self.done = true;
        } else {
            self.next += 1;
        }
        Some(v)
    }
}

/// Returns the number of `k`-subsets that [`KSubsets::new(n, k)`] will yield.
#[must_use]
pub fn count_k_subsets(n: usize, k: usize) -> u128 {
    crate::binomial::binomial(n as u64, k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_subsets_counts_match_binomial() {
        for n in 0..8usize {
            for k in 0..=n + 1 {
                let count = KSubsets::new(n, k).count() as u128;
                assert_eq!(count, count_k_subsets(n, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn k_subsets_lexicographic_and_sorted() {
        let all: Vec<Vec<usize>> = KSubsets::new(5, 3).collect();
        for w in all.windows(2) {
            assert!(w[0] < w[1], "not lexicographically increasing: {w:?}");
        }
        for s in &all {
            let mut sorted = s.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, s);
            assert!(s.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn k_zero_yields_empty_set() {
        let all: Vec<Vec<usize>> = KSubsets::new(4, 0).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }

    #[test]
    fn k_greater_than_n_is_empty() {
        assert_eq!(KSubsets::new(3, 4).count(), 0);
    }

    #[test]
    fn power_set_size() {
        assert_eq!(PowerSet::new(0).count(), 1);
        assert_eq!(PowerSet::new(5).count(), 32);
        assert_eq!(PowerSet::new(10).count(), 1024);
    }

    #[test]
    fn power_set_enumerates_distinct_masks() {
        let masks: Vec<u64> = PowerSet::new(6).collect();
        let mut dedup = masks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(masks.len(), dedup.len());
        assert!(masks.iter().all(|&m| m < 64));
    }

    #[test]
    #[should_panic(expected = "at most 63")]
    fn power_set_rejects_large_universe() {
        let _ = PowerSet::new(64);
    }
}
