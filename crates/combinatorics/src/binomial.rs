//! Binomial coefficients, binomial tails and concentration bounds.
//!
//! These are the numeric workhorses behind the availability analyses of the paper:
//! the threshold-system crash probability is a binomial tail (Proposition 6.3 uses a
//! Chernoff bound on it), the RT(k, ℓ) recurrence of Proposition 5.7 uses the tail
//! inequality of Lemma A.2, and the load optimality statements compare against
//! √((2b+1)/n) style expressions.

/// Exact binomial coefficient `C(n, k)` computed in `u128`.
///
/// Uses the multiplicative formula with interleaved division so intermediate values
/// stay small. Values that would overflow `u128` saturate at `u128::MAX`.
///
/// # Examples
///
/// ```
/// use bqs_combinatorics::binomial::binomial;
/// assert_eq!(binomial(52, 5), 2_598_960);
/// assert_eq!(binomial(10, 0), 1);
/// assert_eq!(binomial(10, 11), 0);
/// ```
#[must_use]
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        // result *= (n - i); result /= (i + 1); done carefully to stay exact.
        let num = (n - i) as u128;
        let den = (i + 1) as u128;
        match result.checked_mul(num) {
            Some(v) => result = v / den,
            None => {
                // Fall back to a gcd-reduced multiplication; if it still overflows,
                // saturate.
                let g = gcd(num, den);
                let num = num / g;
                let den = den / g;
                match (result / den).checked_mul(num) {
                    Some(v) => result = v,
                    None => return u128::MAX,
                }
            }
        }
    }
    result
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Natural logarithm of the binomial coefficient `C(n, k)`, using `ln_gamma`.
///
/// Accurate for very large `n` where the exact value does not fit in `u128`.
///
/// Returns negative infinity when `k > n`.
#[must_use]
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Floating-point binomial coefficient; exact for small values, `exp(ln_binomial)`
/// for large ones.
#[must_use]
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    if n <= 60 {
        binomial(n, k) as f64
    } else {
        ln_binomial(n, k).exp()
    }
}

/// `ln(n!)` via Stirling's series for large `n`, exact summation for small `n`.
#[must_use]
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n <= 256 {
        let mut acc = 0.0;
        for i in 2..=n {
            acc += (i as f64).ln();
        }
        return acc;
    }
    // Stirling's series with three correction terms is more than accurate enough
    // for probability work at n > 256.
    let x = n as f64;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x * x * x)
}

/// Probability mass function of Binomial(n, p) at `k`.
///
/// Computed in log space for numerical robustness.
#[must_use]
pub fn binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_binomial(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln();
    ln.exp()
}

/// Upper-tail probability `P[X >= k]` for `X ~ Binomial(n, p)`.
///
/// This is exactly the crash probability of an `ℓ-of-k` threshold quorum system with
/// `d = k - ℓ + 1` failures disabling it (see Proposition 5.7 of the paper), and the
/// crash probability of the `3b+1`-of-`4b+1` threshold component of boostFPP.
///
/// # Examples
///
/// ```
/// use bqs_combinatorics::binomial::binomial_tail;
/// // A fair coin flipped twice comes up heads at least once with probability 3/4.
/// let p = binomial_tail(2, 1, 0.5);
/// assert!((p - 0.75).abs() < 1e-12);
/// ```
#[must_use]
pub fn binomial_tail(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    // Sum the smaller side for accuracy.
    let mut tail = 0.0;
    for j in k..=n {
        tail += binomial_pmf(n, j, p);
    }
    tail.clamp(0.0, 1.0)
}

/// Lemma A.2 of the paper: `sum_{j=d}^{k} C(k,j) p^j (1-p)^{k-j} <= C(k,d) p^d`.
///
/// Returns the *bound* (right-hand side), clamped to `[0, 1]`.
#[must_use]
pub fn lemma_a2_bound(k: u64, d: u64, p: f64) -> f64 {
    if d > k {
        return 0.0;
    }
    (binomial_f64(k, d) * p.powi(d as i32)).clamp(0.0, 1.0)
}

/// Lemma A.1 of the paper: `C(k, d+i) / C(k, d) <= C(k-d, i)`.
///
/// Returns `true` when the inequality holds for the given parameters (used by
/// property tests to validate the lemma numerically).
#[must_use]
pub fn lemma_a1_holds(k: u64, d: u64, i: u64) -> bool {
    if d + i > k {
        return true;
    }
    let lhs = binomial_f64(k, d + i) / binomial_f64(k, d);
    let rhs = binomial_f64(k - d, i);
    lhs <= rhs * (1.0 + 1e-9)
}

/// Chernoff upper-tail bound `P[X >= (p + γ) n] <= exp(-2 n γ²)` for `X ~ Binomial(n, p)`.
///
/// This is the Hoeffding-form bound used in the proof of Proposition 6.3 to bound the
/// crash probability of the threshold component of boostFPP.
///
/// Returns 1.0 when `gamma <= 0` (the bound is vacuous there).
#[must_use]
pub fn chernoff_upper_tail(n: u64, gamma: f64) -> f64 {
    if gamma <= 0.0 {
        return 1.0;
    }
    (-2.0 * n as f64 * gamma * gamma).exp().min(1.0)
}

/// The paper's estimate (5) for `Fp(Thresh(3b+1 of 4b+1))`: `exp(-b (1-4p)² / 2)`.
///
/// Only meaningful for `p < 1/4`; returns 1.0 otherwise.
#[must_use]
pub fn thresh_crash_upper_bound(b: u64, p: f64) -> f64 {
    if p >= 0.25 {
        return 1.0;
    }
    let x = 1.0 - 4.0 * p;
    (-(b as f64) * x * x / 2.0).exp().min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_small_values() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(6, 3), 20);
        assert_eq!(binomial(10, 4), 210);
    }

    #[test]
    fn binomial_out_of_range_is_zero() {
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(0, 1), 0);
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..30u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn binomial_pascal_recurrence() {
        for n in 1..40u64 {
            for k in 1..n {
                assert_eq!(
                    binomial(n, k),
                    binomial(n - 1, k - 1) + binomial(n - 1, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn binomial_large_exact() {
        assert_eq!(binomial(52, 5), 2_598_960);
        assert_eq!(binomial(100, 3), 161_700);
        assert_eq!(binomial(64, 32), 1_832_624_140_942_590_534);
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for n in [10u64, 30, 60, 100, 500] {
            for k in [0u64, 1, n / 4, n / 2] {
                let exact = binomial_f64(n, k);
                let approx = ln_binomial(n, k).exp();
                let rel = (exact - approx).abs() / exact.max(1.0);
                assert!(rel < 1e-6, "n={n} k={k} exact={exact} approx={approx}");
            }
        }
    }

    #[test]
    fn ln_factorial_stirling_matches_exact_at_boundary() {
        // Check continuity across the exact/Stirling switch at n = 256.
        let mut exact = 0.0;
        for i in 2..=300u64 {
            exact += (i as f64).ln();
            if i >= 250 {
                let approx = ln_factorial(i);
                assert!((exact - approx).abs() / exact < 1e-9, "i={i}");
            }
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(10u64, 0.3), (25, 0.5), (40, 0.05)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n} p={p} total={total}");
        }
    }

    #[test]
    fn tail_monotone_in_k() {
        let n = 30;
        let p = 0.3;
        let mut prev = 1.0;
        for k in 0..=n {
            let t = binomial_tail(n, k, p);
            assert!(t <= prev + 1e-12);
            prev = t;
        }
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(binomial_tail(10, 0, 0.2), 1.0);
        assert_eq!(binomial_tail(10, 11, 0.2), 0.0);
        assert!((binomial_tail(10, 10, 1.0) - 1.0).abs() < 1e-12);
        assert!(binomial_tail(10, 1, 0.0) < 1e-12);
    }

    #[test]
    fn lemma_a2_dominates_tail() {
        // Lemma A.2: the tail is at most C(k,d) p^d.
        for &(k, d) in &[(4u64, 2u64), (10, 4), (21, 7), (13, 10)] {
            for &p in &[0.01, 0.1, 0.2, 0.4] {
                let tail = binomial_tail(k, d, p);
                let bound = lemma_a2_bound(k, d, p);
                assert!(
                    tail <= bound + 1e-12,
                    "k={k} d={d} p={p} tail={tail} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn lemma_a1_sample_parameters() {
        for k in 1..20u64 {
            for d in 0..=k {
                for i in 0..=(k - d) {
                    assert!(lemma_a1_holds(k, d, i), "k={k} d={d} i={i}");
                }
            }
        }
    }

    #[test]
    fn chernoff_dominates_exact_tail() {
        // P[X >= (p+gamma) n] <= exp(-2 n gamma^2)
        let n = 50;
        let p = 0.2;
        for &gamma in &[0.05, 0.1, 0.2, 0.3] {
            let k = ((p + gamma) * n as f64).ceil() as u64;
            let exact = binomial_tail(n, k, p);
            let bound = chernoff_upper_tail(n, gamma);
            assert!(
                exact <= bound + 1e-12,
                "gamma={gamma} exact={exact} bound={bound}"
            );
        }
    }

    #[test]
    fn thresh_bound_behaviour() {
        // Decreasing in b for fixed p < 1/4, and vacuous for p >= 1/4.
        assert!(thresh_crash_upper_bound(10, 0.1) > thresh_crash_upper_bound(100, 0.1));
        assert_eq!(thresh_crash_upper_bound(10, 0.3), 1.0);
        assert!(thresh_crash_upper_bound(1000, 0.1) < 1e-50);
    }
}
