//! The triangulated grid graph underlying the M-Path construction.
//!
//! Vertices are the lattice points `(row, col)` with `0 <= row, col < side`. Edges
//! follow the paper (Section 7): `(i1, j1) ~ (i2, j2)` iff one of
//!
//! 1. `i1 == i2` and `j2 == j1 + 1` (horizontal),
//! 2. `j1 == j2` and `i2 == i1 + 1` (vertical),
//! 3. `i2 == i1 - 1` and `j2 == j1 + 1` (anti-diagonal),
//!
//! which makes the grid a finite patch of the triangular lattice (each interior
//! vertex has six neighbours).

/// Which side-to-side direction a path crosses the grid in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Left-to-right: from column `0` to column `side - 1`.
    LeftRight,
    /// Top-to-bottom: from row `0` to row `side - 1`.
    TopBottom,
}

/// A `side × side` triangulated grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriangulatedGrid {
    side: usize,
}

impl TriangulatedGrid {
    /// Creates a `side × side` triangulated grid.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    #[must_use]
    pub fn new(side: usize) -> Self {
        assert!(side > 0, "grid side must be positive");
        TriangulatedGrid { side }
    }

    /// The side length `√n`.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of vertices `n = side²`.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.side * self.side
    }

    /// Maps `(row, col)` to a vertex index.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.side && col < self.side,
            "coordinates out of range"
        );
        row * self.side + col
    }

    /// Maps a vertex index back to `(row, col)`.
    #[must_use]
    pub fn coords(&self, v: usize) -> (usize, usize) {
        (v / self.side, v % self.side)
    }

    /// Returns the neighbours of vertex `v` in the triangulated grid.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        let (r, c) = self.coords(v);
        let s = self.side;
        let mut out = Vec::with_capacity(6);
        // Horizontal: (r, c-1), (r, c+1)
        if c > 0 {
            out.push(self.index(r, c - 1));
        }
        if c + 1 < s {
            out.push(self.index(r, c + 1));
        }
        // Vertical: (r-1, c), (r+1, c)
        if r > 0 {
            out.push(self.index(r - 1, c));
        }
        if r + 1 < s {
            out.push(self.index(r + 1, c));
        }
        // Anti-diagonal: (r-1, c+1) and its inverse (r+1, c-1)
        if r > 0 && c + 1 < s {
            out.push(self.index(r - 1, c + 1));
        }
        if r + 1 < s && c > 0 {
            out.push(self.index(r + 1, c - 1));
        }
        out
    }

    /// The set of source-side vertices for the given axis (left column or top row).
    #[must_use]
    pub fn sources(&self, axis: Axis) -> Vec<usize> {
        match axis {
            Axis::LeftRight => (0..self.side).map(|r| self.index(r, 0)).collect(),
            Axis::TopBottom => (0..self.side).map(|c| self.index(0, c)).collect(),
        }
    }

    /// The set of sink-side vertices for the given axis (right column or bottom row).
    #[must_use]
    pub fn sinks(&self, axis: Axis) -> Vec<usize> {
        match axis {
            Axis::LeftRight => (0..self.side)
                .map(|r| self.index(r, self.side - 1))
                .collect(),
            Axis::TopBottom => (0..self.side)
                .map(|c| self.index(self.side - 1, c))
                .collect(),
        }
    }

    /// The vertices of straight line `i` along the axis: row `i` for [`Axis::LeftRight`],
    /// column `i` for [`Axis::TopBottom`]. These straight lines are the paths used by
    /// the optimal-load access strategy of Proposition 7.2.
    ///
    /// # Panics
    ///
    /// Panics if `i >= side`.
    #[must_use]
    pub fn straight_path(&self, axis: Axis, i: usize) -> Vec<usize> {
        assert!(i < self.side, "line index out of range");
        match axis {
            Axis::LeftRight => (0..self.side).map(|c| self.index(i, c)).collect(),
            Axis::TopBottom => (0..self.side).map(|r| self.index(r, i)).collect(),
        }
    }

    /// Returns true if the vertex sequence `path` is a valid path in the grid
    /// (consecutive vertices adjacent, no repeated vertices) from the source side to
    /// the sink side of `axis`.
    #[must_use]
    pub fn is_crossing_path(&self, axis: Axis, path: &[usize]) -> bool {
        if path.is_empty() {
            return false;
        }
        let mut seen = vec![false; self.num_vertices()];
        for w in path.windows(2) {
            if !self.neighbors(w[0]).contains(&w[1]) {
                return false;
            }
        }
        for &v in path {
            if v >= self.num_vertices() || seen[v] {
                return false;
            }
            seen[v] = true;
        }
        let first = self.coords(path[0]);
        let last = self.coords(*path.last().unwrap());
        match axis {
            Axis::LeftRight => first.1 == 0 && last.1 == self.side - 1,
            Axis::TopBottom => first.0 == 0 && last.0 == self.side - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_and_interior_degrees() {
        let g = TriangulatedGrid::new(4);
        // Top-left corner (0,0): right, down, down-left(no) -> neighbors (0,1),(1,0) = 2.
        assert_eq!(g.neighbors(g.index(0, 0)).len(), 2);
        // Top-right corner (0,3): left, down, down-left -> 3.
        assert_eq!(g.neighbors(g.index(0, 3)).len(), 3);
        // Bottom-left corner (3,0): right, up, up-right -> 3.
        assert_eq!(g.neighbors(g.index(3, 0)).len(), 3);
        // Bottom-right corner (3,3): left, up -> 2.
        assert_eq!(g.neighbors(g.index(3, 3)).len(), 2);
        // Interior vertex has 6 neighbours in a triangular lattice.
        assert_eq!(g.neighbors(g.index(1, 1)).len(), 6);
        assert_eq!(g.neighbors(g.index(2, 2)).len(), 6);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = TriangulatedGrid::new(5);
        for v in 0..g.num_vertices() {
            for u in g.neighbors(v) {
                assert!(g.neighbors(u).contains(&v), "asymmetric edge {v} {u}");
            }
        }
    }

    #[test]
    fn index_coords_round_trip() {
        let g = TriangulatedGrid::new(7);
        for v in 0..g.num_vertices() {
            let (r, c) = g.coords(v);
            assert_eq!(g.index(r, c), v);
        }
    }

    #[test]
    fn sources_and_sinks() {
        let g = TriangulatedGrid::new(3);
        assert_eq!(g.sources(Axis::LeftRight), vec![0, 3, 6]);
        assert_eq!(g.sinks(Axis::LeftRight), vec![2, 5, 8]);
        assert_eq!(g.sources(Axis::TopBottom), vec![0, 1, 2]);
        assert_eq!(g.sinks(Axis::TopBottom), vec![6, 7, 8]);
    }

    #[test]
    fn straight_paths_are_crossing_paths() {
        let g = TriangulatedGrid::new(6);
        for i in 0..6 {
            let lr = g.straight_path(Axis::LeftRight, i);
            let tb = g.straight_path(Axis::TopBottom, i);
            assert!(g.is_crossing_path(Axis::LeftRight, &lr));
            assert!(g.is_crossing_path(Axis::TopBottom, &tb));
            assert_eq!(lr.len(), 6);
            assert_eq!(tb.len(), 6);
        }
    }

    #[test]
    fn crossing_path_rejects_bad_paths() {
        let g = TriangulatedGrid::new(4);
        // Not reaching the right side.
        assert!(!g.is_crossing_path(Axis::LeftRight, &[0, 1, 2]));
        // Repeated vertex.
        assert!(!g.is_crossing_path(Axis::LeftRight, &[0, 1, 0, 1, 2, 3]));
        // Non-adjacent jump.
        assert!(!g.is_crossing_path(Axis::LeftRight, &[0, 3]));
        // Empty.
        assert!(!g.is_crossing_path(Axis::LeftRight, &[]));
        // A diagonal-using LR path: (1,0) -> (0,1) is an anti-diagonal edge, then walk
        // right along row 0.
        let path = vec![g.index(1, 0), g.index(0, 1), g.index(0, 2), g.index(0, 3)];
        assert!(g.is_crossing_path(Axis::LeftRight, &path));
    }

    #[test]
    #[should_panic(expected = "side must be positive")]
    fn zero_side_rejected() {
        let _ = TriangulatedGrid::new(0);
    }
}
